"""Perf smoke harness: times the hot phases and writes BENCH_repro.json.

This seeds the performance trajectory across PRs: the JSON records the
compile/run/trace/cache-sweep phase times, the warm-artifact-cache
rerun, the single-pass vs sequential cache-sweep speedup, and the
benchmark-suite step-vs-blocks simulation speedup (with a cell-by-cell
statistics cross-check baked into the measurement).
"""

from pathlib import Path

from repro.bench.timing import BENCH_JSON, time_phases, write_bench_json

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_perf_smoke(tmp_path):
    report = time_phases(program="assem", target="d16",
                         sequential_baseline=True,
                         cache_root=tmp_path / "cache")
    write_bench_json(report, REPO_ROOT / BENCH_JSON)

    phases = report["phases"]
    for name in ("compile", "run", "trace", "cache_sweep_multi",
                 "cache_sweep_sequential", "warm_compile", "warm_run",
                 "warm_trace"):
        assert name in phases and phases[name] >= 0.0

    # The warm lab must be served entirely from the artifact cache:
    # zero recompiles, zero re-executions.
    assert report["warm_cache_misses"] == 0
    assert report["warm_cache_hits"] >= 3
    assert phases["warm_run"] < phases["run"] + phases["compile"]

    # The single-pass multi-config sweep must beat the seed's
    # per-config re-walk (typically ~2.5-3x; assert a safe floor).
    assert report["cacheperf_speedup"] > 1.2

    # Both engines simulated every suite cell with identical stats;
    # the block engine must win by a clear margin (typically >2x; the
    # committed trajectory is enforced by scripts/check_perf_budget.py,
    # this is only a sanity floor for noisy runners).
    assert report["sim_cells"] == 30
    assert report["sim_divergent"] == []
    assert report["sim_speedup"] > 1.2

"""Table 5 / Figures 11-12: combined feature effects."""

from conftest import run_once

from repro.experiments import (format_figures_11_12, format_table5,
                               run_summary)


def test_summary_table5_figures_11_12(benchmark, lab, programs):
    result = run_once(benchmark, run_summary, lab, programs)
    print()
    print(format_table5(result))
    print()
    print(format_figures_11_12(result))

    # Paper Table 5 ordering: restricting registers or addresses makes
    # DLXe code bigger and (weakly) slower-by-count.
    assert result.code_size_ratio(16, 2) >= result.code_size_ratio(16, 3)
    assert result.code_size_ratio(32, 2) >= result.code_size_ratio(32, 3)
    assert result.code_size_ratio(16, 3) >= result.code_size_ratio(32, 3)
    assert result.path_ratio(16, 2) >= result.path_ratio(32, 3)
    for regs in (16, 32):
        for addrs in (2, 3):
            assert result.path_ratio(regs, addrs) <= 1.0

"""Figure 5 / Table 7: path length across the five configurations."""

from conftest import run_once

from repro.experiments import (format_figure5, format_table7,
                               run_pathlength)


def test_pathlength_table7_figure5(benchmark, lab, programs):
    result = run_once(benchmark, run_pathlength, lab, programs)
    print()
    print(format_table7(result))
    print()
    print(format_figure5(result))

    ratio = result.average_ratio("dlxe")
    # Paper: DLXe executes ~0.87x of D16's instructions — far less
    # reduction than the ~1.5x density gap would predict.
    assert 0.70 < ratio < 1.0

"""Table 10: delayed-load and math-unit interlocks."""

from conftest import run_once

from repro.experiments import format_table10, mean, run_interlocks


def test_interlocks_table10(benchmark, lab, programs):
    rows = run_once(benchmark, run_interlocks, lab, programs)
    print()
    print(format_table10(rows))

    d16_mean = mean(row.d16_rate for row in rows)
    dlxe_mean = mean(row.dlxe_rate for row in rows)
    # Paper Table 10: mean rates ~0.10 (D16) and ~0.12 (DLXe).
    assert 0.02 < d16_mean < 0.35
    assert 0.02 < dlxe_mean < 0.35

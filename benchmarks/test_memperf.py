"""Figures 14-15, Tables 11-12: cacheless memory-latency sweeps."""

from conftest import run_once

from repro.experiments import (format_figure14, format_figure15,
                               format_tables_11_12, run_memperf)


def test_memperf_tables_11_12_figures_14_15(benchmark, lab, programs):
    def sweep():
        result32 = run_memperf(lab, programs, bus_bits=32)
        result64 = run_memperf(lab, programs, bus_bits=64)
        return result32, result64

    result32, result64 = run_once(benchmark, sweep)
    print()
    print(format_tables_11_12(result32))
    print()
    print(format_tables_11_12(result64))
    print()
    print(format_figure14(result32, result64))
    print()
    print(format_figure15(result32, result64, lab, programs))

    # Paper's headline (Table 11): with a 32-bit bus, DLXe wins at zero
    # wait states but D16 wins once memory has any latency.
    assert result32.mean_ratio(0) < 1.0
    assert result32.mean_ratio(3) > result32.mean_ratio(1) \
        > result32.mean_ratio(0)
    # 64-bit bus (Table 12): prefetching helps DLXe; ratios shrink.
    for ws in (1, 2, 3):
        assert result64.mean_ratio(ws) <= result32.mean_ratio(ws)
    # Figure 15: the D16 fetch stream needs fewer transactions/cycle.
    for ws in (0, 1, 2, 3):
        d16 = [result32.fetch_rates[p][ws] for p in result32.fetch_rates]
        assert all(0 < rate <= 1 for rate in d16)

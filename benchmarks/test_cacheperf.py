"""Tables 13-16, Figures 16-19: the cache experiments."""

import pytest
from conftest import run_once

from repro.experiments import (CACHE_PROGRAMS, format_figure16,
                               format_figure19, format_figures_17_18,
                               format_miss_rate_table, format_table13,
                               run_cache_study)


def test_cache_study_tables_13_16_figures_16_19(benchmark, lab):
    study = run_once(benchmark, run_cache_study, lab, CACHE_PROGRAMS)
    print()
    print(format_table13(study))
    for program in CACHE_PROGRAMS:
        print()
        print(format_miss_rate_table(study, program))
    print()
    print(format_figure16(study))
    print()
    print(format_figures_17_18(study, size=4096))
    print()
    print(format_figures_17_18(study, size=16384))
    print()
    print(format_figure19(study))

    for program in CACHE_PROGRAMS:
        for size in (1024, 2048, 4096, 8192, 16384):
            d16 = study.point(program, "d16", size, 32).rates
            dlxe = study.point(program, "dlxe", size, 32).rates
            # Byte for byte, D16 gets better I-cache behaviour: twice
            # the instructions fit in the same cache (paper Sec 4.1).
            assert d16.imiss_rate <= dlxe.imiss_rate + 1e-9, \
                (program, size)
            # And D16 moves fewer instruction words from memory.
            assert d16.itraffic_words <= dlxe.itraffic_words

        # Figures 17/18: at 16K the normalized CPI curves must be close
        # (within ~20%) — the cache has absorbed the traffic difference.
        for penalty in (4, 16):
            d16_cycles = study.cycles(program, "d16", 16384, 32, penalty)
            dlxe_cycles = study.cycles(program, "dlxe", 16384, 32,
                                       penalty)
            dlxe_ic = study.traces[(program, "dlxe")].run.stats.instructions
            normalized_d16 = d16_cycles / dlxe_ic
            dlxe_cpi = dlxe_cycles / dlxe_ic
            assert normalized_d16 / dlxe_cpi < 1.45, (program, penalty)

"""Table 8 / Figure 13 / Table 9: instruction traffic and density."""

from conftest import run_once

from repro.experiments import (format_figure13, format_table8,
                               format_table9, run_data_traffic,
                               run_traffic)


def test_traffic_table8_figure13(benchmark, lab, programs):
    result = run_once(benchmark, run_traffic, lab, programs)
    print()
    print(format_table8(result))
    print()
    print(format_figure13(result))

    # Paper Table 8: D16 saves ~35% of fetch words on average.
    assert 15 < result.average_saving < 50
    for row in result.rows:
        # Word-aligned fetches: traffic is more than half the path.
        assert row.d16_traffic > row.d16_path / 2
        assert row.d16_traffic < row.dlxe_traffic


def test_loads_stores_table9(benchmark, lab, programs):
    result = run_once(benchmark, run_data_traffic, lab, programs)
    print()
    print(format_table9(result))

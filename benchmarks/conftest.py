"""Shared fixtures for the paper-reproduction benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only -s

Each module regenerates one of the paper's tables or figures, printing
the same rows/series the paper reports.  ``pytest-benchmark`` times the
regeneration (single round — these are experiments, not microbenchmarks).
"""

import pytest

from repro.experiments import Lab


def pytest_addoption(parser):
    parser.addoption(
        "--fast-suite", action="store_true", default=False,
        help="run experiments on a reduced benchmark subset")
    parser.addoption(
        "--jobs", type=int, default=1,
        help="fan compile/run grid cells out over N processes")


@pytest.fixture(scope="session")
def lab(request):
    return Lab(jobs=request.config.getoption("--jobs"))


@pytest.fixture(scope="session")
def programs(request):
    from repro.experiments import default_programs

    return default_programs(fast=request.config.getoption("--fast-suite"))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)

"""Figure 4 / Table 6: code density across the five configurations."""

from conftest import run_once

from repro.experiments import (format_figure4, format_table6, run_density)


def test_density_table6_figure4(benchmark, lab, programs):
    result = run_once(benchmark, run_density, lab, programs)
    print()
    print(format_table6(result))
    print()
    print(format_figure4(result))

    ratio = result.average_ratio("dlxe")
    # Paper: DLXe/D16 ~ 1.5; the defining claim is "well below 2".
    # (Our full-suite average is ~1.24 — the data segment dilutes it;
    # see EXPERIMENTS.md "Known divergences".)
    assert 1.15 < ratio < 1.85
    for row in result.rows:
        assert row.ratio("dlxe") > 1.0

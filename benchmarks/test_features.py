"""Figures 6-10, Tables 3-4: per-feature attribution."""

from conftest import run_once

from repro.experiments import (format_figures_6_7, format_table3,
                               format_table4, run_data_traffic,
                               run_immediates)


def test_register_file_table3_figures_6_7(benchmark, lab, programs):
    result = run_once(benchmark, run_data_traffic, lab, programs)
    print()
    print(format_table3(result))
    print()
    print(format_figures_6_7(lab, programs))

    # Restricting DLXe to 16 registers does not reduce data traffic
    # (beyond callee-save noise: the paper's own Table 3 carries small
    # negative entries for towers and ipl).
    for row in result.rows:
        assert row.dlxe16 >= row.dlxe32 * 0.93, row.program
    # And the small-file machines average more traffic (paper: ~10%).
    assert result.average_dlxe16 >= 0.0


def test_immediates_table4_figure10(benchmark, lab, programs):
    rows = run_once(benchmark, run_immediates, lab, programs)
    print()
    print(format_table4(rows))

    from repro.experiments import mean

    total = mean(row.total_rate for row in rows)
    # Paper Table 4: ~9.5% of the restricted-DLXe trace carries
    # immediates beyond D16's fields.  Band kept generous — our stack
    # frames are leaner than 1992 GCC's.
    assert 0.005 < total < 0.30

"""Seeded fault injection and campaign reporting (see docs/faults.md)."""

from .model import (CRASH, DEFAULT_KINDS, DETECTED, FAULT_KINDS, HANG,
                    MASKED, OUTCOMES, SCHEMA_VERSION, SDC, TRAP_MODES,
                    FaultResult, FaultSpec, GoldenRun)
from .inject import (FunctionMap, apply_fault, fuel_for, run_cache_fault,
                     run_fault)
from .campaign import (CellReport, FaultCampaign, plan_cell, render_report)

__all__ = [
    "CRASH", "CellReport", "DEFAULT_KINDS", "DETECTED", "FAULT_KINDS",
    "FaultCampaign", "FaultResult", "FaultSpec", "FunctionMap",
    "GoldenRun", "HANG", "MASKED", "OUTCOMES", "SCHEMA_VERSION", "SDC",
    "TRAP_MODES", "apply_fault", "fuel_for", "plan_cell",
    "render_report", "run_cache_fault", "run_fault",
]

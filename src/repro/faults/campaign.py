"""Seeded fault-injection campaigns over the benchmark x target grid.

A :class:`FaultCampaign` plans every fault up front from a master seed
(per-cell PRNG streams, so planning is independent of execution order),
fans the (benchmark, target) cells out over a process pool exactly
like the experiment Lab, and aggregates the classified outcomes into a
versioned, byte-deterministic JSON report: the same seed and grid
produce the identical report for ``jobs=1`` and ``jobs=N``.

The campaign itself is fail-soft.  A cell whose *golden* run fails
(e.g. a hung benchmark caught by the watchdog) is recorded as a typed
error cell; a worker that dies is retried once and then recorded; and
individual faulty runs can never abort a cell — every simulator
escape is folded into the outcome taxonomy (``crash`` at worst).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..bench import get_benchmark
from ..experiments.runner import Lab, MAIN_TARGETS
from ..labcache import ArtifactCache
from ..machine import DEFAULT_FUEL
from .inject import FunctionMap, run_cache_fault, run_fault
from .model import (DEFAULT_KINDS, OUTCOMES, SCHEMA_VERSION, FaultResult,
                    FaultSpec, GoldenRun)

if TYPE_CHECKING:
    from ..analysis.vuln import SiteVerdict
    from ..asm.objfile import Executable


def plan_cell(bench: str, target: str, golden: GoldenRun,
              exe: "Executable", *, faults: int, seed: int,
              kinds: tuple[str, ...] = DEFAULT_KINDS) -> list[FaultSpec]:
    """Deterministically derive one cell's fault list.

    The PRNG stream is keyed by ``(seed, bench, target)`` only — not by
    execution order, worker identity, or wall clock — which is what
    makes campaign reports byte-identical across ``jobs`` settings.
    """
    rng = random.Random(f"{seed}/{bench}/{target}")
    width_bits = 16 if exe.isa_name == "D16" else 32
    data_len = max(4, len(exe.data))
    specs: list[FaultSpec] = []
    for index in range(faults):
        kind = rng.choice(kinds)
        # Trigger inside the golden path (never at 0: the fault must
        # perturb a *running* program, and never at the very end).
        trigger = rng.randrange(1, max(2, golden.instructions))
        spec = FaultSpec(index=index, bench=bench, target=target,
                         kind=kind, trigger=trigger)
        if kind == "ifetch":
            spec = FaultSpec(**{**spec.__dict__,
                                "bit": rng.randrange(width_bits)})
        elif kind == "reg":
            spec = FaultSpec(**{**spec.__dict__,
                                "reg": rng.randrange(32),
                                "bit": rng.randrange(32)})
        elif kind == "mem":
            spec = FaultSpec(**{**spec.__dict__,
                                "addr": exe.data_base
                                + rng.randrange(data_len),
                                "bit": rng.randrange(8)})
        elif kind == "trap":
            spec = FaultSpec(**{**spec.__dict__,
                                "mode": rng.choice(("getc-eof",
                                                    "sbrk-exhaust"))})
        elif kind == "cache":
            spec = FaultSpec(**{**spec.__dict__,
                                "line": rng.randrange(256),
                                "bit": rng.randrange(32)})
        specs.append(spec)
    return specs


@dataclass
class CellReport:
    """Classified results for one (benchmark, target) cell."""

    bench: str
    target: str
    golden: GoldenRun | None
    results: list[FaultResult] = field(default_factory=list)
    error: str = ""                   # golden run failed (cell skipped)
    #: Injections skipped because the static analysis proved them
    #: masked (``--prune-masked``); their results are still recorded
    #: (outcome ``masked``), so outcome counts match an unpruned run.
    pruned: int = 0

    def outcome_counts(self) -> dict[str, int]:
        counts = {outcome: 0 for outcome in OUTCOMES}
        for result in self.results:
            counts[result.outcome] += 1
        return counts

    def to_dict(self) -> dict[str, object]:
        if self.error:
            return {"bench": self.bench, "target": self.target,
                    "error": self.error}
        counts = self.outcome_counts()
        total = len(self.results)
        failures = total - counts["masked"]
        latencies = [r.latency_cycles for r in self.results
                     if r.latency_cycles is not None]
        functions: dict[str, dict[str, int]] = {}
        for result in self.results:
            if not result.function:
                continue
            per = functions.setdefault(
                result.function, {outcome: 0 for outcome in OUTCOMES})
            per[result.outcome] += 1
        return {
            "bench": self.bench,
            "target": self.target,
            "golden": {"instructions": self.golden.instructions,
                       "interlocks": self.golden.interlocks,
                       "exit_code": self.golden.exit_code},
            "faults": [r.to_dict() for r in self.results],
            "outcomes": counts,
            "sdc_rate": round(counts["sdc"] / total, 6) if total else 0.0,
            "detected_rate": (round(counts["detected"] / total, 6)
                              if total else 0.0),
            "mean_detection_latency_cycles": (
                round(sum(latencies) / len(latencies), 3)
                if latencies else None),
            # Expected random flips until the first non-masked outcome
            # (geometric estimate from this sample).
            "flips_to_failure": (round(total / failures, 3)
                                 if failures else None),
            "functions": dict(sorted(functions.items())),
            "pruned": self.pruned,
        }


@dataclass
class FaultCampaign:
    """A seeded fault grid: benchmarks x targets x faults-per-cell."""

    benchmarks: tuple[str, ...]
    targets: tuple[str, ...] = MAIN_TARGETS
    faults: int = 20
    seed: int = 1
    kinds: tuple[str, ...] = DEFAULT_KINDS
    #: Map injection sites to functions via the xisa summaries
    #: (adds one static analysis per cell).
    attribute_functions: bool = True
    #: Skip injections the static vulnerability analysis proves masked
    #: (:mod:`repro.analysis.vuln`).  Pruned sites are recorded with
    #: outcome ``masked`` and a ``pruned:`` detail, so outcome counts
    #: are identical to an unpruned run — only the simulations saved.
    prune_masked: bool = False
    max_instructions: int = DEFAULT_FUEL
    cache: object = None              # Lab cache selector

    def run(self, jobs: int = 1) -> dict[str, object]:
        """Execute the campaign; returns the versioned report dict."""
        cells = [(bench, target) for bench in self.benchmarks
                 for target in self.targets]
        for bench, _target in cells:
            get_benchmark(bench)      # validate before any forking
        lab = Lab(cache=self.cache)   # resolve cache root once
        jobs = max(1, int(jobs))
        reports: dict[tuple[str, str], CellReport] = {}
        if jobs > 1 and len(cells) > 1:
            reports = self._fan_out(cells, lab, jobs)
        for cell in cells:
            if cell not in reports:
                reports[cell] = _campaign_cell(
                    cell[0], cell[1], self._cell_config(lab))
        return self._report(reports)

    # ------------------------------------------------------- internals

    def _cell_config(self, lab: Lab) -> dict[str, Any]:
        return {"faults": self.faults, "seed": self.seed,
                "kinds": tuple(self.kinds),
                "attribute": self.attribute_functions,
                "prune_masked": self.prune_masked,
                "max_instructions": self.max_instructions,
                "cache_root": str(lab.cache.root),
                "cache_enabled": lab.cache.enabled}

    def _fan_out(self, cells: list[tuple[str, str]], lab: Lab, jobs: int,
                 ) -> dict[tuple[str, str], CellReport]:
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

        config = self._cell_config(lab)
        reports: dict[tuple[str, str], CellReport] = {}
        pending = list(cells)
        retried: set[tuple[str, str]] = set()
        while pending:
            batch, pending = pending, []
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(batch))) as pool:
                futures = {cell: pool.submit(_campaign_cell, cell[0],
                                             cell[1], config)
                           for cell in batch}
                for cell in batch:
                    try:
                        reports[cell] = futures[cell].result()
                    except BrokenExecutor:
                        if cell not in retried:
                            retried.add(cell)
                            pending.append(cell)
                        else:
                            reports[cell] = CellReport(
                                bench=cell[0], target=cell[1],
                                golden=None,
                                error="worker process died twice")
                    except Exception as exc:  # noqa: BLE001 - fail-soft
                        reports[cell] = CellReport(
                            bench=cell[0], target=cell[1], golden=None,
                            error=f"{type(exc).__name__}: {exc}")
        return reports

    def _report(self, reports: dict[tuple[str, str], CellReport],
                ) -> dict[str, object]:
        cells = [reports[cell].to_dict()
                 for cell in sorted(reports)]
        by_target: dict[str, dict[str, object]] = {}
        for target in self.targets:
            totals = {outcome: 0 for outcome in OUTCOMES}
            faults = 0
            for cell in cells:
                if cell["target"] != target or "error" in cell:
                    continue
                for outcome, count in cell["outcomes"].items():
                    totals[outcome] += count
                faults += sum(cell["outcomes"].values())
            failures = faults - totals["masked"]
            by_target[target] = {
                "faults": faults,
                "outcomes": totals,
                "sdc_rate": (round(totals["sdc"] / faults, 6)
                             if faults else 0.0),
                "detected_rate": (round(totals["detected"] / faults, 6)
                                  if faults else 0.0),
                "flips_to_failure": (round(faults / failures, 3)
                                     if failures else None),
            }
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "fault-campaign",
            "seed": self.seed,
            "faults_per_cell": self.faults,
            "fault_kinds": list(self.kinds),
            "benchmarks": list(self.benchmarks),
            "targets": list(self.targets),
            "cells": cells,
            "summary": by_target,
        }


def render_report(report: dict[str, object]) -> str:
    """Serialize a campaign report (byte-deterministic)."""
    return json.dumps(report, indent=2, sort_keys=True)


def _campaign_cell(bench_name: str, target: str, config: dict[str, Any],
                   ) -> CellReport:
    """Plan and execute every fault of one cell (any process)."""
    lab = Lab(cache=ArtifactCache(config["cache_root"],
                                  enabled=config["cache_enabled"]),
              max_instructions=config["max_instructions"])
    bench = get_benchmark(bench_name)
    try:
        golden_run = lab.run(bench_name, target)
        exe = lab.executable(bench_name, target)
    except Exception as exc:  # noqa: BLE001 - golden run is untrusted
        return CellReport(bench=bench_name, target=target, golden=None,
                          error=f"golden run failed: "
                                f"{type(exc).__name__}: {exc}")
    stats = golden_run.stats
    golden = GoldenRun(instructions=stats.instructions,
                       interlocks=stats.interlocks,
                       exit_code=stats.exit_code, output=stats.output)
    specs = plan_cell(bench_name, target, golden, exe,
                      faults=config["faults"], seed=config["seed"],
                      kinds=config["kinds"])

    functions = None
    if config["attribute"] and any(s.kind != "cache" for s in specs):
        try:
            functions = FunctionMap.for_source(bench.source, target)
        except Exception:  # noqa: BLE001 - attribution is best-effort
            functions = None
    prune = bool(config.get("prune_masked"))
    itrace = None
    if prune or any(s.kind == "cache" for s in specs):
        itrace = lab.trace(bench_name, target).itrace

    # Static masking verdicts gate execution under --prune-masked; the
    # oracle is an optimization, so any analysis failure just disables
    # pruning for the cell rather than failing it.
    verdicts: dict[int, "SiteVerdict"] = {}
    if prune:
        try:
            from ..analysis.vuln import build_oracle
            from ..cc.target import TARGETS

            oracle = build_oracle(exe, TARGETS[target], itrace)
            verdicts = {spec.index: oracle.classify(spec)
                        for spec in specs}
        except Exception:  # noqa: BLE001 - pruning is best-effort
            verdicts = {}

    report = CellReport(bench=bench_name, target=target, golden=golden)
    for spec in specs:
        verdict = verdicts.get(spec.index)
        if verdict is not None and verdict.masked:
            pc = verdict.pc
            function = functions.function_at(pc) \
                if functions is not None and pc is not None else ""
            report.results.append(FaultResult(
                spec=spec, outcome="masked", function=function,
                detail=f"pruned: {verdict.reason}"))
            report.pruned += 1
            continue
        if spec.kind == "cache":
            report.results.append(run_cache_fault(itrace, spec))
        else:
            report.results.append(
                run_fault(exe, spec, golden, params=lab.params,
                          functions=functions))
    return report

"""Fault model: what gets corrupted, when, and what happened.

A :class:`FaultSpec` is one fully-determined perturbation of a running
:class:`~repro.machine.Machine` — fault *kind* (where in the machine
the bit flips), *trigger* (the dynamic instruction count at which the
injection happens), and the kind-specific coordinates (bit index,
register number, byte address, trap mode, cache line).  Specs are
generated from a seeded PRNG before any execution happens, so a
campaign is reproducible from ``(seed, grid)`` alone and independent
of worker scheduling.

Outcomes follow the classic soft-error taxonomy:

==========  ========================================================
masked      the program completed with golden stdout and exit code
sdc         silent data corruption: completed, but output or exit
            code differ from the golden run
detected    the machine stopped the program with a structured error
            (MachineError, TrapError, memory fault)
hang        the watchdog fired (instruction/cycle fuel exhausted or
            a no-progress loop was caught)
crash       the host simulator itself failed (any other exception) —
            a robustness bug in *our* stack, not the program's
==========  ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Version of the campaign JSON report layout.  Bump on any
#: backwards-incompatible change to the payload shape.
#:
#: Version 2 added the per-cell ``pruned`` counter and the ``pruned:``
#: result details emitted by ``--prune-masked`` campaigns (sites the
#: static vulnerability analysis proved masked and therefore skipped).
SCHEMA_VERSION = 2

#: Fault kinds the injector understands, in canonical order.
FAULT_KINDS = ("ifetch", "reg", "mem", "trap", "cache")

#: Default kinds for a campaign (all of them).
DEFAULT_KINDS = FAULT_KINDS

#: Outcome classes, in canonical (report) order.
OUTCOMES = ("masked", "sdc", "detected", "hang", "crash")

MASKED = "masked"
SDC = "sdc"
DETECTED = "detected"
HANG = "hang"
CRASH = "crash"

#: Trap-level fault modes.
TRAP_MODES = ("getc-eof", "sbrk-exhaust")


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: kind, trigger, and coordinates."""

    index: int             # position within the cell's fault list
    bench: str
    target: str
    kind: str              # one of FAULT_KINDS
    trigger: int           # inject after this many retired instructions
    bit: int = 0           # bit to flip (kind-specific width)
    reg: int = 0           # general register number   (kind == "reg")
    addr: int = 0          # absolute byte address     (kind == "mem")
    mode: str = ""         # trap fault mode           (kind == "trap")
    line: int = 0          # cache line index          (kind == "cache")

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {"index": self.index, "kind": self.kind,
                                  "trigger": self.trigger}
        if self.kind == "ifetch":
            out["bit"] = self.bit
        elif self.kind == "reg":
            out.update(reg=self.reg, bit=self.bit)
        elif self.kind == "mem":
            out.update(addr=self.addr, bit=self.bit)
        elif self.kind == "trap":
            out["mode"] = self.mode
        elif self.kind == "cache":
            out.update(line=self.line, bit=self.bit)
        return out


@dataclass
class FaultResult:
    """Classified outcome of executing one :class:`FaultSpec`."""

    spec: FaultSpec
    outcome: str                      # one of OUTCOMES
    detail: str = ""
    #: Function containing the pc at injection time (xisa summaries);
    #: empty when attribution is disabled or the pc is unmapped.
    function: str = ""
    #: Cycles between injection and the detecting error (detected only).
    latency_cycles: int | None = None
    #: Completed with golden output but perturbed RunStats — the fault
    #: changed the *performance* trajectory without corrupting data.
    stats_differ: bool = False

    def to_dict(self) -> dict[str, object]:
        out = self.spec.to_dict()
        out["outcome"] = self.outcome
        if self.detail:
            out["detail"] = self.detail
        if self.function:
            out["function"] = self.function
        if self.latency_cycles is not None:
            out["latency_cycles"] = self.latency_cycles
        if self.stats_differ:
            out["stats_differ"] = True
        return out


@dataclass
class GoldenRun:
    """The reference execution a faulty run is diffed against."""

    instructions: int
    interlocks: int
    exit_code: int
    output: str = field(repr=False, default="")

"""Execute one fault against a machine and classify the outcome.

The injector leans on the machine layer's pause/resume support: run the
program to the trigger point (``stop_after``), perturb the paused
machine in place, then resume under a watchdog sized from the golden
run.  Classification diffs stdout, exit code, and
:class:`~repro.machine.RunStats` against the golden execution and maps
every simulator exception onto the outcome taxonomy of
:mod:`repro.faults.model`.

Function attribution reuses the per-function summaries of the
cross-ISA analyzer (:mod:`repro.analysis.xisa`): the summaries' entry
addresses map the injection pc back to the source-level function, so a
campaign can report *which* functions are soft spots on each ISA.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Iterable

from ..machine import (Machine, MachineError, MachineTimeout, MemoryError_,
                       TrapError)
from ..machine.cpu import DEFAULT_FUEL
from .model import (CRASH, DETECTED, HANG, MASKED, SDC, FaultResult,
                    FaultSpec, GoldenRun)

if TYPE_CHECKING:
    from ..analysis.absint import FunctionSummary
    from ..asm.objfile import Executable
    from ..cache import CacheConfig
    from ..machine.pipeline import PipelineParams

#: Faulty runs get this many times the golden path length as fuel
#: (plus a flat margin for short programs) before they count as hung.
FUEL_FACTOR = 4
FUEL_MARGIN = 10_000


def fuel_for(golden: GoldenRun) -> int:
    """Instruction watchdog budget for a faulty run."""
    return min(golden.instructions * FUEL_FACTOR + FUEL_MARGIN,
               DEFAULT_FUEL)


class FunctionMap:
    """Maps text addresses to function names via xisa summaries."""

    def __init__(self, functions: dict[str, "FunctionSummary"]):
        entries = sorted((summary.start, name)
                         for name, summary in functions.items())
        self._starts = [start for start, _name in entries]
        self._names = [name for _start, name in entries]

    @classmethod
    def for_source(cls, source: str, target: str) -> "FunctionMap":
        from ..analysis.xisa import analyze_source

        return cls(analyze_source(source, target).functions)

    def function_at(self, pc: int) -> str:
        """Name of the function whose entry precedes ``pc`` (or '')."""
        pos = bisect.bisect_right(self._starts, pc)
        return self._names[pos - 1] if pos else ""


def apply_fault(machine: Machine, spec: FaultSpec) -> str:
    """Perturb a paused machine in place; returns a description."""
    if spec.kind == "ifetch":
        idx = machine.index_of(machine.pc)
        width = machine.isa.width_bytes
        addr = machine.exe.text_base + idx * width
        raw = bytearray(machine.mem.data[addr:addr + width])
        bit = spec.bit % (width * 8)
        raw[bit // 8] ^= 1 << (bit % 8)
        instr = machine.patch_text(idx, bytes(raw))
        decoded = instr.op.value if instr is not None else "<undecodable>"
        return (f"flipped bit {bit} of instruction word at "
                f"{machine.pc:#x} -> {decoded}")
    if spec.kind == "reg":
        reg = spec.reg % 32
        bit = spec.bit % 32
        machine.g[reg] ^= 1 << bit
        if reg == 0 and machine.isa.name == "DLXe":
            machine.g[0] = 0          # architecturally hard-wired zero
            return "flip of hard-wired r0 (absorbed)"
        return f"flipped bit {bit} of r{reg}"
    if spec.kind == "mem":
        addr = spec.addr % machine.mem.size
        machine.mem.data[addr] ^= 1 << (spec.bit % 8)
        return f"flipped bit {spec.bit % 8} of byte at {addr:#x}"
    if spec.kind == "trap":
        traps = machine.traps
        if spec.mode == "getc-eof":
            traps.stdin = traps.stdin[:traps.stdin_pos]
            return "stdin truncated at current position (GETC now EOF)"
        if spec.mode == "sbrk-exhaust":
            traps.heap_limit = max(traps.brk, traps.heap_base)
            return "heap limit pulled to current break (SBRK now fails)"
        raise ValueError(f"unknown trap fault mode {spec.mode!r}")
    raise ValueError(f"unknown fault kind {spec.kind!r}")


def run_fault(exe: "Executable", spec: FaultSpec, golden: GoldenRun, *,
              params: "PipelineParams | None" = None, stdin: bytes = b"",
              functions: FunctionMap | None = None) -> FaultResult:
    """Run ``exe`` with one injected fault; classify against golden."""
    fuel = fuel_for(golden)
    machine = Machine(exe, params=params, stdin=stdin)
    try:
        machine.run(stop_after=spec.trigger, max_instructions=fuel)
    except MachineError as exc:
        # The *golden* path cannot fault before the trigger unless the
        # trigger itself is past the program's end — a planning bug.
        return FaultResult(spec=spec, outcome=CRASH,
                           detail=f"pre-injection failure: {exc}")
    if machine.halted:
        return FaultResult(
            spec=spec, outcome=MASKED,
            detail="program exited before the trigger point")

    function = functions.function_at(machine.pc) if functions else ""
    try:
        where = apply_fault(machine, spec)
    except Exception as exc:  # noqa: BLE001 - injector bug, not program
        return FaultResult(spec=spec, outcome=CRASH, function=function,
                           detail=f"injection failed: {exc}")
    injected_at = machine.cycle_time

    try:
        stats = machine.run(max_instructions=fuel)
    except MachineTimeout as exc:
        return FaultResult(spec=spec, outcome=HANG, function=function,
                           detail=f"{where}; {exc.reason}")
    except (MemoryError_, TrapError, MachineError) as exc:
        return FaultResult(
            spec=spec, outcome=DETECTED, function=function,
            detail=f"{where}; {type(exc).__name__}: {exc}",
            latency_cycles=machine.cycle_time - injected_at)
    except Exception as exc:  # noqa: BLE001 - host-level failure
        return FaultResult(spec=spec, outcome=CRASH, function=function,
                           detail=f"{where}; {type(exc).__name__}: {exc}")

    if stats.output != golden.output or stats.exit_code != golden.exit_code:
        return FaultResult(spec=spec, outcome=SDC, function=function,
                           detail=where)
    differ = (stats.instructions != golden.instructions
              or stats.interlocks != golden.interlocks)
    return FaultResult(spec=spec, outcome=MASKED, function=function,
                       detail=where, stats_differ=differ)


def run_cache_fault(itrace: Iterable[int], spec: FaultSpec,
                    config: "CacheConfig | None" = None) -> FaultResult:
    """Replay an instruction-address trace with one corrupt cache line.

    The :mod:`repro.cache` models carry no data, only metadata (tags
    and per-sub-block valid bits), so "silent corruption" here means
    the *measured statistics* diverge from a clean replay: a flipped
    valid bit fakes a hit on stale contents or forces a refetch, and a
    flipped tag bit does the same at line granularity.  Masked means
    the corrupt metadata was overwritten before it was ever consulted.
    """
    from ..cache import Cache, CacheConfig

    config = config or CacheConfig(size=8192)
    addresses = list(itrace)
    cut = spec.trigger % len(addresses) if addresses else 0

    golden = Cache(config)
    golden.run_reads(addresses)

    faulty = Cache(config)
    faulty.run_reads(addresses[:cut])
    line = spec.line % config.num_lines
    nsubs = config.subs_per_block
    # Low bits corrupt a valid bit, the rest walk the tag bits.
    if spec.bit % (nsubs + 8) < nsubs:
        faulty.corrupt_line(line, sub_bit=spec.bit % nsubs)
        where = f"flipped valid bit {spec.bit % nsubs} of line {line}"
    else:
        tag_bit = spec.bit % 8
        faulty.corrupt_line(line, tag_bit=tag_bit)
        where = f"flipped tag bit {tag_bit} of line {line}"
    faulty.run_reads(addresses[cut:])

    same = (faulty.read_misses == golden.read_misses
            and faulty.traffic_words == golden.traffic_words)
    if same:
        return FaultResult(spec=spec, outcome=MASKED, detail=where)
    return FaultResult(
        spec=spec, outcome=SDC,
        detail=(f"{where}; misses {golden.read_misses} -> "
                f"{faulty.read_misses}, traffic {golden.traffic_words} "
                f"-> {faulty.traffic_words} words"))

"""The paper's performance formulas (Section 4 and Appendix A.2/A.3).

Cacheless machine with ``latency`` wait states per memory transaction::

    Cycles = IC + Interlocks + latency * (IRequests + DRequests)

where IRequests counts word (32-bit bus) or doubleword (64-bit bus)
instruction-fetch transactions and DRequests counts loads+stores.

Machine with split I/D caches and a miss penalty::

    Cycles = IC + Interlocks + MissPenalty * (IMiss + RMiss + WMiss)

``normalized_cpi`` divides cycles by a *reference* instruction count so
machines with different path lengths can be compared directly — the
paper normalizes D16 cycle counts by the DLXe path length in Figures 14,
17 and 18.
"""

from __future__ import annotations

from dataclasses import dataclass

from .stats import RunStats


def cycles_no_cache(stats: RunStats, *, latency: int,
                    bus_bits: int = 32) -> int:
    """Total cycles for a cacheless machine (paper Appendix A.2)."""
    if bus_bits == 32:
        ifetches = stats.ifetch_words
    elif bus_bits == 64:
        ifetches = stats.ifetch_dwords
    else:
        raise ValueError(f"unsupported bus width {bus_bits}")
    return (stats.instructions + stats.interlocks
            + latency * (ifetches + stats.mem_ops))


def cycles_with_cache(stats: RunStats, *, miss_penalty: int,
                      imisses: int, rmisses: int, wmisses: int) -> int:
    """Total cycles for a machine with split I/D caches (Appendix A.3)."""
    return (stats.instructions + stats.interlocks
            + miss_penalty * (imisses + rmisses + wmisses))


def cpi(cycles: int, instructions: int) -> float:
    """Average cycles per instruction."""
    return cycles / instructions if instructions else 0.0


def normalized_cpi(cycles: int, reference_instructions: int) -> float:
    """Cycles divided by a reference path length (factor out IC)."""
    return cycles / reference_instructions if reference_instructions else 0.0


def fetches_per_cycle(stats: RunStats, *, latency: int,
                      bus_bits: int = 32) -> float:
    """Instruction-fetch bus transactions per cycle (paper Figure 15)."""
    total = cycles_no_cache(stats, latency=latency, bus_bits=bus_bits)
    requests = (stats.ifetch_words if bus_bits == 32
                else stats.ifetch_dwords)
    return requests / total if total else 0.0


@dataclass(frozen=True)
class PerfPoint:
    """One (configuration, result) sample from a parameter sweep."""

    label: str
    latency: int
    cycles: int
    cpi: float
    normalized_cpi: float

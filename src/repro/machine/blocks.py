"""Basic-block compiler for the fast execution engine.

The per-instruction interpreter in :mod:`repro.machine.cpu` pays, for
every retired instruction, the full dispatch tax: slot lookup, fuel and
trace checks, instruction-fetch accounting, scoreboard bookkeeping, and
one closure call.  This module removes that tax for straight-line code:
a run of slots starting at an entry index (up to the next control
transfer, trap, or undecodable slot) is *compiled* -- Python source is
generated with every constant (register numbers, immediates, hazard
indices, latencies, fetch-word boundaries) inlined, then ``exec``-ed
into one fused closure that retires the whole block and returns the
next pc.

Bit-identical accounting is preserved by construction:

* the scoreboard/interlock update emitted per slot is the same rule
  sequence as the interpreter loop, specialized to the slot's constant
  read/write indices and latencies;
* instruction-fetch word/doubleword transactions are resolved at
  compile time -- inside a block the pc sequence is static, so only the
  entry boundary needs a runtime comparison;
* every slot whose functional semantics can raise (memory accesses,
  division, traps, float conversions) runs inside a ``try`` whose
  handler spills the in-flight counters into a shared scratch list and
  re-raises, so the dispatcher recovers the exact per-instruction
  machine state on an exception.  On CPython 3.11+ the ``try`` costs
  nothing when no exception occurs.

Compilation is *warm*: the dispatcher steps a block-entry slot through
the ordinary interpreter until it has been entered
:data:`HOT_THRESHOLD` times, and only then fuses it -- cold start-up
code never pays the (dominant) ``compile()`` cost.  Generated code
objects contain no machine state -- registers, memory accessors, and
trap objects enter through the closure's default arguments -- so they
are cached on the :class:`~repro.asm.objfile.Executable` keyed by
``(entry, pipeline-params)`` and shared by every machine running that
image (fault campaigns construct thousands).  A machine whose
:meth:`~repro.machine.cpu.Machine.patch_text` hook has rewritten a slot
bypasses the shared cache for any block covering it.

Blocks may overlap (a branch into the middle of a compiled run simply
compiles a second block starting there), and a patched slot invalidates
every compiled block covering it.
"""

from __future__ import annotations

import struct

from ..isa import Op, OpKind
from ..isa.common import to_s32
from ..isa.operations import CONTROL_OPS, Cond
from ..isa.refs import ldc_pool_addr

WORD_MASK = 0xFFFFFFFF

#: Longest straight-line run fused into one closure.  Longer runs are
#: split; the tail compiles as its own block, so only dispatch overhead
#: (not correctness) is affected.
MAX_BLOCK = 256

#: Block entries are interpreted this many times before being fused.
#: ``compile()`` of a generated block costs on the order of a
#: millisecond -- three orders of magnitude more than one interpreted
#: pass -- so fusing once-executed start-up code is a net loss; every
#: loop body crosses this threshold almost immediately.
HOT_THRESHOLD = 16


class NoProgress(Exception):
    """Raised by a compiled block when a control transfer targets its
    own address; the dispatcher converts it into ``MachineTimeout``."""


class CompiledBlock:
    """One fused straight-line run, plus its dispatch metadata."""

    __slots__ = ("entry", "idxs", "n", "fn", "count", "max_adv")

    def __init__(self, entry, idxs, fn, max_adv):
        self.entry = entry
        self.idxs = idxs
        self.n = len(idxs)
        self.fn = fn
        #: Lazily materialized execution count: the dispatcher bumps
        #: this once per block run; ``Machine`` folds it back into the
        #: per-slot ``counts`` vector on run exit / invalidation.
        self.count = 0
        #: Static upper bound on cycle advance, used to keep the
        #: ``max_cycles`` watchdog exact without per-slot checks.
        self.max_adv = max_adv


# ----------------------------------------------------- float bit helpers
#
# Shared with the per-instruction interpreter in ``cpu`` (which imports
# them from here), and bound into compiled blocks as B2F/F2B/B2D/D2B/CL.

# Prebound Struct methods skip the per-call format-string lookup; these
# run hundreds of thousands of times in FP-heavy benchmarks.
_PACK_I = struct.Struct("<I").pack
_UNPACK_F = struct.Struct("<f").unpack
_PACK_F = struct.Struct("<f").pack
_UNPACK_I = struct.Struct("<I").unpack
_PACK_II = struct.Struct("<II").pack
_UNPACK_D = struct.Struct("<d").unpack
_PACK_D = struct.Struct("<d").pack
_UNPACK_II = struct.Struct("<II").unpack


def _f32_bits_to_float(bits: int) -> float:
    return _UNPACK_F(_PACK_I(bits))[0]


def _float_to_f32_bits(value: float) -> int:
    try:
        return _UNPACK_I(_PACK_F(value))[0]
    except OverflowError:
        sign = 0x80000000 if value < 0 else 0
        return sign | 0x7F800000  # +/- infinity


def _f64_bits_to_float(lo: int, hi: int) -> float:
    return _UNPACK_D(_PACK_II(lo, hi))[0]


def _float_to_f64_bits(value: float) -> tuple[int, int]:
    lo, hi = _UNPACK_II(_PACK_D(value))
    return lo, hi


def _clamp_s32(value: float) -> int:
    value = int(value)  # truncate toward zero
    if value > 0x7FFFFFFF:
        value = 0x7FFFFFFF
    elif value < -0x80000000:
        value = -0x80000000
    return value & WORD_MASK


# --------------------------------------------------------------- helpers

#: cond -> (python comparison operator, needs signed conversion).
#: Equality is sign-agnostic on masked 32-bit values; float compares
#: use the operator alone (signedness is meaningless on floats).
_CMP_OPS = {
    Cond.LT: ("<", True), Cond.LTU: ("<", False),
    Cond.LE: ("<=", True), Cond.LEU: ("<=", False),
    Cond.EQ: ("==", None), Cond.NE: ("!=", None),
    Cond.GT: (">", True), Cond.GTU: (">", False),
    Cond.GE: (">=", True), Cond.GEU: (">=", False),
}

_ALU_EXPR = {
    Op.ADD: "(g[{a}] + g[{b}]) & M",
    Op.SUB: "(g[{a}] - g[{b}]) & M",
    Op.AND: "g[{a}] & g[{b}]",
    Op.OR: "g[{a}] | g[{b}]",
    Op.XOR: "g[{a}] ^ g[{b}]",
    Op.SHRA: "(S32(g[{a}]) >> (g[{b}] & 31)) & M",
    Op.SHR: "g[{a}] >> (g[{b}] & 31)",
    Op.SHL: "(g[{a}] << (g[{b}] & 31)) & M",
}

_ALUI_EXPR = {
    Op.ADDI: "(g[{a}] + {c}) & M",
    Op.SUBI: "(g[{a}] - {c}) & M",
    Op.ANDI: "g[{a}] & {c}",
    Op.ORI: "g[{a}] | {c}",
    Op.XORI: "g[{a}] ^ {c}",
    Op.SHRAI: "(S32(g[{a}]) >> {sh}) & M",
    Op.SHRI: "g[{a}] >> {sh}",
    Op.SHLI: "(g[{a}] << {sh}) & M",
}

_FP3_SF = {Op.ADD_SF: "+", Op.SUB_SF: "-", Op.MUL_SF: "*", Op.DIV_SF: "/"}
_FP3_DF = {Op.ADD_DF: "+", Op.SUB_DF: "-", Op.MUL_DF: "*", Op.DIV_DF: "/"}

#: Ops whose functional code can raise and therefore need the spilling
#: ``try`` wrapper (memory faults, division by zero, trap errors); all
#: MATH-kind ops get the wrapper too (float division and the
#: float-to-int conversions can raise, and the ``try`` is free).
_RAISING = frozenset({
    Op.LD, Op.LDH, Op.LDHU, Op.LDB, Op.LDBU, Op.LDC,
    Op.ST, Op.STH, Op.STB, Op.DIV, Op.REM, Op.TRAP,
})

#: Names every compiled block binds as defaults, machine state and
#: helpers alike; per-block handler fallbacks (``H{j}``) are appended.
_STD_NAMES = (
    "g", "f", "ready", "wk", "S", "M", "S32",
    "RW", "RH", "RB", "WW", "WH", "WB",
    "FST", "TH", "TP", "MM", "NP", "ME",
    "B2F", "F2B", "B2D", "D2B", "CL", "abs", "float",
)


def _timing_lines(reads, writes, mlat, rlat, wkind):
    """Emit the scoreboard/interlock update for one slot.

    Mirrors the interpreter's rules exactly, with the slot's hazard
    indices and latencies baked in as constants.
    """
    lines = []
    if not reads and not mlat:
        lines.append("time += 1")
    else:
        lines.append("_n = time + 1")
        for r in reads:
            lines.append(f"if ready[{r}] > _n: _n = ready[{r}]")
        if mlat:
            lines.append("_mb = math_free > _n")
            lines.append("if _mb: _n = math_free")
        lines.append("if _n != time + 1:")
        lines.append("    _s = _n - time - 1")
        lines.append("    interlocks += _s")
        conds = (["_mb"] if mlat else []) + [
            f"(ready[{r}] == _n and wk[{r}] == 2)" for r in reads]
        lines.append(f"    if {' or '.join(conds)}:")
        lines.append("        math_il += _s")
        lines.append("    else:")
        lines.append("        load_il += _s")
        lines.append("time = _n")
    if mlat:
        lines.append(f"math_free = time + {mlat}")
    if writes:
        if rlat == 1:
            result = "time + 1"
        else:
            result = f"time + {rlat}"
        for w in writes:
            lines.append(f"ready[{w}] = {result}")
            lines.append(f"wk[{w}] = {wkind}")
    return lines


def _functional_lines(instr, addr, width, zero_r0, handler_name):
    """Emit the functional semantics of one non-control slot.

    Returns ``(lines, used_handler)``; ``used_handler`` is True when
    the slot falls back to calling its interpreter closure (ops without
    an inline template), which must then be bound as ``handler_name``
    in the generated function's defaults.
    """
    op = instr.op
    rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
    zero = (zero_r0 and rd == 0 and "rd" in instr.info.writes
            and instr.info.reg_class.get("rd") == "g")
    lines = []

    def assign(expr):
        lines.append(f"g[{rd}] = {expr}")
        if zero:
            lines.append("g[0] = 0")

    if op in _ALU_EXPR:
        assign(_ALU_EXPR[op].format(a=rs1, b=rs2))
    elif op in _ALUI_EXPR:
        uimm = imm & WORD_MASK
        assign(_ALUI_EXPR[op].format(a=rs1, c=uimm, sh=imm & 31))
    elif op == Op.NEG:
        assign(f"(-g[{rs1}]) & M")
    elif op == Op.INV:
        assign(f"g[{rs1}] ^ M")
    elif op == Op.MV:
        assign(f"g[{rs1}]")
    elif op == Op.MVI:
        assign(f"{imm & WORD_MASK}")
    elif op == Op.MVHI:
        assign(f"{(imm << 16) & WORD_MASK}")
    elif op == Op.CMP:
        cmp_op, signed = _CMP_OPS[instr.cond]
        if signed:
            expr = f"S32(g[{rs1}]) {cmp_op} S32(g[{rs2}])"
        else:
            expr = f"g[{rs1}] {cmp_op} g[{rs2}]"
        assign(f"1 if {expr} else 0")
    elif op == Op.CMPI:
        cmp_op, signed = _CMP_OPS[instr.cond]
        uimm = imm & WORD_MASK
        rhs = to_s32(uimm) if signed else uimm
        lhs = f"S32(g[{rs1}])" if signed else f"g[{rs1}]"
        assign(f"1 if {lhs} {cmp_op} {rhs} else 0")
    elif op == Op.MUL:
        assign(f"(S32(g[{rs1}]) * S32(g[{rs2}])) & M")
    elif op in (Op.DIV, Op.REM):
        lines.append(f"_a = S32(g[{rs1}]); _b = S32(g[{rs2}])")
        lines.append("if _b == 0:")
        lines.append(f"    raise ME('division by zero at pc={addr:#x}')")
        lines.append("_q = abs(_a) // abs(_b)")
        lines.append("if (_a < 0) != (_b < 0): _q = -_q")
        if op == Op.REM:
            assign("(_a - _q * _b) & M")
        else:
            assign("_q & M")
    elif op in (Op.LD, Op.LDH, Op.LDHU, Op.LDB, Op.LDBU):
        expr = {
            Op.LD: "RW((g[{a}] + {i}) & M)",
            Op.LDH: "RH((g[{a}] + {i}) & M, True) & M",
            Op.LDHU: "RH((g[{a}] + {i}) & M)",
            Op.LDB: "RB((g[{a}] + {i}) & M, True) & M",
            Op.LDBU: "RB((g[{a}] + {i}) & M)",
        }[op].format(a=rs1, i=imm)
        assign(expr)
    elif op == Op.LDC:
        assign(f"RW({ldc_pool_addr(addr, imm)})")
    elif op in (Op.ST, Op.STH, Op.STB):
        writer = {Op.ST: "WW", Op.STH: "WH", Op.STB: "WB"}[op]
        lines.append(f"{writer}((g[{rs1}] + {imm}) & M, g[{rs2}])")
    elif op == Op.TRAP:
        lines.append(f"_r = TH({imm}, g[2], {addr})")
        lines.append("if TP.exited:")
        lines.append("    MM.halted = True")
        lines.append("elif _r is not None:")
        lines.append("    g[2] = _r")
    elif op == Op.RDSR:
        assign("FST[0]")
    elif op == Op.NOP:
        pass
    elif op in _FP3_SF:
        c = _FP3_SF[op]
        lines.append(f"f[{rd}] = F2B(B2F(f[{rs1}]) {c} B2F(f[{rs2}]))")
    elif op in _FP3_DF:
        c = _FP3_DF[op]
        lines.append(f"_lo, _hi = D2B(B2D(f[{rs1}], f[{rs1 + 1}]) {c} "
                     f"B2D(f[{rs2}], f[{rs2 + 1}]))")
        lines.append(f"f[{rd}] = _lo")
        lines.append(f"f[{rd + 1}] = _hi")
    elif op == Op.NEG_SF:
        lines.append(f"f[{rd}] = f[{rs1}] ^ 0x80000000")
    elif op == Op.NEG_DF:
        lines.append(f"f[{rd}] = f[{rs1}]")
        lines.append(f"f[{rd + 1}] = f[{rs1 + 1}] ^ 0x80000000")
    elif op == Op.CMP_SF:
        cmp_op, _ = _CMP_OPS[instr.cond]
        lines.append(f"FST[0] = 1 if B2F(f[{rs1}]) {cmp_op} "
                     f"B2F(f[{rs2}]) else 0")
    elif op == Op.CMP_DF:
        cmp_op, _ = _CMP_OPS[instr.cond]
        lines.append(f"FST[0] = 1 if B2D(f[{rs1}], f[{rs1 + 1}]) {cmp_op} "
                     f"B2D(f[{rs2}], f[{rs2 + 1}]) else 0")
    elif op == Op.SI2SF:
        lines.append(f"f[{rd}] = F2B(float(S32(f[{rs1}])))")
    elif op == Op.SI2DF:
        lines.append(f"_lo, _hi = D2B(float(S32(f[{rs1}])))")
        lines.append(f"f[{rd}] = _lo")
        lines.append(f"f[{rd + 1}] = _hi")
    elif op == Op.SF2SI:
        lines.append(f"f[{rd}] = CL(B2F(f[{rs1}]))")
    elif op == Op.DF2SI:
        lines.append(f"f[{rd}] = CL(B2D(f[{rs1}], f[{rs1 + 1}]))")
    elif op == Op.SF2DF:
        lines.append(f"_lo, _hi = D2B(B2F(f[{rs1}]))")
        lines.append(f"f[{rd}] = _lo")
        lines.append(f"f[{rd + 1}] = _hi")
    elif op == Op.DF2SF:
        lines.append(f"f[{rd}] = F2B(B2D(f[{rs1}], f[{rs1 + 1}]))")
    elif op == Op.MV_SF:
        lines.append(f"f[{rd}] = f[{rs1}]")
    elif op == Op.MV_DF:
        lines.append(f"f[{rd}] = f[{rs1}]")
        lines.append(f"f[{rd + 1}] = f[{rs1 + 1}]")
    elif op == Op.MVIF:
        lines.append(f"f[{rd}] = g[{rs1}]")
    elif op == Op.MVFI:
        assign(f"f[{rs1}]")
    else:
        # No inline template: call the interpreter's per-slot closure.
        lines.append(f"{handler_name}({addr})")
        return lines, True
    return lines, False


def _control_lines(instr, addr, width):
    """Emit the terminator's next-pc computation.

    Returns ``(lines, may_self_branch)``: the caller appends the
    no-progress check only when the transfer could target ``addr``.
    """
    op = instr.op
    rs1, rs2, imm = instr.rs1, instr.rs2, instr.imm
    ft = addr + width
    if op == Op.BR:
        return [f"_next = {addr + imm}"], (imm == 0)
    if op == Op.BZ:
        return ([f"_next = {addr + imm} if g[{rs1}] == 0 else {ft}"],
                imm == 0)
    if op == Op.BNZ:
        return ([f"_next = {addr + imm} if g[{rs1}] != 0 else {ft}"],
                imm == 0)
    if op == Op.J:
        return [f"_next = g[{rs1}]"], True
    if op == Op.JZ:
        return [f"_next = g[{rs1}] if g[{rs2}] == 0 else {ft}"], True
    if op == Op.JNZ:
        return [f"_next = g[{rs1}] if g[{rs2}] != 0 else {ft}"], True
    if op == Op.JL:
        return [f"g[1] = {ft}", f"_next = g[{rs1}]"], True
    if op == Op.JD:
        return [f"_next = {imm}"], (imm == addr)
    if op == Op.JLD:
        return [f"g[1] = {ft}", f"_next = {imm}"], (imm == addr)
    raise AssertionError(f"not a control op: {op}")  # pragma: no cover


def _scan(program, entry):
    """Collect the straight-line run of slot indices starting at entry."""
    idxs = []
    i = entry
    limit = len(program)
    while i < limit and len(idxs) < MAX_BLOCK:
        instr = program[i]
        if instr is None:
            break
        idxs.append(i)
        if instr.op in CONTROL_OPS or instr.op == Op.TRAP:
            break
        i += 1
    return idxs


def _generate(machine, entry, idxs):
    """Generate and compile the block's code object.

    The generated source embeds only quantities derived from the
    executable image and the pipeline parameters -- machine state binds
    later, through default arguments -- so the returned
    ``(code, handler_slots, max_adv)`` triple is shareable by every
    machine running the same image with the same parameters.
    """
    program = machine.program
    width = machine.isa.width_bytes
    base = machine.exe.text_base
    zero_r0 = machine.isa.name == "DLXe"

    lines = []
    handler_slots = []

    words = [(base + idx * width) >> 2 for idx in idxs]
    dwords = [w >> 1 for w in words]
    # Word/doubleword transitions are static inside the block: only the
    # entry boundary needs a runtime comparison (slot 0 below); the
    # cumulative transition counts are folded in as constants.
    wt = [0] * len(idxs)
    dt = [0] * len(idxs)
    for j in range(1, len(idxs)):
        wt[j] = wt[j - 1] + (words[j] != words[j - 1])
        dt[j] = dt[j - 1] + (dwords[j] != dwords[j - 1])

    def spill_line(j, addr):
        ifw_expr = f"ifw + {wt[j]}" if wt[j] else "ifw"
        ifd_expr = f"ifd + {dt[j]}" if dt[j] else "ifd"
        return (f"S[0] = {j + 1}; S[1] = time; S[2] = math_free; "
                f"S[3] = interlocks; S[4] = load_il; S[5] = math_il; "
                f"S[6] = {words[j]}; S[7] = {dwords[j]}; "
                f"S[8] = {ifw_expr}; S[9] = {ifd_expr}; S[10] = {addr}")

    lines.append(f"if cur_word != {words[0]}:")
    lines.append("    ifw += 1")
    lines.append(f"if cur_dword != {dwords[0]}:")
    lines.append("    ifd += 1")

    last_j = len(idxs) - 1
    next_expr_emitted = False
    for j, idx in enumerate(idxs):
        instr = program[idx]
        addr = base + idx * width
        lines += _timing_lines(machine.reads_l[idx], machine.writes_l[idx],
                               machine.mlat[idx], machine.rlat[idx],
                               machine.wkind[idx])
        if instr.op in CONTROL_OPS:
            body, may_self = _control_lines(instr, addr, width)
            lines += body
            if may_self:
                lines.append(f"if _next == {addr}:")
                lines.append("    " + spill_line(j, addr))
                lines.append("    raise NP")
            next_expr_emitted = True
            continue
        handler_name = f"H{j}"
        body, used_handler = _functional_lines(
            instr, addr, width, zero_r0, handler_name)
        if used_handler:
            handler_slots.append((handler_name, idx))
        if body and (instr.op in _RAISING or used_handler
                     or instr.info.kind == OpKind.MATH):
            # Spill-on-raise: free on the happy path (3.11+), exact
            # per-instruction recovery state on the exceptional one.
            lines.append("try:")
            lines += ["    " + line for line in body]
            lines.append("except BaseException:")
            lines.append("    " + spill_line(j, addr))
            lines.append("    raise")
        else:
            lines += body
    if not next_expr_emitted:
        lines.append(f"_next = {base + idxs[-1] * width + width}")

    ifw_ret = f"ifw + {wt[last_j]}" if wt[last_j] else "ifw"
    ifd_ret = f"ifd + {dt[last_j]}" if dt[last_j] else "ifd"
    lines.append(f"return (_next, time, math_free, interlocks, load_il, "
                 f"math_il, {words[last_j]}, {dwords[last_j]}, "
                 f"{ifw_ret}, {ifd_ret})")

    params = ["time", "math_free", "interlocks", "load_il", "math_il",
              "cur_word", "cur_dword", "ifw", "ifd"]
    params += [f"{name}={name}"
               for name in _STD_NAMES + tuple(n for n, _ in handler_slots)]
    src = (f"def _block({', '.join(params)}):\n"
           + "".join(f"    {line}\n" for line in lines))
    code = compile(src, f"<block@{base + entry * width:#x}>", "exec")
    max_adv = len(idxs) * max(1, machine.params.max_result_latency)
    return code, tuple(handler_slots), max_adv


def compile_block(machine, entry):
    """Compile the straight-line run starting at slot ``entry``.

    Returns a :class:`CompiledBlock`, or ``None`` when the entry slot
    is not a decodable instruction (the dispatcher then falls back to
    the stepping path, which raises the exact seed-era error).
    """
    program = machine.program
    if program[entry] is None:
        return None
    idxs = _scan(program, entry)

    # Reuse the image-wide code object unless this machine has patched
    # a slot the block covers (fault injection), in which case the
    # block is generated fresh -- and kept private.
    patched = bool(machine._patched) \
        and not machine._patched.isdisjoint(idxs)
    key = (entry, machine._params_key)
    cached = None if patched else machine._code_cache.get(key)
    if cached is None:
        cached = _generate(machine, entry, idxs)
        if not patched:
            machine._code_cache[key] = cached
    code, handler_slots, max_adv = cached

    from .cpu import MachineError
    mem = machine.mem
    namespace = {
        "g": machine.g, "f": machine.f,
        "ready": machine._ready, "wk": machine._rkind,
        "S": machine._spill, "M": WORD_MASK, "S32": to_s32,
        "RW": mem.read_word, "RH": mem.read_half, "RB": mem.read_byte,
        "WW": mem.write_word, "WH": mem.write_half, "WB": mem.write_byte,
        "FST": machine.fpstat, "TH": machine.traps.handle,
        "TP": machine.traps, "MM": machine, "NP": NoProgress,
        "ME": MachineError, "B2F": _f32_bits_to_float,
        "F2B": _float_to_f32_bits, "B2D": _f64_bits_to_float,
        "D2B": _float_to_f64_bits, "CL": _clamp_s32,
        "abs": abs, "float": float,
    }
    for name, idx in handler_slots:
        namespace[name] = machine.handler_for(idx)
    exec(code, namespace)
    return CompiledBlock(entry, tuple(idxs), namespace["_block"], max_adv)

"""Flat byte-addressed memory for the simulated machine.

Little-endian, with alignment checking: word accesses must be 4-aligned
and halfword accesses 2-aligned (misalignment almost always indicates a
code-generation bug, so it is an error rather than silently rotated).
"""

from __future__ import annotations

from ..asm.objfile import Executable


class MemoryError_(Exception):
    """Out-of-range or misaligned memory access."""


#: Default simulated memory size, shared with the static analyses (an
#: access provably outside [0, DEFAULT_MEM_SIZE) faults at run time).
DEFAULT_MEM_SIZE = 0x0010_0000


class Memory:
    """A fixed-size, zero-initialized byte-addressable memory."""

    def __init__(self, size: int = DEFAULT_MEM_SIZE):
        self.size = size
        self.data = bytearray(size)

    def load_executable(self, exe: Executable) -> None:
        """Copy an executable's segments into memory."""
        for base, segment in exe.segments():
            end = base + len(segment)
            if end > self.size:
                raise MemoryError_(
                    f"segment [{base:#x}, {end:#x}) exceeds memory size "
                    f"{self.size:#x}")
            self.data[base:end] = segment

    # ------------------------------------------------------------- reads

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or addr + size > self.size:
            raise MemoryError_(f"access at {addr:#x} out of range")
        if addr % size:
            raise MemoryError_(f"misaligned {size}-byte access at {addr:#x}")

    # The bounds/alignment test is inlined into every accessor (rather
    # than calling _check) because these run once per simulated load or
    # store -- the call overhead is measurable across a benchmark
    # suite.  _check stays as the single source of the error messages.

    def read_word(self, addr: int) -> int:
        if addr < 0 or addr + 4 > self.size or addr & 3:
            self._check(addr, 4)
        return int.from_bytes(self.data[addr:addr + 4], "little")

    def read_half(self, addr: int, signed: bool = False) -> int:
        if addr < 0 or addr + 2 > self.size or addr & 1:
            self._check(addr, 2)
        value = int.from_bytes(self.data[addr:addr + 2], "little")
        if signed and value & 0x8000:
            return value - 0x1_0000
        return value

    def read_byte(self, addr: int, signed: bool = False) -> int:
        if addr < 0 or addr >= self.size:
            self._check(addr, 1)
        value = self.data[addr]
        if signed and value & 0x80:
            return value - 0x100
        return value

    def read_bytes(self, addr: int, length: int) -> bytes:
        if addr < 0 or addr + length > self.size:
            raise MemoryError_(f"access at {addr:#x} out of range")
        return bytes(self.data[addr:addr + length])

    # ------------------------------------------------------------ writes

    def write_word(self, addr: int, value: int) -> None:
        if addr < 0 or addr + 4 > self.size or addr & 3:
            self._check(addr, 4)
        self.data[addr:addr + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    def write_half(self, addr: int, value: int) -> None:
        if addr < 0 or addr + 2 > self.size or addr & 1:
            self._check(addr, 2)
        self.data[addr:addr + 2] = (value & 0xFFFF).to_bytes(2, "little")

    def write_byte(self, addr: int, value: int) -> None:
        if addr < 0 or addr >= self.size:
            self._check(addr, 1)
        self.data[addr] = value & 0xFF

    def read_cstring(self, addr: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated string (for trap handlers and tests)."""
        out = bytearray()
        while len(out) < limit:
            byte = self.read_byte(addr + len(out))
            if byte == 0:
                break
            out.append(byte)
        return bytes(out)

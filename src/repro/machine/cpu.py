"""The architecture simulator: functional execution + pipeline timing.

:class:`Machine` loads a linked executable (either ISA), pre-decodes its
text segment, and executes it while accounting the paper's performance
quantities in a single pass:

* path length (instruction count),
* delayed-load and math-unit interlock cycles (the rules of
  :class:`repro.machine.pipeline.HazardModel`, implemented inline for
  speed and cross-checked against it in the test suite),
* word- and doubleword-granularity instruction fetch transactions,
  modelling the fetch buffer of a 32- or 64-bit memory port: a new
  transaction is counted whenever execution leaves the currently
  buffered word/doubleword, including after taken control transfers,
* optional instruction/data address traces for the cache simulator.

Each decoded instruction is compiled to a small Python closure that
mutates the architectural state and returns the next PC, which keeps the
interpreter loop tight without sacrificing one-instruction-at-a-time
clarity.
"""

from __future__ import annotations

import os
from array import array

from ..asm.objfile import Executable
from ..isa import DecodingError, Instr, Op, OpKind, get_isa
from ..isa.common import to_s32
from ..isa.refs import ldc_pool_addr
from ..isa.operations import Cond
from .blocks import (HOT_THRESHOLD, CompiledBlock, NoProgress,
                     _clamp_s32, _f32_bits_to_float, _f64_bits_to_float,
                     _float_to_f32_bits, _float_to_f64_bits, compile_block)
from .memory import DEFAULT_MEM_SIZE, Memory, MemoryError_
from .pipeline import PipelineParams, hazard_indices
from .stats import RunStats
from .traps import TrapHandler

WORD_MASK = 0xFFFFFFFF

#: Default watchdog fuel (instructions) for :meth:`Machine.run`.
DEFAULT_FUEL = 2_000_000_000

#: Execution engines: ``blocks`` dispatches fused basic-block closures
#: (see :mod:`repro.machine.blocks`); ``step`` is the seed's
#: one-instruction-at-a-time interpreter, retained as the oracle for
#: equivalence tests and as the path for traced/watchdog-limited runs.
ENGINES = ("blocks", "step")


class MachineError(Exception):
    """Runtime failure of the simulated machine."""


class MachineTimeout(MachineError):
    """Watchdog expiry: the program exceeded its fuel or stopped making
    progress.  Carries enough context (pc, instruction and cycle counts,
    the last trap handled) to diagnose the hang without re-running.
    """

    def __init__(self, reason: str, pc: int = 0, executed: int = 0,
                 cycles: int = 0, last_trap: int | None = None):
        self.reason = reason
        self.pc = pc
        self.executed = executed
        self.cycles = cycles
        self.last_trap = last_trap
        trap = "none" if last_trap is None else str(last_trap)
        super().__init__(
            f"{reason}: pc={pc:#x} after {executed} instructions, "
            f"{cycles} cycles, last trap {trap}")

    def __reduce__(self):  # exceptions cross process-pool boundaries
        return (MachineTimeout, (self.reason, self.pc, self.executed,
                                 self.cycles, self.last_trap))


_INT_CMP = {
    Cond.LT: lambda a, b: to_s32(a) < to_s32(b),
    Cond.LTU: lambda a, b: a < b,
    Cond.LE: lambda a, b: to_s32(a) <= to_s32(b),
    Cond.LEU: lambda a, b: a <= b,
    Cond.EQ: lambda a, b: a == b,
    Cond.NE: lambda a, b: a != b,
    Cond.GT: lambda a, b: to_s32(a) > to_s32(b),
    Cond.GTU: lambda a, b: a > b,
    Cond.GE: lambda a, b: to_s32(a) >= to_s32(b),
    Cond.GEU: lambda a, b: a >= b,
}

_FLOAT_CMP = {
    Cond.LT: lambda a, b: a < b,
    Cond.LTU: lambda a, b: a < b,
    Cond.LE: lambda a, b: a <= b,
    Cond.LEU: lambda a, b: a <= b,
    Cond.EQ: lambda a, b: a == b,
    Cond.NE: lambda a, b: a != b,
    Cond.GT: lambda a, b: a > b,
    Cond.GTU: lambda a, b: a > b,
    Cond.GE: lambda a, b: a >= b,
    Cond.GEU: lambda a, b: a >= b,
}

_INT_ALU = {
    Op.ADD: lambda a, b: (a + b) & WORD_MASK,
    Op.SUB: lambda a, b: (a - b) & WORD_MASK,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHRA: lambda a, b: (to_s32(a) >> (b & 31)) & WORD_MASK,
    Op.SHR: lambda a, b: a >> (b & 31),
    Op.SHL: lambda a, b: (a << (b & 31)) & WORD_MASK,
}

_INT_ALU_IMM = {
    Op.ADDI: Op.ADD, Op.SUBI: Op.SUB, Op.ANDI: Op.AND, Op.ORI: Op.OR,
    Op.XORI: Op.XOR, Op.SHRAI: Op.SHRA, Op.SHRI: Op.SHR, Op.SHLI: Op.SHL,
}

_FP3_SINGLE = {
    Op.ADD_SF: lambda a, b: a + b,
    Op.SUB_SF: lambda a, b: a - b,
    Op.MUL_SF: lambda a, b: a * b,
    Op.DIV_SF: lambda a, b: a / b,
}

_FP3_DOUBLE = {
    Op.ADD_DF: lambda a, b: a + b,
    Op.SUB_DF: lambda a, b: a - b,
    Op.MUL_DF: lambda a, b: a * b,
    Op.DIV_DF: lambda a, b: a / b,
}


class Machine:
    """A loaded program plus architectural state, ready to run."""

    def __init__(self, exe: Executable, *, params: PipelineParams | None = None,
                 stdin: bytes = b"", mem_size: int = DEFAULT_MEM_SIZE,
                 trace_instructions: bool = False, trace_data: bool = False,
                 engine: str | None = None):
        if engine is None:
            engine = os.environ.get("REPRO_SIM_ENGINE", "blocks")
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; "
                             f"expected one of {ENGINES}")
        self.engine = engine
        self.exe = exe
        self.isa = get_isa(exe.isa_name)
        self.params = params or PipelineParams()
        self.mem = Memory(mem_size)
        self.mem.load_executable(exe)
        self.g = [0] * 32
        self.f = [0] * 32
        self.fpstat = [0]
        self.pc = exe.entry
        self.halted = False
        heap_base = (exe.data_base + len(exe.data) + 15) & ~15
        self.traps = TrapHandler(stdin=stdin, heap_base=heap_base,
                                 heap_limit=mem_size - 0x1_0000)
        self.itrace: array | None = array("I") if trace_instructions else None
        self.dtrace: array | None = array("I") if trace_data else None
        # Pipeline scoreboard and cumulative counters persist across
        # run() calls, so execution can pause (``stop_after``) and
        # resume — the fault injector perturbs state in between.
        self._ready = [0] * 65
        self._rkind = [0] * 65         # 0 = alu, 1 = load, 2 = math
        self._st = {"math_free": 0, "time": 0, "interlocks": 0,
                    "load_il": 0, "math_il": 0, "ifw": 0, "ifd": 0,
                    "cur_word": -1, "cur_dword": -1, "executed": 0}
        # Block code objects embed nothing machine-specific, so they
        # live on the executable, shared by every machine running the
        # same image under the same pipeline parameters (the dict-typed
        # params object is fingerprinted into a hashable key).  Slots
        # this machine patches are tracked so their blocks never use
        # (or pollute) the shared cache.
        cache = getattr(exe, "_block_code_cache", None)
        if cache is None:
            cache = exe._block_code_cache = {}
        self._code_cache = cache
        self._params_key = (self.params.load_delay,
                            tuple(sorted(self.params.math_latency.items())))
        self._patched: set[int] = set()
        self._decode_text()

    # -------------------------------------------------------- decoding

    def _decode_text(self) -> None:
        isa = self.isa
        exe = self.exe
        text = exe.text
        width = isa.width_bytes
        count = len(text) // width
        self.handlers: list = [None] * count
        self.counts = [0] * count
        # Block-engine state: lazily compiled blocks keyed by entry slot
        # (False marks an uncompilable entry), the live-block registry
        # for invalidation/count materialization, and the spill scratch
        # a block flushes its in-flight counters into before any
        # operation that can raise.
        self._blocks: list = [None] * count
        self._live: dict[int, object] = {}
        self._spill: list[int] = [0] * 11
        # Decoding depends only on the (immutable) text bytes, and the
        # per-slot hazard/latency tables only on (text, pipeline
        # params), so both are computed once and shared across machines
        # via the executable.  Each machine works on shallow copies:
        # patch_text rewrites the machine's own lists, never the shared
        # originals.
        decoded = getattr(exe, "_decoded_text", None)
        if decoded is None:
            decoded = []
            for idx in range(count):
                try:
                    instr = isa.decode_bytes(text, idx * width)
                except DecodingError:
                    instr = None  # constant-pool data inside text
                decoded.append(instr)
            exe._decoded_text = decoded
        meta_cache = getattr(exe, "_slot_meta_cache", None)
        if meta_cache is None:
            meta_cache = exe._slot_meta_cache = {}
        meta = meta_cache.get(self._params_key)
        if meta is None:
            params = self.params
            reads_l: list[tuple[int, ...]] = [()] * count
            writes_l: list[tuple[int, ...]] = [()] * count
            mlat = [0] * count   # math occupancy (0 = not math)
            rlat = [1] * count   # cycles until results usable
            wkind = [0] * count  # 0 = alu, 1 = load, 2 = math
            for idx, instr in enumerate(decoded):
                if instr is None:
                    continue
                reads_l[idx], writes_l[idx] = hazard_indices(instr)
                info = instr.info
                mlat[idx] = params.occupancy(info)
                rlat[idx] = params.result_latency(info)
                wkind[idx] = (2 if info.kind == OpKind.MATH
                              else 1 if info.kind == OpKind.LOAD else 0)
            meta = (reads_l, writes_l, mlat, rlat, wkind)
            meta_cache[self._params_key] = meta
        self.program: list[Instr | None] = list(decoded)
        self.reads_l = list(meta[0])
        self.writes_l = list(meta[1])
        self.mlat = list(meta[2])
        self.rlat = list(meta[3])
        self.wkind = list(meta[4])

    def _install(self, idx: int, instr: Instr | None) -> None:
        """(Re)build one pre-decoded slot's handler and hazard metadata.

        Any compiled block covering the slot is invalidated (its lazily
        held execution count is materialized first), so a patched slot
        can never execute stale fused code.
        """
        self._invalidate_blocks(idx)
        self.program[idx] = instr
        if instr is None:
            self.handlers[idx] = None
            self.reads_l[idx] = ()
            self.writes_l[idx] = ()
            self.mlat[idx] = 0
            self.rlat[idx] = 1
            self.wkind[idx] = 0
            return
        reads, writes = hazard_indices(instr)
        self.reads_l[idx] = reads
        self.writes_l[idx] = writes
        info = instr.info
        self.mlat[idx] = self.params.occupancy(info)
        self.rlat[idx] = self.params.result_latency(info)
        self.wkind[idx] = (2 if info.kind == OpKind.MATH
                           else 1 if info.kind == OpKind.LOAD else 0)
        # Handler closures are built on first execution (handler_for):
        # most static slots never run, and hot slots end up fused into
        # compiled blocks that bypass the handler entirely.
        self.handlers[idx] = None

    # ------------------------------------------------ block bookkeeping

    def handler_for(self, idx: int):
        """The slot's handler closure, compiled on first use (or None
        for a non-instruction slot)."""
        handler = self.handlers[idx]
        if handler is None:
            instr = self.program[idx]
            if instr is not None:
                handler = self.handlers[idx] = self._compile(instr)
        return handler

    def _invalidate_blocks(self, idx: int) -> None:
        """Drop every compiled block covering slot ``idx``."""
        dead = [blk for blk in self._live.values()
                if blk.entry <= idx < blk.entry + blk.n]
        for blk in dead:
            if blk.count:
                counts = self.counts
                for slot in blk.idxs:
                    counts[slot] += blk.count
                blk.count = 0
            self._blocks[blk.entry] = None
            del self._live[blk.entry]
        # The slot's own entry marker may be stale either way (a False
        # "uncompilable" mark, or vice versa) once the slot is patched.
        self._blocks[idx] = None

    def _materialize_counts(self) -> None:
        """Fold lazily held per-block execution counts into ``counts``."""
        counts = self.counts
        for blk in self._live.values():
            if blk.count:
                for slot in blk.idxs:
                    counts[slot] += blk.count
                blk.count = 0

    def _compile_entry(self, idx: int):
        """Compile (or mark uncompilable) the block entered at ``idx``."""
        blk = compile_block(self, idx)
        if blk is None:
            self._blocks[idx] = False
            return False
        self._blocks[idx] = blk
        self._live[idx] = blk
        return blk

    def _recover_spill(self, blk, executed: int):
        """Rebuild exact per-instruction state after a mid-block raise.

        The compiled block spilled its in-flight counters (and the
        faulting slot's address) right before the raising operation;
        this folds the partially executed slots' counts in and returns
        the updated loop state for the dispatcher to persist.
        """
        spill = self._spill
        done = spill[0]
        counts = self.counts
        for slot in blk.idxs[:done]:
            counts[slot] += 1
        return (executed + done, spill[1], spill[2], spill[3], spill[4],
                spill[5], spill[6], spill[7], spill[8], spill[9],
                spill[10])

    # ------------------------------------------------- fault injection

    def index_of(self, pc: int) -> int:
        """Pre-decoded slot index for an address in the text segment."""
        shift = 1 if self.isa.width_bytes == 2 else 2
        idx = (pc - self.exe.text_base) >> shift
        if idx < 0 or idx >= len(self.program):
            raise MachineError(f"PC {pc:#x} outside text segment")
        return idx

    def patch_text(self, idx: int, raw: bytes) -> Instr | None:
        """Overwrite one text slot with ``raw`` bytes (fault injection).

        Rewrites the machine's *own* copies — the data-memory image and
        the pre-decoded handler tables — never the shared
        :class:`Executable`.  An undecodable word installs an empty slot,
        which raises :class:`MachineError` when execution reaches it
        (the machine "detects" the corrupt fetch).  Returns the decoded
        instruction, or None when the word no longer decodes.
        """
        width = self.isa.width_bytes
        if len(raw) != width:
            raise ValueError(f"expected {width} raw bytes, got {len(raw)}")
        addr = self.exe.text_base + idx * width
        self.mem.data[addr:addr + width] = raw
        try:
            instr = self.isa.decode_bytes(bytes(raw), 0)
        except DecodingError:
            instr = None
        self._patched.add(idx)
        self._install(idx, instr)
        return instr

    def _compile(self, instr: Instr):
        """Build the execution closure for one decoded instruction."""
        op = instr.op
        width = self.isa.width_bytes
        g, f = self.g, self.f
        mem = self.mem
        m = self
        rd, rs1, rs2, imm, cond = (instr.rd, instr.rs1, instr.rs2,
                                   instr.imm, instr.cond)
        zero_r0 = self.isa.name == "DLXe"

        handler = self._compile_inner(instr, width, g, f, mem, m,
                                      rd, rs1, rs2, imm, cond)
        if zero_r0 and rd == 0 and "rd" in instr.info.writes \
                and instr.info.reg_class.get("rd") == "g":
            inner = handler

            def zeroed(pc, _inner=inner):
                next_pc = _inner(pc)
                g[0] = 0
                return next_pc
            return zeroed
        return handler

    def _compile_inner(self, instr, width, g, f, mem, m,
                       rd, rs1, rs2, imm, cond):
        op = instr.op

        # ---- integer ALU -------------------------------------------------
        if op in _INT_ALU:
            fn = _INT_ALU[op]

            def alu(pc):
                g[rd] = fn(g[rs1], g[rs2])
                return pc + width
            return alu
        if op in _INT_ALU_IMM:
            fn = _INT_ALU[_INT_ALU_IMM[op]]
            uimm = imm & WORD_MASK

            def alui(pc):
                g[rd] = fn(g[rs1], uimm)
                return pc + width
            return alui
        if op == Op.NEG:
            def neg(pc):
                g[rd] = (-g[rs1]) & WORD_MASK
                return pc + width
            return neg
        if op == Op.INV:
            def inv(pc):
                g[rd] = g[rs1] ^ WORD_MASK
                return pc + width
            return inv
        if op == Op.MV:
            def mv(pc):
                g[rd] = g[rs1]
                return pc + width
            return mv
        if op == Op.MVI:
            value = imm & WORD_MASK

            def mvi(pc):
                g[rd] = value
                return pc + width
            return mvi
        if op == Op.MVHI:
            value = (imm << 16) & WORD_MASK

            def mvhi(pc):
                g[rd] = value
                return pc + width
            return mvhi
        if op == Op.CMP:
            fn = _INT_CMP[cond]

            def cmp_(pc):
                g[rd] = 1 if fn(g[rs1], g[rs2]) else 0
                return pc + width
            return cmp_
        if op == Op.CMPI:
            fn = _INT_CMP[cond]
            uimm = imm & WORD_MASK

            def cmpi(pc):
                g[rd] = 1 if fn(g[rs1], uimm) else 0
                return pc + width
            return cmpi
        if op == Op.MUL:
            def mul(pc):
                g[rd] = (to_s32(g[rs1]) * to_s32(g[rs2])) & WORD_MASK
                return pc + width
            return mul
        if op in (Op.DIV, Op.REM):
            want_rem = op == Op.REM

            def divrem(pc):
                a, b = to_s32(g[rs1]), to_s32(g[rs2])
                if b == 0:
                    raise MachineError(f"division by zero at pc={pc:#x}")
                q = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    q = -q
                r = a - q * b
                g[rd] = (r if want_rem else q) & WORD_MASK
                return pc + width
            return divrem

        # ---- memory ------------------------------------------------------
        if op in (Op.LD, Op.LDH, Op.LDHU, Op.LDB, Op.LDBU):
            reader = {
                Op.LD: mem.read_word,
                Op.LDH: lambda a: mem.read_half(a, signed=True),
                Op.LDHU: mem.read_half,
                Op.LDB: lambda a: mem.read_byte(a, signed=True),
                Op.LDBU: mem.read_byte,
            }[op]

            def load(pc):
                addr = (g[rs1] + imm) & WORD_MASK
                value = reader(addr)
                if m.dtrace is not None:
                    m.dtrace.append(addr & ~3)
                g[rd] = value & WORD_MASK
                return pc + width
            return load
        if op == Op.LDC:
            def ldc(pc):
                addr = ldc_pool_addr(pc, imm)
                value = mem.read_word(addr)
                if m.dtrace is not None:
                    m.dtrace.append(addr)
                g[rd] = value
                return pc + width
            return ldc
        if op in (Op.ST, Op.STH, Op.STB):
            writer = {Op.ST: mem.write_word, Op.STH: mem.write_half,
                      Op.STB: mem.write_byte}[op]

            def store(pc):
                addr = (g[rs1] + imm) & WORD_MASK
                writer(addr, g[rs2])
                if m.dtrace is not None:
                    m.dtrace.append((addr & ~3) | 1)
                return pc + width
            return store

        # ---- control -----------------------------------------------------
        if op == Op.BR:
            def br(pc):
                return pc + imm
            return br
        if op == Op.BZ:
            def bz(pc):
                return pc + imm if g[rs1] == 0 else pc + width
            return bz
        if op == Op.BNZ:
            def bnz(pc):
                return pc + imm if g[rs1] != 0 else pc + width
            return bnz
        if op == Op.J:
            def jr(pc):
                return g[rs1]
            return jr
        if op == Op.JZ:
            def jz(pc):
                return g[rs1] if g[rs2] == 0 else pc + width
            return jz
        if op == Op.JNZ:
            def jnz(pc):
                return g[rs1] if g[rs2] != 0 else pc + width
            return jnz
        if op == Op.JL:
            def jl(pc):
                g[1] = pc + width
                return g[rs1]
            return jl
        if op == Op.JD:
            def jd(pc):
                return imm
            return jd
        if op == Op.JLD:
            def jld(pc):
                g[1] = pc + width
                return imm
            return jld

        # ---- floating point ----------------------------------------------
        if op in _FP3_SINGLE:
            fn = _FP3_SINGLE[op]

            def fp3s(pc):
                a = _f32_bits_to_float(f[rs1])
                b = _f32_bits_to_float(f[rs2])
                f[rd] = _float_to_f32_bits(fn(a, b))
                return pc + width
            return fp3s
        if op in _FP3_DOUBLE:
            fn = _FP3_DOUBLE[op]

            def fp3d(pc):
                a = _f64_bits_to_float(f[rs1], f[rs1 + 1])
                b = _f64_bits_to_float(f[rs2], f[rs2 + 1])
                lo, hi = _float_to_f64_bits(fn(a, b))
                f[rd], f[rd + 1] = lo, hi
                return pc + width
            return fp3d
        if op == Op.NEG_SF:
            def negs(pc):
                f[rd] = f[rs1] ^ 0x80000000
                return pc + width
            return negs
        if op == Op.NEG_DF:
            def negd(pc):
                f[rd] = f[rs1]
                f[rd + 1] = f[rs1 + 1] ^ 0x80000000
                return pc + width
            return negd
        if op == Op.CMP_SF:
            fn = _FLOAT_CMP[cond]
            fpstat = m.fpstat

            def cmps(pc):
                a = _f32_bits_to_float(f[rs1])
                b = _f32_bits_to_float(f[rs2])
                fpstat[0] = 1 if fn(a, b) else 0
                return pc + width
            return cmps
        if op == Op.CMP_DF:
            fn = _FLOAT_CMP[cond]
            fpstat = m.fpstat

            def cmpd(pc):
                a = _f64_bits_to_float(f[rs1], f[rs1 + 1])
                b = _f64_bits_to_float(f[rs2], f[rs2 + 1])
                fpstat[0] = 1 if fn(a, b) else 0
                return pc + width
            return cmpd
        if op == Op.SI2SF:
            def si2sf(pc):
                f[rd] = _float_to_f32_bits(float(to_s32(f[rs1])))
                return pc + width
            return si2sf
        if op == Op.SI2DF:
            def si2df(pc):
                lo, hi = _float_to_f64_bits(float(to_s32(f[rs1])))
                f[rd], f[rd + 1] = lo, hi
                return pc + width
            return si2df
        if op == Op.SF2SI:
            def sf2si(pc):
                f[rd] = _clamp_s32(_f32_bits_to_float(f[rs1]))
                return pc + width
            return sf2si
        if op == Op.DF2SI:
            def df2si(pc):
                f[rd] = _clamp_s32(_f64_bits_to_float(f[rs1], f[rs1 + 1]))
                return pc + width
            return df2si
        if op == Op.SF2DF:
            def sf2df(pc):
                lo, hi = _float_to_f64_bits(_f32_bits_to_float(f[rs1]))
                f[rd], f[rd + 1] = lo, hi
                return pc + width
            return sf2df
        if op == Op.DF2SF:
            def df2sf(pc):
                f[rd] = _float_to_f32_bits(
                    _f64_bits_to_float(f[rs1], f[rs1 + 1]))
                return pc + width
            return df2sf
        if op == Op.MV_SF:
            def mvsf(pc):
                f[rd] = f[rs1]
                return pc + width
            return mvsf
        if op == Op.MV_DF:
            def mvdf(pc):
                f[rd] = f[rs1]
                f[rd + 1] = f[rs1 + 1]
                return pc + width
            return mvdf
        if op == Op.MVIF:
            def mvif(pc):
                f[rd] = g[rs1]
                return pc + width
            return mvif
        if op == Op.MVFI:
            def mvfi(pc):
                g[rd] = f[rs1]
                return pc + width
            return mvfi

        # ---- special -----------------------------------------------------
        if op == Op.TRAP:
            traps = m.traps

            def trap(pc):
                result = traps.handle(imm, g[2], pc)
                if traps.exited:
                    m.halted = True
                elif result is not None:
                    g[2] = result
                return pc + width
            return trap
        if op == Op.RDSR:
            fpstat = m.fpstat

            def rdsr(pc):
                g[rd] = fpstat[0]
                return pc + width
            return rdsr
        if op == Op.NOP:
            def nop(pc):
                return pc + width
            return nop
        raise MachineError(f"no handler for {op.value}")  # pragma: no cover

    # -------------------------------------------------------- execution

    @property
    def instructions_executed(self) -> int:
        """Instructions retired so far (valid mid-run and after errors)."""
        return self._st["executed"]

    @property
    def cycle_time(self) -> int:
        """Issue-clock position so far (valid mid-run and after errors)."""
        return self._st["time"]

    def run(self, max_instructions: int = DEFAULT_FUEL, *,
            max_cycles: int | None = None,
            stop_after: int | None = None) -> RunStats:
        """Execute until the program exits; returns collected statistics.

        Watchdogs: ``max_instructions`` and ``max_cycles`` bound the
        *cumulative* execution and raise :class:`MachineTimeout` (with
        pc/cycle context) when exceeded; a control transfer to its own
        address is detected immediately as a no-progress loop.

        ``stop_after`` pauses execution once the cumulative retired
        instruction count reaches it, returning a snapshot of the
        statistics with the machine still live — calling :meth:`run`
        again resumes exactly where it stopped (the pipeline scoreboard
        persists).  This is the fault injector's hook.
        """
        base = self.exe.text_base
        shift = 1 if self.isa.width_bytes == 2 else 2
        handlers = self.handlers
        counts = self.counts
        reads_l = self.reads_l
        writes_l = self.writes_l
        mlat = self.mlat
        rlat = self.rlat
        wk = self.wkind
        limit = len(handlers)
        itrace = self.itrace

        st = self._st
        ready = self._ready
        wkind = self._rkind
        math_free = st["math_free"]
        time = st["time"]
        interlocks = st["interlocks"]
        load_il = st["load_il"]
        math_il = st["math_il"]
        ifw = st["ifw"]
        ifd = st["ifd"]
        cur_word = st["cur_word"]
        cur_dword = st["cur_dword"]
        executed = st["executed"]
        stop_at = executed + (1 << 62) if stop_after is None else stop_after
        cycle_limit = (1 << 62) if max_cycles is None else max_cycles
        pc = self.pc

        blocks = self._blocks
        spill = self._spill
        width = self.isa.width_bytes
        wmask = width - 1
        CB = CompiledBlock
        code_cache = self._code_cache
        pkey = self._params_key
        # The block engine requires exact slot alignment (compiled
        # blocks bake the pc in) and no tracing; anything else -- and
        # the last instructions before a fuel/cycle/stop boundary --
        # falls through to the per-instruction stepping path below,
        # which is byte-for-byte the seed interpreter.
        fast = (self.engine == "blocks" and itrace is None
                and self.dtrace is None)
        # Block entries are only ever control-transfer targets (plus
        # the entry/resume pc): while stepping through a cold run, the
        # fall-through slots are this block's interior, not entries of
        # their own, so the dispatcher consults the block table only
        # after a transfer.  ``blocks[idx]`` holds None (never seen),
        # False (uncompilable), a warm-up counter, or the CompiledBlock.
        transfer = True

        try:
            while not self.halted and executed < stop_at:
                idx = (pc - base) >> shift
                if idx < 0 or idx >= limit:
                    raise MachineError(f"PC {pc:#x} outside text segment")
                if fast and transfer and not (pc - base) & wmask:
                    blk = blocks[idx]
                    if blk.__class__ is not CB:
                        if blk is None:
                            # First touch: compile at once when another
                            # machine already generated this block's
                            # code, otherwise start the warm-up count.
                            if (idx, pkey) in code_cache:
                                blk = self._compile_entry(idx)
                            else:
                                blocks[idx] = 1
                                blk = False
                        elif blk is not False:
                            if blk >= HOT_THRESHOLD:
                                blk = self._compile_entry(idx)
                            else:
                                blocks[idx] = blk + 1
                                blk = False
                    if blk is not False \
                            and executed + blk.n <= stop_at \
                            and executed + blk.n <= max_instructions \
                            and time + blk.max_adv <= cycle_limit:
                        spill[0] = -1
                        try:
                            (pc, time, math_free, interlocks, load_il,
                             math_il, cur_word, cur_dword, ifw, ifd) = \
                                blk.fn(time, math_free, interlocks,
                                       load_il, math_il, cur_word,
                                       cur_dword, ifw, ifd)
                        except NoProgress:
                            (executed, time, math_free, interlocks,
                             load_il, math_il, cur_word, cur_dword,
                             ifw, ifd, pc) = \
                                self._recover_spill(blk, executed)
                            raise MachineTimeout(
                                "no-progress loop (instruction branches "
                                "to itself)", pc, executed, time,
                                self.traps.last_trap) from None
                        except (MemoryError_, MachineError) as exc:
                            if spill[0] < 0:
                                raise
                            (executed, time, math_free, interlocks,
                             load_il, math_il, cur_word, cur_dword,
                             ifw, ifd, pc) = \
                                self._recover_spill(blk, executed)
                            raise MachineError(
                                f"at pc={pc:#x}: {exc}") from exc
                        except BaseException:
                            if spill[0] >= 0:
                                (executed, time, math_free, interlocks,
                                 load_il, math_il, cur_word, cur_dword,
                                 ifw, ifd, pc) = \
                                    self._recover_spill(blk, executed)
                            raise
                        blk.count += 1
                        executed += blk.n
                        continue
                handler = handlers[idx]
                if handler is None:
                    handler = self.handler_for(idx)
                    if handler is None:
                        raise MachineError(
                            f"executed non-instruction at {pc:#x}")
                counts[idx] += 1
                executed += 1
                if executed > max_instructions:
                    raise MachineTimeout(
                        f"exceeded instruction limit {max_instructions}",
                        pc, executed, time, self.traps.last_trap)
                if itrace is not None:
                    itrace.append(pc)

                block = pc >> 2
                if block != cur_word:
                    ifw += 1
                    cur_word = block
                block >>= 1
                if block != cur_dword:
                    ifd += 1
                    cur_dword = block

                issue_at = time + 1
                need = issue_at
                for index in reads_l[idx]:
                    if ready[index] > need:
                        need = ready[index]
                latency = mlat[idx]
                math_blocked = False
                if latency and math_free > need:
                    need = math_free
                    math_blocked = True
                if need != issue_at:
                    stall = need - issue_at
                    interlocks += stall
                    if math_blocked or any(
                            ready[index] == need and wkind[index] == 2
                            for index in reads_l[idx]):
                        math_il += stall
                    else:
                        load_il += stall
                time = need
                if time > cycle_limit:
                    raise MachineTimeout(
                        f"exceeded cycle limit {max_cycles}",
                        pc, executed, time, self.traps.last_trap)
                if latency:
                    math_free = time + latency
                result_at = time + rlat[idx]
                kind = wk[idx]
                for index in writes_l[idx]:
                    ready[index] = result_at
                    wkind[index] = kind

                try:
                    new_pc = handler(pc)
                except (MemoryError_, MachineError) as exc:
                    raise MachineError(f"at pc={pc:#x}: {exc}") from exc
                if new_pc == pc:
                    # A control transfer to its own address can never
                    # terminate: no other instruction runs in between,
                    # so the machine state feeding it cannot change.
                    raise MachineTimeout(
                        "no-progress loop (instruction branches to "
                        "itself)", pc, executed, time,
                        self.traps.last_trap)
                transfer = new_pc != pc + width
                pc = new_pc
        finally:
            # Persist state even on errors, so watchdog handlers and the
            # fault classifier can read pc/executed/cycles afterwards.
            # Lazily held per-block execution counts are folded into the
            # per-slot vector so stats are exact on every exit path.
            self._materialize_counts()
            self.pc = pc
            st.update(math_free=math_free, time=time,
                      interlocks=interlocks, load_il=load_il,
                      math_il=math_il, ifw=ifw, ifd=ifd,
                      cur_word=cur_word, cur_dword=cur_dword,
                      executed=executed)
        return self._stats(executed, interlocks, load_il, math_il, ifw, ifd)

    def _stats(self, executed, interlocks, load_il, math_il, ifw, ifd):
        loads = stores = 0
        for instr, count in zip(self.program, self.counts):
            if instr is None or count == 0:
                continue
            kind = instr.info.kind
            if kind == OpKind.LOAD:
                loads += count
            elif kind == OpKind.STORE:
                stores += count
        return RunStats(
            instructions=executed, loads=loads, stores=stores,
            interlocks=interlocks, load_interlocks=load_il,
            math_interlocks=math_il, ifetch_words=ifw, ifetch_dwords=ifd,
            exit_code=self.traps.exit_code, output=self.traps.output_text,
            exec_counts=self.counts, program=self.program)


def run_executable(exe: Executable, *, stdin: bytes = b"",
                   params: PipelineParams | None = None,
                   trace_instructions: bool = False,
                   trace_data: bool = False,
                   max_instructions: int = DEFAULT_FUEL,
                   max_cycles: int | None = None,
                   engine: str | None = None,
                   ) -> tuple[RunStats, Machine]:
    """Load and run an executable; returns (stats, machine)."""
    machine = Machine(exe, params=params, stdin=stdin,
                      trace_instructions=trace_instructions,
                      trace_data=trace_data, engine=engine)
    stats = machine.run(max_instructions=max_instructions,
                        max_cycles=max_cycles)
    return stats, machine

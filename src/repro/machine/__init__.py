"""Machine simulation: memory, traps, pipeline timing, CPU, performance."""

from .cpu import (DEFAULT_FUEL, Machine, MachineError, MachineTimeout,
                  run_executable)
from .memory import Memory, MemoryError_
from .perf import (cpi, cycles_no_cache, cycles_with_cache,
                   fetches_per_cycle, normalized_cpi)
from .pipeline import FP_STATUS_REG, HazardModel, PipelineParams
from .stats import RunStats
from .traps import (TRAP_EXIT, TRAP_GETC, TRAP_PUTC, TRAP_SBRK, TrapError,
                    TrapHandler)

__all__ = [
    "DEFAULT_FUEL", "FP_STATUS_REG", "HazardModel", "Machine",
    "MachineError", "MachineTimeout", "Memory",
    "MemoryError_", "PipelineParams", "RunStats", "TRAP_EXIT", "TRAP_GETC",
    "TRAP_PUTC", "TRAP_SBRK", "TrapError", "TrapHandler", "cpi",
    "cycles_no_cache", "cycles_with_cache", "fetches_per_cycle",
    "normalized_cpi", "run_executable",
]

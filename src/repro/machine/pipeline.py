"""Pipeline timing parameters and the reference hazard model.

Both instruction sets execute on the same five-stage pipeline (paper
Figure 3): IF, D, EX, MEM, WB, issuing at most one instruction per cycle.
The paper's performance model charges, on top of one cycle per
instruction:

* **delayed-load interlocks** — a load's value is available one cycle
  late; a consumer in the very next issue slot stalls one cycle;
* **math-unit interlocks** — integer multiply/divide and all FP operations
  execute in a multi-cycle, non-pipelined math unit; consumers of the
  result (and subsequent math-unit ops) stall until it completes;
* **memory latency** — charged separately per fetch/data transaction via
  the formulas in :mod:`repro.machine.perf`.

Control transfers are charged through the instruction-fetch stream (the
redirect discards buffered instructions, raising traffic), matching how
the paper accounts for them.

:class:`HazardModel` is the *reference* implementation of the interlock
rules, processing one retired instruction at a time.  The fast executor
in :mod:`repro.machine.cpu` implements the identical rules inline; tests
cross-check the two on real programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import Instr, OpInfo, OpKind

#: Pseudo-register index for the FP status word (set by cmp.sf/cmp.df,
#: read by rdsr) in the 0..63 general/FP register ready-time vector.
FP_STATUS_REG = 64


@dataclass(frozen=True)
class PipelineModel:
    """The introspectable latency table of the execution pipeline.

    One source of truth for every timing rule: the reference
    :class:`HazardModel`, the inlined fast path in
    :mod:`repro.machine.cpu`, and the static cycle-bound analyzer in
    :mod:`repro.analysis.timing` all read their numbers from here, so a
    latency change propagates to simulator and analyzer together.

    ``result_latency`` is the number of cycles after issue until an
    instruction's written registers become usable (1 for single-cycle
    ALU results, ``1 + load_delay`` for loads, the math-class latency
    for math-unit ops).  ``occupancy`` is how long the non-pipelined
    math unit stays busy (0 for everything else).
    """

    load_delay: int = 1
    math_latency: dict[str, int] = field(default_factory=lambda: {
        "imul": 3,
        "idiv": 12,
        "fadd": 2,
        "fmul": 4,
        "fdiv": 12,
        "fcvt": 2,
        "fcmp": 2,
        "fmove": 1,
    })

    def latency_of(self, math_class: str) -> int:
        return self.math_latency[math_class]

    def result_latency(self, info: OpInfo) -> int:
        """Cycles after issue until ``info``'s results are usable."""
        if info.kind == OpKind.MATH:
            return self.math_latency[info.math_class]
        if info.kind == OpKind.LOAD:
            return 1 + self.load_delay
        return 1

    def occupancy(self, info: OpInfo) -> int:
        """Cycles the (non-pipelined) math unit is held by ``info``."""
        if info.kind == OpKind.MATH:
            return self.math_latency[info.math_class]
        return 0

    @property
    def max_result_latency(self) -> int:
        """The largest result latency any instruction can have.

        At any instruction boundary no register can be more than this
        many cycles away from ready, and the math unit no more than
        this many cycles from free — the bound the static timing
        analyzer uses for its worst-case block-entry state.
        """
        return max(max(self.math_latency.values()), 1 + self.load_delay)


#: Historical name, kept as an alias: the "params" objects threaded
#: through Lab / labcache / Machine are exactly the pipeline model.
PipelineParams = PipelineModel


def hazard_indices(instr: Instr) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Map an instruction's reads/writes to ready-vector indices.

    General register i -> i, FP register i -> 32 + i, FP status -> 64.
    DLXe's r0 is excluded on the read side only when it can never stall
    (it is hardwired); we keep it — a write to r0 never happens on DLXe
    and on D16 r0 is a real register, so including it is correct for both.
    """
    reads = tuple((32 + idx if cls == "f" else idx)
                  for cls, idx in instr.reads())
    writes = tuple((32 + idx if cls == "f" else idx)
                   for cls, idx in instr.writes())
    if instr.info.sets_fp_status:
        writes = writes + (FP_STATUS_REG,)
    if instr.op.value == "rdsr":
        reads = reads + (FP_STATUS_REG,)
    return reads, writes


class HazardModel:
    """Reference interlock model: feed retired instructions in order."""

    def __init__(self, params: PipelineModel | None = None):
        self.params = params or PipelineModel()
        self.ready = [0] * 65          # earliest cycle each value is usable
        self.writer = ["alu"] * 65     # kind of the last writer per register
        self.math_free = 0             # cycle the math unit becomes free
        self.time = 0                  # issue cycle of the last instruction
        self.interlocks = 0
        self.load_interlocks = 0
        self.math_interlocks = 0

    def issue(self, instr: Instr) -> int:
        """Account for one retired instruction; returns its stall cycles."""
        reads, writes = hazard_indices(instr)
        info = instr.info
        issue_at = self.time + 1
        need = issue_at
        math_blocked = False
        for index in reads:
            if self.ready[index] > need:
                need = self.ready[index]
        is_math = info.kind == OpKind.MATH
        if is_math and self.math_free > need:
            need = self.math_free
            math_blocked = True
        stall = need - issue_at
        self.time = need
        if stall:
            self.interlocks += stall
            # Attribute the stall to whichever resource released last.
            result_math = any(self.ready[i] == need
                              and self.writer[i] == "math" for i in reads)
            if math_blocked or result_math:
                self.math_interlocks += stall
            else:
                self.load_interlocks += stall
        if is_math:
            self.math_free = self.time + self.params.occupancy(info)
        kind = ("math" if is_math
                else "load" if info.kind == OpKind.LOAD else "alu")
        result_at = self.time + self.params.result_latency(info)
        for index in writes:
            self.ready[index] = result_at
            self.writer[index] = kind
        return stall

"""Execution statistics gathered by the simulator.

These are exactly the quantities the paper's appendix tabulates: path
length (IC), loads and stores (Table 9), delayed-load and math-unit
interlocks (Table 10), and word/doubleword instruction-fetch transactions
(Table 8 and the wait-state models).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import Instr, Op, OpKind


@dataclass
class RunStats:
    """Result of one simulated program run."""

    instructions: int = 0          # IC: total path length
    loads: int = 0                 # data reads (incl. D16 ldc pool loads)
    stores: int = 0
    interlocks: int = 0            # total stall cycles
    load_interlocks: int = 0
    math_interlocks: int = 0
    ifetch_words: int = 0          # 32-bit-bus fetch transactions
    ifetch_dwords: int = 0         # 64-bit-bus fetch transactions
    exit_code: int = 0
    output: str = ""
    exec_counts: list[int] = field(default_factory=list, repr=False)
    program: list[Instr | None] = field(default_factory=list, repr=False)

    @property
    def mem_ops(self) -> int:
        """Total loads + stores (the paper's MemOps)."""
        return self.loads + self.stores

    @property
    def interlock_rate(self) -> float:
        """Interlocks per instruction (paper Table 10's Rate column)."""
        return self.interlocks / self.instructions if self.instructions else 0.0

    def dynamic_op_counts(self) -> dict[Op, int]:
        """Dynamic execution count per operation."""
        counts: dict[Op, int] = {}
        for instr, count in zip(self.program, self.exec_counts):
            if instr is None or count == 0:
                continue
            counts[instr.op] = counts.get(instr.op, 0) + count
        return counts

    def dynamic_kind_counts(self) -> dict[OpKind, int]:
        """Dynamic execution count per operation kind."""
        counts: dict[OpKind, int] = {}
        for instr, count in zip(self.program, self.exec_counts):
            if instr is None or count == 0:
                continue
            kind = instr.info.kind
            counts[kind] = counts.get(kind, 0) + count
        return counts

    def executed_instructions(self):
        """Yield ``(instr, dynamic_count)`` for every executed static site."""
        for instr, count in zip(self.program, self.exec_counts):
            if instr is not None and count:
                yield instr, count

"""Trap (system-call) interface between simulated programs and the host.

The paper's ISAs include a ``trap`` instruction; we define a minimal
vector sufficient for the benchmark suite's I/O and memory needs:

====  =========  ==========================================
code  name       behaviour
====  =========  ==========================================
0     EXIT       halt; exit status in r2 (masked to a byte)
1     PUTC       write the low byte of r2 to stdout
2     GETC       read one byte from stdin into r2 (-1 = EOF)
3     SBRK       grow the heap by r2 bytes; old break in r2
====  =========  ==========================================

The handler is deliberately fail-soft: GETC at EOF keeps returning -1
forever, SBRK past the heap limit returns -1 without moving the break,
and SBRK with a negative argument can shrink the heap but never move
the break below ``heap_base`` (a corrupted argument must not hand the
program the data segment as "heap").  Only an *undefined* trap code is
an error — :class:`TrapError` with the offending code and pc — because
it indicates a corrupt or miscompiled image, not a program decision.
"""

from __future__ import annotations

TRAP_EXIT = 0
TRAP_PUTC = 1
TRAP_GETC = 2
TRAP_SBRK = 3

#: Codes with defined semantics (everything else raises TrapError).
KNOWN_TRAPS = (TRAP_EXIT, TRAP_PUTC, TRAP_GETC, TRAP_SBRK)


class TrapError(Exception):
    """Raised for undefined trap codes."""

    def __init__(self, code: int, pc: int | None = None):
        self.code = code
        self.pc = pc
        where = f" at pc={pc:#x}" if pc is not None else ""
        super().__init__(f"undefined trap code {code}{where}")

    def __reduce__(self):
        return (TrapError, (self.code, self.pc))


class TrapHandler:
    """Host-side implementation of the trap vector."""

    def __init__(self, *, stdin: bytes = b"", heap_base: int = 0,
                 heap_limit: int = 0):
        self.stdout = bytearray()
        self.stdin = stdin
        self.stdin_pos = 0
        self.heap_base = heap_base
        self.brk = heap_base
        self.heap_limit = heap_limit
        self.exited = False
        self.exit_code = 0
        #: Last trap code handled (watchdog/timeout diagnostics).
        self.last_trap: int | None = None

    def handle(self, code: int, arg: int, pc: int | None = None,
               ) -> int | None:
        """Execute trap ``code``; returns the new r2 value or None.

        ``pc`` is the address of the trap instruction, used only to
        make :class:`TrapError` messages actionable.
        """
        self.last_trap = code
        if code == TRAP_EXIT:
            self.exited = True
            self.exit_code = arg & 0xFF
            return None
        if code == TRAP_PUTC:
            self.stdout.append(arg & 0xFF)
            return None
        if code == TRAP_GETC:
            if self.stdin_pos >= len(self.stdin):
                return 0xFFFFFFFF  # -1: EOF (repeatable)
            byte = self.stdin[self.stdin_pos]
            self.stdin_pos += 1
            return byte
        if code == TRAP_SBRK:
            old = self.brk
            if arg >= 0x8000_0000:        # raw 32-bit register value
                arg -= 0x1_0000_0000      # interpret as signed (shrink)
            new = old + arg
            if new < self.heap_base:
                new = self.heap_base  # clamp: never release below the heap
            if self.heap_limit and new > self.heap_limit:
                return 0xFFFFFFFF  # -1: out of memory
            self.brk = new
            return old
        raise TrapError(code, pc)

    @property
    def output_text(self) -> str:
        return self.stdout.decode("latin-1")

"""Trap (system-call) interface between simulated programs and the host.

The paper's ISAs include a ``trap`` instruction; we define a minimal
vector sufficient for the benchmark suite's I/O and memory needs:

====  =========  ==========================================
code  name       behaviour
====  =========  ==========================================
0     EXIT       halt; exit status in r2
1     PUTC       write the low byte of r2 to stdout
2     GETC       read one byte from stdin into r2 (-1 = EOF)
3     SBRK       grow the heap by r2 bytes; old break in r2
====  =========  ==========================================
"""

from __future__ import annotations

TRAP_EXIT = 0
TRAP_PUTC = 1
TRAP_GETC = 2
TRAP_SBRK = 3


class TrapError(Exception):
    """Raised for undefined trap codes."""


class TrapHandler:
    """Host-side implementation of the trap vector."""

    def __init__(self, *, stdin: bytes = b"", heap_base: int = 0,
                 heap_limit: int = 0):
        self.stdout = bytearray()
        self.stdin = stdin
        self.stdin_pos = 0
        self.brk = heap_base
        self.heap_limit = heap_limit
        self.exited = False
        self.exit_code = 0

    def handle(self, code: int, arg: int) -> int | None:
        """Execute trap ``code``; returns the new r2 value or None."""
        if code == TRAP_EXIT:
            self.exited = True
            self.exit_code = arg & 0xFF
            return None
        if code == TRAP_PUTC:
            self.stdout.append(arg & 0xFF)
            return None
        if code == TRAP_GETC:
            if self.stdin_pos >= len(self.stdin):
                return 0xFFFFFFFF  # -1: EOF
            byte = self.stdin[self.stdin_pos]
            self.stdin_pos += 1
            return byte
        if code == TRAP_SBRK:
            old = self.brk
            new = old + arg
            if self.heap_limit and new > self.heap_limit:
                return 0xFFFFFFFF  # -1: out of memory
            self.brk = new
            return old
        raise TrapError(f"undefined trap code {code}")

    @property
    def output_text(self) -> str:
        return self.stdout.decode("latin-1")

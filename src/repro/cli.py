"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile``  — minic source to assembly listing
* ``run``      — compile and execute, with optional statistics
* ``disasm``   — compile and disassemble the linked image
* ``lint``     — static analysis of a program or the benchmark suite
* ``bench``    — run benchmark programs on several targets, one table
* ``faults``   — seeded fault-injection campaign over the suite
* ``targets``  — list compiler configurations
* ``cache``    — inspect or clear the persistent artifact cache
"""

from __future__ import annotations

import argparse
import sys

from .bench import SUITE, get_benchmark
from .cc import TARGETS, build_executable, compile_to_assembly
from .machine import (DEFAULT_FUEL, MachineTimeout, cycles_no_cache,
                      run_executable)

#: ``repro run`` exit code when a watchdog stops the program
#: (mirrors coreutils ``timeout``).
EXIT_TIMEOUT = 124


def _add_target(parser, default="d16"):
    parser.add_argument("-t", "--target", default=default,
                        choices=sorted(TARGETS),
                        help="compiler configuration (default %(default)s)")


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def cmd_compile(args) -> int:
    assembly = compile_to_assembly(_read_source(args.file), args.target,
                                   include_runtime=not args.no_runtime,
                                   opt_level=args.opt,
                                   verify_ir=args.verify_ir)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(assembly)
    else:
        print(assembly, end="")
    return 0


def cmd_run(args) -> int:
    result = build_executable(_read_source(args.file), args.target,
                              include_runtime=not args.no_runtime,
                              opt_level=args.opt,
                              verify_ir=args.verify_ir)
    stdin = b""
    if args.stdin:
        with open(args.stdin, "rb") as handle:
            stdin = handle.read()
    try:
        stats, _machine = run_executable(
            result.executable, stdin=stdin,
            max_instructions=args.max_instructions,
            max_cycles=args.max_cycles)
    except MachineTimeout as exc:
        trap = "none" if exc.last_trap is None else str(exc.last_trap)
        print(f"run: watchdog stopped the program: {exc.reason}\n"
              f"run:   pc={exc.pc:#x}  instructions={exc.executed}  "
              f"cycles={exc.cycles}  last trap={trap}\n"
              f"run: raise --max-instructions/--max-cycles if the "
              f"program legitimately needs more", file=sys.stderr)
        return EXIT_TIMEOUT
    sys.stdout.write(stats.output)
    if args.stats:
        print(f"\n--- {args.target} statistics ---", file=sys.stderr)
        print(f"binary size : {result.binary_size} bytes "
              f"(text {result.executable.text_size})", file=sys.stderr)
        print(f"path length : {stats.instructions}", file=sys.stderr)
        print(f"loads/stores: {stats.loads}/{stats.stores}",
              file=sys.stderr)
        print(f"interlocks  : {stats.interlocks} "
              f"(load {stats.load_interlocks}, "
              f"math {stats.math_interlocks})", file=sys.stderr)
        print(f"fetch words : {stats.ifetch_words}", file=sys.stderr)
        for wait_states in (0, 1, 2, 3):
            cycles = cycles_no_cache(stats, latency=wait_states)
            print(f"cycles @ {wait_states} ws: {cycles} "
                  f"(CPI {cycles / stats.instructions:.2f})",
                  file=sys.stderr)
    return stats.exit_code


def cmd_disasm(args) -> int:
    from .asm import format_listing

    result = build_executable(_read_source(args.file), args.target,
                              include_runtime=not args.no_runtime,
                              opt_level=args.opt)
    print(format_listing(result.executable, count=args.count))
    return 0


def cmd_lint(args) -> int:
    from .analysis import EXIT_INTERNAL

    try:
        return _lint(args)
    except Exception as exc:  # noqa: BLE001 - exit-code contract
        print(f"lint: internal failure: {exc}", file=sys.stderr)
        return EXIT_INTERNAL


def _lint(args) -> int:
    from .analysis import (LintReport, exit_code, lint_program,
                           render_json, render_text, summarize)

    import os

    # ``repro lint prog.mc`` lints a source file; a bare word that is
    # not a file is a benchmark name (suite mode).
    file, names = args.file, list(args.names)
    if file and file != "-" and not os.path.exists(file):
        names.insert(0, file)
        file = None
    if args.all:
        # One pass over every analysis mode; the combined report keeps
        # the shared exit-code contract (any error finding -> 1).
        args.timing = args.wcet = args.icache = True
        args.density = args.tv = args.vuln = True
    timing_validations = None
    wcet_validations = None
    densities = None
    icache_results = None
    tv_results = None
    vuln_results = None
    icache_sizes = None
    if args.icache_sizes:
        icache_sizes = tuple(int(s) for s in
                             args.icache_sizes.split(","))
    if args.wcet:
        from .analysis import DEFAULT_SLACK

        # --wcet-slack 0 disables TIM005; unset means the default factor.
        args.wcet_slack = DEFAULT_SLACK if args.wcet_slack is None \
            else (args.wcet_slack or None)
    mode_reports: dict[str, list[LintReport]] = {}

    def track(mode, new_reports):
        mode_reports.setdefault(mode, []).extend(new_reports)
        return new_reports

    if file:
        source = _read_source(file)
        reports = []
        findings = lint_program(source, args.target, opt_level=args.opt,
                                include_runtime=not args.no_runtime)
        reports.extend(track("lint", [LintReport(
            program=file, target=args.target, findings=findings)]))
        if args.timing:
            from .analysis import timing_program

            validation = timing_program(
                source, args.target, opt_level=args.opt,
                include_runtime=not args.no_runtime)
            timing_validations = {(file, args.target): validation}
            reports.extend(track("timing", [LintReport(
                program=file, target=args.target,
                findings=validation.findings)]))
        if args.wcet:
            from .analysis import wcet_program

            validation = wcet_program(
                source, args.target, opt_level=args.opt,
                include_runtime=not args.no_runtime,
                slack=args.wcet_slack)
            wcet_validations = {(file, args.target): validation}
            reports.extend(track("wcet", [LintReport(
                program=file, target=args.target,
                findings=validation.findings)]))
        if args.density:
            from .analysis import analyze_density, resolve_cfg
            from .cc import get_target

            built = build_executable(source, args.target,
                                     include_runtime=not args.no_runtime,
                                     opt_level=args.opt)
            cfg, _result = resolve_cfg(built.executable,
                                       get_target(args.target).isa)
            density = analyze_density(cfg)
            densities = {(file, args.target): density}
            reports.extend(track("density", [LintReport(
                program=file, target=args.target,
                findings=density.findings)]))
        if args.icache:
            from .analysis import icache_program

            cell = icache_program(
                source, args.target, opt_level=args.opt,
                include_runtime=not args.no_runtime,
                sizes=icache_sizes, penalty=args.icache_penalty)
            icache_results = {(file, args.target): cell}
            cell_findings = []
            seen = set()
            for analysis, validation in cell:
                for f in analysis.findings + validation.findings:
                    key = (f.rule, f.location, f.message)
                    if key not in seen:
                        seen.add(key)
                        cell_findings.append(f)
            reports.extend(track("icache", [LintReport(
                program=file, target=args.target,
                findings=cell_findings)]))
        if args.vuln:
            from .analysis import vuln_program

            cell, waived, cell_findings = vuln_program(
                source, args.target, opt_level=args.opt,
                include_runtime=not args.no_runtime,
                faults=args.vuln_faults, seed=args.vuln_seed,
                name=file)
            vuln_results = {(file, args.target): (cell, waived)}
            reports.extend(track("vuln", [LintReport(
                program=file, target=args.target,
                findings=cell_findings)]))
        if args.cross_isa:
            from .analysis import check_cross_isa

            xisa = check_cross_isa(source, opt_level=args.opt,
                                   include_runtime=not args.no_runtime)
            reports.extend(track("cross-isa", [LintReport(
                program=file, target="+".join(xisa.targets),
                findings=xisa.findings)]))
        if args.tv:
            from .analysis import tv_program

            tv = tv_program(source, file, targets=(args.target,),
                            opt_level=args.opt,
                            include_runtime=not args.no_runtime)
            tv_results = {file: tv}
            reports.extend(track("tv", [LintReport(
                program=file, target=args.target,
                findings=tv.findings)]))
    else:
        from .analysis import (cross_isa_suite, density_suite,
                               icache_suite, lint_suite, timing_suite,
                               tv_suite, wcet_suite)

        targets = args.targets.split(",")
        reports = track("lint", lint_suite(targets, names or None,
                                           opt_level=args.opt))[:]
        if args.timing:
            timing_reports, timing_validations = timing_suite(
                targets, names or None)
            reports.extend(track("timing", timing_reports))
        if args.wcet:
            wcet_reports, wcet_validations = wcet_suite(
                targets, names or None, slack=args.wcet_slack)
            reports.extend(track("wcet", wcet_reports))
        if args.icache:
            icache_reports, icache_results = icache_suite(
                targets, names or None, sizes=icache_sizes,
                penalty=args.icache_penalty)
            reports.extend(track("icache", icache_reports))
        if args.density:
            density_target = "dlxe" if "dlxe" in targets else targets[0]
            density_reports, suite_densities = density_suite(
                names or None, target=density_target)
            densities = {(prog, density_target): d
                         for prog, d in suite_densities.items()}
            reports.extend(track("density", density_reports))
        if args.cross_isa:
            if len(targets) != 2:
                raise ValueError(
                    f"--cross-isa compares exactly two targets, "
                    f"got {targets}")
            reports.extend(track("cross-isa", cross_isa_suite(
                names or None, targets=(targets[0], targets[1]),
                opt_level=args.opt)))
        if args.vuln:
            from .analysis import vuln_suite

            vuln_reports, vuln_results = vuln_suite(
                targets, names or None, faults=args.vuln_faults,
                seed=args.vuln_seed)
            reports.extend(track("vuln", vuln_reports))
        if args.tv:
            tv_reports, tv_results = tv_suite(
                names or None, targets=tuple(targets),
                opt_level=args.opt)
            reports.extend(track("tv", tv_reports))

    all_findings = [f for r in reports for f in r.findings]
    if args.json:
        extra = {}
        if wcet_validations:
            extra["bounds"] = [
                {"program": prog, "target": tname,
                 "observed_cycles": wv.observed_cycles,
                 "bcet": wv.bcet, "wcet": wv.wcet,
                 "loops_bounded": wv.program.bounded_loops,
                 "loops_total": wv.program.n_loops,
                 "functions": wv.program.function_records()}
                for (prog, tname), wv in sorted(wcet_validations.items())]
        if icache_results:
            extra["icache"] = [
                dict(program=prog, target=tname, **v.to_record())
                for (prog, tname), cell in sorted(icache_results.items())
                for _a, v in cell]
        if densities:
            extra["density"] = [
                {"program": prog, "target": tname,
                 "dlxe_bytes": d.dlxe_bytes,
                 "est_d16_bytes": d.est_d16_bytes,
                 "fused_pairs": d.fused_pairs,
                 "ratio": round(d.ratio, 4),
                 "functions": d.function_records()}
                for (prog, tname), d in sorted(densities.items())]
        if vuln_results:
            extra["vuln"] = [
                dict(cell.to_dict(),
                     waived=[{"location": where, "justification": why}
                             for where, why in waived])
                for (_prog, _tname), (cell, waived)
                in sorted(vuln_results.items())]
        if tv_results:
            extra["tv"] = [
                {"program": prog,
                 "passes": tv.pass_counts(),
                 "binary": tv.binary_counts(),
                 "unproven": [
                     {"kind": "pass", "location": c.location,
                      "verdict": c.verdict, "reason": c.reason}
                     for c in tv.passes if c.verdict != "proven"
                 ] + [
                     {"kind": "binary", "location": c.location,
                      "verdict": c.verdict, "reason": c.reason}
                     for c in tv.binary if c.verdict != "proven"]}
                for prog, tv in sorted(tv_results.items())]
        if args.all:
            extra["modes"] = {
                mode: {"cells": len(cell_reports),
                       "summary": summarize(
                           [f for r in cell_reports
                            for f in r.findings])}
                for mode, cell_reports in sorted(mode_reports.items())}
        print(render_json(
            all_findings,
            programs=sorted({r.program for r in reports}),
            targets=sorted({r.target for r in reports}),
            **extra))
    else:
        for report in reports:
            if report.findings:
                print(f"--- {report.program} [{report.target}]")
                print(render_text(report.findings))
        if args.stats or not all_findings:
            stats = summarize(all_findings)
            by_sev = stats["by_severity"]
            rules = ", ".join(f"{rule}:{count}" for rule, count
                              in stats["by_rule"].items()) or "none"
            print(f"lint: {len(reports)} program/target cells, "
                  f"{stats['total']} findings "
                  f"({by_sev.get('error', 0)} errors, "
                  f"{by_sev.get('warning', 0)} warnings); rules: {rules}")
        if args.stats and timing_validations:
            print("timing: program/target  interlocks  "
                  "[static lo, static hi]  tightness")
            for (prog, tname), tv in sorted(timing_validations.items()):
                print(f"timing: {prog}/{tname}  "
                      f"{tv.interlocks_observed}  "
                      f"[{tv.interlock_lo}, {tv.interlock_hi}]  "
                      f"{tv.tightness:.3f}")
        if args.stats and wcet_validations:
            print("wcet: program/target  cycles  [BCET, WCET]  "
                  "loops bounded/total")
            for (prog, tname), wv in sorted(wcet_validations.items()):
                wcet = wv.wcet if wv.wcet is not None else "unbounded"
                print(f"wcet: {prog}/{tname}  {wv.observed_cycles}  "
                      f"[{wv.bcet}, {wcet}]  "
                      f"{wv.program.bounded_loops}/{wv.program.n_loops}")
        if args.stats and icache_results:
            print("icache: program/target  size  AH/AM/PS/NC  "
                  "miss UB  sim misses  contradictions")
            for (prog, tname), cell in sorted(icache_results.items()):
                for analysis, v in cell:
                    c = analysis.counts
                    ub = analysis.miss_ub if analysis.miss_ub \
                        is not None else "unbounded"
                    print(f"icache: {prog}/{tname}  "
                          f"{analysis.config.size}  "
                          f"{c['always-hit']}/{c['always-miss']}/"
                          f"{c['persistent']}/{c['not-classified']}  "
                          f"{ub}  {v.sim_misses}  {v.contradictions}")
        if args.stats and densities:
            print("density: program/target  dlxe bytes  est d16 bytes  "
                  "ratio  fused pairs")
            for (prog, tname), d in sorted(densities.items()):
                print(f"density: {prog}/{tname}  {d.dlxe_bytes}  "
                      f"{d.est_d16_bytes}  {d.ratio:.3f}  {d.fused_pairs}")
        if args.stats and vuln_results:
            print("vuln: program/target  proven/sites  by kind  AVF  "
                  "waived")
            for (prog, tname), (cell, waived) in sorted(
                    vuln_results.items()):
                kinds = " ".join(
                    f"{kind}:{per['masked']}/{per['sites']}"
                    for kind, per in cell.by_kind().items())
                print(f"vuln: {prog}/{tname}  "
                      f"{cell.proven_masked}/{len(cell.verdicts)}  "
                      f"{kinds}  {cell.summary.avf:.3f}  "
                      f"{len(waived)}")
        if args.stats and tv_results:
            print("tv: program  passes proven/unknown/divergent  "
                  "binary proven/unknown/divergent")
            for prog, tv in sorted(tv_results.items()):
                pc, bc = tv.pass_counts(), tv.binary_counts()
                print(f"tv: {prog}  {pc['proven']}/{pc['unknown']}/"
                      f"{pc['divergent']}  {bc['proven']}/"
                      f"{bc['unknown']}/{bc['divergent']}")
    return exit_code(reports)


def cmd_bench(args) -> int:
    from .experiments import Lab

    lab = Lab(jobs=args.jobs)
    names = args.names or [bench.name for bench in SUITE]
    targets = args.targets.split(",")
    for name in names:
        get_benchmark(name)       # validate early
    grid = lab.runs(names, targets)
    header = f"{'program':12s}" + "".join(
        f"{t + ' size':>16s}{t + ' path':>16s}" for t in targets)
    print(header)
    for name in names:
        row = f"{name:12s}"
        for target in targets:
            run = grid[name][target]
            row += f"{run.binary_size:16d}{run.path_length:16d}"
        print(row)
    return 0


def cmd_faults(args) -> int:
    from .faults import FAULT_KINDS, FaultCampaign, render_report

    names = args.names or default_fault_benchmarks()
    for name in names:
        get_benchmark(name)       # validate early
    kinds = tuple(args.kinds.split(",")) if args.kinds else FAULT_KINDS
    for kind in kinds:
        if kind not in FAULT_KINDS:
            print(f"faults: unknown fault kind {kind!r} "
                  f"(known: {', '.join(FAULT_KINDS)})", file=sys.stderr)
            return 2
    campaign = FaultCampaign(
        benchmarks=tuple(names), targets=tuple(args.targets.split(",")),
        faults=args.faults, seed=args.seed, kinds=kinds,
        prune_masked=args.prune_masked)
    report = campaign.run(jobs=args.jobs)
    text = render_report(report)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    errors = sum("error" in cell for cell in report["cells"])
    summary = " | ".join(
        f"{target}: sdc {row['sdc_rate']:.3f}, "
        f"detected {row['detected_rate']:.3f}, "
        f"flips-to-failure {row['flips_to_failure']}"
        for target, row in report["summary"].items())
    pruned = sum(cell.get("pruned", 0) for cell in report["cells"])
    note = f", {pruned} pruned" if args.prune_masked else ""
    print(f"faults: {len(report['cells'])} cells "
          f"({errors} failed), {args.faults} faults/cell, "
          f"seed {args.seed}{note} | {summary}", file=sys.stderr)
    return 1 if errors else 0


def default_fault_benchmarks() -> list[str]:
    """Integer-heavy subset: quick and representative for campaigns."""
    return ["ackermann", "queens", "towers", "bubblesort"]


def cmd_cache(args) -> int:
    from .labcache import default_cache

    cache = default_cache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entries from {cache.root}")
        return 0
    stats = cache.stats()
    state = "enabled" if cache.enabled else "disabled (REPRO_CACHE=off)"
    print(f"artifact cache : {stats.root} ({state})")
    print(f"entries        : {stats.entries}")
    print(f"total size     : {stats.total_bytes / 1024:.1f} KiB")
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from .service import SimulationService

    service = SimulationService(args.root, jobs=args.jobs,
                                task_timeout=args.task_timeout)
    recovered = service.start()
    if recovered:
        print(f"serve: recovered {recovered} in-flight batch(es) "
              f"from the journal", file=sys.stderr)
    print(f"serve: listening on {args.host}:{args.port} "
          f"({args.jobs} workers, store at {args.root})",
          file=sys.stderr)
    try:
        asyncio.run(service.serve(args.host, args.port))
    except KeyboardInterrupt:
        print("serve: shutting down", file=sys.stderr)
    finally:
        service.close()
    return 0


def cmd_chaos(args) -> int:
    import json as json_mod
    import tempfile

    from .service import chaos_campaign

    root = args.root or tempfile.mkdtemp(prefix="repro-chaos-")
    report = chaos_campaign(root, seed=args.seed, count=args.requests,
                            failures=args.failures, jobs=args.jobs,
                            task_timeout=args.task_timeout)
    if args.json:
        with open(args.json, "w") as handle:
            json_mod.dump(report, handle, indent=1, sort_keys=True)
            handle.write("\n")
    print(f"chaos: {report['requests']} requests, "
          f"{report['injections_fired']}/{report['injections_planned']}"
          f" injections fired {report['injections_by_action']}, "
          f"{report['worker_restarts']} worker restarts, "
          f"{report['retries']} retries", file=sys.stderr)
    print(f"chaos: lost={report['lost_requests']} "
          f"identical={report['identical']} "
          f"p50={report['chaos_p50_ms']}ms "
          f"p99={report['chaos_p99_ms']}ms", file=sys.stderr)
    ok = (report["lost_requests"] == 0 and report["identical"])
    return 0 if ok else 1


def cmd_targets(_args) -> int:
    for name in sorted(TARGETS):
        spec = TARGETS[name]
        print(f"{name:12s} isa={spec.isa.name:5s} "
              f"regs={spec.num_gregs:2d} "
              f"{'3-addr' if spec.three_address else '2-addr'} "
              f"{'wide-imm' if spec.wide_immediates else 'narrow-imm'}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="D16 vs DLXe toolchain (ISCA 1993 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile minic to assembly")
    p.add_argument("file")
    p.add_argument("-o", "--output")
    p.add_argument("--no-runtime", action="store_true")
    p.add_argument("-O", "--opt", type=int, default=2)
    p.add_argument("--verify-ir", action="store_true",
                   help="run the IR verifier between optimizer passes")
    _add_target(p)
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("run", help="compile and execute")
    p.add_argument("file")
    p.add_argument("--stats", action="store_true",
                   help="print simulator statistics to stderr")
    p.add_argument("--stdin", help="file supplying simulated stdin")
    p.add_argument("--no-runtime", action="store_true")
    p.add_argument("-O", "--opt", type=int, default=2)
    p.add_argument("--verify-ir", action="store_true",
                   help="run the IR verifier between optimizer passes")
    p.add_argument("--max-instructions", type=int, default=DEFAULT_FUEL,
                   metavar="N",
                   help="watchdog: stop after N retired instructions "
                        "(default %(default)s)")
    p.add_argument("--max-cycles", type=int, default=None, metavar="N",
                   help="watchdog: stop after N simulated cycles")
    _add_target(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("disasm", help="compile and disassemble")
    p.add_argument("file")
    p.add_argument("-n", "--count", type=int, default=None)
    p.add_argument("--no-runtime", action="store_true")
    p.add_argument("-O", "--opt", type=int, default=2)
    _add_target(p)
    p.set_defaults(fn=cmd_disasm)

    p = sub.add_parser(
        "lint", help="static analysis (IR, encoding, binary, call conv)")
    p.add_argument("file", nargs="?",
                   help="minic source to lint (default: benchmark suite)")
    p.add_argument("names", nargs="*",
                   help="benchmark names for suite mode (default: all)")
    p.add_argument("--targets", default="d16,dlxe",
                   help="comma-separated targets for suite mode")
    p.add_argument("--json", action="store_true",
                   help="emit findings as JSON")
    p.add_argument("--stats", action="store_true",
                   help="print a summary line (rules, severities, cells)")
    p.add_argument("--timing", action="store_true",
                   help="cross-validate static cycle bounds against the "
                        "simulator (TIM rules)")
    p.add_argument("--wcet", action="store_true",
                   help="bracket simulated cycles with the whole-program "
                        "static [BCET, WCET] interval (LOOP/TIM rules)")
    p.add_argument("--wcet-slack", type=float, default=None,
                   metavar="FACTOR",
                   help="TIM005 when the finite interval is wider than "
                        "FACTOR x the observed cycles (default: 8.0; "
                        "pass 0 to disable)")
    p.add_argument("--icache", action="store_true",
                   help="classify instruction fetches per cache config "
                        "(must/may/persistence) and validate against "
                        "simulated replay (CACHE rules)")
    p.add_argument("--icache-sizes", default=None, metavar="BYTES,...",
                   help="comma-separated cache sizes for --icache "
                        "(default: the cacheperf grid)")
    p.add_argument("--icache-penalty", type=int, default=8,
                   metavar="CYCLES",
                   help="miss penalty for cache-aware WCET bounds "
                        "(default: 8)")
    p.add_argument("--density", action="store_true",
                   help="estimate D16 compressibility of the 32-bit "
                        "image (DEN rules)")
    p.add_argument("--cross-isa", action="store_true",
                   help="compare per-function facts between the two "
                        "targets (XISA rules)")
    p.add_argument("--tv", action="store_true",
                   help="translation validation: prove every optimizer "
                        "pass application equivalent and match binary "
                        "effect summaries against the IR (EQ rules)")
    p.add_argument("--vuln", action="store_true",
                   help="backward liveness (LIV dead-code rules) plus "
                        "static masked/ACE classification of the "
                        "seeded fault sites and register-file AVF "
                        "(VULN rules)")
    p.add_argument("--vuln-faults", type=int, default=20, metavar="N",
                   help="planned fault sites per cell for --vuln "
                        "(default %(default)s, matching repro faults)")
    p.add_argument("--vuln-seed", type=int, default=42, metavar="SEED",
                   help="campaign seed for the --vuln site planner "
                        "(default %(default)s)")
    p.add_argument("--all", action="store_true",
                   help="run every analysis mode (lint, timing, wcet, "
                        "icache, density, tv, vuln) in one pass with a "
                        "combined report")
    p.add_argument("--no-runtime", action="store_true")
    p.add_argument("-O", "--opt", type=int, default=2)
    _add_target(p)
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("bench", help="benchmark table")
    p.add_argument("names", nargs="*",
                   help="benchmark names (default: all)")
    p.add_argument("--targets", default="d16,dlxe",
                   help="comma-separated target list")
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="compile/run grid cells in N parallel processes")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "faults", help="seeded fault-injection campaign (JSON report)")
    p.add_argument("names", nargs="*",
                   help="benchmark names (default: quick subset)")
    p.add_argument("--targets", default="d16,dlxe",
                   help="comma-separated target list")
    p.add_argument("-n", "--faults", type=int, default=20,
                   help="faults per (benchmark, target) cell "
                        "(default %(default)s)")
    p.add_argument("--seed", type=int, default=1,
                   help="campaign seed (default %(default)s)")
    p.add_argument("--kinds", default=None,
                   help="comma-separated fault kinds "
                        "(default: ifetch,reg,mem,trap,cache)")
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="run grid cells in N parallel processes")
    p.add_argument("--prune-masked", action="store_true",
                   help="skip injections the static vulnerability "
                        "analysis proves masked (outcome counts are "
                        "unchanged; pruned sites are recorded, not run)")
    p.add_argument("-o", "--output",
                   help="write the JSON report here instead of stdout")
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "serve", help="fault-tolerant simulation service (JSON lines)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--root", default=".repro-service",
                   help="service root (journal + result store, "
                        "default %(default)s)")
    p.add_argument("-j", "--jobs", type=int, default=2,
                   help="worker processes (default %(default)s)")
    p.add_argument("--task-timeout", type=float, default=60.0,
                   help="per-task hang deadline in seconds "
                        "(default %(default)s)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "chaos", help="chaos harness: clean vs fault-injected replay")
    p.add_argument("--requests", type=int, default=1000,
                   help="replayed request count (default %(default)s)")
    p.add_argument("--failures", type=int, default=24,
                   help="seeded injections: worker kills/hangs/slows "
                        "and cache corruption (default %(default)s)")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("-j", "--jobs", type=int, default=2,
                   help="worker processes per service "
                        "(default %(default)s)")
    p.add_argument("--task-timeout", type=float, default=5.0,
                   help="per-task hang deadline in seconds "
                        "(default %(default)s)")
    p.add_argument("--root", default=None,
                   help="campaign root (default: a temp directory)")
    p.add_argument("--json", default=None,
                   help="write the full JSON report here")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("targets", help="list compiler configurations")
    p.set_defaults(fn=cmd_targets)

    p = sub.add_parser("cache", help="persistent artifact cache")
    p.add_argument("action", choices=("stats", "clear"),
                   help="show cache statistics or delete all entries")
    p.set_defaults(fn=cmd_cache)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Persistent, content-addressed artifact cache for the experiment lab.

Compiling and simulating the 15-program x 5-target grid dominates the
wall-clock cost of reproducing the paper, yet the inputs rarely change
between runs.  This module memoizes the three expensive artifact kinds
across *processes*:

* ``exe``   -- linked :class:`~repro.asm.objfile.Executable` images,
* ``run``   -- :class:`~repro.machine.stats.RunStats` plus binary sizes,
* ``trace`` -- run stats together with zlib-compressed address traces.

Every artifact is stored under a SHA-256 key derived from *all* inputs
that can change the result: the benchmark source text, the full
:class:`~repro.cc.target.TargetSpec` fingerprint (ISA, register-file
size, two/three-address, immediate width), the pipeline latency
parameters, and the toolchain version.  Changing any of these yields a
different key, so stale entries are never served -- they are simply
orphaned and reclaimed by ``python -m repro cache clear``.

Layout on disk (``.repro-cache/`` by default, override with
``REPRO_CACHE_DIR``; set ``REPRO_CACHE=off`` to disable)::

    .repro-cache/
      v2/                     <- schema version; bumping orphans everything
        ab/abcdef....bin      <- sha256(body) || body,
                                 body = zlib(pickle(payload))

Writes are atomic (temp file + ``os.replace``) so concurrent writers --
the ``jobs=N`` process pool -- can share one cache directory; both
writers produce identical bytes for identical keys, so the race is
benign.  Every entry carries a content digest that is verified on
load, so a flipped bit anywhere in the body is caught *before*
unpickling; corrupt, truncated, or unreadable entries are logged,
evicted, and treated as misses -- a damaged cache heals itself by
rebuilding instead of poisoning an experiment sweep.

Concurrent readers and evictors are safe against each other too:

* eviction is **tombstone-then-unlink** -- the damaged entry is
  atomically renamed aside before deletion, and if the rename is found
  to have captured a *freshly rebuilt* entry (a writer won the race
  between our corrupt read and the rename) the good entry is restored
  instead of destroyed;
* readers **retry once on miss** -- a ``FileNotFoundError`` may mean a
  sibling process evicted the entry a moment before our open, in which
  case the rebuild (or the tombstone restore) typically lands within
  the retry.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

log = logging.getLogger("repro.labcache")

#: Bump to orphan every existing cache entry (on-disk format changes).
#: v2: 32-byte sha256 content digest prefixed to every entry.
SCHEMA_VERSION = "v2"

#: Length of the digest header on every on-disk entry.
DIGEST_BYTES = 32

#: Environment switches.
ENV_DIR = "REPRO_CACHE_DIR"
ENV_TOGGLE = "REPRO_CACHE"

DEFAULT_DIRNAME = ".repro-cache"


def toolchain_fingerprint() -> str:
    """Version string folded into every key (versioned invalidation)."""
    from .cc.driver import toolchain_fingerprint as cc_fingerprint

    return str(cc_fingerprint())


def source_fingerprint(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


def target_fingerprint(target: Any) -> dict[str, Any]:
    """Every :class:`TargetSpec` knob that can change generated code."""
    return {
        "name": target.name,
        "isa": target.isa.name,
        "num_gregs": target.num_gregs,
        "num_fregs": target.num_fregs,
        "three_address": target.three_address,
        "wide_immediates": target.wide_immediates,
    }


def params_fingerprint(params: Any) -> dict[str, Any]:
    """Every :class:`PipelineParams` knob that can change run statistics."""
    return {
        "load_delay": params.load_delay,
        "math_latency": sorted(params.math_latency.items()),
    }


def cache_enabled() -> bool:
    return os.environ.get(ENV_TOGGLE, "").lower() not in (
        "off", "0", "no", "false")


def default_cache_root() -> Path:
    return Path(os.environ.get(ENV_DIR) or DEFAULT_DIRNAME)


@dataclass
class CacheStats:
    """What ``python -m repro cache stats`` reports."""

    root: str
    entries: int
    total_bytes: int
    hits: int = 0
    misses: int = 0


class ArtifactCache:
    """Content-addressed pickle store shared by every lab process."""

    def __init__(self, root: str | os.PathLike[str] | None = None, *,
                 enabled: bool = True) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------- keys

    def make_key(self, kind: str, material: dict[str, Any]) -> str:
        """Derive the content address for one artifact.

        ``material`` must contain every input that can change the
        artifact; the toolchain version and schema are always mixed in.
        """
        record = {
            "kind": kind,
            "schema": SCHEMA_VERSION,
            "toolchain": toolchain_fingerprint(),
            **material,
        }
        blob = json.dumps(record, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / SCHEMA_VERSION / key[:2] / f"{key}.bin"

    def entry_path(self, key: str) -> Path:
        """On-disk location of ``key``'s entry (for tooling/tests)."""
        return self._path(key)

    # ------------------------------------------------------------ get/put

    def get(self, key: str) -> Any:
        """Load an artifact, or None on miss (never raises).

        The stored digest is verified before the body is unpickled, so
        on-disk corruption is caught deterministically; any damaged
        entry is evicted (see :meth:`_evict`) and reported as a miss,
        letting the caller rebuild it.

        A :class:`FileNotFoundError` is retried once: a concurrent
        evictor may have tombstoned the entry between our path lookup
        and open, and the rebuild (or the evictor's good-entry restore)
        frequently lands immediately after.
        """
        if not self.enabled:
            return None
        path = self._path(key)
        for attempt in range(2):
            try:
                blob = path.read_bytes()
            except FileNotFoundError:
                if attempt == 0:
                    continue
                self.misses += 1
                return None
            except OSError:
                self.misses += 1
                return None
            try:
                body = self._verified_body(blob)
                payload = pickle.loads(zlib.decompress(body))
            except Exception as exc:
                # Corrupt/truncated/unpicklable entry: drop it, treat
                # as a miss.
                self.misses += 1
                self._evict(path, exc, observed=blob)
                return None
            self.hits += 1
            return payload
        return None  # pragma: no cover - loop always returns

    def _verified_body(self, blob: bytes) -> bytes:
        """The entry body iff the digest header checks out (raises)."""
        if len(blob) < DIGEST_BYTES:
            raise ValueError(f"entry shorter than its {DIGEST_BYTES}"
                             f"-byte digest header ({len(blob)} bytes)")
        digest, body = blob[:DIGEST_BYTES], blob[DIGEST_BYTES:]
        if hashlib.sha256(body).digest() != digest:
            raise ValueError("content digest mismatch")
        return body

    def _verify_blob(self, blob: bytes) -> bool:
        try:
            self._verified_body(blob)
        except ValueError:
            return False
        return True

    def _evict(self, path: Path, reason: Exception,
               observed: bytes | None = None) -> None:
        """Remove a damaged entry via tombstone-then-unlink.

        The entry is first renamed to a per-process tombstone -- an
        atomic step that takes it out of readers' way without a window
        where a *rebuilt* entry could be deleted by mistake.  If the
        tombstoned bytes turn out to differ from the corrupt bytes we
        observed *and* verify cleanly, a concurrent writer rebuilt the
        entry between our read and the rename -- restore it instead of
        unlinking.  Logged; never raises.
        """
        log.warning("evicting corrupt cache entry %s: %s", path, reason)
        tomb = path.with_name(f"{path.name}.tomb-{os.getpid()}")
        try:
            os.replace(path, tomb)
        except OSError:
            return  # already gone: someone else evicted or rebuilt it
        try:
            current = tomb.read_bytes()
        except OSError:
            current = None
        if (current is not None and observed is not None
                and current != observed and self._verify_blob(current)):
            # We grabbed a freshly rebuilt (good) entry: put it back.
            try:
                os.replace(tomb, path)
            except OSError:
                pass
            return
        try:
            tomb.unlink()
        except OSError:
            pass

    def put(self, key: str, payload: Any) -> None:
        """Store an artifact atomically (no-op when disabled)."""
        if not self.enabled:
            return
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = zlib.compress(pickle.dumps(payload, protocol=4), 6)
        blob = hashlib.sha256(body).digest() + body
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -------------------------------------------------------- maintenance

    def _entries(self) -> Iterator[Path]:
        base = self.root / SCHEMA_VERSION
        if not base.is_dir():
            return
        for path in sorted(base.glob("*/*.bin")):
            yield path

    def _tombstones(self) -> Iterator[Path]:
        base = self.root / SCHEMA_VERSION
        if not base.is_dir():
            return
        for path in sorted(base.glob("*/*.bin.tomb-*")):
            yield path

    def stats(self) -> CacheStats:
        entries = total = 0
        for path in self._entries():
            entries += 1
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return CacheStats(root=str(self.root), entries=entries,
                          total_bytes=total, hits=self.hits,
                          misses=self.misses)

    def clear(self) -> int:
        """Delete every entry (and stale tombstones); returns the
        number of entries removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self._tombstones():
            try:
                path.unlink()
            except OSError:
                pass
        return removed


def default_cache() -> ArtifactCache:
    """The process-default cache, honouring REPRO_CACHE/REPRO_CACHE_DIR."""
    return ArtifactCache(enabled=cache_enabled())


def resolve_cache(cache: Any) -> ArtifactCache:
    """Normalize a ``Lab(cache=...)`` argument.

    ``None`` -> the environment-default cache; ``False`` -> a disabled
    cache; an :class:`ArtifactCache` passes through.
    """
    if cache is None:
        return default_cache()
    if cache is False:
        return ArtifactCache(enabled=False)
    if isinstance(cache, ArtifactCache):
        return cache
    return ArtifactCache(cache)

"""Batch scheduler: dedupe, coalesce, retry, and circuit-break.

The scheduler sits between the request front end and the worker pool.
Every submitted :class:`~repro.service.model.Request` is content-hashed
into a *batch key* (the store's result address):

* a result already in the crash-safe store resolves immediately as a
  **cache hit** (digest-verified — a corrupted entry reads as a miss
  and is transparently recomputed);
* a request whose batch is already in flight **coalesces** onto it —
  one execution fans its result out to every waiter;
* otherwise a new batch is journaled (``intent``), executed on the
  worker pool under the retry policy, and either committed to the
  store (success) or aborted (deterministic failure — errors are
  journaled but never cached).

Transient executor failures (worker crash, hang) are retried with
exponential backoff and seeded jitter, accumulating ``attempts`` and
``backoff_total_s`` into the response diagnostics.  A retry after a
*timeout* doubles the task deadline (capped at
``DEADLINE_ESCALATION_MAX`` times the base): the base deadline keeps
hung-worker recovery fast, while a healthy-but-slow task — a heavy
trace on a loaded machine — gets enough headroom to finish instead of
being killed identically on every attempt.  Deterministic task
failures are never retried; they feed the per-cell circuit breaker,
and once a cell's breaker opens further submissions short-circuit to a
typed error replaying the recorded failure — same canonical bytes as
an executed failure, at zero worker cost.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any

from .model import Request, Response, ServiceStats
from .policy import BackoffPolicy, CircuitBreaker
from .store import JournaledStore
from .workers import TaskFailed, WorkerPool, WorkerTransient

#: Ceiling on per-retry deadline escalation, as a multiple of the
#: pool's base ``task_timeout``.
DEADLINE_ESCALATION_MAX = 8


class _Batch:
    """One in-flight execution and the waiters coalesced onto it."""

    def __init__(self, key: str, request: Request) -> None:
        self.key = key
        self.request = request
        self.waiters: list[tuple[Request, Future[Response],
                                 float]] = []


class Scheduler:
    """Coalescing batch scheduler over a store and a worker pool."""

    def __init__(self, store: JournaledStore, pool: WorkerPool, *,
                 backoff: BackoffPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 seed: int = 0,
                 batch_threads: int | None = None) -> None:
        self.store = store
        self.pool = pool
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.stats = ServiceStats()
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._active: dict[str, _Batch] = {}
        workers = batch_threads if batch_threads is not None \
            else max(4, pool.jobs * 2)
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="svc-batch")

    # --------------------------------------------------------- lifecycle

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------ submit

    def submit(self, request: Request) -> Future[Response]:
        """Schedule one request; resolves to its :class:`Response`."""
        key = self.store.result_key(request)
        started = time.monotonic()
        future: Future[Response] = Future()
        with self._lock:
            self.stats.requests += 1
            batch = self._active.get(key)
            if batch is not None:
                # Coalesce: ride the in-flight execution.
                self.stats.coalesced += 1
                batch.waiters.append((request, future, started))
                return future
        cached = self.store.get(key)
        if cached is not None:
            with self._lock:
                self.stats.cache_hits += 1
            future.set_result(self._respond(
                request, started, ok=True, payload=cached, cached=True))
            return future
        if not self.breaker.allow(key):
            # Open breaker: degrade to the recorded failure without
            # touching a worker.  Canonically identical to executing
            # the failing cell again.
            with self._lock:
                self.stats.breaker_short_circuits += 1
            future.set_result(self._respond(
                request, started, ok=False,
                error=self.breaker.last_error(key), breaker_open=True))
            return future
        with self._lock:
            batch = self._active.get(key)
            if batch is not None:
                self.stats.coalesced += 1
                batch.waiters.append((request, future, started))
                return future
            batch = _Batch(key, request)
            batch.waiters.append((request, future, started))
            self._active[key] = batch
            self.stats.batches += 1
        self._executor.submit(self._run_batch, batch)
        return future

    def execute(self, requests: list[Request]) -> list[Response]:
        """Submit a request stream and wait for all (order preserved)."""
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    # ------------------------------------------------------------- batch

    def _run_batch(self, batch: _Batch) -> None:
        request = batch.request
        key = batch.key
        attempts = 0
        backoff_total = 0.0
        payload: dict[str, Any] | None = None
        error: dict[str, Any] | None = None
        try:
            self.store.begin(key, request)
            escalation = 1
            while True:
                attempts += 1
                try:
                    payload = self.pool.run_task(
                        request,
                        timeout=self.pool.task_timeout * escalation)
                    break
                except WorkerTransient as exc:
                    if exc.kind == "timeout":
                        escalation = min(escalation * 2,
                                         DEADLINE_ESCALATION_MAX)
                    if attempts >= self.backoff.max_attempts:
                        error = {"kind": exc.kind,
                                 "message": exc.detail,
                                 "transient": True}
                        break
                    with self._lock:
                        self.stats.retries += 1
                    delay = self.backoff.delay(attempts, self._rng)
                    backoff_total += delay
                    time.sleep(delay)
                except TaskFailed as exc:
                    error = {"kind": "task", "type": exc.exc_type,
                             "message": exc.message}
                    break
            if payload is not None:
                self.store.commit(key, payload)
                self.breaker.record_success(key)
            else:
                assert error is not None
                self.store.abort(key, str(error.get("kind", "error")))
                with self._lock:
                    self.stats.failures += 1
                if not error.get("transient"):
                    self.breaker.record_failure(
                        key, {"kind": str(error.get("kind", "error")),
                              "message":
                                  str(error.get("message", ""))})
        except BaseException as exc:  # pragma: no cover - last resort
            error = {"kind": "internal", "type": type(exc).__name__,
                     "message": str(exc)}
            payload = None
        finally:
            with self._lock:
                self._active.pop(key, None)
            self._resolve(batch, payload, error, attempts, backoff_total)

    def _resolve(self, batch: _Batch, payload: dict[str, Any] | None,
                 error: dict[str, Any] | None, attempts: int,
                 backoff_total: float) -> None:
        for index, (request, future, started) in \
                enumerate(batch.waiters):
            if future.done():  # pragma: no cover - cancelled waiter
                continue
            future.set_result(self._respond(
                request, started, ok=payload is not None,
                payload=payload, error=error, attempts=attempts,
                backoff_total_s=backoff_total, coalesced=index > 0))

    # ---------------------------------------------------------- helpers

    def _respond(self, request: Request, started: float, *, ok: bool,
                 payload: dict[str, Any] | None = None,
                 error: dict[str, Any] | None = None, attempts: int = 1,
                 backoff_total_s: float = 0.0,
                 breaker_open: bool = False, cached: bool = False,
                 coalesced: bool = False) -> Response:
        return Response(
            id=request.id, kind=request.kind, bench=request.bench,
            target=request.target, ok=ok, payload=payload, error=error,
            attempts=attempts, backoff_total_s=backoff_total_s,
            breaker_open=breaker_open, cached=cached,
            coalesced=coalesced,
            latency_s=time.monotonic() - started)

    def snapshot(self) -> dict[str, Any]:
        """Current aggregate counters (includes pool restart count)."""
        with self._lock:
            stats = self.stats.to_dict()
        stats["worker_restarts"] = self.pool.restarts
        stats["breaker_open_cells"] = self.breaker.open_cells()
        return stats

"""Chaos harness: seeded fault injection with a byte-compare oracle.

The harness replays one deterministic request stream twice:

1. against a **clean** service (no injections) — the oracle run;
2. against a **chaos** service whose worker pool kills, hangs, and
   slows workers mid-task on seeded dispatch numbers, and whose store
   corrupts committed cache entries on seeded commit numbers.

It then compares the two runs' *canonical* responses byte-for-byte
(volatile diagnostics like attempts and latency are stripped by
:meth:`Response.canonical`).  The robustness contract under test:
every injected failure is absorbed by a retry, a worker restart, or a
digest-verified cache miss, so the chaos run loses zero requests and
answers with exactly the oracle's bytes.

Injections are *planned* on seeded dispatch/commit ordinals and
*counted when they fire* — a plan entry beyond the run's actual
dispatch count never fires, so reports carry both numbers and the
acceptance test asserts on fired injections.
"""

from __future__ import annotations

import json
import os
import random
import threading
from pathlib import Path
from typing import Any

from .model import Request, Response
from .policy import BackoffPolicy
from .replay import (execute_in_waves, generate_requests, is_lost,
                     percentile)
from .service import SimulationService
from .store import JournaledStore

#: How long an injected hang sleeps — far past any test task deadline,
#: so a hung worker is only ever recovered by the watchdog kill.
HANG_SLEEP_S = 30.0

#: How long an injected slow worker sleeps — long enough to skew tail
#: latency, short enough to finish inside the task deadline.
SLOW_SLEEP_S = 0.25


class ChaosPlan:
    """Seeded injection schedule, with fired-injection accounting."""

    def __init__(self, directives_by_seq: dict[int, dict[str, Any]],
                 corrupt_commits: frozenset[int]) -> None:
        self.directives_by_seq = directives_by_seq
        self.corrupt_commits = corrupt_commits
        self.fired: dict[str, int] = {}
        self._lock = threading.Lock()

    def directive(self, dispatch: int) -> dict[str, Any] | None:
        """Worker-pool hook: the directive for this dispatch ordinal."""
        found = self.directives_by_seq.get(dispatch)
        if found is not None:
            self._count(str(found.get("action", "?")))
        return found

    def should_corrupt(self, commit: int) -> bool:
        if commit in self.corrupt_commits:
            self._count("corrupt")
            return True
        return False

    def _count(self, action: str) -> None:
        with self._lock:
            self.fired[action] = self.fired.get(action, 0) + 1

    @property
    def planned(self) -> int:
        return len(self.directives_by_seq) + len(self.corrupt_commits)

    @property
    def fired_total(self) -> int:
        with self._lock:
            return sum(self.fired.values())


def make_plan(seed: int, *, kills: int, hangs: int, slows: int,
              corruptions: int, horizon: int,
              commit_horizon: int | None = None) -> ChaosPlan:
    """Schedule injections over the first ``horizon`` dispatches.

    ``horizon`` should sit at or below the expected number of unique
    batches so the plan actually fires; retries dispatch with fresh
    ordinals (usually past the horizon) and therefore succeed.
    """
    rng = random.Random(seed)
    wanted = kills + hangs + slows
    horizon = max(horizon, wanted)
    seqs = rng.sample(range(1, horizon + 1), wanted)
    directives: dict[int, dict[str, Any]] = {}
    cursor = 0
    for _ in range(kills):
        directives[seqs[cursor]] = {"action": "kill"}
        cursor += 1
    for _ in range(hangs):
        directives[seqs[cursor]] = {"action": "hang",
                                    "sleep_s": HANG_SLEEP_S}
        cursor += 1
    for _ in range(slows):
        directives[seqs[cursor]] = {"action": "slow",
                                    "sleep_s": SLOW_SLEEP_S}
        cursor += 1
    window = commit_horizon if commit_horizon is not None \
        else max(corruptions, horizon * 3 // 4)
    commits = rng.sample(range(1, window + 1),
                         min(corruptions, window))
    return ChaosPlan(directives_by_seq=directives,
                     corrupt_commits=frozenset(commits))


def split_failures(total: int) -> dict[str, int]:
    """Default mix for ``total`` injections, weighted away from hangs
    (each hang costs one full task deadline of wall clock)."""
    kills = max(1, total * 7 // 20)
    hangs = max(1, total * 3 // 20)
    slows = max(1, total * 5 // 20)
    corruptions = max(1, total - kills - hangs - slows)
    return {"kills": kills, "hangs": hangs, "slows": slows,
            "corruptions": corruptions}


class CorruptingStore(JournaledStore):
    """A store that rots seeded cache entries right after commit.

    The flipped byte lands in the pickled body, so the next read's
    digest verification fails, evicts the entry, and forces a
    recomputation — which must produce the same bytes again.
    """

    def __init__(self, root: str | os.PathLike[str],
                 plan: ChaosPlan) -> None:
        super().__init__(root)
        self.plan = plan
        self._commits = 0
        self._commit_lock = threading.Lock()

    def commit(self, key: str, payload: dict[str, Any]) -> None:
        super().commit(key, payload)
        with self._commit_lock:
            self._commits += 1
            ordinal = self._commits
        if self.plan.should_corrupt(ordinal):
            self._corrupt(key)

    def _corrupt(self, key: str) -> None:
        path = self.cache.entry_path(key)
        try:
            blob = bytearray(path.read_bytes())
        except OSError:
            return
        if not blob:
            return
        position = len(blob) // 2
        blob[position] ^= 0xFF
        path.write_bytes(bytes(blob))


def _run_stream(root: Path, requests: list[Request], *, seed: int,
                jobs: int, task_timeout: float,
                plan: ChaosPlan | None) -> tuple[list[Response],
                                                 dict[str, Any]]:
    backoff = BackoffPolicy(base_s=0.02, max_s=0.25, max_attempts=8)
    service = SimulationService(root, jobs=jobs, seed=seed,
                                backoff=backoff,
                                task_timeout=task_timeout, chaos=plan)
    if plan is not None:
        store = CorruptingStore(root, plan)
        service.store = store
        service.scheduler.store = store
    with service:
        responses = execute_in_waves(service, requests)
        stats = service.stats()
    return responses, stats


def chaos_campaign(root: str | os.PathLike[str], *, seed: int = 42,
                   count: int = 1000, failures: int = 24,
                   jobs: int = 2, task_timeout: float = 5.0,
                   horizon: int | None = None) -> dict[str, Any]:
    """Clean run vs chaos run over one stream; byte-compare report."""
    base = Path(root)
    requests = generate_requests(seed, count)
    unique = len({json.dumps(r.material(), sort_keys=True)
                  for r in requests})
    mix = split_failures(failures)
    plan = make_plan(seed, horizon=horizon if horizon is not None
                     else max(4, unique * 3 // 4), **mix)

    clean, clean_stats = _run_stream(
        base / "clean", requests, seed=seed, jobs=jobs,
        task_timeout=task_timeout, plan=None)
    chaos, chaos_stats = _run_stream(
        base / "chaos", requests, seed=seed, jobs=jobs,
        task_timeout=task_timeout, plan=plan)

    clean_bytes = [json.dumps(r.canonical(), sort_keys=True)
                   for r in clean]
    chaos_bytes = [json.dumps(r.canonical(), sort_keys=True)
                   for r in chaos]
    mismatches = [i for i, (a, b) in
                  enumerate(zip(clean_bytes, chaos_bytes)) if a != b]
    lost = sum(1 for r in chaos if is_lost(r))
    lost += count - len(chaos)
    latencies = [r.latency_s for r in chaos]
    return {
        "requests": count,
        "unique_batches": unique,
        "seed": seed,
        "jobs": jobs,
        "injections_planned": plan.planned,
        "injections_fired": plan.fired_total,
        "injections_by_action": dict(sorted(plan.fired.items())),
        "lost_requests": lost,
        "identical": not mismatches and len(clean) == len(chaos),
        "mismatches": mismatches[:10],
        "chaos_p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "chaos_p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "worker_restarts": int(chaos_stats.get("worker_restarts", 0)),
        "retries": int(chaos_stats.get("retries", 0)),
        "clean_stats": clean_stats,
        "chaos_stats": chaos_stats,
    }

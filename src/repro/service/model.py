"""Typed requests and responses for the simulation service.

A :class:`Request` names one unit of work the service knows how to
perform — compile, run, trace, or lint one (benchmark, target) cell,
or execute a small seeded fault campaign against it.  Requests are
*content-addressed*: every field that can change the result is folded
into :meth:`Request.material`, which the store hashes into the batch
key, so identical requests coalesce into one execution and repeat
requests are served from the SHA-256 artifact store.

A :class:`Response` carries the result plus the robustness diagnostics
(attempts, accumulated backoff, breaker state, cache/coalesce flags).
:meth:`Response.canonical` strips every volatile field, leaving exactly
the bytes-per-request view the chaos harness compares between a clean
and a fault-injected run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Work kinds the service accepts (the lab's expensive artifact kinds
#: plus static analysis and seeded fault campaigns).
KINDS = ("compile", "run", "trace", "lint", "faults")


@dataclass(frozen=True)
class Request:
    """One unit of service work, keyed by everything that matters."""

    kind: str                 # one of KINDS
    bench: str                # benchmark name (repro.bench suite)
    target: str               # compiler configuration name
    faults: int = 0           # campaign size        (kind == "faults")
    seed: int = 1             # campaign seed        (kind == "faults")
    id: str = ""              # caller correlation id (not keyed)

    def material(self) -> dict[str, Any]:
        """Every keyed field, for the store's content address."""
        out: dict[str, Any] = {"kind": self.kind, "bench": self.bench,
                               "target": self.target}
        if self.kind == "faults":
            out["faults"] = self.faults
            out["seed"] = self.seed
        return out

    def to_dict(self) -> dict[str, Any]:
        out = self.material()
        if self.id:
            out["id"] = self.id
        return out

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "Request":
        return cls(kind=str(raw.get("kind", "")),
                   bench=str(raw.get("bench", "")),
                   target=str(raw.get("target", "")),
                   faults=int(raw.get("faults", 0)),
                   seed=int(raw.get("seed", 1)),
                   id=str(raw.get("id", "")))


@dataclass
class Response:
    """Result of one request, with robustness diagnostics attached."""

    id: str
    kind: str
    bench: str
    target: str
    ok: bool
    payload: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    attempts: int = 1
    backoff_total_s: float = 0.0
    breaker_open: bool = False
    cached: bool = False
    coalesced: bool = False
    latency_s: float = 0.0

    def canonical(self) -> dict[str, Any]:
        """The deterministic result view (volatile fields stripped).

        Two service runs over the same request stream must produce
        identical canonical views per request id, no matter how many
        workers crashed, hung, or how many cache entries rotted along
        the way — this is the chaos harness's byte-compare contract.
        """
        out: dict[str, Any] = {"id": self.id, "kind": self.kind,
                               "bench": self.bench,
                               "target": self.target, "ok": self.ok}
        if self.payload is not None:
            out["payload"] = self.payload
        if self.error is not None:
            out["error"] = {"kind": self.error.get("kind", ""),
                            "message": self.error.get("message", "")}
        return out

    def to_dict(self) -> dict[str, Any]:
        out = self.canonical()
        out.update(attempts=self.attempts,
                   backoff_total_s=round(self.backoff_total_s, 6),
                   breaker_open=self.breaker_open, cached=self.cached,
                   coalesced=self.coalesced,
                   latency_s=round(self.latency_s, 6))
        if self.error is not None:
            out["error"] = dict(self.error)
        return out


@dataclass
class ServiceStats:
    """Aggregate counters the service exposes over the wire."""

    requests: int = 0
    batches: int = 0
    coalesced: int = 0
    cache_hits: int = 0
    retries: int = 0
    failures: int = 0
    breaker_short_circuits: int = 0
    worker_restarts: int = 0
    recovered: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "requests": self.requests, "batches": self.batches,
            "coalesced": self.coalesced, "cache_hits": self.cache_hits,
            "retries": self.retries, "failures": self.failures,
            "breaker_short_circuits": self.breaker_short_circuits,
            "worker_restarts": self.worker_restarts,
            "recovered": self.recovered}
        out.update(self.extra)
        return out

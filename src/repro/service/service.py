"""The simulation service: store + pool + scheduler + asyncio front.

:class:`SimulationService` wires the three layers together over one
service *root* directory (journal + content-addressed store) and adds
the two pieces neither layer owns alone:

* **crash recovery** — on startup, :meth:`recover` replays the journal,
  re-executes every intent that was in flight when the previous
  process died, and compacts the journal.  Committed batches are not
  recomputed (their results are already content-addressed), so
  recovery costs exactly one execution per genuinely unfinished batch.
* **the wire front end** — :meth:`serve` runs an asyncio JSON-lines
  TCP server (one JSON object per line in, one per line out) so
  clients can submit requests, read aggregate stats, and ping for
  liveness.  Blocking scheduler futures are bridged onto the event
  loop with ``run_in_executor``-free ``asyncio.wrap_future``.

Protocol (one JSON object per line)::

    {"op": "submit", "request": {"kind": "run", "bench": ..., ...}}
      -> the Response dict (diagnostics included)
    {"op": "stats"}  -> aggregate counters
    {"op": "ping"}   -> {"ok": true}
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Any

from .model import KINDS, Request, Response
from .policy import BackoffPolicy, CircuitBreaker
from .scheduler import Scheduler
from .store import JournaledStore
from .workers import DirectiveSource, WorkerPool


class SimulationService:
    """A fault-tolerant batch lab over one service root directory."""

    def __init__(self, root: str | os.PathLike[str], *, jobs: int = 2,
                 task_timeout: float = 60.0,
                 backoff: BackoffPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 seed: int = 0,
                 max_instructions: int = 2_000_000_000,
                 chaos: DirectiveSource | None = None) -> None:
        self.store = JournaledStore(root)
        self.pool = WorkerPool(
            jobs=jobs, cache_root=self.store.cache.root,
            max_instructions=max_instructions,
            task_timeout=task_timeout, chaos=chaos)
        self.scheduler = Scheduler(
            self.store, self.pool, backoff=backoff, breaker=breaker,
            seed=seed)
        self._started = False

    # --------------------------------------------------------- lifecycle

    def start(self) -> int:
        """Start workers and recover in-flight work; returns the
        number of batches recovered from the journal."""
        if self._started:
            return 0
        self.pool.start()
        self._started = True
        return self.recover()

    def close(self) -> None:
        self.scheduler.close()
        self.pool.close()
        self._started = False

    def __enter__(self) -> "SimulationService":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ---------------------------------------------------------- recovery

    def recover(self) -> int:
        """Finish batches left in flight by a crashed predecessor."""
        pending = self.store.pending()
        if pending:
            # Re-executing through the scheduler re-journals each
            # batch, commits its result, and warms the cache for the
            # requests that will retry against us.
            self.scheduler.execute(pending)
            self.scheduler.stats.recovered += len(pending)
        self.store.compact()
        return len(pending)

    # ----------------------------------------------------------- client

    def submit(self, request: Request) -> Response:
        """Blocking convenience wrapper around the scheduler."""
        return self.scheduler.submit(request).result()

    def execute(self, requests: list[Request]) -> list[Response]:
        return self.scheduler.execute(requests)

    def stats(self) -> dict[str, Any]:
        return self.scheduler.snapshot()

    # ------------------------------------------------------------- wire

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """One client connection: JSON lines in, JSON lines out."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    reply = await self._dispatch(line)
                except Exception as exc:
                    reply = {"ok": False,
                             "error": {"kind": "protocol",
                                       "message": str(exc)}}
                writer.write(json.dumps(reply, sort_keys=True)
                             .encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError,  # pragma: no cover
                    asyncio.CancelledError):
                # CancelledError: the server is shutting down with this
                # connection mid-close; the socket is gone either way.
                pass

    async def _dispatch(self, line: bytes) -> dict[str, Any]:
        message = json.loads(line)
        if not isinstance(message, dict):
            raise ValueError("expected a JSON object")
        op = message.get("op", "submit")
        if op == "ping":
            return {"ok": True}
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "submit":
            raw = message.get("request")
            if not isinstance(raw, dict):
                raise ValueError("submit needs a 'request' object")
            request = Request.from_dict(raw)
            if request.kind not in KINDS:
                raise ValueError(
                    f"unknown kind {request.kind!r}; "
                    f"expected one of {', '.join(KINDS)}")
            response = await asyncio.wrap_future(
                self.scheduler.submit(request))
            return response.to_dict()
        raise ValueError(f"unknown op {op!r}")

    async def serve(self, host: str = "127.0.0.1",
                    port: int = 8642) -> None:
        """Run the TCP front end until cancelled."""
        server = await asyncio.start_server(self.handle, host, port)
        async with server:
            await server.serve_forever()

"""Fault-tolerant simulation service (scheduler/executor/store split).

The package decomposes the experiment lab into three independently
testable layers plus the harnesses that exercise them:

* :mod:`~repro.service.model` — typed requests/responses and the
  canonical (byte-comparable) result view;
* :mod:`~repro.service.store` — content-addressed result store with a
  write-ahead journal for crash recovery;
* :mod:`~repro.service.policy` — exponential backoff with seeded
  jitter and the per-cell circuit breaker;
* :mod:`~repro.service.workers` — health-checked spawn-based worker
  pool (crash/hang detection, automatic restart);
* :mod:`~repro.service.scheduler` — dedupe/coalesce/batch scheduling
  over store and pool;
* :mod:`~repro.service.service` — the wired service, crash recovery,
  and the asyncio JSON-lines front end (``repro serve``);
* :mod:`~repro.service.chaos` — seeded fault injection with a
  byte-compare oracle (``repro chaos``);
* :mod:`~repro.service.replay` — deterministic load generation and
  the latency benchmark feeding ``BENCH_repro.json``.

See ``docs/service.md`` for the architecture and failure taxonomy.
"""

from .chaos import ChaosPlan, chaos_campaign, make_plan, split_failures
from .model import KINDS, Request, Response, ServiceStats
from .policy import BackoffPolicy, CircuitBreaker
from .replay import (execute_in_waves, generate_requests, is_lost,
                     percentile, replay_benchmark)
from .scheduler import Scheduler
from .service import SimulationService
from .store import JournaledStore
from .workers import TaskFailed, WorkerPool, WorkerTransient

__all__ = [
    "KINDS", "BackoffPolicy", "ChaosPlan", "CircuitBreaker",
    "JournaledStore", "Request", "Response", "Scheduler",
    "ServiceStats", "SimulationService", "TaskFailed", "WorkerPool",
    "WorkerTransient", "chaos_campaign", "execute_in_waves",
    "generate_requests", "is_lost", "make_plan", "percentile",
    "replay_benchmark", "split_failures",
]

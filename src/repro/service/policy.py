"""Retry backoff and per-cell circuit breaking for the service.

Transient executor failures — a worker process killed mid-task, a hang
cut off by the task deadline — are retried under an exponential backoff
with deterministic, seeded jitter (:class:`BackoffPolicy`): the delay
grows geometrically but each sleep is shortened by a pseudo-random
fraction so a burst of failing batches does not resubmit in lockstep.

Deterministic in-cell failures (lint errors, output miscompares,
simulator faults) are never retried; instead they feed the per-cell
:class:`CircuitBreaker`.  After ``threshold`` consecutive failures the
breaker *opens* and subsequent submissions of that cell short-circuit
to a typed error carrying the recorded failure — a repeatedly failing
cell degrades to a cheap, diagnosable answer instead of occupying
workers and poisoning batch latency.  After ``cooldown`` short-circuits
the breaker goes *half-open* and lets one probe execution through; a
success closes it, another failure re-opens it.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with seeded jitter for transient retries."""

    base_s: float = 0.05      # first delay
    factor: float = 2.0       # geometric growth per attempt
    max_s: float = 2.0        # delay ceiling
    jitter: float = 0.5       # fraction of the delay randomly shed
    max_attempts: int = 5     # total tries (first + retries)

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.max_s, self.base_s * self.factor ** (attempt - 1))
        return raw * (1.0 - self.jitter * rng.random())


class CircuitBreaker:
    """Per-cell failure accounting with open/half-open/closed states.

    Thread-safe: batches for different cells record outcomes
    concurrently.  State is per *cell key* (the batch content address),
    so distinct (program, target, kind) cells fail independently.
    """

    def __init__(self, *, threshold: int = 3,
                 cooldown: int = 8) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = max(1, cooldown)
        self._lock = threading.Lock()
        self._failures: dict[str, int] = {}     # consecutive failures
        self._open_skips: dict[str, int] = {}   # short-circuits served
        self._last_error: dict[str, dict[str, str]] = {}

    def allow(self, key: str) -> bool:
        """May this cell execute now?  False == short-circuit.

        While open, every call counts toward the cooldown; once
        ``cooldown`` submissions have been short-circuited the next
        call is allowed through as the half-open probe.
        """
        with self._lock:
            if self._failures.get(key, 0) < self.threshold:
                return True
            skips = self._open_skips.get(key, 0)
            if skips >= self.cooldown:
                # Half-open: admit one probe; reset the cooldown so a
                # failing probe re-opens for another full window.
                self._open_skips[key] = 0
                return True
            self._open_skips[key] = skips + 1
            return False

    def is_open(self, key: str) -> bool:
        with self._lock:
            return self._failures.get(key, 0) >= self.threshold

    def record_success(self, key: str) -> None:
        with self._lock:
            self._failures.pop(key, None)
            self._open_skips.pop(key, None)
            self._last_error.pop(key, None)

    def record_failure(self, key: str, error: dict[str, str]) -> None:
        with self._lock:
            self._failures[key] = self._failures.get(key, 0) + 1
            self._open_skips.setdefault(key, 0)
            self._last_error[key] = dict(error)

    def last_error(self, key: str) -> dict[str, str]:
        """The recorded failure an open breaker replays to callers."""
        with self._lock:
            return dict(self._last_error.get(
                key, {"kind": "error", "message": "breaker open"}))

    def open_cells(self) -> int:
        with self._lock:
            return sum(1 for n in self._failures.values()
                       if n >= self.threshold)

"""Request-replay load generation and the service latency benchmark.

:func:`generate_requests` produces a seeded, mixed stream of service
requests — run-heavy, with compile/trace/lint traffic and a sprinkle
of small fault campaigns — over a set of quick benchmarks, imitating
the query mix a study driver sends the service.  The stream is fully
deterministic in its seed, which is what lets the chaos harness replay
the *same* traffic against a clean and a fault-injected service and
demand byte-identical answers.

:func:`replay_benchmark` drives a private :class:`SimulationService`
with such a stream and reports throughput and tail latency (p50/p99),
plus the loss counter the CI perf budget pins to zero.  A *lost*
request is one that got no answer or a transient-infrastructure error;
a deterministic task failure is an answer, not a loss.
"""

from __future__ import annotations

import os
import random
import time
from typing import Any

from .model import KINDS, Request, Response
from .policy import BackoffPolicy
from .service import SimulationService

#: Quick cells: every benchmark here runs in well under a second per
#: target, so thousand-request replays stay inside the CI budget.
QUICK_BENCHMARKS = ("ackermann", "bubblesort", "queens", "towers")
QUICK_TARGETS = ("d16", "dlxe")

#: Traffic mix (kind -> weight); run-heavy like a real study driver.
MIX = {"run": 10, "compile": 4, "trace": 2, "lint": 3, "faults": 1}


def generate_requests(seed: int, count: int, *,
                      benchmarks: tuple[str, ...] = QUICK_BENCHMARKS,
                      targets: tuple[str, ...] = QUICK_TARGETS
                      ) -> list[Request]:
    """A deterministic mixed request stream of ``count`` requests."""
    rng = random.Random(seed)
    kinds = [k for k in KINDS for _ in range(MIX[k])]
    out: list[Request] = []
    for index in range(count):
        kind = rng.choice(kinds)
        bench = rng.choice(benchmarks)
        target = rng.choice(targets)
        faults = 4 if kind == "faults" else 0
        fseed = rng.randrange(1, 4) if kind == "faults" else 1
        out.append(Request(kind=kind, bench=bench, target=target,
                           faults=faults, seed=fseed,
                           id=f"r{index:05d}"))
    return out


def execute_in_waves(service: SimulationService,
                     requests: list[Request], *,
                     waves: int = 10) -> list[Response]:
    """Execute a stream in sequential waves (parallel within each).

    Waves model a study driver issuing query batches over time: a
    request repeated in a *later* wave exercises the store's read path
    (cache hit, digest verification, corruption recovery) instead of
    coalescing onto an in-flight batch the way a single all-at-once
    submission would.
    """
    size = max(1, -(-len(requests) // max(1, waves)))
    responses: list[Response] = []
    for start in range(0, len(requests), size):
        responses.extend(service.execute(requests[start:start + size]))
    return responses


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a non-empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def is_lost(response: Response | None) -> bool:
    """True when the service failed to *answer* the request."""
    if response is None:
        return True
    return (not response.ok and response.error is not None
            and bool(response.error.get("transient")))


def replay_benchmark(root: str | os.PathLike[str], *, seed: int = 42,
                     count: int = 1000, jobs: int = 2,
                     task_timeout: float = 60.0) -> dict[str, Any]:
    """Replay a mixed stream and measure service latency/throughput."""
    requests = generate_requests(seed, count)
    backoff = BackoffPolicy(base_s=0.02, max_s=0.25, max_attempts=6)
    started = time.monotonic()
    with SimulationService(root, jobs=jobs, seed=seed, backoff=backoff,
                           task_timeout=task_timeout) as service:
        responses = execute_in_waves(service, requests)
        stats = service.stats()
    elapsed = time.monotonic() - started
    latencies = [r.latency_s for r in responses]
    lost = sum(1 for r in responses if is_lost(r))
    lost += count - len(responses)
    return {
        "service_replay_requests": count,
        "service_replay_seed": seed,
        "service_replay_jobs": jobs,
        "service_replay_wall_s": round(elapsed, 3),
        "service_replay_rps": round(count / max(elapsed, 1e-9), 1),
        "service_replay_p50_ms":
            round(percentile(latencies, 0.50) * 1e3, 3),
        "service_replay_p99_ms":
            round(percentile(latencies, 0.99) * 1e3, 3),
        "service_lost_requests": lost,
        "service_cache_hits": int(stats.get("cache_hits", 0)),
        "service_coalesced": int(stats.get("coalesced", 0)),
        "service_batches": int(stats.get("batches", 0)),
    }

"""Crash-safe result store: content-addressed cache + WAL journal.

The store has two layers:

* the SHA-256 :class:`~repro.labcache.ArtifactCache` holds every
  completed result under a key derived from the full request material
  (so identical requests — across batches, restarts, and processes —
  are deduplicated by construction and every entry is digest-verified
  on read);
* a write-ahead **journal** (``journal.jsonl``) records batch
  lifecycle: an ``intent`` line is appended *and fsynced* before a
  batch starts executing, a ``commit`` line after its result landed in
  the cache, an ``abort`` line when it resolved to a deterministic
  error (errors are journaled but never cached — a transient
  environment failure must not become a sticky wrong answer).

Crash recovery reads the journal back: an intent without a matching
commit/abort was in flight when the service died, and
:meth:`JournaledStore.pending` returns its request so the restarted
service can finish it.  Committed work is *not* recomputed — its result
is already in the content-addressed cache, so recovery costs one cache
read per completed batch and one execution per genuinely unfinished
one.  :meth:`compact` rewrites the journal with only the still-pending
intents, bounding its growth across restarts.

Journal lines are self-delimiting JSON; a torn final line (the crash
happened mid-append) is ignored, which is safe because the only
consequence is re-executing one batch whose commit record was lost.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any

from ..labcache import ArtifactCache
from .model import Request

#: Journal file name inside the service root.
JOURNAL_NAME = "journal.jsonl"

#: Journal schema version, embedded in every record.
JOURNAL_SCHEMA = 1


class JournaledStore:
    """Content-addressed result store with a write-ahead journal."""

    def __init__(self, root: str | os.PathLike[str], *,
                 cache: ArtifactCache | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.cache = cache if cache is not None \
            else ArtifactCache(self.root / "store")
        self.journal_path = self.root / JOURNAL_NAME
        self._lock = threading.Lock()

    # ------------------------------------------------------------- keys

    def result_key(self, request: Request) -> str:
        """Content address for one request's result."""
        return self.cache.make_key(f"svc-{request.kind}",
                                   request.material())

    # ------------------------------------------------------------ cache

    def get(self, key: str) -> dict[str, Any] | None:
        """Completed result for ``key``, or None (digest-verified)."""
        payload = self.cache.get(key)
        if payload is None or not isinstance(payload, dict):
            return None
        return payload

    def commit(self, key: str, payload: dict[str, Any]) -> None:
        """Persist a completed result, then journal the commit."""
        self.cache.put(key, payload)
        self._append({"type": "commit", "key": key})

    def begin(self, key: str, request: Request) -> None:
        """Journal the intent to execute ``request`` (fsynced)."""
        self._append({"type": "intent", "key": key,
                      "request": request.material()})

    def abort(self, key: str, reason: str) -> None:
        """Close an intent that resolved to a deterministic error."""
        self._append({"type": "abort", "key": key, "reason": reason})

    # ---------------------------------------------------------- journal

    def _append(self, record: dict[str, Any]) -> None:
        record = {"schema": JOURNAL_SCHEMA, **record}
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            with open(self.journal_path, "a", encoding="utf-8") as out:
                out.write(line + "\n")
                out.flush()
                os.fsync(out.fileno())

    def _records(self) -> list[dict[str, Any]]:
        if not self.journal_path.exists():
            return []
        records: list[dict[str, Any]] = []
        with open(self.journal_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Torn tail write from a crash mid-append: the
                    # worst case is one lost commit record, i.e. one
                    # re-executed batch.  Everything after a torn line
                    # is untrusted too.
                    break
                if isinstance(record, dict):
                    records.append(record)
        return records

    def pending(self) -> list[Request]:
        """Requests whose intent was journaled but never closed."""
        open_intents: dict[str, dict[str, Any]] = {}
        for record in self._records():
            key = str(record.get("key", ""))
            kind = record.get("type")
            if kind == "intent":
                raw = record.get("request")
                if isinstance(raw, dict):
                    open_intents[key] = raw
            elif kind in ("commit", "abort"):
                open_intents.pop(key, None)
        return [Request.from_dict(raw) for raw in open_intents.values()]

    def compact(self) -> int:
        """Rewrite the journal keeping only open intents.

        Returns the number of records dropped.  Atomic: the new journal
        is written beside the old one and swapped in with
        ``os.replace``, so a crash mid-compaction leaves the previous
        (larger but complete) journal in place.
        """
        with self._lock:
            records = []
            if self.journal_path.exists():
                records = self._records_unlocked()
            open_keys = set()
            for record in records:
                key = str(record.get("key", ""))
                if record.get("type") == "intent":
                    open_keys.add(key)
                elif record.get("type") in ("commit", "abort"):
                    open_keys.discard(key)
            kept = [r for r in records
                    if r.get("type") == "intent"
                    and str(r.get("key", "")) in open_keys]
            tmp = self.journal_path.with_suffix(".jsonl.tmp")
            with open(tmp, "w", encoding="utf-8") as out:
                for record in kept:
                    out.write(json.dumps(record, sort_keys=True) + "\n")
                out.flush()
                os.fsync(out.fileno())
            os.replace(tmp, self.journal_path)
            return len(records) - len(kept)

    def _records_unlocked(self) -> list[dict[str, Any]]:
        # _records takes no lock itself; this alias documents that
        # compact() already holds it while re-reading.
        return self._records()

"""Health-checked worker-process pool for the simulation service.

Each worker is one OS process running :func:`_worker_main`: it owns a
private :class:`~repro.experiments.Lab` (sharing the on-disk artifact
cache with every sibling) and executes one task at a time received over
a duplex pipe.  The parent side (:class:`WorkerPool`) is the service's
*executor* and enforces the robustness contract:

* **dispatch-time health check** — a worker found dead while idle is
  respawned before it is ever handed a task;
* **crash detection** — a worker that dies mid-task (pipe EOF, process
  exit) is respawned immediately and the task is surfaced as a
  retryable :class:`WorkerTransient` to the scheduler, so no request is
  ever lost with the worker;
* **hang detection** — a task that produces no result within
  ``task_timeout`` seconds gets its worker killed and respawned, again
  surfacing a retryable :class:`WorkerTransient`;
* **deterministic failures** — an exception raised *by the task* inside
  a healthy worker is returned as :class:`TaskFailed` and is never
  retried (it would fail identically again).

Workers are started with the ``spawn`` method: the pool respawns
workers from scheduler threads, and forking a multi-threaded parent can
deadlock the child on inherited lock state.  Side effects are safe to
retry by construction — workers only write the content-addressed cache,
whose entries are atomic and byte-identical for identical keys.

The pool also carries the chaos harness's injection point: an optional
directive source is consulted per dispatch and shipped to the worker
with the task, so seeded kills/hangs/slowdowns land exactly where a
real fault would — inside the worker, mid-task.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from multiprocessing import get_context
from multiprocessing.connection import Connection
from typing import Any, Protocol

from .model import Request

#: Exit code a chaos-killed worker dies with (distinguishable in logs).
CHAOS_EXIT = 43

#: Default per-task wall-clock deadline before a worker counts as hung.
DEFAULT_TASK_TIMEOUT = 60.0


class WorkerTransient(Exception):
    """Retryable executor failure: the worker crashed or hung."""

    def __init__(self, kind: str, detail: str) -> None:
        self.kind = kind          # "worker-lost" | "timeout"
        self.detail = detail
        super().__init__(f"{kind}: {detail}")


class TaskFailed(Exception):
    """Deterministic in-task failure (never retried)."""

    def __init__(self, exc_type: str, message: str) -> None:
        self.exc_type = exc_type
        self.message = message
        super().__init__(f"{exc_type}: {message}")


class DirectiveSource(Protocol):
    """Chaos hook: a directive for the n-th dispatched task (or None)."""

    def directive(self, dispatch: int) -> dict[str, Any] | None:
        ...  # pragma: no cover - protocol


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def execute_request(lab: Any, request: Request) -> dict[str, Any]:
    """Run one request against a Lab; returns a deterministic payload.

    Payloads contain only stable quantities (counts, sizes, digests):
    two executions of the same request must produce identical payloads,
    which is what makes results cacheable, coalescible, and chaos-run
    byte-comparable.
    """
    kind = request.kind
    if kind == "compile":
        exe = lab.executable(request.bench, request.target)
        return {"binary_size": int(exe.binary_size),
                "text_size": int(exe.text_size),
                "text_sha256": _sha256(bytes(exe.text))}
    if kind == "run":
        run = lab.run(request.bench, request.target)
        stats = run.stats
        return {"instructions": int(stats.instructions),
                "loads": int(stats.loads),
                "stores": int(stats.stores),
                "interlocks": int(stats.interlocks),
                "ifetch_words": int(stats.ifetch_words),
                "exit_code": int(stats.exit_code),
                "output_sha256": _sha256(stats.output.encode()),
                "binary_size": int(run.binary_size),
                "text_size": int(run.text_size)}
    if kind == "trace":
        trace = lab.trace(request.bench, request.target)
        return {"instructions": int(trace.run.stats.instructions),
                "itrace_len": len(trace.itrace),
                "dtrace_len": len(trace.dtrace),
                "itrace_sha256": _sha256(trace.itrace.tobytes()),
                "dtrace_sha256": _sha256(trace.dtrace.tobytes())}
    if kind == "lint":
        from ..analysis import Severity, lint_program
        from ..bench import get_benchmark
        from ..cc import get_target

        bench = get_benchmark(request.bench)
        findings = lint_program(bench.source, get_target(request.target))
        by_rule: dict[str, int] = {}
        errors = 0
        for finding in findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
            if finding.severity is Severity.ERROR:
                errors += 1
        return {"findings": len(findings), "errors": errors,
                "by_rule": dict(sorted(by_rule.items()))}
    if kind == "faults":
        from ..faults import plan_cell, run_fault
        from ..faults.model import GoldenRun

        run = lab.run(request.bench, request.target)
        exe = lab.executable(request.bench, request.target)
        stats = run.stats
        golden = GoldenRun(instructions=stats.instructions,
                           interlocks=stats.interlocks,
                           exit_code=stats.exit_code,
                           output=stats.output)
        specs = plan_cell(request.bench, request.target, golden, exe,
                          faults=max(1, request.faults),
                          seed=request.seed)
        outcomes: dict[str, int] = {}
        for spec in specs:
            result = run_fault(exe, spec, golden)
            outcomes[result.outcome] = \
                outcomes.get(result.outcome, 0) + 1
        return {"faults": len(specs), "seed": request.seed,
                "outcomes": dict(sorted(outcomes.items()))}
    raise ValueError(f"unknown request kind {kind!r}")


def _worker_main(conn: Connection, cache_root: str, cache_enabled: bool,
                 max_instructions: int) -> None:
    """Worker process entry: execute tasks until told to stop."""
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from ..experiments import Lab
    from ..labcache import ArtifactCache

    lab = Lab(cache=ArtifactCache(cache_root, enabled=cache_enabled),
              max_instructions=max_instructions)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            return
        _tag, seq, raw, directive = message
        if directive is not None:
            action = directive.get("action")
            if action == "kill":
                os._exit(CHAOS_EXIT)
            sleep_s = float(directive.get("sleep_s", 0.0))
            if sleep_s > 0.0:
                time.sleep(sleep_s)
        request = Request.from_dict(raw)
        try:
            payload = execute_request(lab, request)
        except BaseException as exc:  # noqa: B036 - typed over the pipe
            conn.send((seq, "error",
                       {"type": type(exc).__name__, "message": str(exc)}))
        else:
            conn.send((seq, "ok", payload))


class _Worker:
    """Parent-side record of one worker process."""

    def __init__(self, proc: Any, conn: Connection) -> None:
        self.proc = proc
        self.conn = conn
        self.busy = False


class WorkerPool:
    """Fixed-size pool of single-task workers with restart-on-failure."""

    def __init__(self, *, jobs: int = 2,
                 cache_root: str | os.PathLike[str],
                 cache_enabled: bool = True,
                 max_instructions: int = 2_000_000_000,
                 task_timeout: float = DEFAULT_TASK_TIMEOUT,
                 chaos: DirectiveSource | None = None) -> None:
        self.jobs = max(1, int(jobs))
        self.cache_root = str(cache_root)
        self.cache_enabled = cache_enabled
        self.max_instructions = max_instructions
        self.task_timeout = task_timeout
        self.chaos = chaos
        self.restarts = 0
        self.dispatches = 0
        self._ctx = get_context("spawn")
        self._workers: list[_Worker] = []
        self._cond = threading.Condition()
        self._closed = False

    # --------------------------------------------------------- lifecycle

    def start(self) -> None:
        with self._cond:
            while len(self._workers) < self.jobs:
                self._workers.append(self._spawn())

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.cache_root, self.cache_enabled,
                  self.max_instructions),
            daemon=True)
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            workers, self._workers = self._workers, []
            self._cond.notify_all()
        for worker in workers:
            try:
                if worker.proc.is_alive() and not worker.busy:
                    worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in workers:
            worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
            worker.conn.close()

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ---------------------------------------------------------- dispatch

    def _acquire(self) -> _Worker:
        """An idle, *live* worker (dead idle workers are respawned)."""
        with self._cond:
            while True:
                if self._closed:
                    raise RuntimeError("worker pool is closed")
                for index, worker in enumerate(self._workers):
                    if worker.busy:
                        continue
                    if not worker.proc.is_alive():
                        # Dispatch-time health check: replace a worker
                        # that died while idle before using it.
                        worker.conn.close()
                        self._workers[index] = worker = self._spawn()
                        self.restarts += 1
                    worker.busy = True
                    return worker
                self._cond.wait()

    def _release(self, worker: _Worker, *, respawn: bool) -> None:
        with self._cond:
            if respawn:
                try:
                    index = self._workers.index(worker)
                except ValueError:
                    index = -1
                worker.conn.close()
                if worker.proc.is_alive():
                    worker.proc.kill()
                worker.proc.join(timeout=5.0)
                if index >= 0 and not self._closed:
                    self._workers[index] = self._spawn()
                self.restarts += 1
            else:
                worker.busy = False
            self._cond.notify()

    def run_task(self, request: Request,
                 timeout: float | None = None) -> dict[str, Any]:
        """Execute one request on a worker (blocking).

        Raises :class:`WorkerTransient` on crash/hang (retryable) and
        :class:`TaskFailed` on a deterministic in-task failure.
        """
        deadline = self.task_timeout if timeout is None else timeout
        worker = self._acquire()
        with self._cond:
            self.dispatches += 1
            seq = self.dispatches
        directive = self.chaos.directive(seq) if self.chaos else None
        try:
            worker.conn.send(("task", seq, request.to_dict(), directive))
            if not worker.conn.poll(deadline):
                self._release(worker, respawn=True)
                raise WorkerTransient(
                    "timeout",
                    f"no result within {deadline}s; worker killed "
                    f"and restarted")
            reply = worker.conn.recv()
        except WorkerTransient:
            raise
        except (EOFError, OSError, BrokenPipeError) as exc:
            self._release(worker, respawn=True)
            raise WorkerTransient(
                "worker-lost",
                f"worker process died mid-task "
                f"({type(exc).__name__}); restarted") from exc
        self._release(worker, respawn=False)
        _seq, status, body = reply
        if status == "ok":
            result: dict[str, Any] = body
            return result
        raise TaskFailed(str(body.get("type", "Exception")),
                         str(body.get("message", "")))

"""Direct-mapped, sub-blocked cache with wrap-around prefetch.

This mirrors the organization the paper measured with the dinero
simulator [Hil92]:

* direct-mapped, physically indexed;
* blocks divided into *sub-blocks* (sectors) with per-sub-block valid
  bits — a miss fetches only the demanded sub-block, not the whole block;
* on a demand **read** miss, the following sub-block is prefetched with
  wrap-around within the block ("the word following the missed word is
  always prefetched"); writes allocate but do not prefetch;
* write misses fetch the written sub-block (write-allocate).

Statistics distinguish read and write accesses and count the words of
memory traffic generated (each fetched sub-block moves
``sub_block // 4`` bus words).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache."""

    size: int              # total bytes
    block: int = 32        # block (line) size in bytes
    sub_block: int = 8     # sector size in bytes

    def __post_init__(self):
        if self.size % self.block:
            raise ValueError("cache size must be a multiple of block size")
        if self.block % self.sub_block:
            raise ValueError("block size must be a multiple of sub-block")
        for value, what in ((self.size, "size"), (self.block, "block"),
                            (self.sub_block, "sub-block")):
            if value & (value - 1):
                raise ValueError(f"cache {what} must be a power of two")
        if self.sub_block < 4:
            raise ValueError("sub-block must be at least one word")

    @property
    def num_lines(self) -> int:
        return self.size // self.block

    @property
    def subs_per_block(self) -> int:
        return self.block // self.sub_block


class Cache:
    """One direct-mapped sub-blocked cache."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.tags = [-1] * config.num_lines
        self.valid = [0] * config.num_lines   # per-line sub-block bitmask
        self.read_accesses = 0
        self.read_misses = 0
        self.write_accesses = 0
        self.write_misses = 0
        self.traffic_words = 0

    @property
    def accesses(self) -> int:
        return self.read_accesses + self.write_accesses

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    def reset_stats(self) -> None:
        self.read_accesses = self.read_misses = 0
        self.write_accesses = self.write_misses = 0
        self.traffic_words = 0

    def corrupt_line(self, line: int, *, tag_bit: int | None = None,
                     sub_bit: int | None = None) -> None:
        """Flip one bit of a line's metadata (fault injection).

        ``tag_bit`` flips a bit of the stored tag — a subsequent access
        to the line either falsely misses (extra traffic) or falsely
        hits stale contents; ``sub_bit`` flips one sub-block valid bit.
        Exactly one of the two must be given.
        """
        if (tag_bit is None) == (sub_bit is None):
            raise ValueError("give exactly one of tag_bit/sub_bit")
        if not 0 <= line < self.config.num_lines:
            raise ValueError(f"line {line} out of range")
        if tag_bit is not None:
            self.tags[line] ^= 1 << tag_bit
        else:
            if not 0 <= sub_bit < self.config.subs_per_block:
                raise ValueError(f"sub-block bit {sub_bit} out of range")
            self.valid[line] ^= 1 << sub_bit

    def access(self, addr: int, *, write: bool = False) -> bool:
        """Access one address; returns True on hit."""
        cfg = self.config
        block_index = addr // cfg.block
        line = block_index % cfg.num_lines
        tag = block_index // cfg.num_lines
        sub = (addr % cfg.block) // cfg.sub_block
        bit = 1 << sub
        if write:
            self.write_accesses += 1
        else:
            self.read_accesses += 1
        if self.tags[line] == tag and self.valid[line] & bit:
            return True
        if self.tags[line] != tag:
            self.tags[line] = tag
            self.valid[line] = 0
        words = cfg.sub_block // 4
        if write:
            self.write_misses += 1
            self.valid[line] |= bit
            self.traffic_words += words
        else:
            self.read_misses += 1
            nsubs = cfg.subs_per_block
            next_bit = 1 << ((sub + 1) % nsubs)
            fetched = 1 + ((self.valid[line] & next_bit) == 0)
            self.valid[line] |= bit | next_bit
            self.traffic_words += words * fetched
        return False

    def run_reads(self, addresses) -> None:
        """Feed a read-only address stream (fast path for I-streams)."""
        cfg = self.config
        block_size = cfg.block
        num_lines = cfg.num_lines
        sub_size = cfg.sub_block
        nsubs = cfg.subs_per_block
        words = sub_size // 4
        tags = self.tags
        valid = self.valid
        accesses = misses = traffic = 0
        for addr in addresses:
            accesses += 1
            block_index = addr // block_size
            line = block_index % num_lines
            tag = block_index // num_lines
            sub = (addr % block_size) // sub_size
            bit = 1 << sub
            if tags[line] == tag and valid[line] & bit:
                continue
            misses += 1
            if tags[line] != tag:
                tags[line] = tag
                valid[line] = 0
            next_bit = 1 << ((sub + 1) % nsubs)
            traffic += words * (1 + ((valid[line] & next_bit) == 0))
            valid[line] |= bit | next_bit
        self.read_accesses += accesses
        self.read_misses += misses
        self.traffic_words += traffic

    def run_tagged(self, stream) -> None:
        """Feed a mixed stream of ``addr | 1``-tagged writes and reads."""
        cfg = self.config
        block_size = cfg.block
        num_lines = cfg.num_lines
        sub_size = cfg.sub_block
        nsubs = cfg.subs_per_block
        words = sub_size // 4
        tags = self.tags
        valid = self.valid
        r_acc = r_miss = w_acc = w_miss = traffic = 0
        for entry in stream:
            write = entry & 1
            addr = entry & ~1
            if write:
                w_acc += 1
            else:
                r_acc += 1
            block_index = addr // block_size
            line = block_index % num_lines
            tag = block_index // num_lines
            sub = (addr % block_size) // sub_size
            bit = 1 << sub
            if tags[line] == tag and valid[line] & bit:
                continue
            if tags[line] != tag:
                tags[line] = tag
                valid[line] = 0
            if write:
                w_miss += 1
                valid[line] |= bit
                traffic += words
            else:
                r_miss += 1
                next_bit = 1 << ((sub + 1) % nsubs)
                traffic += words * (1 + ((valid[line] & next_bit) == 0))
                valid[line] |= bit | next_bit
        self.read_accesses += r_acc
        self.read_misses += r_miss
        self.write_accesses += w_acc
        self.write_misses += w_miss
        self.traffic_words += traffic

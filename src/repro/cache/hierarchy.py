"""Split instruction/data cache hierarchy driven by execution traces.

The paper's cache experiments (Section 4.1, Appendix A.3) use separate
on-chip direct-mapped instruction and data caches.  Miss rates are
reported *per instruction* for the I-cache and per read/write
instruction for the D-cache ("miss rates are reported per instruction,
not per fetch request").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.stats import RunStats
from . import vector
from .cache import Cache, CacheConfig
from .multicache import MultiCache


@dataclass(frozen=True)
class CacheRates:
    """Per-instruction miss rates and traffic of one simulation."""

    instructions: int
    imisses: int
    rmisses: int
    wmisses: int
    reads: int
    writes: int
    itraffic_words: int
    dtraffic_words: int

    @property
    def imiss_rate(self) -> float:
        """I-cache misses per executed instruction (paper's convention)."""
        return self.imisses / self.instructions if self.instructions else 0.0

    @property
    def rmiss_rate(self) -> float:
        """D-cache read misses per data-read instruction."""
        return self.rmisses / self.reads if self.reads else 0.0

    @property
    def wmiss_rate(self) -> float:
        """D-cache write misses per data-write instruction."""
        return self.wmisses / self.writes if self.writes else 0.0

    @property
    def total_misses(self) -> int:
        return self.imisses + self.rmisses + self.wmisses


def dedup_consecutive(addresses, mask: int = ~3):
    """Collapse runs of accesses to the same word into one access.

    The fetch unit requests a word once and issues the instructions in
    it; feeding the deduplicated stream to the cache produces identical
    miss counts (a repeated address always hits) at half the cost for
    16-bit instruction streams.
    """
    previous = -1
    for addr in addresses:
        addr &= mask
        if addr != previous:
            previous = addr
            yield addr


def simulate_caches(itrace, dtrace, stats: RunStats, *,
                    icache: CacheConfig, dcache: CacheConfig) -> CacheRates:
    """Run recorded traces through split I/D caches.

    Goes through the vectorized replay engine when numpy is available
    (``REPRO_CACHE_ENGINE=python`` forces the scalar loops, which are
    the oracle in the equivalence tests).
    """
    icache_sim = Cache(icache)
    dcache_sim = Cache(dcache)
    if vector.use_vector():
        vector.replay_reads(icache_sim, itrace, dedup=True)
        vector.replay_tagged(dcache_sim, dtrace)
    else:
        icache_sim.run_reads(dedup_consecutive(itrace))
        dcache_sim.run_tagged(dtrace)
    return _rates(stats, icache_sim, dcache_sim)


def _rates(stats: RunStats, icache_sim: Cache,
           dcache_sim: Cache) -> CacheRates:
    return CacheRates(
        instructions=stats.instructions,
        imisses=icache_sim.read_misses,
        rmisses=dcache_sim.read_misses,
        wmisses=dcache_sim.write_misses,
        reads=dcache_sim.read_accesses,
        writes=dcache_sim.write_accesses,
        itraffic_words=icache_sim.traffic_words,
        dtraffic_words=dcache_sim.traffic_words,
    )


def simulate_caches_grid(itrace, dtrace, stats: RunStats,
                         configs) -> dict[CacheConfig, CacheRates]:
    """Run traces through a whole grid of geometries in one pass each.

    Equivalent to calling :func:`simulate_caches` once per config (same
    geometry for the I- and D-cache, the paper's setup).  With numpy
    available each configuration replays the (pre-converted, pre-
    deduplicated) traces through the vectorized engine; the scalar
    fallback walks the traces exactly once via :class:`MultiCache`,
    updating every configuration simultaneously.
    """
    configs = list(configs)
    if vector.use_vector():
        iaddrs = vector.dedup_words(vector.as_addresses(itrace))
        daddrs = vector.as_addresses(dtrace)
        result = {}
        for config in configs:
            icache_sim = Cache(config)
            dcache_sim = Cache(config)
            vector.replay_reads(icache_sim, iaddrs)
            vector.replay_tagged(dcache_sim, daddrs)
            result[config] = _rates(stats, icache_sim, dcache_sim)
        return result
    imulti = MultiCache(configs)
    dmulti = MultiCache(configs)
    imulti.run_reads(dedup_consecutive(itrace))
    dmulti.run_tagged(dtrace)
    return {config: _rates(stats, imulti[config], dmulti[config])
            for config in configs}

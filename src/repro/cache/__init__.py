"""Trace-driven cache simulation (dinero-equivalent substrate)."""

from .cache import Cache, CacheConfig
from .hierarchy import CacheRates, dedup_consecutive, simulate_caches

__all__ = ["Cache", "CacheConfig", "CacheRates", "dedup_consecutive",
           "simulate_caches"]

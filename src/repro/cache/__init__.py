"""Trace-driven cache simulation (dinero-equivalent substrate)."""

from .cache import Cache, CacheConfig
from .hierarchy import (CacheRates, dedup_consecutive, simulate_caches,
                        simulate_caches_grid)
from .multicache import MultiCache
from .vector import HAVE_NUMPY, replay_reads, replay_tagged, use_vector

__all__ = ["Cache", "CacheConfig", "CacheRates", "HAVE_NUMPY",
           "MultiCache", "dedup_consecutive", "replay_reads",
           "replay_tagged", "simulate_caches", "simulate_caches_grid",
           "use_vector"]

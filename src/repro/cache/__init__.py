"""Trace-driven cache simulation (dinero-equivalent substrate)."""

from .cache import Cache, CacheConfig
from .hierarchy import (CacheRates, dedup_consecutive, simulate_caches,
                        simulate_caches_grid)
from .multicache import MultiCache

__all__ = ["Cache", "CacheConfig", "CacheRates", "MultiCache",
           "dedup_consecutive", "simulate_caches", "simulate_caches_grid"]

"""Single-pass simulation of many cache geometries over one trace.

The paper's cache study sweeps a size x block grid (1K-16K x 8-64B) over
the same address traces; simulating each geometry separately walks a
multi-hundred-thousand-entry trace once *per configuration*.  A
:class:`MultiCache` walks the trace exactly once while updating every
configuration simultaneously:

* configurations sharing a sub-block size share one guaranteed-hit
  check: an access to the same sub-block as the immediately preceding
  access must hit in *every* geometry (the previous access either hit
  or filled that sub-block), so the whole per-config loop is skipped;
* configurations are then grouped by ``(block, sub_block)`` so the
  block index and sub-block bit are computed once per group;
* each configuration keeps its own tag/valid arrays and counters with
  the exact update rules of :class:`~repro.cache.cache.Cache`, so the
  per-configuration results are bit-identical to a sequential sweep
  (property-tested in ``tests/test_multicache.py``).

All geometry parameters are powers of two (enforced by
:class:`CacheConfig`), so the address arithmetic uses shifts and masks.
Results are exposed as real :class:`Cache` objects: downstream code
reads the same ``read_misses``/``traffic_words`` counters either way.
"""

from __future__ import annotations

from .cache import Cache, CacheConfig


def _log2(value: int) -> int:
    return value.bit_length() - 1


class MultiCache:
    """Many direct-mapped sub-blocked caches fed by one trace walk."""

    def __init__(self, configs):
        self.caches: dict[CacheConfig, Cache] = {}
        for config in configs:
            if config not in self.caches:
                self.caches[config] = Cache(config)

    def __getitem__(self, config: CacheConfig) -> Cache:
        return self.caches[config]

    def __iter__(self):
        return iter(self.caches.values())

    def _plan(self):
        """Shared-arithmetic execution plan for one trace walk.

        Returns mutable entries ``[sub_shift, prev_sub_addr, groups]``,
        one per distinct sub-block size; ``groups`` is one tuple per
        distinct ``(block, sub_block)``::

            (block_shift, nsubs_mask, nsubs, words, members)

        and each member carries its per-config state::

            (line_mask, tag_shift, tags, valid, counters, cache)

        with ``counters = [read_misses, write_misses, traffic_words]``
        flushed into the owning :class:`Cache` after the walk.
        """
        by_sub: dict[int, dict[tuple[int, int], list]] = {}
        for config, cache in self.caches.items():
            groups = by_sub.setdefault(config.sub_block, {})
            members = groups.setdefault((config.block, config.sub_block),
                                        [])
            members.append((config.num_lines - 1, _log2(config.num_lines),
                            cache.tags, cache.valid, [0, 0, 0], cache))
        plan = []
        for sub_size, groups in by_sub.items():
            packed = []
            for (block, sub), members in groups.items():
                nsubs = block // sub
                packed.append((_log2(block), nsubs - 1, nsubs, sub // 4,
                               members))
            plan.append([_log2(sub_size), -1, packed])
        return plan

    def _flush(self, plan, reads: int, writes: int) -> None:
        for _sub_shift, _prev, groups in plan:
            for _bs, _nm, _ns, _w, members in groups:
                for _lm, _ts, _tags, _valid, counters, cache in members:
                    cache.read_accesses += reads
                    cache.write_accesses += writes
                    cache.read_misses += counters[0]
                    cache.write_misses += counters[1]
                    cache.traffic_words += counters[2]

    # ------------------------------------------------------------ streams

    def run_reads(self, addresses) -> None:
        """Feed a read-only stream to every configuration at once."""
        plan = self._plan()
        count = 0
        for addr in addresses:
            count += 1
            for entry in plan:
                sub_addr = addr >> entry[0]
                if sub_addr == entry[1]:
                    continue
                entry[1] = sub_addr
                for block_shift, nsubs_mask, _nsubs, words, members \
                        in entry[2]:
                    block_index = addr >> block_shift
                    sub = sub_addr & nsubs_mask
                    bit = 1 << sub
                    for line_mask, tag_shift, tags, valid, counters, \
                            _cache in members:
                        line = block_index & line_mask
                        tag = block_index >> tag_shift
                        if tags[line] == tag:
                            if valid[line] & bit:
                                continue
                        else:
                            tags[line] = tag
                            valid[line] = 0
                        counters[0] += 1
                        next_bit = 1 << ((sub + 1) & nsubs_mask)
                        counters[2] += words * (
                            1 + ((valid[line] & next_bit) == 0))
                        valid[line] |= bit | next_bit
        self._flush(plan, count, 0)

    def run_tagged(self, stream) -> None:
        """Feed an ``addr | 1``-tagged read/write stream to every config."""
        plan = self._plan()
        reads = writes = 0
        for entry_addr in stream:
            write = entry_addr & 1
            addr = entry_addr & ~1
            if write:
                writes += 1
            else:
                reads += 1
            for entry in plan:
                sub_addr = addr >> entry[0]
                if sub_addr == entry[1]:
                    continue
                entry[1] = sub_addr
                for block_shift, nsubs_mask, _nsubs, words, members \
                        in entry[2]:
                    block_index = addr >> block_shift
                    sub = sub_addr & nsubs_mask
                    bit = 1 << sub
                    for line_mask, tag_shift, tags, valid, counters, \
                            _cache in members:
                        line = block_index & line_mask
                        tag = block_index >> tag_shift
                        if tags[line] == tag:
                            if valid[line] & bit:
                                continue
                        else:
                            tags[line] = tag
                            valid[line] = 0
                        if write:
                            counters[1] += 1
                            counters[2] += words
                            valid[line] |= bit
                        else:
                            counters[0] += 1
                            next_bit = 1 << ((sub + 1) & nsubs_mask)
                            counters[2] += words * (
                                1 + ((valid[line] & next_bit) == 0))
                            valid[line] |= bit | next_bit
        self._flush(plan, reads, writes)

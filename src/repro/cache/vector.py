"""Vectorized (numpy) trace replay for the direct-mapped caches.

:func:`replay_reads` and :func:`replay_tagged` are drop-in accelerated
executors for :meth:`Cache.run_reads` / :meth:`Cache.run_tagged`: they
mutate the same :class:`~repro.cache.cache.Cache` instance -- counters
*and* tag/valid state -- and produce results identical to the scalar
loops, which remain the oracle in the equivalence tests.

The trick is that a direct-mapped cache's lines are independent, so the
trace can be regrouped line-major without changing any line's history:

1. decompose every address into (line, tag, sub-block) with vector
   shifts, then stable-argsort by line -- each line's subsequence keeps
   its original order;
2. split each line's subsequence into *epochs*: maximal runs of equal
   block index.  Distinct consecutive block indices on one line always
   differ in tag, so every epoch boundary is exactly one scalar-loop
   tag replacement (reset valid bits, install tag);
3. within an epoch, sub-block valid bits are only ever set, so every
   access after the first to the same (epoch, sub) is a guaranteed hit
   with no state or traffic effect.  ``np.unique`` on the
   ``epoch * nsubs + sub`` key compresses the trace to first-demands;
4. a compact Python loop walks only the first-demands (chronological
   within each line) applying the scalar miss rules verbatim --
   including wrap-around read prefetch, its conditional second
   sub-block of traffic, and warm-start tag/valid state.

For looping programs the compressed stream is orders of magnitude
shorter than the trace, so the per-reference Python cost disappears
into a handful of numpy passes.

numpy is an optional dependency (the ``[perf]`` extra): when it is not
importable, :data:`HAVE_NUMPY` is False and callers fall back to the
scalar loops.  ``REPRO_CACHE_ENGINE=python`` forces the fallback.
"""

from __future__ import annotations

import os

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via env override
    _np = None

HAVE_NUMPY = _np is not None

#: Environment override: ``python`` forces the scalar loops,
#: ``numpy`` insists on the vector engine (raising if unavailable).
ENGINE_ENV = "REPRO_CACHE_ENGINE"


def use_vector() -> bool:
    """Should trace sweeps go through the vectorized engine?"""
    choice = os.environ.get(ENGINE_ENV, "")
    if choice == "python":
        return False
    if choice == "numpy":
        if not HAVE_NUMPY:
            raise RuntimeError(
                f"{ENGINE_ENV}=numpy but numpy is not installed")
        return True
    return HAVE_NUMPY


def as_addresses(addresses):
    """Copy any address stream into an int64 ndarray.

    Accepts sized containers (lists, ``array('I')`` traces, ndarrays)
    and plain iterators/generators -- callers hand both in.
    """
    if hasattr(addresses, "__len__"):
        return _np.asarray(addresses, dtype=_np.int64)
    return _np.fromiter(addresses, dtype=_np.int64)


def dedup_words(a):
    """Vectorized :func:`repro.cache.hierarchy.dedup_consecutive`."""
    a = a & ~3
    if a.size == 0:
        return a
    keep = _np.empty(a.size, dtype=bool)
    keep[0] = True
    keep[1:] = a[1:] != a[:-1]
    return a[keep]


def _first_demands(cfg, addrs):
    """Compress a trace to its per-(epoch, sub-block) first demands.

    Returns ``(order, line, tag, sub, first)``: ``order`` is the
    line-major stable sort permutation, ``line``/``tag``/``sub`` the
    line-sorted decomposition, and ``first`` the compressed indices
    into the sorted trace, in line-major chronological order.
    """
    block_shift = cfg.block.bit_length() - 1
    sub_shift = cfg.sub_block.bit_length() - 1
    num_lines = cfg.num_lines
    line_shift = num_lines.bit_length() - 1
    nsubs = cfg.subs_per_block

    bi = addrs >> block_shift
    line = bi & (num_lines - 1)
    tag = bi >> line_shift
    sub = (addrs >> sub_shift) & (nsubs - 1)

    order = _np.argsort(line, kind="stable")
    line = line[order]
    bi = bi[order]
    tag = tag[order]
    sub = sub[order]

    new_epoch = _np.empty(addrs.size, dtype=bool)
    new_epoch[0] = True
    new_epoch[1:] = (line[1:] != line[:-1]) | (bi[1:] != bi[:-1])
    epoch = _np.cumsum(new_epoch)
    _, first = _np.unique(epoch * nsubs + sub, return_index=True)
    first.sort()
    return order, line, tag, sub, first


def replay_reads(cache, addresses, *, dedup: bool = False) -> None:
    """Vectorized :meth:`Cache.run_reads` (optionally word-deduped)."""
    addrs = as_addresses(addresses)
    if dedup:
        addrs = dedup_words(addrs)
    cache.read_accesses += addrs.size
    if not addrs.size:
        return
    cfg = cache.config
    nsubs = cfg.subs_per_block
    words = cfg.sub_block // 4
    _, line, tag, sub, first = _first_demands(cfg, addrs)
    tags = cache.tags
    valid = cache.valid
    misses = traffic = 0
    for L, T, S in zip(line[first].tolist(), tag[first].tolist(),
                       sub[first].tolist()):
        if tags[L] != T:
            tags[L] = T
            valid[L] = 0
        bit = 1 << S
        v = valid[L]
        if v & bit:
            continue
        misses += 1
        next_bit = 1 << ((S + 1) % nsubs)
        traffic += words * (1 + ((v & next_bit) == 0))
        valid[L] = v | bit | next_bit
    cache.read_misses += misses
    cache.traffic_words += traffic


def replay_tagged(cache, stream) -> None:
    """Vectorized :meth:`Cache.run_tagged` (``addr | 1`` marks writes)."""
    entries = as_addresses(stream)
    if not entries.size:
        return
    write = entries & 1
    addrs = entries & ~1
    nwrites = int(write.sum())
    cache.write_accesses += nwrites
    cache.read_accesses += entries.size - nwrites
    cfg = cache.config
    nsubs = cfg.subs_per_block
    words = cfg.sub_block // 4
    order, line, tag, sub, first = _first_demands(cfg, addrs)
    write = write[order]
    tags = cache.tags
    valid = cache.valid
    r_miss = w_miss = traffic = 0
    for L, T, S, W in zip(line[first].tolist(), tag[first].tolist(),
                          sub[first].tolist(), write[first].tolist()):
        if tags[L] != T:
            tags[L] = T
            valid[L] = 0
        bit = 1 << S
        v = valid[L]
        if v & bit:
            continue
        if W:
            w_miss += 1
            valid[L] = v | bit
            traffic += words
        else:
            r_miss += 1
            next_bit = 1 << ((S + 1) % nsubs)
            traffic += words * (1 + ((v & next_bit) == 0))
            valid[L] = v | bit | next_bit
    cache.read_misses += r_miss
    cache.write_misses += w_miss
    cache.traffic_words += traffic

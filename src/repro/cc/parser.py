"""Recursive-descent parser for minic.

Grammar summary (C subset)::

    program     := (struct_def | func_def | global_decl)*
    struct_def  := 'struct' IDENT '{' (type declarator ';')* '}' ';'
    func_def    := type declarator '(' params ')' block
    global_decl := type declarator ('=' initializer)? (',' declarator ...)? ';'
    stmt        := block | if | while | do-while | for | return
                 | break | continue | decl | expr ';'
    expr        := assignment with full C operator precedence
"""

from __future__ import annotations

from . import ast_nodes as ast
from .lexer import Token, tokenize
from .types import (ArrayType, CHAR, DOUBLE, FLOAT, INT, StructType,
                    Type, VOID, layout_struct, pointer_to)


class ParseError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


_BASE_TYPES = {"int": INT, "char": CHAR, "float": FLOAT, "double": DOUBLE,
               "void": VOID}

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=",
               "&=", "|=", "^="}


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.structs: dict[str, StructType] = {}

    # ------------------------------------------------------------ helpers

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, ahead: int = 1) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.tok
        if tok.text != text:
            raise ParseError(f"expected {text!r}, found {tok.text!r}",
                             tok.line)
        return self.advance()

    def accept(self, text: str) -> bool:
        if self.tok.text == text:
            self.advance()
            return True
        return False

    def fail(self, message: str):
        raise ParseError(message, self.tok.line)

    # -------------------------------------------------------------- types

    def at_type(self) -> bool:
        tok = self.tok
        if tok.kind == "kw" and tok.text in _BASE_TYPES:
            return True
        return tok.kind == "kw" and tok.text == "struct"

    def parse_base_type(self) -> Type:
        tok = self.tok
        if tok.text == "struct":
            self.advance()
            name = self.expect_ident()
            if name not in self.structs:
                self.fail(f"unknown struct {name!r}")
            return self.structs[name]
        if tok.kind == "kw" and tok.text in _BASE_TYPES:
            self.advance()
            return _BASE_TYPES[tok.text]
        self.fail(f"expected type, found {tok.text!r}")

    def parse_pointers(self, base: Type) -> Type:
        ty = base
        while self.accept("*"):
            ty = pointer_to(ty)
        return ty

    def expect_ident(self) -> str:
        tok = self.tok
        if tok.kind != "ident":
            self.fail(f"expected identifier, found {tok.text!r}")
        self.advance()
        return tok.text

    def parse_array_suffix(self, ty: Type) -> Type:
        dims = []
        while self.accept("["):
            if self.accept("]"):
                dims.append(0)      # unsized: length inferred from init
                continue
            size_tok = self.tok
            if size_tok.kind != "int":
                self.fail("array dimension must be an integer literal")
            self.advance()
            self.expect("]")
            dims.append(size_tok.value)
        for dim in reversed(dims):
            ty = ArrayType(element=ty, length=dim)
        return ty

    # ---------------------------------------------------------- top level

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self.tok.kind != "eof":
            if self.tok.text == "struct" and self.peek(2).text == "{":
                self.parse_struct_def()
                continue
            base = self.parse_base_type()
            self.parse_top_decl(base, program)
        program.structs = dict(self.structs)
        return program

    def parse_struct_def(self) -> None:
        line = self.tok.line
        self.expect("struct")
        name = self.expect_ident()
        if name in self.structs:
            raise ParseError(f"duplicate struct {name!r}", line)
        placeholder = StructType(name=name, fields=())
        self.structs[name] = placeholder   # allow self-referential pointers
        self.expect("{")
        members: list[tuple[str, Type]] = []
        while not self.accept("}"):
            base = self.parse_base_type()
            while True:
                ty = self.parse_pointers(base)
                member = self.expect_ident()
                ty = self.parse_array_suffix(ty)
                members.append((member, ty))
                if not self.accept(","):
                    break
            self.expect(";")
        self.expect(";")
        layout_struct(name, members, into=placeholder)

    def parse_top_decl(self, base: Type, program: ast.Program) -> None:
        ty = self.parse_pointers(base)
        line = self.tok.line
        name = self.expect_ident()
        if self.tok.text == "(":
            program.functions.append(self.parse_func_def(ty, name, line))
            return
        while True:
            full_ty = self.parse_array_suffix(ty)
            init = None
            if self.accept("="):
                init = self.parse_initializer()
            program.globals.append(
                ast.GlobalDecl(name=name, type=full_ty, init=init, line=line))
            if not self.accept(","):
                break
            ty = self.parse_pointers(base)
            name = self.expect_ident()
        self.expect(";")

    def parse_initializer(self):
        if self.tok.text == "{":
            self.advance()
            items = []
            while not self.accept("}"):
                items.append(self.parse_initializer())
                if self.tok.text != "}":
                    self.expect(",")
            return items
        if self.tok.kind == "string":
            tok = self.advance()
            return ast.StrLit(line=tok.line, value=tok.value)
        return self.parse_assignment()

    def parse_func_def(self, ret: Type, name: str, line: int) -> ast.FuncDef:
        self.expect("(")
        params: list[ast.Param] = []
        if not self.accept(")"):
            if self.tok.text == "void" and self.peek().text == ")":
                self.advance()
            else:
                while True:
                    base = self.parse_base_type()
                    ty = self.parse_pointers(base)
                    pname = self.expect_ident()
                    ty = self.parse_array_suffix(ty)
                    if isinstance(ty, ArrayType):
                        ty = pointer_to(ty.element)   # parameter decay
                    params.append(ast.Param(pname, ty))
                    if not self.accept(","):
                        break
            self.expect(")")
        body = self.parse_block()
        return ast.FuncDef(name=name, return_type=ret, params=params,
                           body=body, line=line)

    # --------------------------------------------------------- statements

    def parse_block(self) -> ast.Block:
        line = self.tok.line
        self.expect("{")
        body: list[ast.Stmt] = []
        while not self.accept("}"):
            body.append(self.parse_statement())
        return ast.Block(line=line, body=body)

    def parse_statement(self) -> ast.Stmt:
        tok = self.tok
        if tok.text == "{":
            return self.parse_block()
        if tok.text == "if":
            return self.parse_if()
        if tok.text == "while":
            return self.parse_while()
        if tok.text == "do":
            return self.parse_do_while()
        if tok.text == "for":
            return self.parse_for()
        if tok.text == "return":
            self.advance()
            value = None if self.tok.text == ";" else self.parse_expr()
            self.expect(";")
            return ast.Return(line=tok.line, value=value)
        if tok.text == "break":
            self.advance()
            self.expect(";")
            return ast.Break(line=tok.line)
        if tok.text == "continue":
            self.advance()
            self.expect(";")
            return ast.Continue(line=tok.line)
        if self.at_type():
            return self.parse_local_decl()
        if tok.text == ";":
            self.advance()
            return ast.Block(line=tok.line, body=[])
        expr = self.parse_expr()
        self.expect(";")
        return ast.ExprStmt(line=tok.line, expr=expr)

    def parse_local_decl(self) -> ast.Stmt:
        line = self.tok.line
        base = self.parse_base_type()
        decls: list[ast.Stmt] = []
        while True:
            ty = self.parse_pointers(base)
            name = self.expect_ident()
            ty = self.parse_array_suffix(ty)
            init = None
            if self.accept("="):
                init = self.parse_initializer()
            decls.append(ast.VarDecl(line=line, name=name, type=ty,
                                     init=init))
            if not self.accept(","):
                break
        self.expect(";")
        if len(decls) == 1:
            return decls[0]
        return ast.DeclList(line=line, decls=decls)

    def parse_if(self) -> ast.If:
        line = self.tok.line
        self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self.parse_statement()
        other = self.parse_statement() if self.accept("else") else None
        return ast.If(line=line, cond=cond, then=then, other=other)

    def parse_while(self) -> ast.While:
        line = self.tok.line
        self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body = self.parse_statement()
        return ast.While(line=line, cond=cond, body=body)

    def parse_do_while(self) -> ast.DoWhile:
        line = self.tok.line
        self.expect("do")
        body = self.parse_statement()
        self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        self.expect(";")
        return ast.DoWhile(line=line, body=body, cond=cond)

    def parse_for(self) -> ast.For:
        line = self.tok.line
        self.expect("for")
        self.expect("(")
        init: ast.Stmt | None = None
        if not self.accept(";"):
            if self.at_type():
                init = self.parse_local_decl()
            else:
                init = ast.ExprStmt(line=line, expr=self.parse_expr())
                self.expect(";")
        cond = None if self.tok.text == ";" else self.parse_expr()
        self.expect(";")
        step = None if self.tok.text == ")" else self.parse_expr()
        self.expect(")")
        body = self.parse_statement()
        return ast.For(line=line, init=init, cond=cond, step=step, body=body)

    # -------------------------------------------------------- expressions

    def parse_expr(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self.tok.text == ",":   # comma operator (rare; for loops)
            self.advance()
            right = self.parse_assignment()
            expr = ast.Binary(line=expr.line, op=",", left=expr, right=right)
        return expr

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_conditional()
        tok = self.tok
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            self.advance()
            value = self.parse_assignment()
            return ast.Assign(line=tok.line, op=tok.text, target=left,
                              value=value)
        return left

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_binary(1)
        if self.tok.text != "?":
            return cond
        line = self.advance().line
        then = self.parse_assignment()
        self.expect(":")
        other = self.parse_conditional()
        return ast.Conditional(line=line, cond=cond, then=then, other=other)

    def parse_binary(self, min_prec: int) -> ast.Expr:
        left = self.parse_unary()
        while True:
            tok = self.tok
            prec = _PRECEDENCE.get(tok.text, 0) if tok.kind == "op" else 0
            if prec < min_prec:
                return left
            self.advance()
            right = self.parse_binary(prec + 1)
            left = ast.Binary(line=tok.line, op=tok.text, left=left,
                              right=right)

    def parse_unary(self) -> ast.Expr:
        tok = self.tok
        if tok.kind == "op" and tok.text in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(line=tok.line, op=tok.text, operand=operand)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(line=tok.line, op=tok.text, operand=operand)
        if tok.text == "sizeof":
            self.advance()
            self.expect("(")
            if not self.at_type():
                self.fail("sizeof requires a type name in minic")
            ty = self.parse_pointers(self.parse_base_type())
            ty = self.parse_array_suffix(ty)
            self.expect(")")
            return ast.SizeofType(line=tok.line, type=ty)
        if tok.text == "(" and self._is_cast():
            self.advance()
            ty = self.parse_pointers(self.parse_base_type())
            self.expect(")")
            operand = self.parse_unary()
            return ast.Cast(line=tok.line, type=ty, operand=operand)
        return self.parse_postfix()

    def _is_cast(self) -> bool:
        nxt = self.peek()
        return (nxt.kind == "kw"
                and (nxt.text in _BASE_TYPES or nxt.text == "struct"))

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.tok
            if tok.text == "[":
                self.advance()
                index = self.parse_expr()
                self.expect("]")
                expr = ast.Index(line=tok.line, base=expr, index=index)
            elif tok.text == ".":
                self.advance()
                name = self.expect_ident()
                expr = ast.Member(line=tok.line, base=expr, name=name)
            elif tok.text == "->":
                self.advance()
                name = self.expect_ident()
                expr = ast.Member(line=tok.line, base=expr, name=name,
                                  arrow=True)
            elif tok.text in ("++", "--"):
                self.advance()
                expr = ast.Postfix(line=tok.line, op=tok.text, operand=expr)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.tok
        if tok.kind == "int":
            self.advance()
            return ast.IntLit(line=tok.line, value=tok.value)
        if tok.kind == "float":
            self.advance()
            return ast.FloatLit(line=tok.line, value=tok.value)
        if tok.kind == "floatf":
            self.advance()
            return ast.FloatLit(line=tok.line, value=tok.value,
                                is_single=True)
        if tok.kind == "string":
            self.advance()
            return ast.StrLit(line=tok.line, value=tok.value)
        if tok.kind == "ident":
            if self.peek().text == "(":
                name = self.advance().text
                self.expect("(")
                args = []
                if not self.accept(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept(","):
                            break
                    self.expect(")")
                return ast.Call(line=tok.line, name=name, args=args)
            self.advance()
            return ast.Ident(line=tok.line, name=tok.text)
        if tok.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        self.fail(f"unexpected token {tok.text!r}")


def parse(source: str) -> ast.Program:
    """Parse minic source into an AST."""
    return Parser(source).parse_program()

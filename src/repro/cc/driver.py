"""Compiler driver: minic source -> assembly -> linked executable.

The driver performs whole-program compilation, concatenating the runtime
library with the user program so that one compiler invocation (and one
set of target restrictions) covers every instruction the benchmark will
execute — the paper's "library source is identical" footnote.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import __version__ as TOOLCHAIN_VERSION
from ..asm import assemble, link
from ..asm.objfile import Executable
from .codegen import generate_assembly
from .irgen import lower_program
from .opt import optimize_module
from .parser import parse
from .runtime import RUNTIME_SOURCE
from .target import TargetSpec, get_target


def toolchain_fingerprint() -> str:
    """Identifies the generation of code this toolchain produces.

    Folded into every persistent artifact-cache key: compiled artifacts
    are only reusable by processes running the same toolchain
    generation, so a change to the compiler's output must come with a
    version bump to invalidate caches.
    """
    return f"repro-{TOOLCHAIN_VERSION}"


@dataclass
class CompileResult:
    """Everything produced by one compilation."""

    target: TargetSpec
    assembly: str
    executable: Executable

    @property
    def binary_size(self) -> int:
        return self.executable.binary_size


def compile_to_assembly(source: str, target: TargetSpec | str, *,
                        opt_level: int = 2,
                        include_runtime: bool = True,
                        schedule: bool = True,
                        verify_ir: bool = False) -> str:
    """Compile minic source to an assembly listing.

    ``verify_ir`` runs the IR verifier between every optimizer pass; a
    broken invariant raises
    :class:`~repro.cc.opt.PassVerificationError` naming the pass.
    """
    if isinstance(target, str):
        target = get_target(target)
    full_source = (RUNTIME_SOURCE + "\n" + source) if include_runtime \
        else source
    program = parse(full_source)
    module = lower_program(program)
    optimize_module(module, level=opt_level, verify=verify_ir)
    return generate_assembly(module, target,
                             schedule=schedule and opt_level >= 1)


def build_executable(source: str, target: TargetSpec | str, *,
                     opt_level: int = 2,
                     include_runtime: bool = True,
                     schedule: bool = True,
                     verify_ir: bool = False) -> CompileResult:
    """Compile, assemble and link a minic program."""
    if isinstance(target, str):
        target = get_target(target)
    assembly = compile_to_assembly(source, target, opt_level=opt_level,
                                   include_runtime=include_runtime,
                                   schedule=schedule,
                                   verify_ir=verify_ir)
    obj = assemble(assembly, target.isa)
    executable = link([obj])
    return CompileResult(target=target, assembly=assembly,
                         executable=executable)


def compile_and_run(source: str, target: TargetSpec | str, *,
                    stdin: bytes = b"", opt_level: int = 2,
                    include_runtime: bool = True,
                    max_instructions: int = 2_000_000_000,
                    trace_instructions: bool = False,
                    trace_data: bool = False,
                    verify_ir: bool = False):
    """Compile and execute; returns (stats, machine, result)."""
    from ..machine import run_executable

    result = build_executable(source, target, opt_level=opt_level,
                              include_runtime=include_runtime,
                              verify_ir=verify_ir)
    stats, machine = run_executable(
        result.executable, stdin=stdin,
        max_instructions=max_instructions,
        trace_instructions=trace_instructions, trace_data=trace_data)
    return stats, machine, result

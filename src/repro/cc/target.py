"""Target descriptions: the knobs the paper's experiments turn.

A :class:`TargetSpec` couples an instruction encoding with the *code
generator restrictions* the paper studies (Section 3.3):

* ``num_gregs`` / ``num_fregs`` — visible register file size (Figure 6/7:
  DLXe restricted to 16 registers);
* ``three_address`` — whether ALU results may target a third register
  (Figure 8/9: DLXe restricted to two-address code);
* ``wide_immediates`` — 16-bit immediates, immediate compares, immediate
  logical ops and large displacements (Figure 10 / Table 4; always off
  for D16, normally on for DLXe).

Register conventions (both ISAs, so the comparison stays level)::

    r0   DLXe: hardwired zero.  D16: compare result / branch test
    r1   link register (jl)
    r2   return value, first argument
    r2-r5   integer arguments (then the stack)
    r2-r7   caller-saved
    r8   secondary scratch (FP transfer data during fixups)
    r9   assembler temporary (AT) for emission-time fixups
    r10-r13 callee-saved
    r14  gp (global pointer = start of the data segment)
    r15  sp
    r16-r31 (DLXe-32 only) callee-saved
    f0:f1   FP return value and FP scratch pair
    f2-f8   caller-saved FP argument pairs (f2, f4, f6, f8)
    f10-f14 callee-saved FP pairs (plus f16.. on 32-register files)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import D16 as D16_ISA
from ..isa import DLXE as DLXE_ISA
from ..isa import IsaSpec
from ..isa.d16 import (LDC_RANGE, MAX_MEM_OFFSET, MAX_RI_IMM, MVI_IMM_BITS)

REG_LINK = 1
REG_RET = 2
REG_AT2 = 8
REG_AT = 9
REG_GP = 14
REG_SP = 15
INT_ARG_REGS = (2, 3, 4, 5)
FP_ARG_PAIRS = (2, 4)           # even FPR index of each argument pair
FP_RET_PAIR = 0


@dataclass(frozen=True)
class TargetSpec:
    """One compiler configuration of the baseline processor."""

    name: str
    isa: IsaSpec
    num_gregs: int
    num_fregs: int
    three_address: bool
    wide_immediates: bool

    # ------------------------------------------------------ register sets

    @property
    def allocatable_int(self) -> tuple[int, ...]:
        regs = [2, 3, 4, 5, 6, 7, 10, 11, 12, 13]
        if self.num_gregs > 16:
            regs.extend(range(16, self.num_gregs))
        return tuple(regs)

    @property
    def callee_saved_int(self) -> frozenset[int]:
        saved = set(range(10, 14))
        if self.num_gregs > 16:
            saved.update(range(16, self.num_gregs))
        return frozenset(saved)

    @property
    def allocatable_fp_pairs(self) -> tuple[int, ...]:
        pairs = [2, 4, 6, 8, 10, 12, 14]
        if self.num_fregs > 16:
            pairs.extend(range(16, self.num_fregs, 2))
        return tuple(pairs)

    @property
    def callee_saved_fp_pairs(self) -> frozenset[int]:
        # f2/f4 are argument pairs; roughly half of the rest is
        # callee-saved, like the MIPS-era conventions the paper assumes.
        saved = {6, 8, 10, 12, 14}
        if self.num_fregs > 16:
            saved.update(range(22, self.num_fregs, 2))
        return frozenset(saved)

    # --------------------------------------------------- immediate ranges

    def alu_imm_ok(self, op: str, value: int) -> bool:
        """Can ``op``'s second operand be this immediate?"""
        if op in ("shl", "shr", "shra"):
            return 0 <= value <= 31
        if op in ("add", "sub"):
            if self.wide_immediates:
                return -32768 <= value <= 32767
            return -MAX_RI_IMM <= value <= MAX_RI_IMM   # addi or subi
        if op in ("and", "or", "xor"):
            return self.wide_immediates and -32768 <= value <= 32767
        return False

    def cmp_imm_ok(self, value: int) -> bool:
        return self.wide_immediates and -32768 <= value <= 32767

    def mem_offset_ok(self, size: int, offset: int) -> bool:
        """Can a load/store of ``size`` bytes use this displacement?"""
        if self.wide_immediates:
            return -32768 <= offset <= 32767
        if size == 4:
            return 0 <= offset <= MAX_MEM_OFFSET and offset % 4 == 0
        return offset == 0      # D16 subword modes are not offsettable

    def mvi_ok(self, value: int) -> bool:
        if self.wide_immediates:
            return -32768 <= value <= 32767
        bound = 1 << (MVI_IMM_BITS - 1)
        return -bound <= value < bound


D16_TARGET = TargetSpec(
    name="d16",
    isa=D16_ISA,
    num_gregs=16,
    num_fregs=16,
    three_address=False,
    wide_immediates=False,
)

DLXE_TARGET = TargetSpec(
    name="dlxe",
    isa=DLXE_ISA,
    num_gregs=32,
    num_fregs=32,
    three_address=True,
    wide_immediates=True,
)

#: The paper's ablation corners (Table 5-7 column labels).
DLXE_16_2 = TargetSpec("dlxe/16/2", DLXE_ISA, 16, 16, False, True)
DLXE_16_3 = TargetSpec("dlxe/16/3", DLXE_ISA, 16, 16, True, True)
DLXE_32_2 = TargetSpec("dlxe/32/2", DLXE_ISA, 32, 32, False, True)
DLXE_32_3 = DLXE_TARGET

#: Extension ablation: DLXe encoding restricted to D16-sized immediates.
DLXE_NARROW = TargetSpec("dlxe/narrow", DLXE_ISA, 16, 16, False, False)

TARGETS = {
    "d16": D16_TARGET,
    "dlxe": DLXE_TARGET,
    "dlxe/16/2": DLXE_16_2,
    "dlxe/16/3": DLXE_16_3,
    "dlxe/32/2": DLXE_32_2,
    "dlxe/32/3": DLXE_32_3,
    "dlxe/narrow": DLXE_NARROW,
}

#: D16 constant-pool reach, re-exported for the pool manager.
D16_POOL_RANGE = LDC_RANGE


def get_target(name: str) -> TargetSpec:
    try:
        return TARGETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown target {name!r}; "
            f"expected one of {sorted(TARGETS)}") from None

'''The minic runtime library, itself written in minic.

Mirrors the paper's setup ("some of the library code, including the
floating point math routines, came from public BSD sources"): everything
above the four trap intrinsics (putchar/getchar/exit/sbrk) is compiled
from source with the same compiler and ISA as the benchmark, so library
code participates in the density and path-length measurements.

Contents: formatted output helpers, string/memory routines, a bump
allocator, a linear-congruential PRNG, and software math (sqrt via
Newton, sin/cos/exp by series with range reduction, log via atanh
series, atan with argument halving).
'''

RUNTIME_SOURCE = r"""
/* ------------------------------------------------------------------ io */

void puts(char *s) {
    while (*s) {
        putchar(*s);
        s = s + 1;
    }
}

void putln(char *s) {
    puts(s);
    putchar('\n');
}

void puti(int n) {
    char buf[12];
    int i;
    if (n == 0) { putchar('0'); return; }
    if (n < 0) {
        putchar('-');
        if (n == -2147483647 - 1) {   /* INT_MIN has no positive twin */
            puti(-(n / 10));
            putchar('0' + (-(n % 10)));
            return;
        }
        n = -n;
    }
    i = 0;
    while (n > 0) {
        buf[i] = '0' + n % 10;
        n = n / 10;
        i = i + 1;
    }
    while (i > 0) {
        i = i - 1;
        putchar(buf[i]);
    }
}

void putu(int n) {
    int q, r;
    if (n >= 0) { puti(n); return; }
    q = ((n >> 1) & 2147483647) / 5;
    r = n - q * 10;
    if (r >= 10) { q = q + 1; r = r - 10; }
    if (r < 0)  { q = q - 1; r = r + 10; }
    puti(q);
    putchar('0' + r);
}

void puthex(int n) {
    int i, digit, started;
    started = 0;
    for (i = 28; i >= 0; i = i - 4) {
        digit = (n >> i) & 15;
        if (digit || started || i == 0) {
            started = 1;
            if (digit < 10) putchar('0' + digit);
            else putchar('a' + digit - 10);
        }
    }
}

void putd(double x, int prec) {
    int ip, i, digit;
    double frac, scale;
    if (x < 0.0) {
        putchar('-');
        x = -x;
    }
    ip = (int) x;
    puti(ip);
    if (prec <= 0) return;
    putchar('.');
    frac = x - (double) ip;
    for (i = 0; i < prec; i = i + 1) {
        frac = frac * 10.0;
        digit = (int) frac;
        if (digit > 9) digit = 9;
        putchar('0' + digit);
        frac = frac - (double) digit;
    }
}

/* -------------------------------------------------------------- string */

int strlen(char *s) {
    int n;
    n = 0;
    while (s[n]) n = n + 1;
    return n;
}

int strcmp(char *a, char *b) {
    while (*a && *a == *b) {
        a = a + 1;
        b = b + 1;
    }
    return *a - *b;
}

int strncmp(char *a, char *b, int n) {
    while (n > 0 && *a && *a == *b) {
        a = a + 1;
        b = b + 1;
        n = n - 1;
    }
    if (n == 0) return 0;
    return *a - *b;
}

char *strcpy(char *dst, char *src) {
    char *out;
    out = dst;
    while (*src) {
        *dst = *src;
        dst = dst + 1;
        src = src + 1;
    }
    *dst = 0;
    return out;
}

char *strcat(char *dst, char *src) {
    strcpy(dst + strlen(dst), src);
    return dst;
}

char *strchr(char *s, int c) {
    while (*s) {
        if (*s == c) return s;
        s = s + 1;
    }
    if (c == 0) return s;
    return (char *) 0;
}

void *memcpy(char *dst, char *src, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) dst[i] = src[i];
    return dst;
}

void *memset(char *dst, int value, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) dst[i] = value;
    return dst;
}

/* --------------------------------------------------------------- alloc */

char *malloc(int size) {
    int p;
    size = (size + 7) & ~7;
    p = sbrk(size);
    if (p == -1) return (char *) 0;
    return (char *) p;
}

void free(char *p) {
    /* bump allocator: free is a no-op, like many benchmark harnesses */
}

/* ---------------------------------------------------------------- rand */

int __rand_state = 12345;

void srand(int seed) {
    __rand_state = seed;
}

int rand() {
    __rand_state = __rand_state * 1103515245 + 12345;
    return (__rand_state >> 16) & 32767;
}

/* ---------------------------------------------------------------- math */

int abs(int x) {
    if (x < 0) return -x;
    return x;
}

double fabs(double x) {
    if (x < 0.0) return -x;
    return x;
}

double floor(double x) {
    int ip;
    ip = (int) x;
    if (x < 0.0 && (double) ip != x) ip = ip - 1;
    return (double) ip;
}

double sqrt(double x) {
    double y, prev;
    int i;
    if (x <= 0.0) return 0.0;
    y = x;
    if (y < 1.0) y = 1.0;
    for (i = 0; i < 60; i = i + 1) {
        prev = y;
        y = 0.5 * (y + x / y);
        if (fabs(y - prev) <= y * 1.0e-15) return y;
    }
    return y;
}

double __poly_sin(double r) {
    double r2, term, sum;
    int k;
    r2 = r * r;
    term = r;
    sum = r;
    for (k = 1; k <= 9; k = k + 1) {
        term = -term * r2 / (double)((2 * k) * (2 * k + 1));
        sum = sum + term;
    }
    return sum;
}

double sin(double x) {
    double twopi, pi;
    int k;
    pi = 3.14159265358979323846;
    twopi = 2.0 * pi;
    k = (int) (x / twopi);
    x = x - (double) k * twopi;
    if (x > pi)  x = x - twopi;
    if (x < -pi) x = x + twopi;
    /* fold into [-pi/2, pi/2] where the series converges fast */
    if (x > pi / 2.0)  x = pi - x;
    if (x < -pi / 2.0) x = -pi - x;
    return __poly_sin(x);
}

double cos(double x) {
    return sin(x + 1.57079632679489661923);
}

double exp(double x) {
    double ln2, r, term, sum, result;
    int k, i;
    ln2 = 0.69314718055994530942;
    k = (int) (x / ln2);
    if (x < 0.0 && (double) k * ln2 > x) k = k - 1;
    r = x - (double) k * ln2;
    term = 1.0;
    sum = 1.0;
    for (i = 1; i <= 14; i = i + 1) {
        term = term * r / (double) i;
        sum = sum + term;
    }
    result = sum;
    while (k > 0) { result = result * 2.0; k = k - 1; }
    while (k < 0) { result = result * 0.5; k = k + 1; }
    return result;
}

double log(double x) {
    double ln2, m, t, t2, term, sum;
    int k, i;
    if (x <= 0.0) return -1.0e308;
    ln2 = 0.69314718055994530942;
    m = x;
    k = 0;
    while (m >= 2.0) { m = m * 0.5; k = k + 1; }
    while (m < 1.0)  { m = m * 2.0; k = k - 1; }
    t = (m - 1.0) / (m + 1.0);
    t2 = t * t;
    term = t;
    sum = 0.0;
    for (i = 1; i <= 19; i = i + 2) {
        sum = sum + term / (double) i;
        term = term * t2;
    }
    return 2.0 * sum + (double) k * ln2;
}

double atan(double x) {
    double t, t2, term, sum, result;
    int i, negate, halvings;
    negate = 0;
    if (x < 0.0) { x = -x; negate = 1; }
    /* halve the argument until the series converges quickly */
    halvings = 0;
    while (x > 0.4) {
        x = x / (1.0 + sqrt(1.0 + x * x));
        halvings = halvings + 1;
    }
    t = x;
    t2 = x * x;
    term = x;
    sum = 0.0;
    for (i = 1; i <= 17; i = i + 2) {
        sum = sum + term / (double) i;
        term = -term * t2;
    }
    result = sum;
    while (halvings > 0) {
        result = result * 2.0;
        halvings = halvings - 1;
    }
    if (negate) return -result;
    return result;
}

double pow(double x, double y) {
    if (x <= 0.0) return 0.0;
    return exp(y * log(x));
}
"""

"""AST -> IR lowering with type checking.

This is minic's semantic analysis and code lowering in one pass, the
classic small-compiler structure: expressions produce typed values in
virtual registers, lvalues resolve to register or memory locations, and
control flow becomes a basic-block graph.

Scalar locals live in virtual registers (the register allocator decides
their fate); arrays, structs and address-taken locals live in stack
slots.  Globals are referenced symbolically so each backend can choose
its addressing strategy (gp-relative on DLXe, constant pools on D16).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..isa.operations import Cond
from . import ast_nodes as ast
from .ir import (AddrGlobal, AddrStack, Bin, Block, CJump, CallInst, Cmp,
                 Const, Cvt, FCmp, FConst, FLoad, FStore, Function,
                 GlobalData, Jump, Load, Module, Move, Ret, StackSlot, Store,
                 Un, VReg)
from .types import (ArrayType, CHAR, DOUBLE, DoubleType, FLOAT, FloatType,
                    INT, PointerType, StructType, Type, TypeError_, VOID,
                    VoidType, common_arithmetic, decay, ir_class, pointer_to)


class CompileError(Exception):
    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


#: Built-in functions lowered to trap sequences by the backends.
INTRINSICS: dict[str, tuple[Type, list[Type]]] = {
    "putchar": (INT, [INT]),
    "getchar": (INT, []),
    "exit": (VOID, [INT]),
    "sbrk": (INT, [INT]),
}

_CMP_OPS = {"==": Cond.EQ, "!=": Cond.NE, "<": Cond.LT, ">": Cond.GT,
            "<=": Cond.LE, ">=": Cond.GE}
_UNSIGNED_COND = {Cond.LT: Cond.LTU, Cond.GT: Cond.GTU, Cond.LE: Cond.LEU,
                  Cond.GE: Cond.GEU, Cond.EQ: Cond.EQ, Cond.NE: Cond.NE}
_NEGATE = {Cond.EQ: Cond.NE, Cond.NE: Cond.EQ, Cond.LT: Cond.GE,
           Cond.GE: Cond.LT, Cond.GT: Cond.LE, Cond.LE: Cond.GT,
           Cond.LTU: Cond.GEU, Cond.GEU: Cond.LTU, Cond.GTU: Cond.LEU,
           Cond.LEU: Cond.GTU}

_INT_BIN = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
            "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shra"}
_FLT_BIN = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}


@dataclass
class Value:
    """An rvalue: a virtual register plus its (decayed) type."""

    vreg: VReg
    ty: Type


@dataclass
class RegLVal:
    vreg: VReg
    ty: Type


@dataclass
class MemLVal:
    base: object           # VReg | StackSlot | str (global name)
    offset: int
    ty: Type


@dataclass
class _LocalVar:
    ty: Type
    storage: object        # VReg (scalar) or StackSlot


def lower_program(program: ast.Program) -> Module:
    """Lower a parsed program into an IR module."""
    return _ModuleLowering(program).run()


class _ModuleLowering:
    def __init__(self, program: ast.Program):
        self.program = program
        self.module = Module()
        self.signatures: dict[str, tuple[Type, list[Type]]] = dict(INTRINSICS)
        self.global_types: dict[str, Type] = {}
        self.string_labels: dict[str, str] = {}
        self.next_string = 0

    def run(self) -> Module:
        for func in self.program.functions:
            if func.name in self.signatures:
                raise CompileError(f"duplicate function {func.name!r}",
                                   func.line)
            self.signatures[func.name] = (func.return_type,
                                          [p.type for p in func.params])
        for decl in self.program.globals:
            self._lower_global(decl)
        for func in self.program.functions:
            lowering = _FuncLowering(self, func)
            self.module.functions.append(lowering.run())
        return self.module

    # ------------------------------------------------------------ globals

    def intern_string(self, text: str) -> str:
        """Return the label of a global holding ``text`` NUL-terminated."""
        if text in self.string_labels:
            return self.string_labels[text]
        label = f"Lstr{self.next_string}"
        self.next_string += 1
        data = text.encode("latin-1") + b"\0"
        self.module.globals.append(
            GlobalData(name=label, size=len(data), align=1,
                       init=[("bytes", data)]))
        self.string_labels[text] = label
        return label

    def _lower_global(self, decl: ast.GlobalDecl) -> None:
        if decl.name in self.global_types or decl.name in self.signatures:
            raise CompileError(f"duplicate global {decl.name!r}", decl.line)
        ty = decl.type
        if isinstance(ty, ArrayType) and ty.length == 0:
            ty = self._infer_array_length(ty, decl.init, decl.line)
            decl.type = ty
        self.global_types[decl.name] = ty
        init = self._global_init(ty, decl.init, decl.line)
        self.module.globals.append(
            GlobalData(name=decl.name, size=max(ty.size, 1),
                       align=ty.align, init=init))

    def _infer_array_length(self, ty: ArrayType, init, line: int) -> ArrayType:
        if isinstance(init, ast.StrLit):
            return ArrayType(element=ty.element, length=len(init.value) + 1)
        if isinstance(init, list):
            return ArrayType(element=ty.element, length=len(init))
        raise CompileError("unsized array needs an initializer", line)

    def _global_init(self, ty: Type, init, line: int) -> list[tuple]:
        if init is None:
            return [("space", max(ty.size, 1))]
        if isinstance(ty, ArrayType):
            return self._array_init(ty, init, line)
        if isinstance(ty, StructType):
            raise CompileError("struct globals cannot have initializers",
                               line)
        value = self._const_value(init, line)
        return self._scalar_init(ty, value, line)

    def _scalar_init(self, ty: Type, value, line: int) -> list[tuple]:
        if isinstance(value, tuple) and value[0] == "sym":
            if not ty.is_pointer:
                raise CompileError("address initializer for non-pointer",
                                   line)
            return [("sym", value[1])]
        if isinstance(ty, FloatType):
            bits = struct.unpack("<I", struct.pack("<f", float(value)))[0]
            return [("word", bits)]
        if isinstance(ty, DoubleType):
            lo, hi = struct.unpack("<II", struct.pack("<d", float(value)))
            return [("word", lo), ("word", hi)]
        if ty.is_pointer and value == 0:
            return [("word", 0)]
        if not ty.is_integer and not ty.is_pointer:
            raise CompileError(f"cannot initialize {ty} with a constant",
                               line)
        value = int(value)
        if ty.size == 1:
            return [("bytes", bytes([value & 0xFF]))]
        return [("word", value & 0xFFFFFFFF)]

    def _array_init(self, ty: ArrayType, init, line: int) -> list[tuple]:
        if isinstance(init, ast.StrLit):
            if not isinstance(ty.element, type(CHAR)):
                raise CompileError("string initializer for non-char array",
                                   line)
            data = init.value.encode("latin-1") + b"\0"
            if len(data) > ty.size:
                raise CompileError("string longer than array", line)
            out = [("bytes", data)]
            if ty.size > len(data):
                out.append(("space", ty.size - len(data)))
            return out
        if not isinstance(init, list):
            raise CompileError("array initializer must be a brace list",
                               line)
        if len(init) > ty.length:
            raise CompileError("too many array initializers", line)
        out: list[tuple] = []
        for item in init:
            out.extend(self._global_init(ty.element, item, line))
        remaining = ty.size - ty.element.size * len(init)
        if remaining:
            out.append(("space", remaining))
        return out

    def _const_value(self, expr, line: int):
        """Evaluate a constant initializer expression."""
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.StrLit):
            return ("sym", self.intern_string(expr.value))
        if isinstance(expr, ast.SizeofType):
            return expr.type.size
        if isinstance(expr, ast.Unary):
            if expr.op == "&" and isinstance(expr.operand, ast.Ident):
                return ("sym", expr.operand.name)
            value = self._const_value(expr.operand, line)
            if expr.op == "-":
                return -value
            if expr.op == "~":
                return ~int(value)
        if isinstance(expr, ast.Ident) and \
                isinstance(self.global_types.get(expr.name), ArrayType):
            return ("sym", expr.name)
        if isinstance(expr, ast.Binary):
            a = self._const_value(expr.left, line)
            b = self._const_value(expr.right, line)
            try:
                return {"+": lambda: a + b, "-": lambda: a - b,
                        "*": lambda: a * b, "/": lambda: a // b,
                        "%": lambda: a % b, "<<": lambda: a << b,
                        ">>": lambda: a >> b, "&": lambda: a & b,
                        "|": lambda: a | b, "^": lambda: a ^ b,
                        }[expr.op]()
            except (KeyError, TypeError):
                pass
        if isinstance(expr, ast.Cast):
            value = self._const_value(expr.operand, line)
            if expr.type.is_integer:
                return int(value)
            return float(value)
        raise CompileError("initializer is not a compile-time constant",
                           line)


class _FuncLowering:
    def __init__(self, ctx: _ModuleLowering, funcdef: ast.FuncDef):
        self.ctx = ctx
        self.funcdef = funcdef
        ret = funcdef.return_type
        ret_cls = None if isinstance(ret, VoidType) else ir_class(ret)
        self.func = Function(name=funcdef.name, params=[], return_cls=ret_cls)
        self.scopes: list[dict[str, _LocalVar]] = [{}]
        self.loop_stack: list[tuple[str, str]] = []   # (continue, break)
        self.next_label = 0
        self.block = Block(label=f".L{funcdef.name}_entry")
        self.func.blocks.append(self.block)
        self.addressed = _collect_addressed(funcdef)

    # ------------------------------------------------------- infrastructure

    def run(self) -> Function:
        for param in self.funcdef.params:
            vreg = self.func.new_vreg(ir_class(param.type), param.name)
            self.func.params.append(vreg)
            if param.name in self.addressed:
                slot = self.func.new_slot(param.type.size, param.type.align,
                                          param.name)
                self._store_mem(MemLVal(slot, 0, param.type),
                                Value(vreg, param.type), self.funcdef.line)
                self.declare(param.name, _LocalVar(param.type, slot))
            else:
                self.declare(param.name, _LocalVar(param.type, vreg))
        self.lower_stmt(self.funcdef.body)
        if self.block.terminator is None:
            if self.func.return_cls is None:
                self.emit(Ret(None))
            else:
                zero = self.new_tmp(self.func.return_cls)
                if self.func.return_cls == "i":
                    self.emit(Const(zero, 0))
                else:
                    self.emit(FConst(zero, 0.0))
                self.emit(Ret(zero))
        return self.func

    def emit(self, inst):
        self.block.instrs.append(inst)
        return inst

    def new_tmp(self, cls: str, hint: str = "") -> VReg:
        return self.func.new_vreg(cls, hint)

    def new_label(self, hint: str) -> str:
        label = f".L{self.func.name}_{hint}{self.next_label}"
        self.next_label += 1
        return label

    def start_block(self, label: str) -> None:
        if self.block.terminator is None:
            self.emit(Jump(label))
        self.block = Block(label=label)
        self.func.blocks.append(self.block)

    def open_block(self, label: str) -> Block:
        """Start a block *without* terminating the current one (the
        caller will append the terminator to the old block later)."""
        self.block = Block(label=label)
        self.func.blocks.append(self.block)
        return self.block

    def declare(self, name: str, var: _LocalVar) -> None:
        scope = self.scopes[-1]
        if name in scope:
            raise CompileError(f"duplicate declaration of {name!r}",
                               self.funcdef.line)
        scope[name] = var

    def lookup(self, name: str) -> _LocalVar | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # ---------------------------------------------------------- statements

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.scopes.append({})
            for inner in stmt.body:
                self.lower_stmt(inner)
            self.scopes.pop()
        elif isinstance(stmt, ast.VarDecl):
            self.lower_decl(stmt)
        elif isinstance(stmt, ast.DeclList):
            for decl in stmt.decls:
                self.lower_decl(decl)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self.lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self.lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise CompileError("break outside loop", stmt.line)
            self.emit(Jump(self.loop_stack[-1][1]))
            self.start_block(self.new_label("dead"))
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise CompileError("continue outside loop", stmt.line)
            self.emit(Jump(self.loop_stack[-1][0]))
            self.start_block(self.new_label("dead"))
        else:  # pragma: no cover - parser produces only the above
            raise CompileError(f"unhandled statement {type(stmt).__name__}",
                               stmt.line)

    def lower_decl(self, stmt: ast.VarDecl) -> None:
        ty = stmt.type
        needs_memory = (isinstance(ty, (ArrayType, StructType))
                        or stmt.name in self.addressed)
        if needs_memory:
            slot = self.func.new_slot(max(ty.size, 1), ty.align, stmt.name)
            self.declare(stmt.name, _LocalVar(ty, slot))
            if stmt.init is not None:
                self._init_local_slot(slot, ty, stmt.init, stmt.line)
            return
        if not ty.is_scalar:
            raise CompileError(f"cannot declare local of type {ty}",
                               stmt.line)
        vreg = self.func.new_vreg(ir_class(ty), stmt.name)
        self.declare(stmt.name, _LocalVar(ty, vreg))
        if stmt.init is not None:
            if isinstance(stmt.init, (list, ast.StrLit)):
                raise CompileError("brace initializer on scalar", stmt.line)
            value = self.coerce(self.lower_expr(stmt.init), ty, stmt.line)
            self.emit(Move(vreg, value.vreg))

    def _init_local_slot(self, slot: StackSlot, ty: Type, init,
                         line: int) -> None:
        if isinstance(ty, ArrayType):
            if isinstance(init, ast.StrLit):
                data = init.value.encode("latin-1") + b"\0"
                if len(data) > ty.size:
                    raise CompileError("string longer than array", line)
                for index, byte in enumerate(data):
                    tmp = self.new_tmp("i")
                    self.emit(Const(tmp, byte))
                    self.emit(Store(slot, tmp, 1, offset=index))
                return
            if not isinstance(init, list):
                raise CompileError("array initializer must be a brace list",
                                   line)
            if len(init) > ty.length:
                raise CompileError("too many initializers", line)
            for index, item in enumerate(init):
                offset = index * ty.element.size
                self._init_slot_scalar(slot, offset, ty.element, item, line)
            return
        if isinstance(ty, StructType):
            raise CompileError("struct locals cannot have initializers",
                               line)
        self._init_slot_scalar(slot, 0, ty, init, line)

    def _init_slot_scalar(self, slot, offset, ty, init, line) -> None:
        if isinstance(init, (list, ast.StrLit)):
            raise CompileError("nested brace initializers unsupported", line)
        value = self.coerce(self.lower_expr(init), ty, line)
        self._store_mem(MemLVal(slot, offset, ty), value, line)

    def lower_if(self, stmt: ast.If) -> None:
        then_label = self.new_label("then")
        else_label = self.new_label("else") if stmt.other else None
        end_label = self.new_label("endif")
        self.lower_condition(stmt.cond, then_label, else_label or end_label)
        self.start_block(then_label)
        self.lower_stmt(stmt.then)
        if self.block.terminator is None:
            self.emit(Jump(end_label))
        if stmt.other is not None:
            self.start_block(else_label)
            self.lower_stmt(stmt.other)
        self.start_block(end_label)

    def lower_while(self, stmt: ast.While) -> None:
        head = self.new_label("while")
        body = self.new_label("body")
        end = self.new_label("endwhile")
        self.start_block(head)
        self.lower_condition(stmt.cond, body, end)
        self.start_block(body)
        self.loop_stack.append((head, end))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        if self.block.terminator is None:
            self.emit(Jump(head))
        self.start_block(end)

    def lower_do_while(self, stmt: ast.DoWhile) -> None:
        body = self.new_label("do")
        cond = self.new_label("docond")
        end = self.new_label("enddo")
        self.start_block(body)
        self.loop_stack.append((cond, end))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        self.start_block(cond)
        self.lower_condition(stmt.cond, body, end)
        self.start_block(end)

    def lower_for(self, stmt: ast.For) -> None:
        self.scopes.append({})
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        head = self.new_label("for")
        body = self.new_label("forbody")
        step = self.new_label("forstep")
        end = self.new_label("endfor")
        self.start_block(head)
        if stmt.cond is not None:
            self.lower_condition(stmt.cond, body, end)
        else:
            self.emit(Jump(body))
        self.start_block(body)
        self.loop_stack.append((step, end))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        self.start_block(step)
        if stmt.step is not None:
            self.lower_expr(stmt.step)
        if self.block.terminator is None:
            self.emit(Jump(head))
        self.start_block(end)
        self.scopes.pop()

    def lower_return(self, stmt: ast.Return) -> None:
        if self.func.return_cls is None:
            if stmt.value is not None:
                raise CompileError("void function returns a value",
                                   stmt.line)
            self.emit(Ret(None))
        else:
            if stmt.value is None:
                raise CompileError("non-void function returns nothing",
                                   stmt.line)
            value = self.coerce(self.lower_expr(stmt.value),
                                self.funcdef.return_type, stmt.line)
            self.emit(Ret(value.vreg))
        self.start_block(self.new_label("dead"))

    # ---------------------------------------------------------- conditions

    def lower_condition(self, expr: ast.Expr, if_true: str,
                        if_false: str) -> None:
        """Lower a boolean context directly to control flow."""
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.lower_condition(expr.operand, if_false, if_true)
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            mid = self.new_label("and")
            self.lower_condition(expr.left, mid, if_false)
            self.start_block(mid)
            self.lower_condition(expr.right, if_true, if_false)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            mid = self.new_label("or")
            self.lower_condition(expr.left, if_true, mid)
            self.start_block(mid)
            self.lower_condition(expr.right, if_true, if_false)
            return
        if isinstance(expr, ast.Binary) and expr.op in _CMP_OPS:
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            cond, a, b = self._compare(expr.op, left, right, expr.line)
            if a.ty.is_float:
                flag = self.new_tmp("i")
                self.emit(FCmp(flag, cond, a.vreg, b.vreg))
                self.emit(CJump(Cond.NE, flag, None, if_true, if_false))
            else:
                self.emit(CJump(cond, a.vreg, b.vreg, if_true, if_false))
            self.start_block(self.new_label("dead"))
            return
        value = self.lower_expr(expr)
        if isinstance(value.ty, VoidType):
            raise CompileError("void value used as a condition", expr.line)
        if value.ty.is_float:
            zero = self.new_tmp(ir_class(value.ty))
            self.emit(FConst(zero, 0.0))
            flag = self.new_tmp("i")
            self.emit(FCmp(flag, Cond.NE, value.vreg, zero))
            self.emit(CJump(Cond.NE, flag, None, if_true, if_false))
        else:
            self.emit(CJump(Cond.NE, value.vreg, None, if_true, if_false))
        self.start_block(self.new_label("dead"))

    def _compare(self, op: str, left: Value, right: Value, line: int):
        """Type-check a comparison; returns (cond, left', right')."""
        cond = _CMP_OPS[op]
        if left.ty.is_pointer or right.ty.is_pointer:
            cond = _UNSIGNED_COND[cond]
            return cond, left, right
        common = common_arithmetic(left.ty, right.ty)
        left = self.coerce(left, common, line)
        right = self.coerce(right, common, line)
        return cond, left, right

    # -------------------------------------------------------- expressions

    def lower_expr(self, expr: ast.Expr) -> Value:
        method = getattr(self, f"_expr_{type(expr).__name__}", None)
        if method is None:  # pragma: no cover
            raise CompileError(f"unhandled expression {type(expr).__name__}",
                               expr.line)
        return method(expr)

    def _expr_IntLit(self, expr: ast.IntLit) -> Value:
        vreg = self.new_tmp("i")
        self.emit(Const(vreg, expr.value & 0xFFFFFFFF))
        return Value(vreg, INT)

    def _expr_FloatLit(self, expr: ast.FloatLit) -> Value:
        cls = "f" if expr.is_single else "d"
        vreg = self.new_tmp(cls)
        self.emit(FConst(vreg, expr.value))
        return Value(vreg, FLOAT if expr.is_single else DOUBLE)

    def _expr_StrLit(self, expr: ast.StrLit) -> Value:
        label = self.ctx.intern_string(expr.value)
        vreg = self.new_tmp("i")
        self.emit(AddrGlobal(vreg, label))
        return Value(vreg, pointer_to(CHAR))

    def _expr_Ident(self, expr: ast.Ident) -> Value:
        lval = self.lower_lvalue(expr)
        return self._load_lval(lval, expr.line)

    def _expr_Index(self, expr: ast.Index) -> Value:
        return self._load_lval(self.lower_lvalue(expr), expr.line)

    def _expr_Member(self, expr: ast.Member) -> Value:
        return self._load_lval(self.lower_lvalue(expr), expr.line)

    def _expr_SizeofType(self, expr: ast.SizeofType) -> Value:
        vreg = self.new_tmp("i")
        self.emit(Const(vreg, expr.type.size))
        return Value(vreg, INT)

    def _expr_Cast(self, expr: ast.Cast) -> Value:
        value = self.lower_expr(expr.operand)
        return self.coerce(value, expr.type, expr.line, explicit=True)

    def _expr_Call(self, expr: ast.Call) -> Value:
        sig = self.ctx.signatures.get(expr.name)
        if sig is None:
            raise CompileError(f"call to undefined function {expr.name!r}",
                               expr.line)
        ret_ty, param_tys = sig
        if len(expr.args) != len(param_tys):
            raise CompileError(
                f"{expr.name} expects {len(param_tys)} arguments, "
                f"got {len(expr.args)}", expr.line)
        args = []
        for arg, ty in zip(expr.args, param_tys):
            args.append(self.coerce(self.lower_expr(arg), ty,
                                    expr.line).vreg)
        self.func.max_call_args = max(self.func.max_call_args, len(args))
        if isinstance(ret_ty, VoidType):
            self.emit(CallInst(None, expr.name, args))
            return Value(None, VOID)
        dst = self.new_tmp(ir_class(ret_ty))
        self.emit(CallInst(dst, expr.name, args))
        return Value(dst, decay(ret_ty))

    def _expr_Unary(self, expr: ast.Unary) -> Value:
        op = expr.op
        if op == "&":
            lval = self.lower_lvalue(expr.operand)
            if isinstance(lval, RegLVal):  # pragma: no cover - prescan
                raise CompileError("cannot take address of register value",
                                   expr.line)
            addr = self._lval_address(lval)
            return Value(addr, pointer_to(lval.ty))
        if op == "*":
            value = self.lower_expr(expr.operand)
            if not value.ty.is_pointer:
                raise CompileError("dereference of non-pointer", expr.line)
            return self._load_lval(
                MemLVal(value.vreg, 0, value.ty.target), expr.line)
        if op in ("++", "--"):
            return self._incdec(expr.operand, op, expr.line, post=False)
        value = self.lower_expr(expr.operand)
        if op == "-":
            dst = self.new_tmp(value.vreg.cls)
            self.emit(Un("fneg" if value.ty.is_float else "neg",
                         dst, value.vreg))
            return Value(dst, value.ty if value.ty.is_float else INT)
        if op == "~":
            if not value.ty.is_integer:
                raise CompileError("~ needs an integer", expr.line)
            dst = self.new_tmp("i")
            self.emit(Un("inv", dst, value.vreg))
            return Value(dst, INT)
        if op == "!":
            dst = self.new_tmp("i")
            if value.ty.is_float:
                zero = self.new_tmp(value.vreg.cls)
                self.emit(FConst(zero, 0.0))
                self.emit(FCmp(dst, Cond.EQ, value.vreg, zero))
            else:
                zero = self.new_tmp("i")
                self.emit(Const(zero, 0))
                self.emit(Cmp(dst, Cond.EQ, value.vreg, zero))
            return Value(dst, INT)
        raise CompileError(f"unhandled unary {op!r}", expr.line)

    def _expr_Postfix(self, expr: ast.Postfix) -> Value:
        return self._incdec(expr.operand, expr.op, expr.line, post=True)

    def _incdec(self, target: ast.Expr, op: str, line: int,
                post: bool) -> Value:
        lval = self.lower_lvalue(target)
        old = self._load_lval(lval, line)
        step = old.ty.target.size if old.ty.is_pointer else 1
        if old.ty.is_float:
            one = self.new_tmp(old.vreg.cls)
            self.emit(FConst(one, 1.0))
            new = self.new_tmp(old.vreg.cls)
            self.emit(Bin("fadd" if op == "++" else "fsub",
                          new, old.vreg, one))
        else:
            amount = self.new_tmp("i")
            self.emit(Const(amount, step))
            new = self.new_tmp("i")
            self.emit(Bin("add" if op == "++" else "sub",
                          new, old.vreg, amount))
        self._store_lval(lval, Value(new, old.ty), line)
        return Value(old.vreg if post else new, old.ty)

    def _expr_Assign(self, expr: ast.Assign) -> Value:
        lval = self.lower_lvalue(expr.target)
        target_ty = decay(lval.ty)
        if expr.op == "=":
            value = self.coerce(self.lower_expr(expr.value), lval.ty,
                                expr.line)
            self._store_lval(lval, value, expr.line)
            return value
        binop = expr.op[:-1]
        current = self._load_lval(lval, expr.line)
        rhs = self.lower_expr(expr.value)
        result = self._binary_values(binop, current, rhs, expr.line)
        result = self.coerce(result, lval.ty, expr.line)
        self._store_lval(lval, result, expr.line)
        return result

    def _expr_Conditional(self, expr: ast.Conditional) -> Value:
        then_label = self.new_label("cthen")
        else_label = self.new_label("celse")
        end_label = self.new_label("cend")
        self.lower_condition(expr.cond, then_label, else_label)

        self.start_block(then_label)
        then_val = self.lower_expr(expr.then)
        then_block = self.block

        self.open_block(else_label)
        else_val = self.lower_expr(expr.other)
        else_block = self.block

        if then_val.ty.is_arithmetic and else_val.ty.is_arithmetic:
            result_ty = common_arithmetic(then_val.ty, else_val.ty)
        else:
            result_ty = decay(then_val.ty)
        result = self.new_tmp(ir_class(result_ty))

        self.block = then_block
        coerced = self.coerce(then_val, result_ty, expr.line)
        self.emit(Move(result, coerced.vreg))
        self.emit(Jump(end_label))

        self.block = else_block
        coerced = self.coerce(else_val, result_ty, expr.line)
        self.emit(Move(result, coerced.vreg))
        self.emit(Jump(end_label))

        self.block = Block(label=end_label)
        self.func.blocks.append(self.block)
        return Value(result, result_ty)

    def _expr_Binary(self, expr: ast.Binary) -> Value:
        op = expr.op
        if op == ",":
            self.lower_expr(expr.left)
            return self.lower_expr(expr.right)
        if op in ("&&", "||"):
            # Materialize the boolean via control flow.
            result = self.new_tmp("i")
            true_label = self.new_label("btrue")
            false_label = self.new_label("bfalse")
            end_label = self.new_label("bend")
            self.lower_condition(expr, true_label, false_label)
            self.start_block(true_label)
            self.emit(Const(result, 1))
            self.emit(Jump(end_label))
            self.start_block(false_label)
            self.emit(Const(result, 0))
            self.emit(Jump(end_label))
            self.start_block(end_label)
            return Value(result, INT)
        if op in _CMP_OPS:
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            cond, a, b = self._compare(op, left, right, expr.line)
            dst = self.new_tmp("i")
            if a.ty.is_float:
                self.emit(FCmp(dst, cond, a.vreg, b.vreg))
            else:
                self.emit(Cmp(dst, cond, a.vreg, b.vreg))
            return Value(dst, INT)
        left = self.lower_expr(expr.left)
        right = self.lower_expr(expr.right)
        return self._binary_values(op, left, right, expr.line)

    def _binary_values(self, op: str, left: Value, right: Value,
                       line: int) -> Value:
        if isinstance(left.ty, VoidType) or isinstance(right.ty, VoidType):
            raise CompileError("void value used in an expression", line)
        # Pointer arithmetic.
        if op in ("+", "-") and left.ty.is_pointer:
            if right.ty.is_pointer:
                if op != "-":
                    raise CompileError("cannot add pointers", line)
                diff = self.new_tmp("i")
                self.emit(Bin("sub", diff, left.vreg, right.vreg))
                return Value(self._divide_const(diff, left.ty.target.size),
                             INT)
            scaled = self._scale(right, left.ty.target.size, line)
            dst = self.new_tmp("i")
            self.emit(Bin(_INT_BIN[op], dst, left.vreg, scaled))
            return Value(dst, left.ty)
        if op == "+" and right.ty.is_pointer:
            scaled = self._scale(left, right.ty.target.size, line)
            dst = self.new_tmp("i")
            self.emit(Bin("add", dst, right.vreg, scaled))
            return Value(dst, right.ty)

        common = common_arithmetic(left.ty, right.ty)
        if common.is_float and op not in _FLT_BIN:
            raise CompileError(f"operator {op!r} not defined for {common}",
                               line)
        left = self.coerce(left, common, line)
        right = self.coerce(right, common, line)
        dst = self.new_tmp(ir_class(common))
        if common.is_float:
            self.emit(Bin(_FLT_BIN[op], dst, left.vreg, right.vreg))
        else:
            if op not in _INT_BIN:
                raise CompileError(f"unhandled operator {op!r}", line)
            self.emit(Bin(_INT_BIN[op], dst, left.vreg, right.vreg))
        return Value(dst, common)

    def _scale(self, value: Value, size: int, line: int) -> VReg:
        if not value.ty.is_integer:
            raise CompileError("pointer offset must be an integer", line)
        if size == 1:
            return value.vreg
        amount = self.new_tmp("i")
        self.emit(Const(amount, size))
        dst = self.new_tmp("i")
        self.emit(Bin("mul", dst, value.vreg, amount))
        return dst

    def _divide_const(self, vreg: VReg, size: int) -> VReg:
        if size == 1:
            return vreg
        amount = self.new_tmp("i")
        self.emit(Const(amount, size))
        dst = self.new_tmp("i")
        self.emit(Bin("div", dst, vreg, amount))
        return dst

    # -------------------------------------------------------------- lvalues

    def lower_lvalue(self, expr: ast.Expr):
        if isinstance(expr, ast.Ident):
            var = self.lookup(expr.name)
            if var is not None:
                if isinstance(var.storage, VReg):
                    return RegLVal(var.storage, var.ty)
                return MemLVal(var.storage, 0, var.ty)
            if expr.name in self.ctx.global_types:
                return MemLVal(expr.name, 0,
                               self.ctx.global_types[expr.name])
            raise CompileError(f"undefined variable {expr.name!r}",
                               expr.line)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            value = self.lower_expr(expr.operand)
            if not value.ty.is_pointer:
                raise CompileError("dereference of non-pointer", expr.line)
            return MemLVal(value.vreg, 0, value.ty.target)
        if isinstance(expr, ast.Index):
            return self._index_lvalue(expr)
        if isinstance(expr, ast.Member):
            return self._member_lvalue(expr)
        raise CompileError("expression is not assignable", expr.line)

    def _index_lvalue(self, expr: ast.Index) -> MemLVal:
        base_expr = expr.base

        # Indexing directly into an in-memory array: keep base/offset form
        # so constant indices fold into the addressing-mode displacement.
        if isinstance(self._static_type(base_expr), ArrayType):
            base_lval = self.lower_lvalue(base_expr)
            elem = base_lval.ty.element
            if isinstance(expr.index, ast.IntLit):
                offset = base_lval.offset + expr.index.value * elem.size
                return MemLVal(base_lval.base, offset, elem)
            index = self.lower_expr(expr.index)
            if not index.ty.is_integer:
                raise CompileError("array index must be an integer",
                                   expr.line)
            scaled = self._scale(index, elem.size, expr.line)
            base_addr = self._lval_address(base_lval)
            addr = self.new_tmp("i")
            self.emit(Bin("add", addr, base_addr, scaled))
            return MemLVal(addr, 0, elem)

        base = self.lower_expr(base_expr)
        if not base.ty.is_pointer:
            raise CompileError("indexing a non-array value", expr.line)
        elem = base.ty.target
        if isinstance(expr.index, ast.IntLit):
            return MemLVal(base.vreg, expr.index.value * elem.size, elem)
        index = self.lower_expr(expr.index)
        if not index.ty.is_integer:
            raise CompileError("array index must be an integer", expr.line)
        scaled = self._scale(index, elem.size, expr.line)
        addr = self.new_tmp("i")
        self.emit(Bin("add", addr, base.vreg, scaled))
        return MemLVal(addr, 0, elem)

    def _static_type(self, expr) -> Type | None:
        """Best-effort syntactic type of an expression (no code emitted)."""
        try:
            return self._static_type_inner(expr)
        except TypeError_:
            return None

    def _static_type_inner(self, expr) -> Type | None:
        if isinstance(expr, ast.Ident):
            var = self.lookup(expr.name)
            if var is not None:
                return var.ty
            return self.ctx.global_types.get(expr.name)
        if isinstance(expr, ast.Member):
            base_ty = self._static_type(expr.base)
            if expr.arrow:
                if isinstance(base_ty, PointerType) and \
                        isinstance(base_ty.target, StructType):
                    return base_ty.target.field_named(expr.name).type
                return None
            if isinstance(base_ty, StructType):
                return base_ty.field_named(expr.name).type
            return None
        if isinstance(expr, ast.Index):
            base_ty = self._static_type(expr.base)
            if isinstance(base_ty, ArrayType):
                return base_ty.element
            if isinstance(base_ty, PointerType):
                return base_ty.target
            return None
        if isinstance(expr, ast.Unary) and expr.op == "*":
            base_ty = self._static_type(expr.operand)
            if isinstance(base_ty, PointerType):
                return base_ty.target
            return None
        return None

    def _member_lvalue(self, expr: ast.Member) -> MemLVal:
        try:
            if expr.arrow:
                base = self.lower_expr(expr.base)
                if not (base.ty.is_pointer
                        and isinstance(base.ty.target, StructType)):
                    raise CompileError("-> on non-struct-pointer",
                                       expr.line)
                field = base.ty.target.field_named(expr.name)
                return MemLVal(base.vreg, field.offset, field.type)
            lval = self.lower_lvalue(expr.base)
            if not isinstance(lval, MemLVal) or \
                    not isinstance(lval.ty, StructType):
                raise CompileError(". on non-struct value", expr.line)
            field = lval.ty.field_named(expr.name)
            return MemLVal(lval.base, lval.offset + field.offset,
                           field.type)
        except TypeError_ as exc:
            raise CompileError(str(exc), expr.line) from exc

    def _lval_address(self, lval: MemLVal) -> VReg:
        """Materialize the address of a memory lvalue."""
        if isinstance(lval.base, VReg):
            if lval.offset == 0:
                return lval.base
            amount = self.new_tmp("i")
            self.emit(Const(amount, lval.offset))
            addr = self.new_tmp("i")
            self.emit(Bin("add", addr, lval.base, amount))
            return addr
        addr = self.new_tmp("i")
        if isinstance(lval.base, StackSlot):
            self.emit(AddrStack(addr, lval.base))
        else:
            self.emit(AddrGlobal(addr, lval.base))
        if lval.offset:
            amount = self.new_tmp("i")
            self.emit(Const(amount, lval.offset))
            out = self.new_tmp("i")
            self.emit(Bin("add", out, addr, amount))
            return out
        return addr

    def _load_lval(self, lval, line: int) -> Value:
        if isinstance(lval, RegLVal):
            return Value(lval.vreg, decay(lval.ty))
        ty = lval.ty
        if isinstance(ty, ArrayType):
            return Value(self._lval_address(lval), pointer_to(ty.element))
        if isinstance(ty, StructType):
            raise CompileError("cannot use a struct as a value", line)
        if ty.is_float:
            dst = self.new_tmp(ir_class(ty))
            self.emit(FLoad(dst, lval.base, offset=lval.offset))
            return Value(dst, ty)
        dst = self.new_tmp("i")
        self.emit(Load(dst, lval.base, ty.size, signed=ty.is_integer,
                       offset=lval.offset))
        return Value(dst, INT if ty.is_integer else ty)

    def _store_lval(self, lval, value: Value, line: int) -> None:
        if isinstance(lval, RegLVal):
            self.emit(Move(lval.vreg, value.vreg))
            return
        self._store_mem(lval, value, line)

    def _store_mem(self, lval: MemLVal, value: Value, line: int) -> None:
        ty = lval.ty
        if isinstance(ty, (ArrayType, StructType)):
            raise CompileError("cannot assign to an aggregate", line)
        if ty.is_float:
            self.emit(FStore(lval.base, value.vreg, offset=lval.offset))
        else:
            self.emit(Store(lval.base, value.vreg, ty.size,
                            offset=lval.offset))

    # ------------------------------------------------------------- coercion

    def coerce(self, value: Value, to_ty: Type, line: int,
               explicit: bool = False) -> Value:
        if isinstance(value.ty, VoidType):
            raise CompileError("void value used in an expression", line)
        to_ty = decay(to_ty)
        from_ty = value.ty
        if type(from_ty) is type(to_ty):
            if not from_ty.is_pointer or from_ty == to_ty or explicit:
                return Value(value.vreg, to_ty)
        if from_ty.is_pointer and to_ty.is_pointer:
            return Value(value.vreg, to_ty)   # minic: lax pointer converts
        if from_ty.is_pointer and to_ty.is_integer:
            return Value(value.vreg, to_ty)
        if from_ty.is_integer and to_ty.is_pointer:
            return Value(value.vreg, to_ty)
        if from_ty.is_integer and to_ty.is_integer:
            if to_ty.size == 1 and from_ty.size != 1 and explicit:
                # (char) cast: truncate then sign-extend via shifts.
                tmp = self.new_tmp("i")
                amount = self.new_tmp("i")
                self.emit(Const(amount, 24))
                self.emit(Bin("shl", tmp, value.vreg, amount))
                out = self.new_tmp("i")
                self.emit(Bin("shra", out, tmp, amount))
                return Value(out, to_ty)
            return Value(value.vreg, to_ty)
        if from_ty.is_integer and to_ty.is_float:
            dst = self.new_tmp(ir_class(to_ty))
            kind = "i2f" if isinstance(to_ty, FloatType) else "i2d"
            self.emit(Cvt(kind, dst, value.vreg))
            return Value(dst, to_ty)
        if from_ty.is_float and to_ty.is_integer:
            dst = self.new_tmp("i")
            kind = "f2i" if isinstance(from_ty, FloatType) else "d2i"
            self.emit(Cvt(kind, dst, value.vreg))
            return Value(dst, to_ty)
        if from_ty.is_float and to_ty.is_float:
            if type(from_ty) is type(to_ty):
                return Value(value.vreg, to_ty)
            dst = self.new_tmp(ir_class(to_ty))
            kind = "f2d" if isinstance(from_ty, FloatType) else "d2f"
            self.emit(Cvt(kind, dst, value.vreg))
            return Value(dst, to_ty)
        raise CompileError(f"cannot convert {from_ty} to {to_ty}", line)


def _collect_addressed(funcdef: ast.FuncDef) -> set[str]:
    """Names of locals whose address is taken (must live in memory)."""
    addressed: set[str] = set()

    def walk(node):
        if isinstance(node, ast.Unary) and node.op == "&":
            target = node.operand
            # &arr[i] and &s.f do not force the whole base into memory
            # unless the base is a plain scalar identifier.
            if isinstance(target, ast.Ident):
                addressed.add(target.name)
            walk(target)
            return
        if isinstance(node, (ast.Expr, ast.Stmt)):
            for value in vars(node).values():
                walk(value)
        elif isinstance(node, list):
            for item in node:
                walk(item)

    walk(funcdef.body)
    return addressed

"""minic: the optimizing C-subset compiler targeting D16 and DLXe."""

from .driver import (CompileResult, build_executable, compile_and_run,
                     compile_to_assembly)
from .irgen import CompileError, lower_program
from .lexer import LexError
from .parser import ParseError, parse
from .target import (D16_TARGET, DLXE_16_2, DLXE_16_3, DLXE_32_2,
                     DLXE_NARROW, DLXE_TARGET, TARGETS, TargetSpec,
                     get_target)

__all__ = [
    "CompileError", "CompileResult", "D16_TARGET", "DLXE_16_2", "DLXE_16_3",
    "DLXE_32_2", "DLXE_NARROW", "DLXE_TARGET", "LexError", "ParseError",
    "TARGETS", "TargetSpec", "build_executable", "compile_and_run",
    "compile_to_assembly", "get_target", "lower_program", "parse",
]

"""IR optimization passes.

The paper's experiments use "all optimizations enabled" GCC; these passes
give minic the equivalent essentials so that instruction-set effects (not
naive code) dominate the measurements:

* constant folding + algebraic simplification + strength reduction,
* copy propagation (local),
* address-offset folding into load/store displacements — this is what
  makes the D16-vs-DLXe displacement-width comparison meaningful,
* local common-subexpression elimination (value numbering),
* dead code elimination (global),
* CFG simplification (jump threading, unreachable-block removal).
"""

from __future__ import annotations

import copy
from typing import Callable

from ..isa.operations import Cond
from .ir import (AddrGlobal, AddrStack, Bin, Block, CJump, CallInst, Cmp,
                 Const, Cvt, FCmp, FConst, FLoad, FStore, Function, Jump,
                 Load, Move, Store, Un, VReg)

_WORD = 0xFFFFFFFF


def _s32(value: int) -> int:
    value &= _WORD
    return value - (1 << 32) if value & 0x80000000 else value


_FOLD_BIN = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: _s32(a) * _s32(b),
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 31),
    "shr": lambda a, b: (a & _WORD) >> (b & 31),
    "shra": lambda a, b: _s32(a) >> (b & 31),
}

_CMP_EVAL = {
    Cond.LT: lambda a, b: _s32(a) < _s32(b),
    Cond.LTU: lambda a, b: (a & _WORD) < (b & _WORD),
    Cond.LE: lambda a, b: _s32(a) <= _s32(b),
    Cond.LEU: lambda a, b: (a & _WORD) <= (b & _WORD),
    Cond.EQ: lambda a, b: (a & _WORD) == (b & _WORD),
    Cond.NE: lambda a, b: (a & _WORD) != (b & _WORD),
    Cond.GT: lambda a, b: _s32(a) > _s32(b),
    Cond.GTU: lambda a, b: (a & _WORD) > (b & _WORD),
    Cond.GE: lambda a, b: _s32(a) >= _s32(b),
    Cond.GEU: lambda a, b: (a & _WORD) >= (b & _WORD),
}


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def fold_constants(func: Function) -> bool:
    """Per-block constant folding, algebraic identities, strength reduction."""
    changed = False
    for block in func.blocks:
        consts: dict[VReg, int] = {}
        out: list = []

        def invalidate(defs):
            for d in defs:
                consts.pop(d, None)

        for inst in block.instrs:
            replacement = None
            if isinstance(inst, Const):
                invalidate(inst.defs())
                consts[inst.dst] = inst.value & _WORD
                out.append(inst)
                continue
            if isinstance(inst, Move) and inst.src in consts \
                    and inst.src.cls == "i":
                replacement = Const(inst.dst, consts[inst.src])
            elif isinstance(inst, Un) and inst.a in consts:
                value = consts[inst.a]
                if inst.op == "neg":
                    replacement = Const(inst.dst, (-value) & _WORD)
                elif inst.op == "inv":
                    replacement = Const(inst.dst, value ^ _WORD)
            elif isinstance(inst, Bin) and inst.op in _FOLD_BIN:
                av = consts.get(inst.a)
                bv = consts.get(inst.b)
                if av is not None and bv is not None:
                    replacement = Const(
                        inst.dst, _FOLD_BIN[inst.op](av, bv) & _WORD)
                else:
                    replacement = _algebraic(inst, av, bv, func, out)
            elif isinstance(inst, Bin) and inst.op in ("div", "rem"):
                av, bv = consts.get(inst.a), consts.get(inst.b)
                if av is not None and bv is not None and _s32(bv) != 0:
                    a, b = _s32(av), _s32(bv)
                    q = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        q = -q
                    value = a - q * b if inst.op == "rem" else q
                    replacement = Const(inst.dst, value & _WORD)
            elif isinstance(inst, Cmp):
                av, bv = consts.get(inst.a), consts.get(inst.b)
                if av is not None and bv is not None:
                    flag = 1 if _CMP_EVAL[inst.cond](av, bv) else 0
                    replacement = Const(inst.dst, flag)
            elif isinstance(inst, CJump):
                av = consts.get(inst.a)
                bv = consts.get(inst.b) if inst.b is not None else 0
                if inst.b is not None and inst.b in consts and bv == 0 \
                        and inst.cond in (Cond.EQ, Cond.NE):
                    inst.b = None
                    changed = True
                    bv = 0
                if av is not None and (inst.b is None or inst.b in consts):
                    taken = _CMP_EVAL[inst.cond](av, bv)
                    replacement = Jump(inst.if_true if taken
                                       else inst.if_false)

            if replacement is not None:
                invalidate(replacement.defs() if hasattr(replacement, "defs")
                           else [])
                if isinstance(replacement, Const):
                    consts[replacement.dst] = replacement.value & _WORD
                out.append(replacement)
                changed = True
            else:
                invalidate(inst.defs())
                out.append(inst)
        block.instrs = out
    return changed


def _algebraic(inst: Bin, av, bv, func: Function, out: list):
    """Simplify ``a op const`` / ``const op a`` patterns."""
    op = inst.op
    if bv is not None:
        if op in ("add", "sub", "or", "xor", "shl", "shr", "shra") \
                and bv == 0:
            return Move(inst.dst, inst.a)
        if op == "mul":
            if bv == 1:
                return Move(inst.dst, inst.a)
            if bv == 0:
                return Const(inst.dst, 0)
            if _is_pow2(bv):
                shift = func.new_vreg("i")
                out.append(Const(shift, bv.bit_length() - 1))
                return Bin("shl", inst.dst, inst.a, shift)
        if op == "and" and bv == _WORD:
            return Move(inst.dst, inst.a)
        if op == "div" and bv == 1:
            return Move(inst.dst, inst.a)
    if av is not None:
        if op in ("add", "or", "xor") and av == 0:
            return Move(inst.dst, inst.b)
        if op == "mul":
            if av == 1:
                return Move(inst.dst, inst.b)
            if av == 0:
                return Const(inst.dst, 0)
            if _is_pow2(av):
                shift = func.new_vreg("i")
                out.append(Const(shift, av.bit_length() - 1))
                return Bin("shl", inst.dst, inst.b, shift)
        if op == "sub" and av == 0:
            return Un("neg", inst.dst, inst.b)
    return None


def copy_propagation(func: Function) -> bool:
    """Per-block copy propagation (replaces uses of copied values)."""
    changed = False
    for block in func.blocks:
        copies: dict[VReg, VReg] = {}
        for inst in block.instrs:
            mapping = {}
            for use in inst.uses():
                root = copies.get(use)
                if root is not None:
                    mapping[use] = root
            if mapping:
                inst.replace_uses(mapping)
                changed = True
            defs = inst.defs()
            for d in defs:
                copies.pop(d, None)
                stale = [k for k, v in copies.items() if v == d]
                for k in stale:
                    del copies[k]
            if isinstance(inst, Move) and inst.dst.cls == inst.src.cls \
                    and inst.dst != inst.src:
                copies[inst.dst] = inst.src
    return changed


def fold_offsets(func: Function) -> bool:
    """Fold address arithmetic into load/store displacements.

    Tracks ``v = base + const`` and ``v = &slot/&global (+ const)``
    definitions per block and rewrites memory ops using ``v`` to address
    the base with a displacement.  Targets later re-legalize offsets that
    exceed their displacement fields — which is exactly the cost the
    paper attributes to D16's short offsets.
    """
    changed = False
    for block in func.blocks:
        consts: dict[VReg, int] = {}
        addrs: dict[VReg, tuple[object, int]] = {}   # v -> (base, offset)

        def invalidate(reg: VReg):
            consts.pop(reg, None)
            addrs.pop(reg, None)
            stale = [k for k, (b, _o) in addrs.items() if b == reg]
            for k in stale:
                del addrs[k]

        for inst in block.instrs:
            if isinstance(inst, (Load, FLoad, Store, FStore)) \
                    and isinstance(inst.base, VReg) and inst.base in addrs:
                base, extra = addrs[inst.base]
                inst.base = base
                inst.offset += extra
                changed = True
            for d in inst.defs():
                invalidate(d)
            if any(d in inst.uses() for d in inst.defs()):
                continue   # self-referential defs cannot be tracked safely
            if isinstance(inst, Const):
                consts[inst.dst] = _s32(inst.value)
            elif isinstance(inst, AddrStack):
                addrs[inst.dst] = (inst.slot, 0)
            elif isinstance(inst, AddrGlobal):
                addrs[inst.dst] = (inst.name, inst.offset)
            elif isinstance(inst, Bin) and inst.op == "add" \
                    and inst.dst.cls == "i":
                if inst.b in consts:
                    root = addrs.get(inst.a, (inst.a, 0))
                    addrs[inst.dst] = (root[0], root[1] + consts[inst.b])
                elif inst.a in consts:
                    root = addrs.get(inst.b, (inst.b, 0))
                    addrs[inst.dst] = (root[0], root[1] + consts[inst.a])
            elif isinstance(inst, Bin) and inst.op == "sub" \
                    and inst.b in consts:
                root = addrs.get(inst.a, (inst.a, 0))
                addrs[inst.dst] = (root[0], root[1] - consts[inst.b])
            elif isinstance(inst, Move):
                if inst.src in addrs:
                    addrs[inst.dst] = addrs[inst.src]
                if inst.src in consts:
                    consts[inst.dst] = consts[inst.src]
    return changed


_PURE = (Const, FConst, Bin, Un, Cmp, FCmp, Cvt, Move, AddrStack, AddrGlobal)


def local_cse(func: Function) -> bool:
    """Local value numbering: reuse previously computed pure expressions."""
    changed = False
    for block in func.blocks:
        next_vn = [0]
        vn_of: dict[VReg, int] = {}
        expr_table: dict[tuple, tuple[VReg, int]] = {}

        def vn(reg: VReg) -> int:
            if reg not in vn_of:
                vn_of[reg] = next_vn[0]
                next_vn[0] += 1
            return vn_of[reg]

        out = []
        for inst in block.instrs:
            key = None
            if isinstance(inst, Const):
                key = ("const", inst.value)
            elif isinstance(inst, FConst):
                key = ("fconst", inst.dst.cls, repr(inst.value))
            elif isinstance(inst, Bin) and inst.op not in ("div", "rem"):
                a, b = vn(inst.a), vn(inst.b)
                if inst.op in ("add", "mul", "and", "or", "xor",
                               "fadd", "fmul"):
                    a, b = min(a, b), max(a, b)
                key = ("bin", inst.op, inst.dst.cls, a, b)
            elif isinstance(inst, Un):
                key = ("un", inst.op, inst.dst.cls, vn(inst.a))
            elif isinstance(inst, Cmp):
                key = ("cmp", inst.cond, vn(inst.a), vn(inst.b))
            elif isinstance(inst, Cvt):
                key = ("cvt", inst.kind, vn(inst.a))
            elif isinstance(inst, AddrStack):
                key = ("addrstack", inst.slot.id)
            elif isinstance(inst, AddrGlobal):
                key = ("addrglobal", inst.name, inst.offset)

            if key is not None:
                hit = expr_table.get(key)
                if hit is not None:
                    src, src_vn = hit
                    if vn_of.get(src) == src_vn and src != inst.dst:
                        out.append(Move(inst.dst, src))
                        vn_of[inst.dst] = src_vn
                        changed = True
                        continue
                new_vn = next_vn[0]
                next_vn[0] += 1
                vn_of[inst.dst] = new_vn
                expr_table[key] = (inst.dst, new_vn)
                out.append(inst)
                continue
            for d in inst.defs():
                vn_of[d] = next_vn[0]
                next_vn[0] += 1
            out.append(inst)
        block.instrs = out
    return changed


def dead_code(func: Function) -> bool:
    """Remove pure instructions whose results are never used."""
    used: set[VReg] = set()
    essential: list = []
    for block in func.blocks:
        for inst in block.instrs:
            if not isinstance(inst, _PURE) or isinstance(inst, CallInst):
                essential.append(inst)
    worklist = list(essential)
    for inst in worklist:
        used.update(inst.uses())
    # Fixed point: an instruction is live if it defines a used vreg.
    changed_any = True
    while changed_any:
        changed_any = False
        for block in func.blocks:
            for inst in block.instrs:
                if isinstance(inst, _PURE):
                    defs = inst.defs()
                    if any(d in used for d in defs):
                        for u in inst.uses():
                            if u not in used:
                                used.add(u)
                                changed_any = True

    removed = False
    for block in func.blocks:
        kept = []
        for inst in block.instrs:
            if isinstance(inst, _PURE) and inst.defs() \
                    and not any(d in used for d in inst.defs()):
                removed = True
                continue
            kept.append(inst)
        block.instrs = kept
    return removed


def simplify_cfg(func: Function) -> bool:
    """Thread jumps, drop unreachable blocks, collapse trivial CJumps."""
    changed = False
    blocks = func.block_map()

    # Jump threading: a block that is just "jump X" can be bypassed.
    forward: dict[str, str] = {}
    for block in func.blocks:
        if len(block.instrs) == 1 and isinstance(block.instrs[0], Jump):
            forward[block.label] = block.instrs[0].target

    def resolve(label: str) -> str:
        seen = set()
        while label in forward and label not in seen:
            seen.add(label)
            label = forward[label]
        return label

    for block in func.blocks:
        term = block.terminator
        if isinstance(term, Jump):
            target = resolve(term.target)
            if target != term.target:
                term.target = target
                changed = True
        elif isinstance(term, CJump):
            for attr in ("if_true", "if_false"):
                target = resolve(getattr(term, attr))
                if target != getattr(term, attr):
                    setattr(term, attr, target)
                    changed = True
            if term.if_true == term.if_false:
                block.instrs[-1] = Jump(term.if_true)
                changed = True

    # Reachability from the entry block.
    if not func.blocks:
        return changed
    reachable: set[str] = set()
    stack = [func.blocks[0].label]
    while stack:
        label = stack.pop()
        if label in reachable:
            continue
        reachable.add(label)
        block = blocks.get(label)
        if block is not None:
            stack.extend(block.successors())
    new_blocks = [b for b in func.blocks if b.label in reachable]
    if len(new_blocks) != len(func.blocks):
        changed = True
    func.blocks = new_blocks

    # Merge straight-line pairs: jump to a block with a single predecessor.
    preds: dict[str, int] = {}
    for block in func.blocks:
        for succ in block.successors():
            preds[succ] = preds.get(succ, 0) + 1
    merged = True
    while merged:
        merged = False
        blocks = func.block_map()
        for block in func.blocks:
            term = block.terminator
            if not isinstance(term, Jump):
                continue
            succ = blocks.get(term.target)
            if succ is None or succ is block or preds.get(succ.label) != 1:
                continue
            if succ is func.blocks[0]:
                continue
            block.instrs = block.instrs[:-1] + succ.instrs
            func.blocks.remove(succ)
            changed = True
            merged = True
            break
    return changed


def dedupe_single_defs(func: Function) -> bool:
    """Merge identical single-definition pure computations per block.

    Complements the purely local CSE: when LICM (or lowering) leaves two
    single-def vregs computing the same pure value in one block, the
    later definition is deleted and every use of it — anywhere in the
    function — is renamed to the earlier vreg.  Sound because the
    surviving definition precedes the deleted one, the deleted vreg had
    no other definition, and its operands (single-def themselves) cannot
    change in between.
    """
    def_counts: dict[VReg, int] = {}
    for block in func.blocks:
        for inst in block.instrs:
            for d in inst.defs():
                def_counts[d] = def_counts.get(d, 0) + 1

    def single(reg: VReg) -> bool:
        return def_counts.get(reg, 0) <= 1

    renames: dict[VReg, VReg] = {}
    for block in func.blocks:
        seen: dict[tuple, VReg] = {}
        kept = []
        for inst in block.instrs:
            key = None
            if isinstance(inst, FConst):
                key = ("fconst", inst.dst.cls, repr(inst.value))
            elif isinstance(inst, Const):
                key = ("const", inst.value)
            elif isinstance(inst, AddrGlobal):
                key = ("addrglobal", inst.name, inst.offset)
            elif isinstance(inst, AddrStack):
                key = ("addrstack", inst.slot.id)
            elif isinstance(inst, (Bin, Un, Cvt)) \
                    and all(single(u) for u in inst.uses()):
                operands = tuple(renames.get(u, u) for u in inst.uses())
                op = getattr(inst, "op", getattr(inst, "kind", None))
                key = (type(inst).__name__, op, inst.dst.cls, operands)
            if key is not None and single(inst.dst):
                existing = seen.get(key)
                if existing is not None and existing != inst.dst:
                    renames[inst.dst] = existing
                    continue        # drop the duplicate definition
                seen[key] = inst.dst
            kept.append(inst)
        block.instrs = kept

    if not renames:
        return False
    # Resolve chains, then rewrite all uses.
    def resolve(reg: VReg) -> VReg:
        while reg in renames:
            reg = renames[reg]
        return reg

    mapping = {src: resolve(src) for src in renames}
    for block in func.blocks:
        for inst in block.instrs:
            inst.replace_uses(mapping)
    return True


# ------------------------------------------------------------------- LICM


def _dominators(func: Function) -> dict[str, set[str]]:
    """Iterative dominator sets per block label."""
    labels = [b.label for b in func.blocks]
    preds: dict[str, set[str]] = {label: set() for label in labels}
    for block in func.blocks:
        for succ in block.successors():
            if succ in preds:
                preds[succ].add(block.label)
    entry = labels[0]
    dom: dict[str, set[str]] = {label: set(labels) for label in labels}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for label in labels[1:]:
            if preds[label]:
                new = set.intersection(*(dom[p] for p in preds[label]))
            else:
                new = set()
            new = new | {label}
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


def _natural_loop(func: Function, header: str, tail: str) -> set[str]:
    """Blocks of the natural loop for back edge tail -> header."""
    preds: dict[str, list[str]] = {b.label: [] for b in func.blocks}
    for block in func.blocks:
        for succ in block.successors():
            if succ in preds:
                preds[succ].append(block.label)
    body = {header, tail}
    stack = [tail]
    while stack:
        label = stack.pop()
        if label == header:
            continue
        for pred in preds[label]:
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


#: What LICM may hoist.  Deliberately narrow: global addresses and FP
#: constants are expensive to rematerialize (constant-pool loads on D16,
#: mvhi/addi pairs on DLXe), while plain integer constants are a single
#: mvi — hoisting those would trade cheap instructions for register
#: pressure, which measurably hurts on the 16-register machines.
_HOISTABLE = (FConst, AddrGlobal, AddrStack)


def licm(func: Function) -> bool:
    """Loop-invariant code motion for pure single-definition values.

    Hoists pure computations whose operands are defined outside the loop
    into a preheader.  Safe without SSA because only vregs with exactly
    one definition in the whole function are considered.
    """
    if not func.blocks:
        return False
    def_counts: dict[VReg, int] = {}
    def_blocks: dict[VReg, set[str]] = {}
    for block in func.blocks:
        for inst in block.instrs:
            for d in inst.defs():
                def_counts[d] = def_counts.get(d, 0) + 1
                def_blocks.setdefault(d, set()).add(block.label)

    dom = _dominators(func)
    blocks = func.block_map()
    changed = False
    handled_headers: set[str] = set()
    for block in func.blocks:
        for succ in block.successors():
            if succ not in dom.get(block.label, set()):
                continue            # not a back edge
            header = succ
            if header in handled_headers:
                continue
            handled_headers.add(header)
            body = _natural_loop(func, header, block.label)
            hoisted: list = []
            moved = True
            hoisted_defs: set[VReg] = set()
            while moved:
                moved = False
                for loop_block in func.blocks:   # deterministic order
                    if loop_block.label not in body:
                        continue
                    kept = []
                    for inst in loop_block.instrs:
                        if self_hoistable(inst, def_counts, def_blocks,
                                          body, hoisted_defs):
                            hoisted.append(inst)
                            hoisted_defs.update(inst.defs())
                            moved = True
                        else:
                            kept.append(inst)
                    loop_block.instrs = kept
            if hoisted:
                changed = True
                _insert_preheader(func, header, body, hoisted)
                blocks = func.block_map()
    return changed


def self_hoistable(inst, def_counts, def_blocks, body,
                   hoisted_defs) -> bool:
    if not isinstance(inst, _HOISTABLE):
        return False
    defs = inst.defs()
    if len(defs) != 1 or def_counts.get(defs[0], 0) != 1:
        return False
    for use in inst.uses():
        if use in hoisted_defs:
            continue
        if any(label in body for label in def_blocks.get(use, ())):
            return False
    return True


def _insert_preheader(func: Function, header: str, body: set[str],
                      hoisted: list) -> None:
    pre_label = f"{header}.pre"
    preheader = Block(label=pre_label, instrs=hoisted + [Jump(header)])
    # Redirect all edges into the header from outside the loop.
    for block in func.blocks:
        if block.label in body:
            continue
        term = block.terminator
        if isinstance(term, Jump) and term.target == header:
            term.target = pre_label
        elif term is not None and hasattr(term, "if_true"):
            if term.if_true == header:
                term.if_true = pre_label
            if term.if_false == header:
                term.if_false = pre_label
    index = next(i for i, b in enumerate(func.blocks)
                 if b.label == header)
    func.blocks.insert(index, preheader)
    # If the entry block *is* the header, the preheader must come first.
    if index == 0:
        pass  # insert(0) already made it the entry


class PassVerificationError(Exception):
    """An optimizer pass left the IR in an invalid state.

    Raised by :func:`optimize` under ``verify=True``; names the exact
    pass after which the IR verifier first reported errors, so a
    miscompile is localized to one transformation.
    """

    def __init__(self, func_name: str, pass_name: str, findings):
        self.func_name = func_name
        self.pass_name = pass_name
        self.findings = list(findings)
        detail = "\n".join(f.format() for f in self.findings)
        super().__init__(
            f"IR verification failed after '{pass_name}' on function "
            f"'{func_name}':\n{detail}")


#: The pass pipeline, named so ``verify`` failures localize precisely.
_PIPELINE_O1 = (
    ("copy-propagation", copy_propagation),
    ("fold-constants", fold_constants),
    ("fold-offsets", fold_offsets),
    ("local-cse", local_cse),
    ("copy-propagation", copy_propagation),
    ("dead-code", dead_code),
    ("simplify-cfg", simplify_cfg),
)
_PIPELINE_O2 = (
    ("licm", licm),
    ("dedupe-single-defs", dedupe_single_defs),
    ("dead-code", dead_code),
)


def _verify_after(func: Function, pass_name: str) -> None:
    from ..analysis.findings import Severity
    from ..analysis.irverify import verify_function

    errors = [f for f in verify_function(func)
              if f.severity == Severity.ERROR]
    if errors:
        raise PassVerificationError(func.name, pass_name, errors)


#: Per-pass observation hook: called as ``observer(function_name,
#: pass_name, round_index, before, after, changed)`` where ``before``
#: is a deep copy of the function taken immediately before the pass
#: ran and ``after`` is the live (possibly mutated) function.
PassObserver = Callable[[str, str, int, Function, Function, bool], None]


def optimize(func: Function, *, level: int = 2,
             verify: bool = False,
             observer: PassObserver | None = None) -> None:
    """Run the optimization pipeline to a fixed point (bounded).

    With ``verify=True`` the IR verifier runs on the input and after
    every pass; the first broken invariant raises
    :class:`PassVerificationError` naming the offending pass.

    With an ``observer``, every pass application is reported together
    with a pre-pass snapshot of the function — the hook the
    translation-validation driver (:mod:`repro.analysis.equiv`) uses to
    check a simulation relation across each transformation.
    """
    if verify:
        _verify_after(func, "initial IR")
    if level <= 0:
        return
    pipeline = _PIPELINE_O1 + (_PIPELINE_O2 if level >= 2 else ())
    for round_index in range(4 if level >= 2 else 1):
        changed = False
        for name, pass_fn in pipeline:
            snapshot = copy.deepcopy(func) if observer is not None \
                else None
            pass_changed = pass_fn(func)
            changed |= pass_changed
            if verify:
                _verify_after(func, name)
            if observer is not None:
                assert snapshot is not None
                observer(func.name, name, round_index, snapshot, func,
                         pass_changed)
        if not changed:
            break


def optimize_module(module, *, level: int = 2,
                    verify: bool = False,
                    observer: PassObserver | None = None) -> None:
    for func in module.functions:
        optimize(func, level=level, verify=verify, observer=observer)

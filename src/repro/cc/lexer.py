"""Tokenizer for minic."""

from __future__ import annotations

import re
from dataclasses import dataclass


class LexError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


KEYWORDS = frozenset({
    "int", "char", "float", "double", "void", "struct",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "sizeof",
})

# Longest-match-first operator list.
OPERATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "[", "]", "{", "}", ",", ";", ":", "?", ".",
]

_TOKEN_RE = re.compile(r"""
    (?P<ws>[ \t\r]+)
  | (?P<nl>\n)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>(\d+\.\d*|\.\d+)([eE][+-]?\d+)?[fF]?|\d+[eE][+-]?\d+[fF]?)
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)
  | (?P<char>'(\\.|[^'\\])')
  | (?P<string>"(\\.|[^"\\])*")
  | (?P<ident>[A-Za-z_]\w*)
""", re.VERBOSE | re.DOTALL)

_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "r": "\r",
            "'": "'", '"': '"', "\\": "\\"}


@dataclass(frozen=True)
class Token:
    kind: str          # 'int', 'float', 'char', 'string', 'ident', 'kw', 'op', 'eof'
    text: str
    value: object      # numeric value / decoded string where applicable
    line: int

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def _decode_string(raw: str, line: int) -> str:
    body = raw[1:-1]
    out = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            if i + 1 >= len(body):
                raise LexError("dangling escape", line)
            esc = body[i + 1]
            if esc not in _ESCAPES:
                raise LexError(f"unknown escape \\{esc}", line)
            out.append(_ESCAPES[esc])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def tokenize(source: str) -> list[Token]:
    """Tokenize a minic source string; appends a trailing EOF token."""
    tokens: list[Token] = []
    line = 1
    pos = 0
    length = len(source)
    while pos < length:
        m = _TOKEN_RE.match(source, pos)
        if m:
            kind = m.lastgroup
            text = m.group()
            pos = m.end()
            if kind == "nl":
                line += 1
                continue
            if kind in ("ws", "comment"):
                line += text.count("\n")
                continue
            if kind == "int":
                tokens.append(Token("int", text, int(text, 0), line))
            elif kind == "float":
                is_single = text[-1] in "fF"
                value = float(text.rstrip("fF"))
                tokens.append(Token("float" if not is_single else "floatf",
                                    text, value, line))
            elif kind == "char":
                decoded = _decode_string('"' + text[1:-1] + '"', line)
                if len(decoded) != 1:
                    raise LexError(f"bad char literal {text}", line)
                tokens.append(Token("int", text, ord(decoded), line))
            elif kind == "string":
                tokens.append(Token("string", text,
                                    _decode_string(text, line), line))
            elif kind == "ident":
                tok_kind = "kw" if text in KEYWORDS else "ident"
                tokens.append(Token(tok_kind, text, text, line))
            continue
        for op in OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token("op", op, op, line))
                pos += len(op)
                break
        else:
            raise LexError(f"unexpected character {source[pos]!r}", line)
    tokens.append(Token("eof", "", None, line))
    return tokens

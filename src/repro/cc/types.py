"""Type model for minic, the C subset compiled onto D16 and DLXe.

Scalar types: ``char`` (1 byte, signed), ``int`` (4 bytes, signed),
``float`` (4), ``double`` (8).  Derived types: pointers, fixed-size
arrays, and plain structs.  Pointers and ``int`` share machine word
representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class TypeError_(Exception):
    """Semantic type error in the source program."""


class Type:
    """Base class; use the singletons and constructors below."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        return "type"

    @property
    def is_scalar(self) -> bool:
        return isinstance(self, (IntType, CharType, FloatType, DoubleType,
                                 PointerType))

    @property
    def is_integer(self) -> bool:
        return isinstance(self, (IntType, CharType))

    @property
    def is_float(self) -> bool:
        return isinstance(self, (FloatType, DoubleType))

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_arithmetic(self) -> bool:
        return self.is_integer or self.is_float


@dataclass(frozen=True)
class VoidType(Type):
    size: int = 0
    align: int = 1

    def __str__(self):
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    size: int = 4
    align: int = 4

    def __str__(self):
        return "int"


@dataclass(frozen=True)
class CharType(Type):
    size: int = 1
    align: int = 1

    def __str__(self):
        return "char"


@dataclass(frozen=True)
class FloatType(Type):
    size: int = 4
    align: int = 4

    def __str__(self):
        return "float"


@dataclass(frozen=True)
class DoubleType(Type):
    size: int = 8
    align: int = 4   # accessed as two words; word alignment suffices

    def __str__(self):
        return "double"


@dataclass(frozen=True)
class PointerType(Type):
    target: Type = field(default_factory=IntType)
    size: int = 4
    align: int = 4

    def __str__(self):
        return f"{self.target}*"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type = field(default_factory=IntType)
    length: int = 0

    def __str__(self):
        return f"{self.element}[{self.length}]"

    @property
    def size(self) -> int:
        return self.element.size * self.length

    @property
    def align(self) -> int:
        return self.element.align


@dataclass(frozen=True)
class StructField:
    name: str
    type: Type
    offset: int


@dataclass(eq=False)
class StructType(Type):
    """Struct type; identity-compared and mutable so self-referential
    definitions (``struct T *next`` inside ``struct T``) can be filled
    in after the placeholder is registered."""

    name: str
    fields: tuple[StructField, ...] = ()

    def __str__(self):
        return f"struct {self.name}"

    @property
    def size(self) -> int:
        if not self.fields:
            return 0
        last = self.fields[-1]
        raw = last.offset + last.type.size
        return (raw + self.align - 1) // self.align * self.align

    @property
    def align(self) -> int:
        return max((f.type.align for f in self.fields), default=1)

    def field_named(self, name: str) -> StructField:
        for f in self.fields:
            if f.name == name:
                return f
        raise TypeError_(f"struct {self.name} has no member {name!r}")


VOID = VoidType()
INT = IntType()
CHAR = CharType()
FLOAT = FloatType()
DOUBLE = DoubleType()


def pointer_to(target: Type) -> PointerType:
    return PointerType(target=target)


def layout_struct(name: str, members: list[tuple[str, Type]],
                  into: StructType | None = None) -> StructType:
    """Compute field offsets with natural alignment.

    Pass ``into`` to fill a previously registered placeholder (for
    self-referential structs)."""
    fields = []
    offset = 0
    for member_name, ty in members:
        offset = (offset + ty.align - 1) // ty.align * ty.align
        fields.append(StructField(member_name, ty, offset))
        offset += ty.size
    if into is not None:
        into.fields = tuple(fields)
        return into
    return StructType(name=name, fields=tuple(fields))


def decay(ty: Type) -> Type:
    """Array-to-pointer decay in expression contexts."""
    if isinstance(ty, ArrayType):
        return pointer_to(ty.element)
    return ty


def common_arithmetic(a: Type, b: Type) -> Type:
    """C's usual arithmetic conversions, restricted to minic's types."""
    if not (a.is_arithmetic and b.is_arithmetic):
        raise TypeError_(f"cannot combine {a} and {b} arithmetically")
    if isinstance(a, DoubleType) or isinstance(b, DoubleType):
        return DOUBLE
    if isinstance(a, FloatType) or isinstance(b, FloatType):
        return FLOAT
    return INT


def ir_class(ty: Type) -> str:
    """IR value class of a scalar type: 'i', 'f', or 'd'."""
    if isinstance(ty, FloatType):
        return "f"
    if isinstance(ty, DoubleType):
        return "d"
    if ty.is_integer or ty.is_pointer:
        return "i"
    raise TypeError_(f"{ty} has no scalar IR class")

"""Code generation: IR -> assembly text for a :class:`TargetSpec`.

The pipeline per function:

1. **Immediate folding** — rewrite register operands that hold constants
   into immediate forms *when the target can encode them* (``BinImm``,
   ``CmpImm``, ``CJumpImm``).  This is where D16's unsigned 5-bit ALU
   immediates vs. DLXe's 16-bit fields manifest.
2. **Register allocation** (:mod:`repro.cc.regalloc`).
3. **Emission** — one pass over blocks producing assembly, legalizing
   addressing (displacement overflow goes through the assembler
   temporary), resolving two-address constraints with moves, building
   large constants (D16: ``mvi``/shift combinations or PC-relative
   constant pools; DLXe: ``mvhi``+``addi``), and laying down prologue,
   epilogue and literal pools.

The module also lays out the data segment (word scalars first so D16's
tiny gp window covers as many as possible) and emits the start-up stub.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.operations import Cond, COND_SWAP
from .ir import (AddrGlobal, AddrStack, Bin, CallInst, CJump, Cmp, Const,
                 Cvt, FCmp, FConst, FLoad, FStore, Function, Inst, Jump,
                 Load, Module, Move, Ret, StackSlot, Store, Un, VReg,
                 _mapped)
from .irgen import INTRINSICS
from .regalloc import allocate
from .target import (D16_POOL_RANGE, FP_ARG_PAIRS, FP_RET_PAIR,
                     INT_ARG_REGS, REG_AT, REG_AT2, REG_GP, REG_LINK,
                     REG_RET, REG_SP, TargetSpec)

_TRAP_CODES = {"exit": 0, "putchar": 1, "getchar": 2, "sbrk": 3}

#: Conditions D16 compare hardware implements directly.
_D16_CONDS = {Cond.LT, Cond.LTU, Cond.LE, Cond.LEU, Cond.EQ, Cond.NE}

_COMMUTATIVE = {"add", "and", "or", "xor", "mul", "fadd", "fmul"}

_INT_MNEMONIC = {"add": "add", "sub": "sub", "mul": "mul", "div": "div",
                 "rem": "rem", "and": "and", "or": "or", "xor": "xor",
                 "shl": "shl", "shr": "shr", "shra": "shra"}
_IMM_MNEMONIC = {"add": "addi", "sub": "subi", "and": "andi", "or": "ori",
                 "xor": "xori", "shl": "shli", "shr": "shri",
                 "shra": "shrai"}
_FP_MNEMONIC = {"fadd": "add", "fsub": "sub", "fmul": "mul", "fdiv": "div"}
_LOAD_MNEMONIC = {(4, True): "ld", (4, False): "ld", (2, True): "ldh",
                  (2, False): "ldhu", (1, True): "ldb", (1, False): "ldbu"}
_STORE_MNEMONIC = {4: "st", 2: "sth", 1: "stb"}


class CodegenError(Exception):
    pass


# --------------------------------------------------------------------------
# Machine-level IR extensions produced by immediate folding.
# --------------------------------------------------------------------------


@dataclass
class BinImm(Inst):
    op: str
    dst: VReg
    a: VReg
    value: int

    def uses(self):
        return [self.a]

    def defs(self):
        return [self.dst]

    def replace_uses(self, mapping):
        self.a = _mapped(mapping, self.a)

    def __str__(self):
        return f"{self.dst} = {self.op}i {self.a}, {self.value}"


@dataclass
class CmpImm(Inst):
    dst: VReg
    cond: Cond
    a: VReg
    value: int

    def uses(self):
        return [self.a]

    def defs(self):
        return [self.dst]

    def replace_uses(self, mapping):
        self.a = _mapped(mapping, self.a)

    def __str__(self):
        return f"{self.dst} = cmpi{self.cond.value} {self.a}, {self.value}"


@dataclass
class CJumpImm(Inst):
    cond: Cond
    a: VReg
    value: int
    if_true: str
    if_false: str

    def uses(self):
        return [self.a]

    def replace_uses(self, mapping):
        self.a = _mapped(mapping, self.a)

    def __str__(self):
        return (f"if {self.a} {self.cond.value} {self.value} "
                f"goto {self.if_true} else {self.if_false}")


def legalize_globals(func: Function, target: TargetSpec,
                     offsets: dict[str, int]) -> None:
    """Turn unreachable global-displacement accesses into address values.

    On D16 only the first 124 bytes of the data segment are addressable
    gp-relative (and subword accesses not at all); other accesses need
    the global's address in a register (a constant-pool load).  Exposing
    that address as an ``AddrGlobal`` value lets CSE and loop-invariant
    code motion reuse it — which is what period compilers did, and what
    keeps the pool-load cost proportionate."""
    from .opt import (copy_propagation, dead_code, dedupe_single_defs,
                      licm, local_cse)

    changed = False
    for block in func.blocks:
        out: list[Inst] = []
        for inst in block.instrs:
            if isinstance(inst, (Load, Store, FLoad, FStore)) \
                    and isinstance(inst.base, str):
                goff = offsets[inst.base] + inst.offset
                if isinstance(inst, (Load, Store)):
                    size = inst.size
                    span = size
                else:
                    size = 4
                    span = 8 if (inst.dst.cls == "d"
                                 if isinstance(inst, FLoad)
                                 else inst.src.cls == "d") else 4
                ok = (target.mem_offset_ok(size, goff)
                      and target.mem_offset_ok(size, goff + span - 4))
                if not ok:
                    addr = func.new_vreg("i", f"ga_{inst.base}")
                    # Keep the displacement on the access only if it
                    # survives legalization; otherwise fold it into the
                    # pooled address (``.word name+offset``).
                    keep = (target.mem_offset_ok(size, inst.offset)
                            and target.mem_offset_ok(
                                size, inst.offset + span - 4))
                    if keep:
                        out.append(AddrGlobal(addr, inst.base))
                    else:
                        out.append(AddrGlobal(addr, inst.base,
                                              offset=inst.offset))
                        inst.offset = 0
                    inst.base = addr
                    changed = True
            out.append(inst)
        block.instrs = out
    if changed:
        local_cse(func)
        copy_propagation(func)
        licm(func)
        dedupe_single_defs(func)
        copy_propagation(func)
        dead_code(func)


def fold_immediates(func: Function, target: TargetSpec) -> None:
    """Fold constant operands into immediate instruction forms."""
    from .opt import dead_code

    for block in func.blocks:
        consts: dict[VReg, int] = {}
        out: list[Inst] = []
        for inst in block.instrs:
            new = None
            if isinstance(inst, Bin) and inst.dst.cls == "i":
                av = consts.get(inst.a)
                bv = consts.get(inst.b)
                op = inst.op
                if bv is not None and target.alu_imm_ok(op, bv):
                    new = BinImm(op, inst.dst, inst.a, bv)
                elif op == "sub" and bv is not None \
                        and target.alu_imm_ok("add", -bv):
                    new = BinImm("add", inst.dst, inst.a, -bv)
                elif op == "add" and bv is not None \
                        and target.alu_imm_ok("sub", -bv):
                    new = BinImm("sub", inst.dst, inst.a, -bv)
                elif av is not None and op in _COMMUTATIVE \
                        and target.alu_imm_ok(op, av):
                    new = BinImm(op, inst.dst, inst.b, av)
            elif isinstance(inst, Cmp):
                bv = consts.get(inst.b)
                if bv is not None and target.cmp_imm_ok(bv):
                    new = CmpImm(inst.dst, inst.cond, inst.a, bv)
            elif isinstance(inst, CJump) and inst.b is not None:
                bv = consts.get(inst.b)
                if bv == 0 and inst.cond in (Cond.EQ, Cond.NE):
                    new = CJump(inst.cond, inst.a, None,
                                inst.if_true, inst.if_false)
                elif bv is not None and target.cmp_imm_ok(bv):
                    new = CJumpImm(inst.cond, inst.a, bv,
                                   inst.if_true, inst.if_false)
            chosen = new if new is not None else inst
            for d in chosen.defs():
                consts.pop(d, None)
            if isinstance(chosen, Const):
                consts[chosen.dst] = _signed(chosen.value)
            out.append(chosen)
        block.instrs = out
    dead_code(func)


def _signed(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & 0x80000000 else value


# --------------------------------------------------------------------------
# Assembly writer and D16 constant pools.
# --------------------------------------------------------------------------


class AsmWriter:
    """Accumulates assembly text, tracking emitted instruction bytes."""

    def __init__(self, instr_bytes: int):
        self.lines: list[str] = []
        self.width = instr_bytes
        self.position = 0          # bytes of instructions + pool data

    def instr(self, text: str) -> None:
        self.lines.append(f"        {text}")
        self.position += self.width

    def label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    def directive(self, text: str, size: int = 0) -> None:
        self.lines.append(f"        {text}")
        self.position += size

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


class PoolManager:
    """Literal pools for D16's PC-relative ``ldc``.

    Entries accumulate while code is emitted; when the oldest pending use
    would drift out of ``ldc`` range, the pool is flushed inline (jumping
    over it).  This is the classic Thumb literal-island technique.
    """

    #: Flush before the oldest use is this many bytes from its pool slot.
    FLUSH_DISTANCE = D16_POOL_RANGE[1] - 96

    def __init__(self, writer: AsmWriter, prefix: str):
        self.writer = writer
        self.prefix = prefix
        self.counter = 0
        self.pending: list[tuple[str, str]] = []   # (label, directive)
        self.dedupe: dict[str, str] = {}
        self.first_use_pos: int | None = None

    def ref(self, directive: str) -> str:
        """Get a pool label whose word is ``directive`` (e.g. '.word x')."""
        label = self.dedupe.get(directive)
        if label is None:
            label = f".Lp_{self.prefix}_{self.counter}"
            self.counter += 1
            self.pending.append((label, directive))
            self.dedupe[directive] = label
        if self.first_use_pos is None:
            self.first_use_pos = self.writer.position
        return label

    def maybe_flush(self) -> None:
        if self.first_use_pos is None:
            return
        if self.writer.position - self.first_use_pos >= self.FLUSH_DISTANCE:
            self.flush(jump_over=True)

    def flush(self, jump_over: bool) -> None:
        if not self.pending:
            return
        writer = self.writer
        skip = f".Lp_{self.prefix}_skip{self.counter}"
        self.counter += 1
        if jump_over:
            writer.instr(f"br {skip}")
        pad = (-writer.position) % 4
        writer.directive(".align 4", pad)
        for label, directive in self.pending:
            writer.label(label)
            writer.directive(directive, 4)
        if jump_over:
            writer.label(skip)
        self.pending.clear()
        self.dedupe.clear()
        self.first_use_pos = None


# --------------------------------------------------------------------------
# Data layout.
# --------------------------------------------------------------------------


def layout_data(module: Module) -> dict[str, int]:
    """Assign a gp-relative offset to every global.

    Word-sized scalars come first so that as many as possible fall inside
    D16's 0..124-byte gp window.
    """
    scalars = [g for g in module.globals if g.size <= 8 and g.align >= 4]
    others = [g for g in module.globals if g not in scalars]
    offsets: dict[str, int] = {}
    offset = 0
    for group in (scalars, others):
        for glob in group:
            align = max(glob.align, 1)
            offset = (offset + align - 1) // align * align
            offsets[glob.name] = offset
            offset += max(glob.size, 1)
    return offsets


def emit_data(module: Module, offsets: dict[str, int]) -> str:
    lines = ["        .data"]
    position = 0
    ordered = sorted(module.globals, key=lambda g: offsets[g.name])
    for glob in ordered:
        target = offsets[glob.name]
        if target > position:
            lines.append(f"        .space {target - position}")
            position = target
        lines.append(f"{glob.name}:")
        for item in glob.init:
            kind = item[0]
            if kind == "bytes":
                data = item[1]
                for chunk_start in range(0, len(data), 16):
                    chunk = data[chunk_start:chunk_start + 16]
                    values = ", ".join(str(b) for b in chunk)
                    lines.append(f"        .byte {values}")
                position += len(data)
            elif kind == "word":
                lines.append(f"        .word {item[1]}")
                position += 4
            elif kind == "sym":
                lines.append(f"        .word {item[1]}")
                position += 4
            elif kind == "space":
                lines.append(f"        .space {item[1]}")
                position += item[1]
            else:  # pragma: no cover
                raise CodegenError(f"unknown init directive {kind}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------
# Function emission.
# --------------------------------------------------------------------------


class FunctionEmitter:
    def __init__(self, func: Function, target: TargetSpec,
                 global_offsets: dict[str, int], writer: AsmWriter,
                 schedule: bool = True):
        self.func = func
        self.target = target
        self.narrow = not target.wide_immediates
        self.global_offsets = global_offsets
        self.writer = writer
        self.pool: PoolManager | None = (
            PoolManager(writer, func.name) if target.isa.name == "D16"
            else None)
        legalize_globals(func, target, global_offsets)
        fold_immediates(func, target)
        if schedule:
            from .schedule import schedule_function
            schedule_function(func)
        self.alloc, self.spill_slots = self._allocate()
        self.has_calls = any(
            isinstance(inst, CallInst) and inst.name not in INTRINSICS
            for block in func.blocks for inst in block.instrs)
        self._layout_frame()
        self.ret_label = f".L{func.name}_return"

    # ------------------------------------------------------------- setup

    def _allocate(self):
        before = set(self.func.slots)
        allocation = allocate(self.func, self.target)
        new_slots = [s for s in self.func.slots if s not in before]
        spill_map: dict[str, StackSlot] = {s.name: s for s in new_slots}
        return allocation, spill_map

    def _layout_frame(self) -> None:
        func, alloc = self.func, self.alloc
        offset = 0
        # Outgoing stack arguments (beyond 4 int + 4 FP registers).
        self.outgoing_bytes = self._max_outgoing()
        offset += self.outgoing_bytes
        # Saved link register.
        self.lr_offset = None
        if self.has_calls:
            self.lr_offset = offset
            offset += 4
        # Saved callee registers.
        self.saved_int_offsets: list[tuple[int, int]] = []
        for reg in alloc.used_callee_int:
            self.saved_int_offsets.append((reg, offset))
            offset += 4
        self.saved_fp_offsets: list[tuple[int, int]] = []
        for pair in alloc.used_callee_fp_pairs:
            self.saved_fp_offsets.append((pair, offset))
            offset += 8
        # Locals and spill slots.
        self.slot_offsets: dict[int, int] = {}
        for slot in func.slots:
            align = max(slot.align, 4)
            offset = (offset + align - 1) // align * align
            self.slot_offsets[slot.id] = offset
            offset += max(slot.size, 4)
        self.frame_size = (offset + 7) & ~7

    def _max_outgoing(self) -> int:
        worst = 0
        for block in self.func.blocks:
            for inst in block.instrs:
                if isinstance(inst, CallInst) \
                        and inst.name not in INTRINSICS:
                    _regs, stack = self._classify_args(inst.args)
                    worst = max(worst, sum(size for _a, _o, size in stack))
        return worst

    def _classify_args(self, args):
        """Split call arguments into register and stack classes."""
        reg_moves: list[tuple[str, int, int]] = []  # (cls, src_pair, dst)
        stack: list[tuple[VReg, int, int]] = []     # (vreg, offset, size)
        int_used = 0
        fp_used = 0
        stack_offset = 0
        for arg in args:
            if arg.cls == "i":
                if int_used < len(INT_ARG_REGS):
                    reg_moves.append(("i", self._reg(arg),
                                      INT_ARG_REGS[int_used]))
                    int_used += 1
                else:
                    stack.append((arg, stack_offset, 4))
                    stack_offset += 4
            else:
                if fp_used < len(FP_ARG_PAIRS):
                    reg_moves.append((arg.cls, self._reg(arg),
                                      FP_ARG_PAIRS[fp_used]))
                    fp_used += 1
                else:
                    size = 8 if arg.cls == "d" else 4
                    stack.append((arg, stack_offset, size))
                    stack_offset += size
        return reg_moves, stack

    def _reg(self, vreg: VReg) -> int:
        try:
            return self.alloc.reg_of(vreg)
        except KeyError:
            raise CodegenError(
                f"{self.func.name}: no register for {vreg} "
                f"(hint {vreg.hint!r})") from None

    # ---------------------------------------------------------- emission

    def emit(self) -> None:
        writer = self.writer
        writer.label(self.func.name)
        self._emit_prologue()
        blocks = self.func.blocks
        for index, block in enumerate(blocks):
            next_label = blocks[index + 1].label \
                if index + 1 < len(blocks) else None
            if index > 0:
                writer.label(block.label)
            for pos, inst in enumerate(block.instrs):
                is_last = (index == len(blocks) - 1
                           and pos == len(block.instrs) - 1)
                self._emit_inst(inst, next_label, is_last)
                if self.pool is not None:
                    self.pool.maybe_flush()
        self._emit_epilogue()
        if self.pool is not None:
            self.pool.flush(jump_over=False)

    # Convenience wrappers -------------------------------------------------

    def _i(self, text: str) -> None:
        self.writer.instr(text)

    def _load_const(self, reg: int, value: int) -> None:
        """Materialize a 32-bit constant into an integer register."""
        value = _signed(value)
        target = self.target
        if target.mvi_ok(value):
            self._i(f"mvi r{reg}, {value}")
            return
        if target.wide_immediates:
            unsigned = value & 0xFFFFFFFF
            lo = unsigned & 0xFFFF
            hi = (unsigned >> 16) & 0xFFFF
            if lo >= 0x8000:
                hi = (hi + 1) & 0xFFFF
                lo -= 0x10000
            self._i(f"mvhi r{reg}, {hi}")
            if lo:
                self._i(f"addi r{reg}, r{reg}, {lo}")
            return
        if self.narrow and not self.target.isa.name == "D16":
            # Narrow-immediate DLXe ablation: build with mvi/shli/addi.
            self._build_narrow_const(reg, value)
            return
        # D16: try mvi+shli (value == m << k with m in signed 9 bits).
        unsigned = value & 0xFFFFFFFF
        for shift in range(1, 24):
            if unsigned & ((1 << shift) - 1):
                continue
            m = _signed(unsigned >> shift)
            if -256 <= m <= 255:
                self._i(f"mvi r{reg}, {m}")
                self._i(f"shli r{reg}, r{reg}, {shift}")
                return
        self._pool_word(reg, f".word {value & 0xFFFFFFFF}")

    def _build_narrow_const(self, reg: int, value: int) -> None:
        unsigned = value & 0xFFFFFFFF
        self._i(f"mvi r{reg}, {(unsigned >> 24) & 0xFF}")
        for shift in (16, 8, 0):
            self._i(f"shli r{reg}, r{reg}, 8")
            byte = (unsigned >> shift) & 0xFF
            if byte > 31:
                self._i(f"mvi r{REG_AT}, {byte}")
                self._i(f"add r{reg}, r{reg}, r{REG_AT}")
            elif byte:
                self._i(f"addi r{reg}, r{reg}, {byte}")

    def _pool_word(self, reg: int, directive: str) -> None:
        if self.pool is None:
            raise CodegenError("constant pool used on a pool-less target")
        label = self.pool.ref(directive)
        self._i(f"ldc r{reg}, {label}")

    def _add_imm(self, dst: int, src: int, value: int) -> None:
        """dst = src + value, legalizing the immediate."""
        if value == 0:
            if dst != src:
                self._i(f"mv r{dst}, r{src}")
            return
        target = self.target
        if target.wide_immediates and -32768 <= value <= 32767:
            self._i(f"addi r{dst}, r{src}, {value}")
            return
        if not target.wide_immediates and 0 < value <= 31 and dst == src:
            self._i(f"addi r{dst}, r{dst}, {value}")
            return
        if not target.wide_immediates and -31 <= value < 0 and dst == src:
            self._i(f"subi r{dst}, r{dst}, {-value}")
            return
        if not target.wide_immediates and 0 < abs(value) <= 31:
            if dst != src:
                self._i(f"mv r{dst}, r{src}")
            if value > 0:
                self._i(f"addi r{dst}, r{dst}, {value}")
            else:
                self._i(f"subi r{dst}, r{dst}, {-value}")
            return
        scratch = REG_AT if dst == src or dst == REG_AT2 else dst
        if scratch == src:
            scratch = REG_AT
        self._load_const(scratch, value)
        if self.target.three_address:
            self._i(f"add r{dst}, r{src}, r{scratch}")
        else:
            if dst != src and dst == scratch:
                self._i(f"add r{dst}, r{dst}, r{src}")
            else:
                if dst != src:
                    self._i(f"mv r{dst}, r{src}")
                self._i(f"add r{dst}, r{dst}, r{scratch}")

    # Memory access helpers ------------------------------------------------

    def _resolve_base(self, base, offset: int) -> tuple[int, int, str | None]:
        """Resolve an IR memory base to (reg, offset, global-or-None)."""
        if isinstance(base, VReg):
            return self._reg(base), offset, None
        if isinstance(base, StackSlot):
            return REG_SP, self.slot_offsets[base.id] + offset, None
        return REG_GP, self.global_offsets[base] + offset, base

    def _mem_access(self, mnemonic: str, data_reg: int, base, offset: int,
                    size: int) -> None:
        """Emit one load/store, legalizing the addressing mode."""
        reg, final_offset, global_name = self._resolve_base(base, offset)
        if self.target.mem_offset_ok(size, final_offset):
            self._i(f"{mnemonic} r{data_reg}, {final_offset}(r{reg})")
            return
        if global_name is not None and self.pool is not None:
            # D16: pool the absolute address (with the offset folded in).
            goff = final_offset - self.global_offsets[global_name]
            sym = global_name if goff == 0 else f"{global_name}+{goff}"
            self._pool_word(REG_AT, f".word {sym}")
            self._i(f"{mnemonic} r{data_reg}, 0(r{REG_AT})"
                    if size == 4 else f"{mnemonic} r{data_reg}, (r{REG_AT})")
            return
        if global_name is not None and self.target.wide_immediates:
            self._i(f"mvhi r{REG_AT}, %hi({global_name})")
            self._i(f"addi r{REG_AT}, r{REG_AT}, %lo({global_name})")
            extra = final_offset - self.global_offsets[global_name]
            if not self.target.mem_offset_ok(size, extra):
                self._add_imm(REG_AT, REG_AT, extra)
                extra = 0
            self._i(f"{mnemonic} r{data_reg}, {extra}(r{REG_AT})")
            return
        self._add_imm(REG_AT, reg, final_offset)
        if size == 4 and self.target.mem_offset_ok(4, 0):
            self._i(f"{mnemonic} r{data_reg}, 0(r{REG_AT})")
        else:
            self._i(f"{mnemonic} r{data_reg}, (r{REG_AT})")

    # Two-address resolution -----------------------------------------------

    def _bin_reg(self, op: str, dst: int, a: int, b: int,
                 fp_suffix: str = "", pair: bool = False) -> None:
        """Emit dst = a OP b honoring the target's address count."""
        prefix = "f" if fp_suffix else "r"
        mv = f"mv.{ 'df' if pair else 'sf' }" if fp_suffix else "mv"
        name = op + fp_suffix
        if self.target.three_address:
            self._i(f"{name} {prefix}{dst}, {prefix}{a}, {prefix}{b}")
            return
        if dst == a:
            self._i(f"{name} {prefix}{dst}, {prefix}{dst}, {prefix}{b}")
            return
        base = op.split(".")[0]
        commutative = base in ("add", "and", "or", "xor", "mul")
        if dst == b:
            if commutative:
                self._i(f"{name} {prefix}{dst}, {prefix}{dst}, {prefix}{a}")
                return
            if base == "sub" and not fp_suffix:
                # dst = a - dst  ==  -(dst - a)
                self._i(f"sub r{dst}, r{dst}, r{a}")
                self._i(f"neg r{dst}, r{dst}")
                return
            if base == "sub" and fp_suffix:
                self._i(f"{name} {prefix}{dst}, {prefix}{dst}, {prefix}{a}")
                self._i(f"neg{fp_suffix} {prefix}{dst}, {prefix}{dst}")
                return
            # General case: go through the scratch register.
            if fp_suffix:
                self._i(f"{mv} f0, f{a}")
                self._i(f"{name} f0, f0, f{b}")
                self._i(f"{mv} f{dst}, f0")
            else:
                self._i(f"mv r{REG_AT}, r{a}")
                self._i(f"{name} r{REG_AT}, r{REG_AT}, r{b}")
                self._i(f"mv r{dst}, r{REG_AT}")
            return
        self._i(f"{mv} {prefix}{dst}, {prefix}{a}")
        self._i(f"{name} {prefix}{dst}, {prefix}{dst}, {prefix}{b}")

    def _bin_imm(self, op: str, dst: int, a: int, value: int) -> None:
        mnemonic = _IMM_MNEMONIC[op]
        if not self.target.wide_immediates and op in ("add", "sub"):
            # D16 addi/subi are unsigned; pick the right direction.
            if value < 0:
                mnemonic = "subi" if op == "add" else "addi"
                value = -value
        if self.target.three_address:
            self._i(f"{mnemonic} r{dst}, r{a}, {value}")
            return
        if dst != a:
            self._i(f"mv r{dst}, r{a}")
        self._i(f"{mnemonic} r{dst}, r{dst}, {value}")

    # Comparison helpers ----------------------------------------------------

    def _legal_cond(self, cond: Cond, a, b):
        """Swap operands so D16-class hardware can encode the condition."""
        if self.target.isa.name != "D16" or cond in _D16_CONDS:
            return cond, a, b
        return COND_SWAP[cond], b, a

    def _cmp_to(self, dst: int, cond: Cond, a: int, b: int) -> None:
        if self.target.isa.name == "D16":
            cond, a, b = self._legal_cond(cond, a, b)
            self._i(f"cmp{cond.value} r0, r{a}, r{b}")
            self._i(f"mv r{dst}, r0")
        else:
            self._i(f"cmp{cond.value} r{dst}, r{a}, r{b}")

    def _branch_cond(self, cond: Cond, a: int, b: int, label: str) -> None:
        """Branch to label when a cond b (register-register)."""
        if self.target.isa.name == "D16":
            cond, a, b = self._legal_cond(cond, a, b)
            self._i(f"cmp{cond.value} r0, r{a}, r{b}")
            self._i(f"bnz r0, {label}")
        else:
            self._i(f"cmp{cond.value} r{REG_AT}, r{a}, r{b}")
            self._i(f"bnz r{REG_AT}, {label}")

    def _branch_zero(self, cond: Cond, a: int, label: str) -> None:
        """Branch to label when a cond 0 (cond is EQ or NE)."""
        mnemonic = "bz" if cond == Cond.EQ else "bnz"
        if self.target.isa.name == "D16":
            self._i(f"mv r0, r{a}")
            self._i(f"{mnemonic} r0, {label}")
        else:
            self._i(f"{mnemonic} r{a}, {label}")

    # FP helpers -------------------------------------------------------------

    def _fp_load_words(self, pair: int, base, offset: int,
                      is_double: bool) -> None:
        words = 2 if is_double else 1
        for index in range(words):
            self._mem_word_to_at(base, offset + 4 * index)
            self._i(f"mvif f{pair + index}, r{REG_AT2}")

    def _mem_word_to_at(self, base, offset: int) -> None:
        """Load a word into the secondary scratch register."""
        reg, final_offset, global_name = self._resolve_base(base, offset)
        if self.target.mem_offset_ok(4, final_offset):
            self._i(f"ld r{REG_AT2}, {final_offset}(r{reg})")
            return
        if global_name is not None and self.pool is not None:
            goff = final_offset - self.global_offsets[global_name]
            sym = global_name if goff == 0 else f"{global_name}+{goff}"
            self._pool_word(REG_AT, f".word {sym}")
            self._i(f"ld r{REG_AT2}, 0(r{REG_AT})")
            return
        self._add_imm(REG_AT, reg, final_offset)
        self._i(f"ld r{REG_AT2}, 0(r{REG_AT})")

    def _fp_store_words(self, pair: int, base, offset: int,
                       is_double: bool) -> None:
        words = 2 if is_double else 1
        for index in range(words):
            self._i(f"mvfi r{REG_AT2}, f{pair + index}")
            self._store_at2(base, offset + 4 * index)

    def _store_at2(self, base, offset: int) -> None:
        reg, final_offset, global_name = self._resolve_base(base, offset)
        if self.target.mem_offset_ok(4, final_offset):
            self._i(f"st r{REG_AT2}, {final_offset}(r{reg})")
            return
        if global_name is not None and self.pool is not None:
            goff = final_offset - self.global_offsets[global_name]
            sym = global_name if goff == 0 else f"{global_name}+{goff}"
            self._pool_word(REG_AT, f".word {sym}")
            self._i(f"st r{REG_AT2}, 0(r{REG_AT})")
            return
        self._add_imm(REG_AT, reg, final_offset)
        self._i(f"st r{REG_AT2}, 0(r{REG_AT})")

    def _fp_const_bits(self, pair: int, value: float, is_double: bool) -> None:
        import struct as _struct
        if is_double:
            lo, hi = _struct.unpack("<II", _struct.pack("<d", value))
            words = [lo, hi]
        else:
            words = [_struct.unpack("<I", _struct.pack("<f", value))[0]]
        for index, bits in enumerate(words):
            self._load_const(REG_AT2, bits)
            self._i(f"mvif f{pair + index}, r{REG_AT2}")

    # Parallel moves ----------------------------------------------------------

    def _parallel_int_moves(self, moves: list[tuple[int, int]]) -> None:
        """Emit moves (dst, src) that may permute registers; AT breaks cycles."""
        pending = [(d, s) for d, s in moves if d != s]
        while pending:
            sources = {s for _d, s in pending}
            emitted = False
            for index, (dst, src) in enumerate(pending):
                if dst not in sources:
                    self._i(f"mv r{dst}, r{src}")
                    pending.pop(index)
                    emitted = True
                    break
            if emitted:
                continue
            dst, src = pending[0]
            self._i(f"mv r{REG_AT}, r{src}")
            pending = [(d, (REG_AT if s == src else s))
                       for d, s in pending]

    def _parallel_fp_moves(self, moves: list[tuple[str, int, int]]) -> None:
        """moves: (cls, src_pair, dst_pair); f0 pair breaks cycles."""
        pending = [(cls, dst, src) for cls, src, dst in moves if dst != src]
        while pending:
            sources = {s for _c, _d, s in pending}
            emitted = False
            for index, (cls, dst, src) in enumerate(pending):
                if dst not in sources and dst + 1 not in sources:
                    mv = "mv.df" if cls == "d" else "mv.sf"
                    self._i(f"{mv} f{dst}, f{src}")
                    pending.pop(index)
                    emitted = True
                    break
            if emitted:
                continue
            cls, dst, src = pending[0]
            mv = "mv.df" if cls == "d" else "mv.sf"
            self._i(f"{mv} f{FP_RET_PAIR}, f{src}")
            pending = [(c, d, (FP_RET_PAIR if s == src else s))
                       for c, d, s in pending]

    # Prologue / epilogue ------------------------------------------------------

    def _emit_prologue(self) -> None:
        if self.frame_size:
            self._add_imm(REG_SP, REG_SP, -self.frame_size)
        if self.lr_offset is not None:
            self._store_int(REG_LINK, self.lr_offset)
        for reg, offset in self.saved_int_offsets:
            self._store_int(reg, offset)
        for pair, offset in self.saved_fp_offsets:
            for index in range(2):
                self._i(f"mvfi r{REG_AT2}, f{pair + index}")
                self._store_int(REG_AT2, offset + 4 * index)
        self._emit_param_moves()

    def _store_int(self, reg: int, offset: int) -> None:
        if self.target.mem_offset_ok(4, offset):
            self._i(f"st r{reg}, {offset}(r{REG_SP})")
        else:
            self._add_imm(REG_AT, REG_SP, offset)
            self._i(f"st r{reg}, 0(r{REG_AT})")

    def _load_int(self, reg: int, offset: int) -> None:
        if self.target.mem_offset_ok(4, offset):
            self._i(f"ld r{reg}, {offset}(r{REG_SP})")
        else:
            self._add_imm(REG_AT, REG_SP, offset)
            self._i(f"ld r{reg}, 0(r{REG_AT})")

    def _emit_param_moves(self) -> None:
        int_moves: list[tuple[int, int]] = []
        fp_moves: list[tuple[str, int, int]] = []
        int_used = fp_used = 0
        stack_offset = 0
        for param in self.func.params:
            if param.cls == "i":
                if int_used < len(INT_ARG_REGS):
                    self._param_in(param, INT_ARG_REGS[int_used], None,
                                   int_moves)
                    int_used += 1
                else:
                    self._param_in(param, None, stack_offset, int_moves)
                    stack_offset += 4
            else:
                if fp_used < len(FP_ARG_PAIRS):
                    self._param_fp_in(param, FP_ARG_PAIRS[fp_used], None,
                                      fp_moves)
                    fp_used += 1
                else:
                    self._param_fp_in(param, None, stack_offset, fp_moves)
                    stack_offset += 8 if param.cls == "d" else 4
        if int_moves:
            self._parallel_int_moves(int_moves)
        if fp_moves:
            self._parallel_fp_moves(fp_moves)

    def _param_in(self, param: VReg, src_reg, stack_offset,
                  int_moves) -> None:
        # A spilled parameter may still carry a (vacuous) register
        # assignment from the retry round; the spill slot is the truth.
        spill = self.spill_slots.get(f"spill_{param}")
        assignment = None if spill is not None \
            else self.alloc.int_assignment.get(param)
        if src_reg is not None:
            if assignment is not None:
                int_moves.append((assignment, src_reg))
            elif spill is not None:
                self._store_int(src_reg, self.slot_offsets[spill.id])
        else:
            offset = self.frame_size + stack_offset
            if assignment is not None:
                self._load_int(assignment, offset)
            elif spill is not None:
                self._load_int(REG_AT2, offset)
                self._store_int(REG_AT2, self.slot_offsets[spill.id])

    def _param_fp_in(self, param: VReg, src_pair, stack_offset,
                     fp_moves) -> None:
        spill = self.spill_slots.get(f"spill_{param}")
        assignment = None if spill is not None \
            else self.alloc.fp_assignment.get(param)
        is_double = param.cls == "d"
        if src_pair is not None:
            if assignment is not None:
                fp_moves.append((param.cls, src_pair, assignment))
            elif spill is not None:
                offset = self.slot_offsets[spill.id]
                for index in range(2 if is_double else 1):
                    self._i(f"mvfi r{REG_AT2}, f{src_pair + index}")
                    self._store_int(REG_AT2, offset + 4 * index)
        else:
            offset = self.frame_size + stack_offset
            if assignment is not None:
                for index in range(2 if is_double else 1):
                    self._load_int(REG_AT2, offset + 4 * index)
                    self._i(f"mvif f{assignment + index}, r{REG_AT2}")
            elif spill is not None:
                slot_off = self.slot_offsets[spill.id]
                for index in range(2 if is_double else 1):
                    self._load_int(REG_AT2, offset + 4 * index)
                    self._store_int(REG_AT2, slot_off + 4 * index)

    def _emit_epilogue(self) -> None:
        self.writer.label(self.ret_label)
        for pair, offset in self.saved_fp_offsets:
            for index in range(2):
                self._load_int(REG_AT2, offset + 4 * index)
                self._i(f"mvif f{pair + index}, r{REG_AT2}")
        for reg, offset in self.saved_int_offsets:
            self._load_int(reg, offset)
        if self.lr_offset is not None:
            self._load_int(REG_LINK, self.lr_offset)
        if self.frame_size:
            self._add_imm(REG_SP, REG_SP, self.frame_size)
        self._i(f"j r{REG_LINK}")

    # Instruction dispatch -------------------------------------------------

    def _emit_inst(self, inst: Inst, next_label: str | None,
                   is_last: bool) -> None:
        if isinstance(inst, Const):
            self._load_const(self._reg(inst.dst), inst.value)
        elif isinstance(inst, FConst):
            self._fp_const_bits(self._reg(inst.dst), inst.value,
                                inst.dst.cls == "d")
        elif isinstance(inst, Move):
            self._emit_move(inst)
        elif isinstance(inst, Bin):
            self._emit_bin(inst)
        elif isinstance(inst, BinImm):
            self._bin_imm(inst.op, self._reg(inst.dst), self._reg(inst.a),
                          inst.value)
        elif isinstance(inst, Un):
            self._emit_un(inst)
        elif isinstance(inst, Cmp):
            self._cmp_to(self._reg(inst.dst), inst.cond,
                         self._reg(inst.a), self._reg(inst.b))
        elif isinstance(inst, CmpImm):
            self._i(f"cmpi{inst.cond.value} r{self._reg(inst.dst)}, "
                    f"r{self._reg(inst.a)}, {inst.value}")
        elif isinstance(inst, FCmp):
            self._emit_fcmp(inst)
        elif isinstance(inst, Cvt):
            self._emit_cvt(inst)
        elif isinstance(inst, Load):
            mnemonic = _LOAD_MNEMONIC[(inst.size, inst.signed)]
            self._emit_load(mnemonic, inst)
        elif isinstance(inst, FLoad):
            self._fp_load_words(self._reg(inst.dst), inst.base, inst.offset,
                                inst.dst.cls == "d")
        elif isinstance(inst, Store):
            self._emit_store(inst)
        elif isinstance(inst, FStore):
            self._fp_store_words(self._reg(inst.src), inst.base,
                                 inst.offset, inst.src.cls == "d")
        elif isinstance(inst, AddrGlobal):
            self._emit_addr_global(self._reg(inst.dst), inst.name,
                                   inst.offset)
        elif isinstance(inst, AddrStack):
            self._add_imm(self._reg(inst.dst), REG_SP,
                          self.slot_offsets[inst.slot.id])
        elif isinstance(inst, CallInst):
            self._emit_call(inst)
        elif isinstance(inst, Ret):
            self._emit_ret(inst, is_last)
        elif isinstance(inst, Jump):
            if inst.target != next_label:
                self._i(f"br {inst.target}")
        elif isinstance(inst, CJump):
            self._emit_cjump(inst, next_label)
        elif isinstance(inst, CJumpImm):
            self._emit_cjump_imm(inst, next_label)
        else:  # pragma: no cover
            raise CodegenError(f"cannot emit {inst}")

    def _emit_move(self, inst: Move) -> None:
        dst, src = self._reg(inst.dst), self._reg(inst.src)
        if dst == src:
            return
        if inst.dst.cls == "i":
            self._i(f"mv r{dst}, r{src}")
        elif inst.dst.cls == "d":
            self._i(f"mv.df f{dst}, f{src}")
        else:
            self._i(f"mv.sf f{dst}, f{src}")

    def _emit_bin(self, inst: Bin) -> None:
        if inst.op.startswith("f"):
            suffix = ".df" if inst.dst.cls == "d" else ".sf"
            self._bin_reg(_FP_MNEMONIC[inst.op], self._reg(inst.dst),
                          self._reg(inst.a), self._reg(inst.b),
                          fp_suffix=suffix, pair=inst.dst.cls == "d")
        else:
            self._bin_reg(_INT_MNEMONIC[inst.op], self._reg(inst.dst),
                          self._reg(inst.a), self._reg(inst.b))

    def _emit_un(self, inst: Un) -> None:
        dst = self._reg(inst.dst)
        a = self._reg(inst.a)
        if inst.op == "neg":
            self._i(f"neg r{dst}, r{a}")
        elif inst.op == "inv":
            self._i(f"inv r{dst}, r{a}")
        elif inst.op == "fneg":
            suffix = "df" if inst.dst.cls == "d" else "sf"
            self._i(f"neg.{suffix} f{dst}, f{a}")
        else:  # pragma: no cover
            raise CodegenError(f"unknown unary {inst.op}")

    def _emit_fcmp(self, inst: FCmp) -> None:
        suffix = "df" if inst.a.cls == "d" else "sf"
        cond, a, b = inst.cond, self._reg(inst.a), self._reg(inst.b)
        if self.target.isa.name == "D16" and cond not in _D16_CONDS:
            cond, a, b = COND_SWAP[cond], b, a
        self._i(f"cmp{cond.value}.{suffix} f{a}, f{b}")
        self._i(f"rdsr r{self._reg(inst.dst)}")

    def _emit_cvt(self, inst: Cvt) -> None:
        kind = inst.kind
        if kind in ("i2f", "i2d"):
            src = self._reg(inst.a)
            dst = self._reg(inst.dst)
            self._i(f"mvif f{FP_RET_PAIR}, r{src}")
            op = "si2sf" if kind == "i2f" else "si2df"
            self._i(f"{op} f{dst}, f{FP_RET_PAIR}")
        elif kind in ("f2i", "d2i"):
            src = self._reg(inst.a)
            dst = self._reg(inst.dst)
            op = "sf2si" if kind == "f2i" else "df2si"
            self._i(f"{op} f{FP_RET_PAIR}, f{src}")
            self._i(f"mvfi r{dst}, f{FP_RET_PAIR}")
        elif kind == "f2d":
            self._i(f"sf2df f{self._reg(inst.dst)}, f{self._reg(inst.a)}")
        elif kind == "d2f":
            self._i(f"df2sf f{self._reg(inst.dst)}, f{self._reg(inst.a)}")
        else:  # pragma: no cover
            raise CodegenError(f"unknown conversion {kind}")

    def _emit_load(self, mnemonic: str, inst: Load) -> None:
        reg = self._reg(inst.dst)
        if inst.size == 4:
            self._mem_access(mnemonic, reg, inst.base, inst.offset, 4)
            return
        # Subword: D16 has no displacement at all.
        reg_base, final_offset, global_name = self._resolve_base(
            inst.base, inst.offset)
        if self.target.mem_offset_ok(inst.size, final_offset):
            if final_offset == 0 and not self.target.wide_immediates:
                self._i(f"{mnemonic} r{reg}, (r{reg_base})")
            else:
                self._i(f"{mnemonic} r{reg}, {final_offset}(r{reg_base})")
            return
        if global_name is not None and self.pool is not None:
            goff = final_offset - self.global_offsets[global_name]
            sym = global_name if goff == 0 else f"{global_name}+{goff}"
            self._pool_word(REG_AT, f".word {sym}")
            self._i(f"{mnemonic} r{reg}, (r{REG_AT})")
            return
        self._add_imm(REG_AT, reg_base, final_offset)
        self._i(f"{mnemonic} r{reg}, (r{REG_AT})")

    def _emit_store(self, inst: Store) -> None:
        reg = self._reg(inst.src)
        mnemonic = _STORE_MNEMONIC[inst.size]
        if inst.size == 4:
            self._mem_access(mnemonic, reg, inst.base, inst.offset, 4)
            return
        reg_base, final_offset, global_name = self._resolve_base(
            inst.base, inst.offset)
        if self.target.mem_offset_ok(inst.size, final_offset):
            if final_offset == 0 and not self.target.wide_immediates:
                self._i(f"{mnemonic} r{reg}, (r{reg_base})")
            else:
                self._i(f"{mnemonic} r{reg}, {final_offset}(r{reg_base})")
            return
        if global_name is not None and self.pool is not None:
            goff = final_offset - self.global_offsets[global_name]
            sym = global_name if goff == 0 else f"{global_name}+{goff}"
            self._pool_word(REG_AT, f".word {sym}")
            self._i(f"{mnemonic} r{reg}, (r{REG_AT})")
            return
        self._add_imm(REG_AT, reg_base, final_offset)
        self._i(f"{mnemonic} r{reg}, (r{REG_AT})")

    def _emit_addr_global(self, reg: int, name: str,
                          extra: int = 0) -> None:
        goff = self.global_offsets[name] + extra
        if self.target.wide_immediates or 0 <= goff <= 31:
            self._add_imm(reg, REG_GP, goff)
        elif self.pool is not None:
            sym = name if extra == 0 else f"{name}+{extra}"
            self._pool_word(reg, f".word {sym}")
        else:
            # Narrow-immediate, pool-less ablation target: build gp+goff.
            self._add_imm(reg, REG_GP, goff)

    def _emit_call(self, inst: CallInst) -> None:
        if inst.name in INTRINSICS:
            self._emit_intrinsic(inst)
            return
        reg_moves, stack_args = self._classify_args(inst.args)
        for vreg, offset, size in stack_args:
            if vreg.cls == "i":
                self._store_int(self._reg(vreg), offset)
            else:
                pair = self._reg(vreg)
                for index in range(size // 4):
                    self._i(f"mvfi r{REG_AT2}, f{pair + index}")
                    self._store_int(REG_AT2, offset + 4 * index)
        int_moves = [(dst, src) for cls, src, dst in reg_moves
                     if cls == "i"]
        fp_moves = [(cls, src, dst) for cls, src, dst in reg_moves
                    if cls != "i"]
        self._parallel_int_moves(int_moves)
        self._parallel_fp_moves(fp_moves)
        if self.target.isa.has_direct_jumps:
            self._i(f"jld {inst.name}")
        else:
            self._pool_word(REG_AT, f".word {inst.name}")
            self._i(f"jl r{REG_AT}")
        if inst.dst is not None:
            if inst.dst.cls == "i":
                dst = self._reg(inst.dst)
                if dst != REG_RET:
                    self._i(f"mv r{dst}, r{REG_RET}")
            else:
                dst = self._reg(inst.dst)
                mv = "mv.df" if inst.dst.cls == "d" else "mv.sf"
                if dst != FP_RET_PAIR:
                    self._i(f"{mv} f{dst}, f{FP_RET_PAIR}")

    def _emit_intrinsic(self, inst: CallInst) -> None:
        moves = []
        for index, arg in enumerate(inst.args):
            moves.append((INT_ARG_REGS[index], self._reg(arg)))
        self._parallel_int_moves(moves)
        self._i(f"trap {_TRAP_CODES[inst.name]}")
        if inst.dst is not None and inst.name != "exit":
            dst = self._reg(inst.dst)
            if dst != REG_RET:
                self._i(f"mv r{dst}, r{REG_RET}")

    def _emit_ret(self, inst: Ret, is_last: bool) -> None:
        if inst.src is not None:
            if inst.src.cls == "i":
                src = self._reg(inst.src)
                if src != REG_RET:
                    self._i(f"mv r{REG_RET}, r{src}")
            else:
                src = self._reg(inst.src)
                mv = "mv.df" if inst.src.cls == "d" else "mv.sf"
                if src != FP_RET_PAIR:
                    self._i(f"{mv} f{FP_RET_PAIR}, f{src}")
        if not is_last:
            self._i(f"br {self.ret_label}")

    def _emit_cjump(self, inst: CJump, next_label: str | None) -> None:
        cond = inst.cond
        if inst.b is None:
            if inst.if_true == next_label:
                flipped = Cond.NE if cond == Cond.EQ else Cond.EQ
                self._branch_zero(flipped, self._reg(inst.a), inst.if_false)
            else:
                self._branch_zero(cond, self._reg(inst.a), inst.if_true)
                if inst.if_false != next_label:
                    self._i(f"br {inst.if_false}")
            return
        a, b = self._reg(inst.a), self._reg(inst.b)
        if inst.if_true == next_label:
            from ..isa.operations import COND_NEGATE
            self._branch_cond(COND_NEGATE[cond], a, b, inst.if_false)
        else:
            self._branch_cond(cond, a, b, inst.if_true)
            if inst.if_false != next_label:
                self._i(f"br {inst.if_false}")

    def _emit_cjump_imm(self, inst: CJumpImm, next_label: str | None) -> None:
        from ..isa.operations import COND_NEGATE
        a = self._reg(inst.a)
        if inst.if_true == next_label:
            cond = COND_NEGATE[inst.cond]
            self._i(f"cmpi{cond.value} r{REG_AT}, r{a}, {inst.value}")
            self._i(f"bnz r{REG_AT}, {inst.if_false}")
        else:
            self._i(f"cmpi{inst.cond.value} r{REG_AT}, r{a}, {inst.value}")
            self._i(f"bnz r{REG_AT}, {inst.if_true}")
            if inst.if_false != next_label:
                self._i(f"br {inst.if_false}")


# --------------------------------------------------------------------------
# Whole-module generation.
# --------------------------------------------------------------------------


def _emit_start(writer: AsmWriter, target: TargetSpec) -> None:
    writer.label("_start")
    if target.isa.name == "D16":
        pool = PoolManager(writer, "crt0")
        writer.instr(f"ldc r{REG_SP}, {pool.ref('.word __stack_top')}")
        writer.instr(f"ldc r{REG_GP}, {pool.ref('.word __gp')}")
        writer.instr(f"ldc r{REG_AT}, {pool.ref('.word main')}")
        writer.instr(f"jl r{REG_AT}")
        writer.instr("trap 0")
        pool.flush(jump_over=False)
    else:
        writer.instr(f"mvhi r{REG_SP}, %hi(__stack_top)")
        writer.instr(f"addi r{REG_SP}, r{REG_SP}, %lo(__stack_top)")
        writer.instr(f"mvhi r{REG_GP}, %hi(__gp)")
        writer.instr(f"addi r{REG_GP}, r{REG_GP}, %lo(__gp)")
        writer.instr("jld main")
        writer.instr("trap 0")


def generate_assembly(module: Module, target: TargetSpec, *,
                      schedule: bool = True) -> str:
    """Generate a complete assembly file for ``module`` on ``target``."""
    offsets = layout_data(module)
    writer = AsmWriter(target.isa.width_bytes)
    writer.directive(".text")
    writer.directive(".global _start")
    _emit_start(writer, target)
    for func in module.functions:
        FunctionEmitter(func, target, offsets, writer,
                        schedule=schedule).emit()
    data = emit_data(module, offsets)
    return writer.text() + data

"""Within-block list instruction scheduling.

The paper's programs are compiled "with all optimizations enabled,
including instruction scheduling"; this pass is minic's equivalent.  It
reorders instructions inside each basic block to hide the pipeline's
delayed-load slot and math-unit latencies (the interlocks of paper
Table 10), using the same latency model the simulator charges.

Dependence edges:

* register RAW / WAR / WAW (the IR is not SSA, so anti/output
  dependences are real);
* memory: all loads and stores are conservatively treated as one
  location — loads may reorder with loads, nothing crosses a store;
* calls (and the implicit FP status register) are full barriers;
* the block terminator stays last.

Scheduling runs before register allocation, so it trades a little
register pressure for stalls — the same trade period compilers made.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.pipeline import PipelineParams
from .ir import (Block, CallInst, FCmp, FLoad, FStore, Function, Inst,
                 Load, Store, TERMINATORS, VReg)

_DEFAULT_PARAMS = PipelineParams()


def _latency(inst: Inst, params: PipelineParams) -> int:
    """Cycles until this instruction's result may be consumed."""
    if isinstance(inst, (Load, FLoad)):
        return 1 + params.load_delay
    math_class = _math_class(inst)
    if math_class is not None:
        return params.latency_of(math_class)
    return 1


def _math_class(inst: Inst) -> str | None:
    op = getattr(inst, "op", None)
    if op in ("mul",):
        return "imul"
    if op in ("div", "rem"):
        return "idiv"
    if op in ("fadd", "fsub"):
        return "fadd"
    if op == "fmul":
        return "fmul"
    if op == "fdiv":
        return "fdiv"
    if op == "fneg":
        return "fmove"
    if isinstance(inst, FCmp):
        return "fcmp"
    kind = getattr(inst, "kind", None)
    if kind in ("i2f", "i2d", "f2i", "d2i", "f2d", "d2f"):
        return "fcvt"
    return None


def _is_mem_read(inst: Inst) -> bool:
    return isinstance(inst, (Load, FLoad))


def _is_mem_write(inst: Inst) -> bool:
    return isinstance(inst, (Store, FStore))


def _is_barrier(inst: Inst) -> bool:
    return isinstance(inst, CallInst)


@dataclass
class _Node:
    index: int
    inst: Inst
    preds: set[int] = field(default_factory=set)
    succs: dict[int, int] = field(default_factory=dict)   # succ -> latency
    height: int = 0
    unscheduled_preds: int = 0
    ready_at: int = 0


def _build_graph(instrs: list[Inst],
                 params: PipelineParams) -> list[_Node]:
    nodes = [_Node(index=i, inst=inst) for i, inst in enumerate(instrs)]
    last_writer: dict[VReg, int] = {}
    readers_since: dict[VReg, list[int]] = {}
    last_store: int | None = None
    loads_since_store: list[int] = []
    last_barrier: int | None = None
    since_barrier: list[int] = []

    def edge(src: int, dst: int, latency: int) -> None:
        if src == dst:
            return
        current = nodes[src].succs.get(dst, 0)
        if latency > current:
            nodes[src].succs[dst] = latency
            nodes[dst].preds.add(src)

    for i, inst in enumerate(instrs):
        node_latency = _latency(inst, params)
        for use in inst.uses():
            writer = last_writer.get(use)
            if writer is not None:
                edge(writer, i, _latency(instrs[writer], params))
            readers_since.setdefault(use, []).append(i)
        for definition in inst.defs():
            writer = last_writer.get(definition)
            if writer is not None:
                edge(writer, i, 1)                      # WAW
            for reader in readers_since.get(definition, ()):
                edge(reader, i, 1)                      # WAR
            readers_since[definition] = []
            last_writer[definition] = i

        if _is_barrier(inst):
            for j in since_barrier:
                edge(j, i, 1)
            since_barrier = [i]
            last_barrier = i
            last_store = i
            loads_since_store = []
            continue
        since_barrier.append(i)
        if last_barrier is not None:
            edge(last_barrier, i, 1)
        if _is_mem_read(inst):
            if last_store is not None:
                edge(last_store, i, 1)
            loads_since_store.append(i)
        elif _is_mem_write(inst):
            if last_store is not None:
                edge(last_store, i, 1)
            for j in loads_since_store:
                edge(j, i, 1)
            last_store = i
            loads_since_store = []

    # Critical-path heights (reverse topological: indices are one valid
    # topological order because edges always point forward).
    for node in reversed(nodes):
        node.height = max(
            (latency + nodes[succ].height
             for succ, latency in node.succs.items()),
            default=0)
        node.unscheduled_preds = len(node.preds)
    return nodes


def schedule_block(block: Block,
                   params: PipelineParams = _DEFAULT_PARAMS) -> None:
    """Reorder one block's instructions to reduce stalls."""
    instrs = block.instrs
    if len(instrs) < 3:
        return
    has_terminator = (isinstance(instrs[-1], TERMINATORS)
                      or hasattr(instrs[-1], "if_true"))

    # The terminator joins the graph (its operand latencies matter: a
    # compare feeding the branch must not drift to the very end), but is
    # pinned last with ordering edges from every other node.
    nodes = _build_graph(instrs, params)
    if has_terminator:
        last = nodes[-1]
        for node in nodes[:-1]:
            if last.index not in node.succs:
                node.succs[last.index] = 1
                last.preds.add(node.index)
        last.unscheduled_preds = len(last.preds)
    body = instrs
    ready = [n for n in nodes if n.unscheduled_preds == 0]
    scheduled: list[Inst] = []
    time = 0
    math_free = 0            # the math unit is not pipelined

    def effective_ready(node: _Node) -> int:
        if _math_class(node.inst) is not None:
            return max(node.ready_at, math_free)
        return node.ready_at

    while ready:
        # Prefer instructions issuable *now* (operands ready, math unit
        # free); among those the longest critical path wins, stable on
        # source order.  If nothing is issuable, take whatever becomes
        # ready soonest rather than stalling on the tallest chain.
        available = [n for n in ready if effective_ready(n) <= time]
        if available:
            available.sort(key=lambda n: (-n.height, n.index))
            chosen = available[0]
        else:
            chosen = min(ready, key=lambda n: (effective_ready(n),
                                               -n.height, n.index))
        ready.remove(chosen)
        scheduled.append(chosen.inst)
        issue = max(time, effective_ready(chosen))
        time = issue + 1
        if _math_class(chosen.inst) is not None:
            math_free = issue + _latency(chosen.inst, params)
        for succ, latency in chosen.succs.items():
            node = nodes[succ]
            node.unscheduled_preds -= 1
            node.ready_at = max(node.ready_at, issue + latency)
            if node.unscheduled_preds == 0:
                ready.append(node)

    assert len(scheduled) == len(body)
    # Keep the new order only if it is locally no worse.  The cost runs
    # the sequence twice back-to-back, so loop-carried latency (the next
    # iteration consuming this one's tail) is part of the estimate —
    # naive per-block scheduling can otherwise pessimize tight loops.
    if _sequence_cost(scheduled + scheduled, params) \
            <= _sequence_cost(instrs + instrs, params):
        block.instrs = scheduled


def _sequence_cost(instrs: list[Inst], params: PipelineParams) -> int:
    """Issue-cycle estimate of a straight-line order (HazardModel rules)."""
    ready: dict[VReg, int] = {}
    math_free = 0
    time = 0
    for inst in instrs:
        issue = time + 1
        for use in inst.uses():
            when = ready.get(use, 0)
            if when > issue:
                issue = when
        is_math = _math_class(inst) is not None
        if is_math and math_free > issue:
            issue = math_free
        time = issue
        latency = _latency(inst, params)
        if is_math:
            math_free = time + latency
        for definition in inst.defs():
            ready[definition] = time + latency
    return time


def schedule_function(func: Function,
                      params: PipelineParams = _DEFAULT_PARAMS) -> None:
    """Schedule every block of a function."""
    for block in func.blocks:
        schedule_block(block, params)

"""Linear-scan register allocation with spill-and-retry.

The allocator works on IR functions:

1. linearize blocks and number instructions;
2. compute liveness (backward dataflow) and build one conservative live
   interval per virtual register;
3. scan intervals in start order, assigning physical registers; intervals
   that cross a call site are restricted to callee-saved registers;
4. on failure, spill the interval with the furthest end: rewrite each of
   its uses/defs through a fresh short-lived vreg plus a stack-slot
   load/store, then redo the scan (the new intervals are tiny, so this
   terminates quickly).

Two register classes exist: integers (``i``) and FP *pairs* (``f`` and
``d`` both occupy an aligned even/odd FPR pair, because doubles need one
and a uniform rule keeps allocation simple).  Move/two-address hints bias
assignment so two-address targets pay as little as the paper's compilers
did.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ir import (CallInst, FLoad, FStore, Function, Inst, Load, Move, Store,
                 VReg)
from .target import TargetSpec


class AllocationError(Exception):
    """The function cannot be colored (pathological register pressure)."""


@dataclass
class Interval:
    vreg: VReg
    start: int
    end: int
    crosses_call: bool = False
    hints: list[VReg] = field(default_factory=list)


@dataclass
class Allocation:
    """Result of register allocation for one function."""

    int_assignment: dict[VReg, int]     # vreg -> r index
    fp_assignment: dict[VReg, int]      # vreg -> even f index (pair base)
    used_callee_int: list[int]
    used_callee_fp_pairs: list[int]
    spill_count: int

    def reg_of(self, vreg: VReg) -> int:
        if vreg.cls == "i":
            return self.int_assignment[vreg]
        return self.fp_assignment[vreg]


def _liveness(func: Function) -> dict[str, set[VReg]]:
    """Backward dataflow: live-in set per block label."""
    blocks = func.blocks
    block_map = func.block_map()
    use_sets: dict[str, set[VReg]] = {}
    def_sets: dict[str, set[VReg]] = {}
    for block in blocks:
        uses: set[VReg] = set()
        defs: set[VReg] = set()
        for inst in block.instrs:
            for u in inst.uses():
                if u not in defs:
                    uses.add(u)
            defs.update(inst.defs())
        use_sets[block.label] = uses
        def_sets[block.label] = defs

    live_in: dict[str, set[VReg]] = {b.label: set() for b in blocks}
    live_out: dict[str, set[VReg]] = {b.label: set() for b in blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            out: set[VReg] = set()
            for succ in block.successors():
                out |= live_in.get(succ, set())
            new_in = use_sets[block.label] | (out - def_sets[block.label])
            if out != live_out[block.label] or \
                    new_in != live_in[block.label]:
                live_out[block.label] = out
                live_in[block.label] = new_in
                changed = True
    return live_in, live_out


def _build_intervals(func: Function) -> tuple[list[Interval], list[int]]:
    live_in, live_out = _liveness(func)
    position = 0
    ranges: dict[VReg, list[int]] = {}
    call_positions: list[int] = []
    block_bounds: list[tuple[int, int, str]] = []

    def touch(vreg: VReg, pos: int):
        entry = ranges.get(vreg)
        if entry is None:
            ranges[vreg] = [pos, pos]
        else:
            if pos < entry[0]:
                entry[0] = pos
            if pos > entry[1]:
                entry[1] = pos

    for param in func.params:
        touch(param, 0)

    for block in func.blocks:
        start = position
        for inst in block.instrs:
            position += 2
            for u in inst.uses():
                touch(u, position)
            for d in inst.defs():
                touch(d, position + 1)
            if isinstance(inst, CallInst):
                # Intrinsics (traps) clobber the argument/result registers,
                # so they restrict crossing intervals exactly like calls.
                call_positions.append(position)
        block_bounds.append((start, position + 1, block.label))

    # Extend across whole blocks where the value is live-through.
    for start, end, label in block_bounds:
        for vreg in live_in[label]:
            touch(vreg, start)
        for vreg in live_out[label]:
            touch(vreg, end)

    intervals = [Interval(v, r[0], r[1]) for v, r in ranges.items()]
    for interval in intervals:
        interval.crosses_call = any(
            interval.start < pos < interval.end for pos in call_positions)

    # Allocation hints from moves and (two-address) first operands.
    by_vreg = {iv.vreg: iv for iv in intervals}
    for block in func.blocks:
        for inst in block.instrs:
            if isinstance(inst, Move):
                dst, src = inst.dst, inst.src
                if dst in by_vreg and src in by_vreg:
                    by_vreg[dst].hints.append(src)
                    by_vreg[src].hints.append(dst)
            elif hasattr(inst, "op") and hasattr(inst, "a") \
                    and inst.defs():
                dst = inst.defs()[0]
                a = getattr(inst, "a", None)
                if isinstance(a, VReg) and dst in by_vreg and a in by_vreg \
                        and a.cls == dst.cls:
                    by_vreg[dst].hints.append(a)
    return intervals, call_positions


def _scan(intervals: list[Interval], pool: tuple[int, ...],
          callee_saved: frozenset[int],
          assignment: dict[VReg, int]) -> list[Interval]:
    """One linear scan over one register class; returns spilled intervals."""
    intervals = sorted(intervals, key=lambda iv: (iv.start, iv.end))
    active: list[Interval] = []
    free = list(pool)
    spilled: list[Interval] = []

    def expire(now: int):
        still = []
        for iv in active:
            if iv.end < now:
                free.append(assignment[iv.vreg])
            else:
                still.append(iv)
        active[:] = still

    for interval in intervals:
        expire(interval.start)
        candidates = [r for r in free
                      if not interval.crosses_call or r in callee_saved]
        if candidates:
            chosen = None
            for hint in interval.hints:
                hint_reg = assignment.get(hint)
                if hint_reg in candidates:
                    chosen = hint_reg
                    break
            if chosen is None:
                # Prefer caller-saved for call-free intervals to keep
                # callee-saved (and their save/restore cost) for values
                # that actually live across calls.
                non_saved = [r for r in candidates if r not in callee_saved]
                chosen = non_saved[0] if non_saved else candidates[0]
            free.remove(chosen)
            assignment[interval.vreg] = chosen
            active.append(interval)
            continue
        # Spill: the furthest-ending compatible interval, or this one.
        victims = [iv for iv in active
                   if not interval.crosses_call
                   or assignment[iv.vreg] in callee_saved]
        victim = max(victims, key=lambda iv: iv.end, default=None)
        if victim is not None and victim.end > interval.end:
            reg = assignment.pop(victim.vreg)
            active.remove(victim)
            spilled.append(victim)
            assignment[interval.vreg] = reg
            active.append(interval)
        else:
            spilled.append(interval)
    return spilled


def _rewrite_spills(func: Function, spilled: list[VReg]) -> None:
    """Send spilled vregs through stack slots around each use/def."""
    slots: dict[VReg, object] = {}
    for vreg in spilled:
        size = 8 if vreg.cls == "d" else 4
        slots[vreg] = func.new_slot(size, 4, f"spill_{vreg}")

    for block in func.blocks:
        out: list[Inst] = []
        for inst in block.instrs:
            pre: list[Inst] = []
            post: list[Inst] = []
            mapping: dict[VReg, VReg] = {}
            for use in set(inst.uses()):
                if use in slots:
                    tmp = func.new_vreg(use.cls, f"rl_{use.id}")
                    if use.cls == "i":
                        pre.append(Load(tmp, slots[use], 4))
                    else:
                        pre.append(FLoad(tmp, slots[use]))
                    mapping[use] = tmp
            if mapping:
                inst.replace_uses(mapping)
            for definition in inst.defs():
                if definition in slots:
                    tmp = func.new_vreg(definition.cls,
                                        f"sp_{definition.id}")
                    _replace_def(inst, definition, tmp)
                    if definition.cls == "i":
                        post.append(Store(slots[definition], tmp, 4))
                    else:
                        post.append(FStore(slots[definition], tmp))
            out.extend(pre)
            out.append(inst)
            out.extend(post)
        block.instrs = out


def _replace_def(inst: Inst, old: VReg, new: VReg) -> None:
    if getattr(inst, "dst", None) == old:
        inst.dst = new
        return
    raise AllocationError(f"cannot rewrite def of {old} in {inst}")


def allocate(func: Function, target: TargetSpec) -> Allocation:
    """Allocate registers, spilling as needed; mutates ``func``."""
    total_spills = 0
    for _attempt in range(12):
        intervals, _calls = _build_intervals(func)
        int_intervals = [iv for iv in intervals if iv.vreg.cls == "i"]
        fp_intervals = [iv for iv in intervals if iv.vreg.cls in ("f", "d")]
        int_assignment: dict[VReg, int] = {}
        fp_assignment: dict[VReg, int] = {}
        spilled = _scan(int_intervals, target.allocatable_int,
                        target.callee_saved_int, int_assignment)
        spilled += _scan(fp_intervals, target.allocatable_fp_pairs,
                         target.callee_saved_fp_pairs, fp_assignment)
        if not spilled:
            used_callee_int = sorted({
                reg for reg in int_assignment.values()
                if reg in target.callee_saved_int})
            used_callee_fp = sorted({
                reg for reg in fp_assignment.values()
                if reg in target.callee_saved_fp_pairs})
            return Allocation(int_assignment, fp_assignment,
                              used_callee_int, used_callee_fp,
                              total_spills)
        fresh = [iv.vreg for iv in spilled if not iv.vreg.hint.startswith(("rl_", "sp_"))]
        if not fresh:
            raise AllocationError(
                f"{func.name}: register pressure cannot be resolved")
        total_spills += len(fresh)
        _rewrite_spills(func, fresh)
    raise AllocationError(f"{func.name}: allocation did not converge")

"""Three-address intermediate representation.

Functions are graphs of basic blocks; values live in typed virtual
registers (classes ``i`` = word/pointer, ``f`` = float, ``d`` = double).
The IR is deliberately close to the shared D16/DLXe operation set so that
instruction selection is mostly one-to-one, with the targets differing in
*legalization* (immediate ranges, addressing, two-address forms).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.operations import Cond


@dataclass(frozen=True)
class VReg:
    id: int
    cls: str               # 'i', 'f', 'd'
    hint: str = ""

    def __str__(self):
        prefix = {"i": "v", "f": "vf", "d": "vd"}[self.cls]
        return f"{prefix}{self.id}"


@dataclass(frozen=True)
class StackSlot:
    id: int
    size: int
    align: int
    name: str = ""

    def __str__(self):
        return f"slot{self.id}({self.name})" if self.name else f"slot{self.id}"


class Inst:
    """Base IR instruction; subclasses define ``uses``/``defs``."""

    def uses(self) -> list[VReg]:
        return []

    def defs(self) -> list[VReg]:
        return []

    def replace_uses(self, mapping: dict[VReg, VReg]) -> None:
        """Rewrite used vregs in place via ``mapping`` (default: nothing)."""


def _mapped(mapping, value):
    return mapping.get(value, value)


@dataclass
class Const(Inst):
    dst: VReg
    value: int

    def defs(self):
        return [self.dst]

    def __str__(self):
        return f"{self.dst} = {self.value}"


@dataclass
class FConst(Inst):
    dst: VReg
    value: float

    def defs(self):
        return [self.dst]

    def __str__(self):
        return f"{self.dst} = {self.value!r}"


@dataclass
class Move(Inst):
    dst: VReg
    src: VReg

    def uses(self):
        return [self.src]

    def defs(self):
        return [self.dst]

    def replace_uses(self, mapping):
        self.src = _mapped(mapping, self.src)

    def __str__(self):
        return f"{self.dst} = {self.src}"


@dataclass
class Bin(Inst):
    op: str                # add/sub/mul/div/rem/and/or/xor/shl/shr/shra/f*
    dst: VReg
    a: VReg
    b: VReg

    def uses(self):
        return [self.a, self.b]

    def defs(self):
        return [self.dst]

    def replace_uses(self, mapping):
        self.a = _mapped(mapping, self.a)
        self.b = _mapped(mapping, self.b)

    def __str__(self):
        return f"{self.dst} = {self.op} {self.a}, {self.b}"


@dataclass
class Un(Inst):
    op: str                # neg / inv / fneg
    dst: VReg
    a: VReg

    def uses(self):
        return [self.a]

    def defs(self):
        return [self.dst]

    def replace_uses(self, mapping):
        self.a = _mapped(mapping, self.a)

    def __str__(self):
        return f"{self.dst} = {self.op} {self.a}"


@dataclass
class Cmp(Inst):
    dst: VReg
    cond: Cond
    a: VReg
    b: VReg

    def uses(self):
        return [self.a, self.b]

    def defs(self):
        return [self.dst]

    def replace_uses(self, mapping):
        self.a = _mapped(mapping, self.a)
        self.b = _mapped(mapping, self.b)

    def __str__(self):
        return f"{self.dst} = cmp{self.cond.value} {self.a}, {self.b}"


@dataclass
class FCmp(Inst):
    dst: VReg
    cond: Cond
    a: VReg
    b: VReg

    def uses(self):
        return [self.a, self.b]

    def defs(self):
        return [self.dst]

    def replace_uses(self, mapping):
        self.a = _mapped(mapping, self.a)
        self.b = _mapped(mapping, self.b)

    def __str__(self):
        return f"{self.dst} = fcmp{self.cond.value} {self.a}, {self.b}"


@dataclass
class Cvt(Inst):
    kind: str              # i2f i2d f2i d2i f2d d2f
    dst: VReg
    a: VReg

    def uses(self):
        return [self.a]

    def defs(self):
        return [self.dst]

    def replace_uses(self, mapping):
        self.a = _mapped(mapping, self.a)

    def __str__(self):
        return f"{self.dst} = {self.kind} {self.a}"


@dataclass
class Load(Inst):
    dst: VReg
    base: "VReg | StackSlot | str"   # str names a global
    size: int              # 1, 2, 4 (int class); FP loads use FLoad
    signed: bool = True
    offset: int = 0

    def uses(self):
        return [self.base] if isinstance(self.base, VReg) else []

    def defs(self):
        return [self.dst]

    def replace_uses(self, mapping):
        if isinstance(self.base, VReg):
            self.base = _mapped(mapping, self.base)

    def __str__(self):
        sign = "s" if self.signed else "u"
        return f"{self.dst} = load{self.size}{sign} [{self.base}+{self.offset}]"


@dataclass
class FLoad(Inst):
    dst: VReg              # f or d class
    base: "VReg | StackSlot | str"
    offset: int = 0

    def uses(self):
        return [self.base] if isinstance(self.base, VReg) else []

    def defs(self):
        return [self.dst]

    def replace_uses(self, mapping):
        if isinstance(self.base, VReg):
            self.base = _mapped(mapping, self.base)

    def __str__(self):
        return f"{self.dst} = fload [{self.base}+{self.offset}]"


@dataclass
class Store(Inst):
    base: "VReg | StackSlot | str"
    src: VReg
    size: int
    offset: int = 0

    def uses(self):
        used = [self.src]
        if isinstance(self.base, VReg):
            used.append(self.base)
        return used

    def replace_uses(self, mapping):
        if isinstance(self.base, VReg):
            self.base = _mapped(mapping, self.base)
        self.src = _mapped(mapping, self.src)

    def __str__(self):
        return f"store{self.size} [{self.base}+{self.offset}] = {self.src}"


@dataclass
class FStore(Inst):
    base: "VReg | StackSlot | str"
    src: VReg              # f or d class
    offset: int = 0

    def uses(self):
        used = [self.src]
        if isinstance(self.base, VReg):
            used.append(self.base)
        return used

    def replace_uses(self, mapping):
        if isinstance(self.base, VReg):
            self.base = _mapped(mapping, self.base)
        self.src = _mapped(mapping, self.src)

    def __str__(self):
        return f"fstore [{self.base}+{self.offset}] = {self.src}"


@dataclass
class AddrGlobal(Inst):
    dst: VReg
    name: str
    offset: int = 0        # folded displacement (pooled as name+offset)

    def defs(self):
        return [self.dst]

    def __str__(self):
        suffix = f"+{self.offset}" if self.offset else ""
        return f"{self.dst} = &{self.name}{suffix}"


@dataclass
class AddrStack(Inst):
    dst: VReg
    slot: StackSlot

    def defs(self):
        return [self.dst]

    def __str__(self):
        return f"{self.dst} = &{self.slot}"


@dataclass
class CallInst(Inst):
    dst: VReg | None
    name: str
    args: list[VReg]

    def uses(self):
        return list(self.args)

    def defs(self):
        return [self.dst] if self.dst is not None else []

    def replace_uses(self, mapping):
        self.args = [_mapped(mapping, a) for a in self.args]

    def __str__(self):
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dst} = " if self.dst else ""
        return f"{prefix}call {self.name}({args})"


@dataclass
class Ret(Inst):
    src: VReg | None = None

    def uses(self):
        return [self.src] if self.src is not None else []

    def replace_uses(self, mapping):
        if self.src is not None:
            self.src = _mapped(mapping, self.src)

    def __str__(self):
        return f"ret {self.src}" if self.src else "ret"


@dataclass
class Jump(Inst):
    target: str

    def __str__(self):
        return f"jump {self.target}"


@dataclass
class CJump(Inst):
    cond: Cond
    a: VReg
    b: VReg | None         # None: compare against zero
    if_true: str
    if_false: str

    def uses(self):
        return [self.a] if self.b is None else [self.a, self.b]

    def replace_uses(self, mapping):
        self.a = _mapped(mapping, self.a)
        if self.b is not None:
            self.b = _mapped(mapping, self.b)

    def __str__(self):
        rhs = "0" if self.b is None else str(self.b)
        return (f"if {self.a} {self.cond.value} {rhs} "
                f"goto {self.if_true} else {self.if_false}")


TERMINATORS = (Ret, Jump, CJump)


@dataclass
class Block:
    label: str
    instrs: list[Inst] = field(default_factory=list)

    @property
    def terminator(self) -> Inst | None:
        """The block-ending instruction, if present.

        Conditional jumps are duck-typed on ``if_true``/``if_false`` so
        machine-level variants (e.g. immediate-compare jumps created by
        the backends) participate in CFG queries too.
        """
        if not self.instrs:
            return None
        last = self.instrs[-1]
        if isinstance(last, TERMINATORS) or hasattr(last, "if_true"):
            return last
        return None

    def successors(self) -> list[str]:
        term = self.terminator
        if isinstance(term, Jump):
            return [term.target]
        if term is not None and hasattr(term, "if_true"):
            return [term.if_true, term.if_false]
        return []

    def __str__(self):
        lines = [f"{self.label}:"]
        lines.extend(f"  {inst}" for inst in self.instrs)
        return "\n".join(lines)


@dataclass
class Function:
    name: str
    params: list[VReg]
    return_cls: str | None       # 'i', 'f', 'd', or None (void)
    blocks: list[Block] = field(default_factory=list)
    slots: list[StackSlot] = field(default_factory=list)
    next_vreg: int = 0
    next_slot: int = 0
    max_call_args: int = 0       # outgoing stack-arg words needed

    def new_vreg(self, cls: str, hint: str = "") -> VReg:
        vreg = VReg(self.next_vreg, cls, hint)
        self.next_vreg += 1
        return vreg

    def new_slot(self, size: int, align: int, name: str = "") -> StackSlot:
        slot = StackSlot(self.next_slot, size, align, name)
        self.next_slot += 1
        self.slots.append(slot)
        return slot

    def block_map(self) -> dict[str, Block]:
        return {b.label: b for b in self.blocks}

    def __str__(self):
        header = f"func {self.name}({', '.join(map(str, self.params))})"
        return header + "\n" + "\n".join(str(b) for b in self.blocks)


@dataclass
class GlobalData:
    """One global variable's layout and initializer.

    ``init`` is a list of directives: ``("bytes", bytes)``,
    ``("word", int)``, ``("sym", name)``, ``("space", n)``.
    """

    name: str
    size: int
    align: int
    init: list[tuple] = field(default_factory=list)


@dataclass
class Module:
    functions: list[Function] = field(default_factory=list)
    globals: list[GlobalData] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)

    def __str__(self):
        return "\n\n".join(str(f) for f in self.functions)

"""Abstract syntax tree for minic."""

from __future__ import annotations

from dataclasses import dataclass, field

from .types import Type

# --------------------------------------------------------------- expressions


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0
    is_single: bool = False


@dataclass
class StrLit(Expr):
    value: str = ""


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""          # '-', '!', '~', '*', '&', '++', '--'
    operand: Expr | None = None


@dataclass
class Postfix(Expr):
    op: str = ""          # '++', '--'
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Assign(Expr):
    op: str = "="         # '=', '+=', '-=', ...
    target: Expr | None = None
    value: Expr | None = None


@dataclass
class Conditional(Expr):
    cond: Expr | None = None
    then: Expr | None = None
    other: Expr | None = None


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr | None = None
    index: Expr | None = None


@dataclass
class Member(Expr):
    base: Expr | None = None
    name: str = ""
    arrow: bool = False


@dataclass
class Cast(Expr):
    type: Type | None = None
    operand: Expr | None = None


@dataclass
class SizeofType(Expr):
    type: Type | None = None


# ---------------------------------------------------------------- statements


@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class VarDecl(Stmt):
    name: str = ""
    type: Type | None = None
    init: object = None   # Expr, list (array init), or None


@dataclass
class Block(Stmt):
    body: list[Stmt] = field(default_factory=list)


@dataclass
class DeclList(Stmt):
    """Several declarators from one statement (``int a, b;``).

    Unlike :class:`Block`, this does not open a scope."""

    decls: list[VarDecl] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    other: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class DoWhile(Stmt):
    body: Stmt | None = None
    cond: Expr | None = None


@dataclass
class For(Stmt):
    init: Stmt | None = None      # ExprStmt, VarDecl, or None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ----------------------------------------------------------------- top level


@dataclass
class Param:
    name: str
    type: Type


@dataclass
class FuncDef:
    name: str
    return_type: Type
    params: list[Param]
    body: Block
    line: int = 0


@dataclass
class GlobalDecl:
    name: str
    type: Type
    init: object = None   # Expr, list, str, or None
    line: int = 0


@dataclass
class Program:
    functions: list[FuncDef] = field(default_factory=list)
    globals: list[GlobalDecl] = field(default_factory=list)
    structs: dict[str, Type] = field(default_factory=dict)

"""The shared operation vocabulary of the D16 and DLXe instruction sets.

The paper's central experimental control is that both encodings drive the
*same* pipeline with the *same* operation repertoire (its Table 1).  We
therefore define one semantic operation set here; ``d16.py`` and ``dlxe.py``
only decide how (and whether) each operation can be *encoded*.

Operand-field conventions used throughout the package:

* ``rd``  — destination register
* ``rs1`` — first source register (also the jump target register)
* ``rs2`` — second source register (also the store data / jump test register)
* ``imm`` — immediate or offset
* ``cond``— comparison condition

Whether a register field names a general register or a floating-point
register is given by the op's :class:`OpInfo` (``reg_class``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Op(enum.Enum):
    """Semantic operations executed by the shared pipeline."""

    # Memory (Table 1, row 1).
    LD = "ld"
    LDH = "ldh"
    LDHU = "ldhu"
    LDB = "ldb"
    LDBU = "ldbu"
    ST = "st"
    STH = "sth"
    STB = "stb"
    LDC = "ldc"          # D16-only PC-relative constant-pool load

    # Control transfer (Table 1, rows 2-3).
    BR = "br"            # PC-relative unconditional
    BZ = "bz"            # PC-relative if rs1 == 0 (D16: rs1 must be r0)
    BNZ = "bnz"          # PC-relative if rs1 != 0
    J = "j"              # absolute, target in rs1
    JZ = "jz"            # absolute if rs2 == 0, target in rs1
    JNZ = "jnz"          # absolute if rs2 != 0, target in rs1
    JL = "jl"            # absolute call, link in r1
    JD = "jd"            # DLXe-only direct (J-type) jump
    JLD = "jld"          # DLXe-only direct (J-type) call

    # Integer compare (Table 1, row 4).
    CMP = "cmp"          # rd = (rs1 cond rs2); D16: rd fixed to r0
    CMPI = "cmpi"        # DLXe-only immediate comparand

    # Integer ALU (Table 1, rows 5-8).
    ADD = "add"
    ADDI = "addi"
    SUB = "sub"
    SUBI = "subi"
    AND = "and"
    OR = "or"
    XOR = "xor"
    ANDI = "andi"        # DLXe-only
    ORI = "ori"          # DLXe-only
    XORI = "xori"        # DLXe-only
    NEG = "neg"          # D16-only encoding (DLXe uses sub rd,r0,rs)
    INV = "inv"          # D16-only encoding (DLXe uses xori rd,rs,-1)
    SHRA = "shra"
    SHRAI = "shrai"
    SHR = "shr"
    SHRI = "shri"
    SHL = "shl"
    SHLI = "shli"
    MV = "mv"
    MVI = "mvi"          # D16: signed 9-bit; DLXe encodes as addi rd,r0,imm
    MVHI = "mvhi"        # DLXe-only: rd = imm << 16

    # Integer multiply/divide, executed by the math unit (see DESIGN.md).
    MUL = "mul"
    DIV = "div"
    REM = "rem"

    # Floating point (Table 1, rows 9-10).  ``_SF`` = single, ``_DF`` = double.
    ADD_SF = "add.sf"
    SUB_SF = "sub.sf"
    MUL_SF = "mul.sf"
    DIV_SF = "div.sf"
    NEG_SF = "neg.sf"
    CMP_SF = "cmp.sf"    # sets the FP status register (read with rdsr)
    ADD_DF = "add.df"
    SUB_DF = "sub.df"
    MUL_DF = "mul.df"
    DIV_DF = "div.df"
    NEG_DF = "neg.df"
    CMP_DF = "cmp.df"

    # Mode conversions (Table 1, row 11).  All operate FPR -> FPR; integers
    # reach the FPU through mvif/mvfi because neither ISA has direct FP
    # loads/stores (the paper's stated DLXe restriction).
    SI2SF = "si2sf"
    SI2DF = "si2df"
    SF2SI = "sf2si"
    DF2SI = "df2si"
    SF2DF = "sf2df"
    DF2SF = "df2sf"

    # FP register moves (DLX's MOVF/MOVD equivalents).
    MV_SF = "mv.sf"
    MV_DF = "mv.df"

    # GPR <-> FPR bit moves (the FPU interface).
    MVIF = "mvif"        # fpr[rd] = gpr[rs1] (raw bits)
    MVFI = "mvfi"        # gpr[rd] = fpr[rs1] (raw bits)

    # Special (Table 1, row 12).
    TRAP = "trap"
    RDSR = "rdsr"        # rd = FP status register; D16: rd fixed to r0
    NOP = "nop"


class Cond(enum.Enum):
    """Comparison conditions.

    D16 hardware implements only the first six; the rest are DLXe-only
    (Table 1: "DLXe allows ... also gt, gtu, ge, geu").
    """

    LT = "lt"
    LTU = "ltu"
    LE = "le"
    LEU = "leu"
    EQ = "eq"
    NE = "neq"
    GT = "gt"
    GTU = "gtu"
    GE = "ge"
    GEU = "geu"


#: Conditions encodable by D16 compare instructions.
D16_CONDS = frozenset({Cond.LT, Cond.LTU, Cond.LE, Cond.LEU, Cond.EQ, Cond.NE})

#: Negation map, used by code generators to flip branch senses.
COND_NEGATE = {
    Cond.LT: Cond.GE, Cond.GE: Cond.LT,
    Cond.LTU: Cond.GEU, Cond.GEU: Cond.LTU,
    Cond.LE: Cond.GT, Cond.GT: Cond.LE,
    Cond.LEU: Cond.GTU, Cond.GTU: Cond.LEU,
    Cond.EQ: Cond.NE, Cond.NE: Cond.EQ,
}

#: Swap map: ``a cond b`` == ``b COND_SWAP[cond] a``.
COND_SWAP = {
    Cond.LT: Cond.GT, Cond.GT: Cond.LT,
    Cond.LTU: Cond.GTU, Cond.GTU: Cond.LTU,
    Cond.LE: Cond.GE, Cond.GE: Cond.LE,
    Cond.LEU: Cond.GEU, Cond.GEU: Cond.LEU,
    Cond.EQ: Cond.EQ, Cond.NE: Cond.NE,
}


class OpKind(enum.Enum):
    """Coarse operation class, used by the pipeline timing model."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"    # PC-relative control transfer
    JUMP = "jump"        # register-indirect or direct control transfer
    MATH = "math"        # multi-cycle math-unit operation (int mul/div, FP)
    MISC = "misc"


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one semantic operation.

    ``signature`` lists operand fields in assembly order; ``reg_class`` maps
    each register field to ``"g"`` (general) or ``"f"`` (floating point).
    ``reads``/``writes`` name the register fields the op reads and writes.
    ``math_class`` selects a math-unit latency class for MATH ops.
    """

    op: Op
    kind: OpKind
    signature: tuple[str, ...]
    reg_class: dict[str, str]
    reads: tuple[str, ...]
    writes: tuple[str, ...]
    math_class: str | None = None
    sets_fp_status: bool = False


def _info(op, kind, signature, *, fp=(), reads=(), writes=(),
          math_class=None, sets_fp_status=False):
    reg_fields = [f for f in signature if f in ("rd", "rs1", "rs2")]
    reg_class = {f: ("f" if f in fp else "g") for f in reg_fields}
    return OpInfo(op=op, kind=kind, signature=tuple(signature),
                  reg_class=reg_class, reads=tuple(reads),
                  writes=tuple(writes), math_class=math_class,
                  sets_fp_status=sets_fp_status)


def _build_table() -> dict[Op, OpInfo]:
    t: dict[Op, OpInfo] = {}

    def add(op, kind, signature, **kw):
        t[op] = _info(op, kind, signature, **kw)

    # Loads: rd <- mem[rs1 + imm].
    for op in (Op.LD, Op.LDH, Op.LDHU, Op.LDB, Op.LDBU):
        add(op, OpKind.LOAD, ("rd", "imm", "rs1"),
            reads=("rs1",), writes=("rd",))
    # Stores: mem[rs1 + imm] <- rs2.
    for op in (Op.ST, Op.STH, Op.STB):
        add(op, OpKind.STORE, ("rs2", "imm", "rs1"), reads=("rs1", "rs2"))
    # Constant-pool load: rd <- mem[align4(pc) + imm*4].
    add(Op.LDC, OpKind.LOAD, ("rd", "imm"), writes=("rd",))

    add(Op.BR, OpKind.BRANCH, ("imm",))
    add(Op.BZ, OpKind.BRANCH, ("rs1", "imm"), reads=("rs1",))
    add(Op.BNZ, OpKind.BRANCH, ("rs1", "imm"), reads=("rs1",))
    add(Op.J, OpKind.JUMP, ("rs1",), reads=("rs1",))
    add(Op.JZ, OpKind.JUMP, ("rs1", "rs2"), reads=("rs1", "rs2"))
    add(Op.JNZ, OpKind.JUMP, ("rs1", "rs2"), reads=("rs1", "rs2"))
    add(Op.JL, OpKind.JUMP, ("rs1",), reads=("rs1",))
    add(Op.JD, OpKind.JUMP, ("imm",))
    add(Op.JLD, OpKind.JUMP, ("imm",))

    add(Op.CMP, OpKind.ALU, ("cond", "rd", "rs1", "rs2"),
        reads=("rs1", "rs2"), writes=("rd",))
    add(Op.CMPI, OpKind.ALU, ("cond", "rd", "rs1", "imm"),
        reads=("rs1",), writes=("rd",))

    for op in (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR,
               Op.SHRA, Op.SHR, Op.SHL):
        add(op, OpKind.ALU, ("rd", "rs1", "rs2"),
            reads=("rs1", "rs2"), writes=("rd",))
    for op in (Op.ADDI, Op.SUBI, Op.ANDI, Op.ORI, Op.XORI,
               Op.SHRAI, Op.SHRI, Op.SHLI):
        add(op, OpKind.ALU, ("rd", "rs1", "imm"),
            reads=("rs1",), writes=("rd",))
    add(Op.NEG, OpKind.ALU, ("rd", "rs1"), reads=("rs1",), writes=("rd",))
    add(Op.INV, OpKind.ALU, ("rd", "rs1"), reads=("rs1",), writes=("rd",))
    add(Op.MV, OpKind.ALU, ("rd", "rs1"), reads=("rs1",), writes=("rd",))
    add(Op.MVI, OpKind.ALU, ("rd", "imm"), writes=("rd",))
    add(Op.MVHI, OpKind.ALU, ("rd", "imm"), writes=("rd",))

    for op, mc in ((Op.MUL, "imul"), (Op.DIV, "idiv"), (Op.REM, "idiv")):
        add(op, OpKind.MATH, ("rd", "rs1", "rs2"),
            reads=("rs1", "rs2"), writes=("rd",), math_class=mc)

    fp3 = {"rd", "rs1", "rs2"}
    for op, mc in ((Op.ADD_SF, "fadd"), (Op.SUB_SF, "fadd"),
                   (Op.MUL_SF, "fmul"), (Op.DIV_SF, "fdiv"),
                   (Op.ADD_DF, "fadd"), (Op.SUB_DF, "fadd"),
                   (Op.MUL_DF, "fmul"), (Op.DIV_DF, "fdiv")):
        add(op, OpKind.MATH, ("rd", "rs1", "rs2"), fp=fp3,
            reads=("rs1", "rs2"), writes=("rd",), math_class=mc)
    for op in (Op.NEG_SF, Op.NEG_DF):
        add(op, OpKind.MATH, ("rd", "rs1"), fp=fp3,
            reads=("rs1",), writes=("rd",), math_class="fmove")
    for op in (Op.CMP_SF, Op.CMP_DF):
        add(op, OpKind.MATH, ("cond", "rs1", "rs2"), fp=fp3,
            reads=("rs1", "rs2"), math_class="fcmp", sets_fp_status=True)
    for op in (Op.SI2SF, Op.SI2DF, Op.SF2SI, Op.DF2SI, Op.SF2DF, Op.DF2SF):
        add(op, OpKind.MATH, ("rd", "rs1"), fp=fp3,
            reads=("rs1",), writes=("rd",), math_class="fcvt")

    for op in (Op.MV_SF, Op.MV_DF):
        add(op, OpKind.ALU, ("rd", "rs1"), fp=fp3,
            reads=("rs1",), writes=("rd",))
    add(Op.MVIF, OpKind.ALU, ("rd", "rs1"), fp={"rd"},
        reads=("rs1",), writes=("rd",))
    add(Op.MVFI, OpKind.ALU, ("rd", "rs1"), fp={"rs1"},
        reads=("rs1",), writes=("rd",))

    add(Op.TRAP, OpKind.MISC, ("imm",))
    add(Op.RDSR, OpKind.MISC, ("rd",), writes=("rd",))
    add(Op.NOP, OpKind.MISC, ())
    return t


#: Op -> OpInfo for every semantic operation.
OP_INFO: dict[Op, OpInfo] = _build_table()

#: Ops that transfer control (end a basic block).
CONTROL_OPS = frozenset(
    op for op, info in OP_INFO.items()
    if info.kind in (OpKind.BRANCH, OpKind.JUMP)
)

#: Mnemonic -> Op lookup for the assembler.
MNEMONIC_TO_OP: dict[str, Op] = {op.value: op for op in Op}

"""ISA descriptor objects tying an encoding module to its parameters."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable

from . import d16, dlxe
from .instruction import Instr


@dataclass(frozen=True)
class IsaSpec:
    """Everything the rest of the system needs to know about one encoding."""

    name: str
    width_bytes: int
    num_gregs: int
    num_fregs: int
    encode: Callable[[Instr], int]
    decode: Callable[[int], Instr]
    supports: Callable[[Instr], str | None]
    canonicalize: Callable[[Instr], Instr]
    branch_range: tuple[int, int]
    has_direct_jumps: bool
    #: struct format for one instruction word (little-endian)
    _pack: str = field(repr=False, default="<H")

    @property
    def width_bits(self) -> int:
        return self.width_bytes * 8

    def encode_bytes(self, instr: Instr) -> bytes:
        """Encode one instruction to its little-endian byte representation."""
        return struct.pack(self._pack, self.encode(instr))

    def decode_bytes(self, data: bytes, offset: int = 0) -> Instr:
        """Decode one instruction from little-endian bytes at ``offset``."""
        (word,) = struct.unpack_from(self._pack, data, offset)
        return self.decode(word)


D16 = IsaSpec(
    name="D16",
    width_bytes=d16.WIDTH_BYTES,
    num_gregs=d16.NUM_GREGS,
    num_fregs=d16.NUM_FREGS,
    encode=d16.encode,
    decode=d16.decode,
    supports=d16.supports,
    canonicalize=lambda instr: instr,
    branch_range=d16.BR_RANGE,
    has_direct_jumps=False,
    _pack="<H",
)

DLXE = IsaSpec(
    name="DLXe",
    width_bytes=dlxe.WIDTH_BYTES,
    num_gregs=dlxe.NUM_GREGS,
    num_fregs=dlxe.NUM_FREGS,
    encode=dlxe.encode,
    decode=dlxe.decode,
    supports=dlxe.supports,
    canonicalize=dlxe.canonicalize,
    branch_range=dlxe.BR_RANGE,
    has_direct_jumps=True,
    _pack="<I",
)

ISAS = {"d16": D16, "dlxe": DLXE}


def get_isa(name: str) -> IsaSpec:
    """Look up an ISA by case-insensitive name."""
    try:
        return ISAS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown ISA {name!r}; "
                       f"expected one of {sorted(ISAS)}") from None

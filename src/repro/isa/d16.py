"""D16: the 16-bit instruction encoding (paper Figure 1, Table 1).

Formats (our concrete bit assignment; the paper's figure fixes the field
*widths* and semantic limits, which we honour, but not every prefix bit):

====== ================================================== =================
format layout (msb .. lsb)                                 payload
====== ================================================== =================
MEM    ``1  op2  off5  ry4  rx4``                          ld/st, word offset
RI     ``1  10   op4   imm5 rx4``                          addi/subi/shifts/trap
RR     ``01 op6  ry4   rx4``                               everything 2-address
MVI    ``001 imm9 rx4``                                    move immediate
BR     ``0001 op2 off10``                                  br/bz/bnz, PC-relative
LDC    ``00001 off7 rx4``                                  PC-relative pool load
====== ================================================== =================

Semantic limits per the paper:

* load/store word offsets are word-scaled 5-bit unsigned (0..124 bytes);
  subword modes are not offsettable (encoded in RR with implicit offset 0);
* ALU immediates (addi/subi/shifts) are unsigned 5 bits;
* mvi immediates are signed 9 bits;
* branches reach signed 10-bit halfword offsets (±1 KiB);
* compares write the implicit destination r0 and support only
  lt/ltu/le/leu/eq/neq;
* three-operand forms require ``rd == rs1`` (two-address).

Deviation (documented in DESIGN.md): our LDC reaches ±512 bytes of
PC-relative constant pool rather than the paper's -4096; the code generator
places literal pools close to their uses, exactly as Thumb compilers do.
"""

from __future__ import annotations

from .common import (EncodingError, DecodingError, fits_signed,
                     fits_unsigned, sign_extend)
from .instruction import Instr
from .operations import Cond, D16_CONDS, Op

WIDTH_BYTES = 2
NUM_GREGS = 16
NUM_FREGS = 16

MEM_OFF_BITS = 5       # word-scaled, unsigned
RI_IMM_BITS = 5        # unsigned
MVI_IMM_BITS = 9       # signed
BR_OFF_BITS = 10       # halfword-scaled, signed
LDC_OFF_BITS = 7       # word-scaled, signed

MAX_MEM_OFFSET = ((1 << MEM_OFF_BITS) - 1) * 4          # 124 bytes
MAX_RI_IMM = (1 << RI_IMM_BITS) - 1                     # 31
BR_RANGE = (-(1 << (BR_OFF_BITS - 1)) * 2,              # -1024 bytes
            ((1 << (BR_OFF_BITS - 1)) - 1) * 2)         # +1022 bytes
LDC_RANGE = (-(1 << (LDC_OFF_BITS - 1)) * 4,            # -512 bytes
             ((1 << (LDC_OFF_BITS - 1)) - 1) * 4)       # +508 bytes

_RI_OPS = {Op.ADDI: 0, Op.SUBI: 1, Op.SHRAI: 2, Op.SHRI: 3, Op.SHLI: 4,
           Op.TRAP: 5}
_RI_DECODE = {v: k for k, v in _RI_OPS.items()}

_BR_OPS = {Op.BR: 0, Op.BZ: 1, Op.BNZ: 2}
_BR_DECODE = {v: k for k, v in _BR_OPS.items()}

_COND_ORDER = (Cond.LT, Cond.LTU, Cond.LE, Cond.LEU, Cond.EQ, Cond.NE)

# RR opcode map.  Each entry: op (or (op, cond)) -> 6-bit opcode.
_RR_OPS: dict[object, int] = {}


def _assign_rr() -> None:
    code = 0

    def nxt(key):
        nonlocal code
        _RR_OPS[key] = code
        code += 1

    for op in (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.NEG, Op.INV,
               Op.SHRA, Op.SHR, Op.SHL, Op.MV):
        nxt(op)
    for cond in _COND_ORDER:
        nxt((Op.CMP, cond))
    for op in (Op.LDH, Op.LDHU, Op.LDB, Op.LDBU, Op.STH, Op.STB):
        nxt(op)
    for op in (Op.J, Op.JZ, Op.JNZ, Op.JL):
        nxt(op)
    for op in (Op.MUL, Op.DIV, Op.REM):
        nxt(op)
    for op in (Op.ADD_SF, Op.SUB_SF, Op.MUL_SF, Op.DIV_SF, Op.NEG_SF,
               Op.ADD_DF, Op.SUB_DF, Op.MUL_DF, Op.DIV_DF, Op.NEG_DF):
        nxt(op)
    for cond in _COND_ORDER:
        nxt((Op.CMP_SF, cond))
    for cond in _COND_ORDER:
        nxt((Op.CMP_DF, cond))
    for op in (Op.SI2SF, Op.SI2DF, Op.SF2SI, Op.DF2SI, Op.SF2DF, Op.DF2SF,
               Op.MV_SF, Op.MV_DF, Op.MVIF, Op.MVFI, Op.RDSR, Op.NOP):
        nxt(op)
    if code > 64:
        raise AssertionError(f"D16 RR opcode space overflow: {code} > 64")


_assign_rr()
_RR_DECODE = {v: k for k, v in _RR_OPS.items()}

#: Ops with no D16 encoding at all.
UNSUPPORTED_OPS = frozenset({
    Op.JD, Op.JLD, Op.CMPI, Op.ANDI, Op.ORI, Op.XORI, Op.MVHI,
})


def _check_reg(value: int | None, what: str) -> int:
    if value is None or not 0 <= value < 16:
        raise EncodingError(f"D16 {what} register out of range: {value}")
    return value


def supports(instr: Instr) -> str | None:
    """Return None if ``instr`` is D16-encodable, else a reason string."""
    op = instr.op
    if op in UNSUPPORTED_OPS:
        return f"{op.value} has no D16 encoding"
    for _field, _cls, index in instr.reg_operands():
        if not 0 <= index < 16:
            return f"register {index} exceeds D16's 16-register file"
    if op in (Op.LD, Op.ST):
        if instr.imm % 4 != 0 or not 0 <= instr.imm <= MAX_MEM_OFFSET:
            return (f"word offset {instr.imm} outside D16 range "
                    f"0..{MAX_MEM_OFFSET} (word-aligned)")
    elif op in (Op.LDH, Op.LDHU, Op.LDB, Op.LDBU, Op.STH, Op.STB):
        if instr.imm != 0:
            return "D16 subword addressing modes are not offsettable"
    elif op in (Op.ADDI, Op.SUBI, Op.SHRAI, Op.SHRI, Op.SHLI, Op.TRAP):
        if not fits_unsigned(instr.imm, RI_IMM_BITS):
            return f"immediate {instr.imm} exceeds D16's unsigned 5 bits"
        if op != Op.TRAP and instr.rd != instr.rs1:
            return "D16 immediate ops are two-address (rd must equal rs1)"
    elif op == Op.MVI:
        if not fits_signed(instr.imm, MVI_IMM_BITS):
            return f"immediate {instr.imm} exceeds D16's signed 9 bits"
    elif op in (Op.BZ, Op.BNZ):
        if instr.rs1 != 0:
            return "D16 conditional branches test the implicit register r0"
        if not BR_RANGE[0] <= instr.imm <= BR_RANGE[1] or instr.imm % 2:
            return f"branch offset {instr.imm} outside D16 range {BR_RANGE}"
    elif op == Op.BR:
        if not BR_RANGE[0] <= instr.imm <= BR_RANGE[1] or instr.imm % 2:
            return f"branch offset {instr.imm} outside D16 range {BR_RANGE}"
    elif op == Op.LDC:
        if not LDC_RANGE[0] <= instr.imm <= LDC_RANGE[1] or instr.imm % 4:
            return f"ldc offset {instr.imm} outside D16 range {LDC_RANGE}"
    elif op in (Op.CMP, Op.CMP_SF, Op.CMP_DF):
        if instr.cond not in D16_CONDS:
            return f"D16 compares do not implement {instr.cond.value}"
        if op == Op.CMP and instr.rd != 0:
            return "D16 integer compares write the implicit destination r0"
    elif op.value in ("add", "sub", "and", "or", "xor", "shra", "shr", "shl",
                      "mul", "div", "rem", "add.sf", "sub.sf", "mul.sf",
                      "div.sf", "add.df", "sub.df", "mul.df", "div.df"):
        if instr.rd != instr.rs1:
            return "D16 three-operand ops are two-address (rd must equal rs1)"
    return None


def encode(instr: Instr) -> int:
    """Encode ``instr`` into a 16-bit word, or raise :class:`EncodingError`."""
    reason = supports(instr)
    if reason is not None:
        raise EncodingError(reason)
    op = instr.op

    if op in (Op.LD, Op.ST):
        op2 = 0 if op == Op.LD else 1
        data = instr.rd if op == Op.LD else instr.rs2
        return (1 << 15 | op2 << 13 | (instr.imm // 4) << 8
                | _check_reg(instr.rs1, "base") << 4 | _check_reg(data, "data"))

    if op in _RI_OPS:
        rx = 0 if op == Op.TRAP else _check_reg(instr.rd, "rd")
        return (1 << 15 | 2 << 13 | _RI_OPS[op] << 9
                | (instr.imm & 0x1F) << 4 | rx)

    if op == Op.MVI:
        return (1 << 13 | (instr.imm & 0x1FF) << 4
                | _check_reg(instr.rd, "rd"))

    if op in _BR_OPS:
        return 1 << 12 | _BR_OPS[op] << 10 | ((instr.imm // 2) & 0x3FF)

    if op == Op.LDC:
        return (1 << 11 | ((instr.imm // 4) & 0x7F) << 4
                | _check_reg(instr.rd, "rd"))

    # Everything else lives in the RR format.
    key = (op, instr.cond) if instr.cond is not None else op
    if key not in _RR_OPS:
        raise EncodingError(f"{op.value} has no D16 RR opcode")
    rx, ry = _rr_fields(instr)
    return 1 << 14 | _RR_OPS[key] << 8 | ry << 4 | rx


def _rr_fields(instr: Instr) -> tuple[int, int]:
    """Map instruction fields onto the RR (rx, ry) slots."""
    op = instr.op
    if op in (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SHRA, Op.SHR, Op.SHL,
              Op.MUL, Op.DIV, Op.REM, Op.ADD_SF, Op.SUB_SF, Op.MUL_SF,
              Op.DIV_SF, Op.ADD_DF, Op.SUB_DF, Op.MUL_DF, Op.DIV_DF):
        return _check_reg(instr.rd, "rd"), _check_reg(instr.rs2, "rs2")
    if op in (Op.NEG, Op.INV, Op.MV, Op.NEG_SF, Op.NEG_DF, Op.SI2SF,
              Op.SI2DF, Op.SF2SI, Op.DF2SI, Op.SF2DF, Op.DF2SF,
              Op.MV_SF, Op.MV_DF, Op.MVIF, Op.MVFI):
        return _check_reg(instr.rd, "rd"), _check_reg(instr.rs1, "rs1")
    if op in (Op.CMP, Op.CMP_SF, Op.CMP_DF):
        return _check_reg(instr.rs1, "rs1"), _check_reg(instr.rs2, "rs2")
    if op in (Op.LDH, Op.LDHU, Op.LDB, Op.LDBU):
        return _check_reg(instr.rd, "rd"), _check_reg(instr.rs1, "base")
    if op in (Op.STH, Op.STB):
        return _check_reg(instr.rs2, "data"), _check_reg(instr.rs1, "base")
    if op in (Op.J, Op.JL):
        return _check_reg(instr.rs1, "target"), 0
    if op in (Op.JZ, Op.JNZ):
        return _check_reg(instr.rs1, "target"), _check_reg(instr.rs2, "test")
    if op == Op.RDSR:
        return _check_reg(instr.rd, "rd"), 0
    if op == Op.NOP:
        return 0, 0
    raise EncodingError(f"no RR field mapping for {op.value}")


def decode(word: int) -> Instr:
    """Decode a 16-bit word back into an :class:`Instr`."""
    if not 0 <= word <= 0xFFFF:
        raise DecodingError(f"not a 16-bit word: {word:#x}")

    if word >> 15:                              # MEM / RI page
        page = (word >> 13) & 0x3
        if page == 0:
            return Instr(Op.LD, rd=word & 0xF, rs1=(word >> 4) & 0xF,
                         imm=((word >> 8) & 0x1F) * 4)
        if page == 1:
            return Instr(Op.ST, rs2=word & 0xF, rs1=(word >> 4) & 0xF,
                         imm=((word >> 8) & 0x1F) * 4)
        if page == 2:
            code = (word >> 9) & 0xF
            if code not in _RI_DECODE:
                raise DecodingError(f"bad D16 RI opcode {code}")
            op = _RI_DECODE[code]
            imm = (word >> 4) & 0x1F
            if op == Op.TRAP:
                if word & 0xF:
                    raise DecodingError(
                        f"junk in D16 trap register field: {word:#06x}")
                return Instr(op, imm=imm)
            rx = word & 0xF
            return Instr(op, rd=rx, rs1=rx, imm=imm)
        raise DecodingError(f"reserved D16 MEM page in {word:#06x}")

    if word >> 14:                              # RR
        key = _RR_DECODE.get((word >> 8) & 0x3F)
        if key is None:
            raise DecodingError(f"bad D16 RR opcode in {word:#06x}")
        op, cond = key if isinstance(key, tuple) else (key, None)
        rx, ry = word & 0xF, (word >> 4) & 0xF
        return _rr_decode(op, cond, rx, ry)

    if word >> 13:                              # MVI
        return Instr(Op.MVI, rd=word & 0xF,
                     imm=sign_extend(word >> 4, MVI_IMM_BITS))

    if word >> 12:                              # BR
        code = (word >> 10) & 0x3
        if code not in _BR_DECODE:
            raise DecodingError(f"bad D16 branch opcode in {word:#06x}")
        op = _BR_DECODE[code]
        imm = sign_extend(word, BR_OFF_BITS) * 2
        if op == Op.BR:
            return Instr(op, imm=imm)
        return Instr(op, rs1=0, imm=imm)

    if word >> 11:                              # LDC
        return Instr(Op.LDC, rd=word & 0xF,
                     imm=sign_extend(word >> 4, LDC_OFF_BITS) * 4)

    raise DecodingError(f"reserved D16 encoding {word:#06x}")


def _rr_decode(op: Op, cond: Cond | None, rx: int, ry: int) -> Instr:
    if op in (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SHRA, Op.SHR, Op.SHL,
              Op.MUL, Op.DIV, Op.REM, Op.ADD_SF, Op.SUB_SF, Op.MUL_SF,
              Op.DIV_SF, Op.ADD_DF, Op.SUB_DF, Op.MUL_DF, Op.DIV_DF):
        return Instr(op, rd=rx, rs1=rx, rs2=ry)
    if op in (Op.NEG, Op.INV, Op.MV, Op.NEG_SF, Op.NEG_DF, Op.SI2SF,
              Op.SI2DF, Op.SF2SI, Op.DF2SI, Op.SF2DF, Op.DF2SF,
              Op.MV_SF, Op.MV_DF, Op.MVIF, Op.MVFI):
        return Instr(op, rd=rx, rs1=ry)
    if op == Op.CMP:
        return Instr(op, cond=cond, rd=0, rs1=rx, rs2=ry)
    if op in (Op.CMP_SF, Op.CMP_DF):
        return Instr(op, cond=cond, rs1=rx, rs2=ry)
    if op in (Op.LDH, Op.LDHU, Op.LDB, Op.LDBU):
        return Instr(op, rd=rx, rs1=ry, imm=0)
    if op in (Op.STH, Op.STB):
        return Instr(op, rs2=rx, rs1=ry, imm=0)
    if op in (Op.J, Op.JL):
        if ry:
            raise DecodingError(f"junk in D16 {op.value} ry field: {ry}")
        return Instr(op, rs1=rx)
    if op in (Op.JZ, Op.JNZ):
        return Instr(op, rs1=rx, rs2=ry)
    if op == Op.RDSR:
        if ry:
            raise DecodingError(f"junk in D16 rdsr ry field: {ry}")
        return Instr(op, rd=rx)
    if op == Op.NOP:
        if rx or ry:
            raise DecodingError(f"junk in D16 nop register fields: "
                                f"rx={rx} ry={ry}")
        return Instr(op)
    raise DecodingError(f"unhandled RR op {op.value}")

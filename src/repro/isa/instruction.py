"""The unified, encoding-independent instruction representation.

An :class:`Instr` is what the assembler produces, the encoders consume, and
the CPU executes.  Register fields are small integers indexing either the
general or the floating-point register file, as determined by the op's
metadata in :mod:`repro.isa.operations`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import IsaError
from .operations import OP_INFO, Cond, Op, OpInfo


@dataclass(frozen=True)
class Instr:
    """One machine instruction, independent of its binary encoding."""

    op: Op
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    imm: int | None = None
    cond: Cond | None = None

    @property
    def info(self) -> OpInfo:
        return OP_INFO[self.op]

    def validate(self) -> None:
        """Check that exactly the fields demanded by the signature are set."""
        info = self.info
        wanted = set(info.signature)
        if "imm" in wanted or "mem" in wanted:
            wanted.add("imm")
        for field in ("rd", "rs1", "rs2", "imm", "cond"):
            have = getattr(self, field) is not None
            need = field in wanted
            if have != need:
                state = "missing" if need else "unexpected"
                raise IsaError(f"{self.op.value}: {state} field {field!r}")

    def reg_operands(self) -> list[tuple[str, str, int]]:
        """Yield ``(field, reg_class, index)`` for each register operand."""
        out = []
        for field, cls in self.info.reg_class.items():
            value = getattr(self, field)
            if value is not None:
                out.append((field, cls, value))
        return out

    def reads(self) -> list[tuple[str, int]]:
        """Registers read by this instruction as ``(reg_class, index)``."""
        info = self.info
        return [(info.reg_class[f], getattr(self, f))
                for f in info.reads if getattr(self, f) is not None]

    def writes(self) -> list[tuple[str, int]]:
        """Registers written by this instruction as ``(reg_class, index)``."""
        info = self.info
        return [(info.reg_class[f], getattr(self, f))
                for f in info.writes if getattr(self, f) is not None]

    def __str__(self) -> str:  # assembly-like rendering
        info = self.info
        parts: list[str] = []
        sig = info.signature
        i = 0
        while i < len(sig):
            field = sig[i]
            if field == "cond":
                i += 1
                continue  # folded into the mnemonic below
            if (field in ("rs2", "rd") and i + 2 < len(sig)
                    and sig[i + 1] == "imm" and sig[i + 2] == "rs1"
                    and info.kind.value in ("load", "store")):
                # memory operand: data, offset(base)
                reg = getattr(self, field)
                parts.append(self._reg_name(field, reg))
                parts.append(f"{self.imm}({self._reg_name('rs1', self.rs1)})")
                i += 3
                continue
            value = getattr(self, field)
            if field == "imm":
                parts.append(str(value))
            else:
                parts.append(self._reg_name(field, value))
            i += 1
        mnemonic = self.op.value
        if self.cond is not None:
            if self.op in (Op.CMP_SF, Op.CMP_DF):
                base, suffix = mnemonic.split(".")
                mnemonic = f"{base}{self.cond.value}.{suffix}"
            else:
                mnemonic = f"{mnemonic}{self.cond.value}"
        return f"{mnemonic} {', '.join(parts)}".strip()

    def _reg_name(self, field: str, index: int) -> str:
        prefix = "f" if self.info.reg_class.get(field) == "f" else "r"
        return f"{prefix}{index}"


def make(op: Op, **fields) -> Instr:
    """Build and validate an :class:`Instr` in one call."""
    instr = Instr(op=op, **fields)
    instr.validate()
    return instr

"""Shared low-level helpers and constants for the D16 and DLXe ISAs.

Both instruction sets describe the same 32-bit, byte-addressed machine:
words are 4 bytes, halfwords 2 bytes, and all values are little-endian.
"""

from __future__ import annotations

WORD_BYTES = 4
HALF_BYTES = 2
WORD_BITS = 32
WORD_MASK = 0xFFFFFFFF
HALF_MASK = 0xFFFF
BYTE_MASK = 0xFF

# Register-role conventions shared by both ISAs (see DESIGN.md).  DLXe
# additionally fixes r0 = 0; D16 uses r0 as the implicit compare result.
REG_ZERO = 0          # DLXe hardwired zero / D16 compare destination
REG_LINK = 1          # linkage register for jl (both ISAs, per the paper)
REG_RET = 2           # integer return value
REG_ARG_FIRST = 2     # first integer argument register
REG_ARG_COUNT = 4     # r2..r5 carry arguments
FREG_RET = 0          # FP return value (f0, or f0:f1 for doubles)
FREG_ARG_FIRST = 2    # first FP argument register (even, so pairs fit)
FREG_ARG_COUNT = 4    # f2,f4,f6,f8 (pairs for doubles)


class IsaError(Exception):
    """Base class for ISA-level errors."""


class EncodingError(IsaError):
    """An instruction cannot be represented in the target encoding."""


class DecodingError(IsaError):
    """A bit pattern does not decode to a valid instruction."""


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as a two's-complement number."""
    mask = (1 << bits) - 1
    value &= mask
    sign_bit = 1 << (bits - 1)
    if value & sign_bit:
        return value - (1 << bits)
    return value


def fits_signed(value: int, bits: int) -> bool:
    """True if ``value`` is representable as a ``bits``-bit signed field."""
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return lo <= value <= hi


def fits_unsigned(value: int, bits: int) -> bool:
    """True if ``value`` is representable as a ``bits``-bit unsigned field."""
    return 0 <= value < (1 << bits)


def to_u32(value: int) -> int:
    """Wrap an arbitrary Python int into the machine's 32-bit word."""
    return value & WORD_MASK


def to_s32(value: int) -> int:
    """Interpret a word as a signed 32-bit value."""
    return sign_extend(value, WORD_BITS)

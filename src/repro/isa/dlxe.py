"""DLXe: the 32-bit instruction encoding (paper Figure 2, Table 1).

DLXe is the paper's variant of DLX [HP90]: three formats, 32 general and 32
floating-point registers, 16-bit immediates for every addressing mode, and
full three-address ALU operations.

====== ============================================== ====================
format layout (msb .. lsb)                             used by
====== ============================================== ====================
I-type ``op6 rs1_5 rd5 imm16``                         loads/stores, ALU-imm,
                                                       cmpi, bz/bnz, mvhi, trap
R-type ``op6=0 rs1_5 rs2_5 rd5 func11``                three-address ALU, cmp,
                                                       jumps, FP, conversions
J-type ``op6 offset26``                                br, jd, jld
====== ============================================== ====================

All I-type immediates are *signed* 16 bits (including the logical
immediates — this is what makes the paper's "``inv`` is unneeded" claim
work: ``inv rd, rs`` is ``xori rd, rs, -1``).  Branch and BR offsets are
word-scaled.  ``jd``/``jld`` carry word-scaled absolute addresses.

Pseudo-operations with no DLXe opcode (``mv``, ``mvi``, ``neg``, ``inv``)
are canonicalized onto the base ISA by :func:`canonicalize`, which
:func:`encode` applies automatically — exactly the r0-based synonyms the
paper describes.
"""

from __future__ import annotations

from .common import (EncodingError, DecodingError, fits_signed,
                     fits_unsigned, sign_extend)
from .instruction import Instr
from .operations import Cond, Op

WIDTH_BYTES = 4
NUM_GREGS = 32
NUM_FREGS = 32

IMM_BITS = 16
BR_OFF_BITS = 16       # word-scaled, signed: +/- 128 KiB
J_OFF_BITS = 26

IMM_RANGE = (-(1 << (IMM_BITS - 1)), (1 << (IMM_BITS - 1)) - 1)
BR_RANGE = (-(1 << (BR_OFF_BITS - 1)) * 4, ((1 << (BR_OFF_BITS - 1)) - 1) * 4)

_COND_ORDER = (Cond.LT, Cond.LTU, Cond.LE, Cond.LEU, Cond.EQ, Cond.NE,
               Cond.GT, Cond.GTU, Cond.GE, Cond.GEU)

# I-type opcode map (op -> 6-bit major opcode; 0 is reserved for R-type).
_I_OPS: dict[object, int] = {}
# J-type opcode map.
_J_OPS: dict[Op, int] = {}
# R-type func map (op or (op, cond) -> 11-bit func).
_R_FUNCS: dict[object, int] = {}


def _assign() -> None:
    code = 1

    def i_op(key):
        nonlocal code
        _I_OPS[key] = code
        code += 1

    for op in (Op.LD, Op.LDH, Op.LDHU, Op.LDB, Op.LDBU,
               Op.ST, Op.STH, Op.STB,
               Op.ADDI, Op.SUBI, Op.ANDI, Op.ORI, Op.XORI,
               Op.SHRAI, Op.SHRI, Op.SHLI,
               Op.MVHI, Op.BZ, Op.BNZ, Op.TRAP):
        i_op(op)
    for cond in _COND_ORDER:
        i_op((Op.CMPI, cond))
    for op in (Op.BR, Op.JD, Op.JLD):
        _J_OPS[op] = code
        code += 1
    if code > 64:
        raise AssertionError(f"DLXe major opcode overflow: {code}")

    func = 0

    def r_op(key):
        nonlocal func
        _R_FUNCS[key] = func
        func += 1

    for op in (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR,
               Op.SHRA, Op.SHR, Op.SHL, Op.MUL, Op.DIV, Op.REM):
        r_op(op)
    for cond in _COND_ORDER:
        r_op((Op.CMP, cond))
    for op in (Op.J, Op.JZ, Op.JNZ, Op.JL):
        r_op(op)
    for op in (Op.ADD_SF, Op.SUB_SF, Op.MUL_SF, Op.DIV_SF, Op.NEG_SF,
               Op.ADD_DF, Op.SUB_DF, Op.MUL_DF, Op.DIV_DF, Op.NEG_DF):
        r_op(op)
    for cond in _COND_ORDER:
        r_op((Op.CMP_SF, cond))
    for cond in _COND_ORDER:
        r_op((Op.CMP_DF, cond))
    for op in (Op.SI2SF, Op.SI2DF, Op.SF2SI, Op.DF2SI, Op.SF2DF, Op.DF2SF,
               Op.MV_SF, Op.MV_DF, Op.MVIF, Op.MVFI, Op.RDSR, Op.NOP):
        r_op(op)


_assign()
_I_DECODE = {v: k for k, v in _I_OPS.items()}
_J_DECODE = {v: k for k, v in _J_OPS.items()}
_R_DECODE = {v: k for k, v in _R_FUNCS.items()}

#: Ops with no DLXe encoding even after canonicalization.
UNSUPPORTED_OPS = frozenset({Op.LDC})

#: Pseudo-ops removed by canonicalization (r0-based synonyms).
PSEUDO_OPS = frozenset({Op.MV, Op.MVI, Op.NEG, Op.INV})


def canonicalize(instr: Instr) -> Instr:
    """Rewrite pseudo-ops onto base DLXe operations using r0 == 0."""
    op = instr.op
    if op == Op.MV:
        return Instr(Op.ADD, rd=instr.rd, rs1=instr.rs1, rs2=0)
    if op == Op.MVI:
        return Instr(Op.ADDI, rd=instr.rd, rs1=0, imm=instr.imm)
    if op == Op.NEG:
        return Instr(Op.SUB, rd=instr.rd, rs1=0, rs2=instr.rs1)
    if op == Op.INV:
        return Instr(Op.XORI, rd=instr.rd, rs1=instr.rs1, imm=-1)
    return instr


def supports(instr: Instr) -> str | None:
    """Return None if ``instr`` is DLXe-encodable, else a reason string."""
    instr = canonicalize(instr)
    op = instr.op
    if op in UNSUPPORTED_OPS:
        return f"{op.value} has no DLXe encoding"
    for _field, _cls, index in instr.reg_operands():
        if not 0 <= index < 32:
            return f"register {index} exceeds DLXe's 32-register file"
    if op in _I_OPS or (op == Op.CMPI):
        imm = instr.imm
        if op in (Op.MVHI, Op.TRAP):
            if not fits_unsigned(imm, IMM_BITS):
                return f"immediate {imm} exceeds unsigned 16 bits"
        elif op in (Op.BZ, Op.BNZ):
            if imm % 4 or not BR_RANGE[0] <= imm <= BR_RANGE[1]:
                return f"branch offset {imm} outside DLXe range {BR_RANGE}"
        elif not fits_signed(imm, IMM_BITS):
            return f"immediate {imm} exceeds signed 16 bits"
    elif op == Op.BR:
        if instr.imm % 4 or not fits_signed(instr.imm // 4, J_OFF_BITS):
            return f"br offset {instr.imm} outside DLXe J-type range"
    elif op in (Op.JD, Op.JLD):
        if instr.imm % 4 or not fits_unsigned(instr.imm // 4, J_OFF_BITS):
            return f"jump target {instr.imm:#x} outside DLXe J-type range"
    return None


def encode(instr: Instr) -> int:
    """Encode ``instr`` into a 32-bit word, or raise :class:`EncodingError`."""
    instr = canonicalize(instr)
    reason = supports(instr)
    if reason is not None:
        raise EncodingError(reason)
    op = instr.op

    if op == Op.CMPI:
        major = _I_OPS[(Op.CMPI, instr.cond)]
        return (major << 26 | instr.rs1 << 21 | instr.rd << 16
                | (instr.imm & 0xFFFF))
    if op in _I_OPS:
        major = _I_OPS[op]
        rs1 = instr.rs1 or 0
        imm = instr.imm
        if op in (Op.LD, Op.LDH, Op.LDHU, Op.LDB, Op.LDBU):
            rd = instr.rd
        elif op in (Op.ST, Op.STH, Op.STB):
            rd = instr.rs2
        elif op in (Op.BZ, Op.BNZ):
            rd, imm = 0, instr.imm // 4
        elif op in (Op.MVHI,):
            rd = instr.rd
        elif op == Op.TRAP:
            rd = 0
        else:
            rd = instr.rd
        return major << 26 | rs1 << 21 | rd << 16 | (imm & 0xFFFF)

    if op in _J_OPS:
        off = instr.imm // 4
        return _J_OPS[op] << 26 | (off & 0x3FFFFFF)

    key = (op, instr.cond) if instr.cond is not None else op
    if key not in _R_FUNCS:
        raise EncodingError(f"{op.value} has no DLXe func code")
    rs1 = instr.rs1 or 0
    rs2 = instr.rs2 or 0
    rd = instr.rd or 0
    if op in (Op.CMP_SF, Op.CMP_DF):
        rd = 0
    return rs1 << 21 | rs2 << 16 | rd << 11 | _R_FUNCS[key]


def decode(word: int) -> Instr:
    """Decode a 32-bit word back into an :class:`Instr`."""
    if not 0 <= word <= 0xFFFFFFFF:
        raise DecodingError(f"not a 32-bit word: {word:#x}")
    major = word >> 26

    if major == 0:
        func = word & 0x7FF
        key = _R_DECODE.get(func)
        if key is None:
            raise DecodingError(f"bad DLXe func {func} in {word:#010x}")
        op, cond = key if isinstance(key, tuple) else (key, None)
        rs1 = (word >> 21) & 0x1F
        rs2 = (word >> 16) & 0x1F
        rd = (word >> 11) & 0x1F
        return _r_decode(op, cond, rd, rs1, rs2)

    if major in _J_DECODE:
        op = _J_DECODE[major]
        off = word & 0x3FFFFFF
        if op == Op.BR:
            return Instr(op, imm=sign_extend(off, J_OFF_BITS) * 4)
        return Instr(op, imm=off * 4)

    key = _I_DECODE.get(major)
    if key is None:
        raise DecodingError(f"bad DLXe opcode {major} in {word:#010x}")
    rs1 = (word >> 21) & 0x1F
    rd = (word >> 16) & 0x1F
    imm = word & 0xFFFF
    simm = sign_extend(imm, IMM_BITS)
    if isinstance(key, tuple):
        op, cond = key
        return Instr(op, cond=cond, rd=rd, rs1=rs1, imm=simm)
    op = key
    if op in (Op.LD, Op.LDH, Op.LDHU, Op.LDB, Op.LDBU):
        return Instr(op, rd=rd, rs1=rs1, imm=simm)
    if op in (Op.ST, Op.STH, Op.STB):
        return Instr(op, rs2=rd, rs1=rs1, imm=simm)
    if op in (Op.BZ, Op.BNZ):
        if rd:
            raise DecodingError(
                f"junk in DLXe {op.value} rd slot: {word:#010x}")
        return Instr(op, rs1=rs1, imm=simm * 4)
    if op == Op.MVHI:
        if rs1:
            raise DecodingError(
                f"junk in DLXe mvhi rs1 slot: {word:#010x}")
        return Instr(op, rd=rd, imm=imm)
    if op == Op.TRAP:
        if rs1 or rd:
            raise DecodingError(
                f"junk in DLXe trap register slots: {word:#010x}")
        return Instr(op, imm=imm)
    return Instr(op, rd=rd, rs1=rs1, imm=simm)


def _r_decode(op: Op, cond, rd: int, rs1: int, rs2: int) -> Instr:
    def strict(**unused):
        junk = {name: value for name, value in unused.items() if value}
        if junk:
            raise DecodingError(
                f"junk in DLXe {op.value} unused register slots: {junk}")

    if op == Op.CMP:
        return Instr(op, cond=cond, rd=rd, rs1=rs1, rs2=rs2)
    if op in (Op.CMP_SF, Op.CMP_DF):
        strict(rd=rd)
        return Instr(op, cond=cond, rs1=rs1, rs2=rs2)
    if op in (Op.J, Op.JL):
        strict(rs2=rs2, rd=rd)
        return Instr(op, rs1=rs1)
    if op in (Op.JZ, Op.JNZ):
        strict(rd=rd)
        return Instr(op, rs1=rs1, rs2=rs2)
    if op in (Op.NEG_SF, Op.NEG_DF, Op.SI2SF, Op.SI2DF, Op.SF2SI,
              Op.DF2SI, Op.SF2DF, Op.DF2SF, Op.MV_SF, Op.MV_DF,
              Op.MVIF, Op.MVFI):
        strict(rs2=rs2)
        return Instr(op, rd=rd, rs1=rs1)
    if op == Op.RDSR:
        strict(rs1=rs1, rs2=rs2)
        return Instr(op, rd=rd)
    if op == Op.NOP:
        strict(rd=rd, rs1=rs1, rs2=rs2)
        return Instr(op)
    return Instr(op, rd=rd, rs1=rs1, rs2=rs2)

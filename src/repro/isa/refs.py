"""Shared address arithmetic for static references into the image.

Two address computations recur in every layer that looks at linked
binaries -- CFG recovery, disassembly, abstract interpretation, the
WCET estimator, the I-cache analysis, and the simulator itself:

* the literal-pool slot of a PC-relative constant load (``ldc``), and
* the statically known target of a direct control transfer.

Both were historically re-derived inline at each site; they live here
so the code/data classification (which words of the text segment are
pool data rather than instructions) is decided by exactly one formula
everywhere.
"""

from __future__ import annotations

from .instruction import Instr
from .operations import Op

#: PC-relative branches with a statically known target.
PCREL_BRANCHES = (Op.BR, Op.BZ, Op.BNZ)
#: Direct (J-type) jumps/calls with an absolute target immediate.
ABS_JUMPS = (Op.JD, Op.JLD)


def ldc_pool_addr(pc: int, imm: int) -> int:
    """Literal-pool word addressed by an ``ldc`` at ``pc``.

    The displacement is relative to the *word-aligned* fetch address,
    so a D16 ``ldc`` in the upper half of a word resolves identically
    to one in the lower half.
    """
    return (pc & ~3) + imm


def transfer_target(pc: int, instr: Instr) -> int | None:
    """Statically known control-flow target of ``instr``, if any.

    PC-relative branches resolve against the instruction address;
    direct jumps carry an absolute byte address in the immediate.
    Register-indirect transfers return ``None``.
    """
    if instr.op in PCREL_BRANCHES:
        return pc + instr.imm
    if instr.op in ABS_JUMPS:
        return instr.imm
    return None

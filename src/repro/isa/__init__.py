"""Instruction-set definitions for the D16 and DLXe encodings.

The public surface of this package:

* :class:`~repro.isa.instruction.Instr` — encoding-independent instruction
* :class:`~repro.isa.operations.Op`, :class:`~repro.isa.operations.Cond`
* :data:`~repro.isa.spec.D16`, :data:`~repro.isa.spec.DLXE` — ISA descriptors
"""

from .common import (DecodingError, EncodingError, IsaError, sign_extend,
                     to_s32, to_u32)
from .instruction import Instr, make
from .operations import (CONTROL_OPS, COND_NEGATE, COND_SWAP, D16_CONDS,
                         MNEMONIC_TO_OP, OP_INFO, Cond, Op, OpInfo, OpKind)
from .refs import ldc_pool_addr, transfer_target
from .spec import D16, DLXE, ISAS, IsaSpec, get_isa

__all__ = [
    "CONTROL_OPS", "COND_NEGATE", "COND_SWAP", "D16", "D16_CONDS",
    "DLXE", "DecodingError", "EncodingError", "ISAS", "Instr", "IsaError",
    "IsaSpec", "MNEMONIC_TO_OP", "OP_INFO", "Cond", "Op", "OpInfo",
    "OpKind", "get_isa", "ldc_pool_addr", "make", "sign_extend", "to_s32",
    "to_u32", "transfer_target",
]

"""The benchmark suite (paper Table 2), as minic programs.

Every program is self-checking: it prints a deterministic result line
whose exact text must match across all targets (``expected_markers``
are substrings the output must contain).  ``cache_program`` marks the
three applications used for the cache experiments (assem, latex, ipl).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from pathlib import Path

PROGRAM_DIR = Path(__file__).parent / "programs"


@dataclass(frozen=True)
class Benchmark:
    name: str
    description: str
    expected_markers: tuple[str, ...]
    cache_program: bool = False
    uses_fp: bool = False
    #: Source text for ad-hoc benchmarks (fault-injection and
    #: robustness tests) that have no file under ``programs/``.
    inline_source: str | None = None

    @property
    def path(self) -> Path:
        return PROGRAM_DIR / f"{self.name}.mc"

    @functools.cached_property
    def source(self) -> str:
        if self.inline_source is not None:
            return self.inline_source
        return self.path.read_text()


SUITE: tuple[Benchmark, ...] = (
    Benchmark("ackermann", "Computes the Ackermann function.",
              ("ack(2,6)=15", "ack(3,4)=125", "calls=10426")),
    Benchmark("assem", "A two-pass assembler (the paper's D16 assembler).",
              ("words=204", "errors=0", "checksum="), cache_program=True),
    Benchmark("bubblesort", "Sorting program from the Stanford suite.",
              ("sorted=1", "sum=")),
    Benchmark("queens", "The Stanford eight-queens program.",
              ("solutions=92",)),
    Benchmark("quicksort", "The Stanford quicksort program.",
              ("sorted=1", "sum=")),
    Benchmark("towers", "The Stanford towers of Hanoi program.",
              ("moves=16383", "top=1")),
    Benchmark("grep", "A text scanner in the spirit of BSD grep.",
              ("lines=208", "quick=", "q.ick=")),
    Benchmark("linpack", "LU factorization and solve (daxpy-based).",
              ("info=-1", "resid_ok=1"), uses_fp=True),
    Benchmark("matrix", "Gaussian elimination plus integer matrix product.",
              ("norm=", "trace="), uses_fp=True),
    Benchmark("dhrystone", "The synthetic integer benchmark.",
              ("int_glob=5", "bool_glob=")),
    Benchmark("pi", "Computes digits of pi (integer spigot).",
              ("3.14159265358979",)),
    Benchmark("solver", "Newton-Raphson iterative solver.",
              ("dottie=0.739085", "root="), uses_fp=True),
    Benchmark("latex", "A paragraph typesetter (the paper's 'latex').",
              ("words=", "lines=", "check="), cache_program=True),
    Benchmark("ipl", "A function plotter (the paper's 'ipl').",
              ("pixels=", "check="), cache_program=True, uses_fp=True),
    Benchmark("whetstone", "The synthetic floating-point benchmark.",
              ("x=", "e1[3]=", "j="), uses_fp=True),
)

BY_NAME = {bench.name: bench for bench in SUITE}

#: Programs the paper uses for the cache experiments (Section 4.1).
CACHE_SUITE = tuple(bench for bench in SUITE if bench.cache_program)


def register_benchmark(bench: Benchmark) -> Benchmark:
    """Register an ad-hoc benchmark under its name (returns it).

    Used by fault-injection campaigns and robustness tests to run
    synthetic programs (e.g. a seeded infinite loop) through the same
    Lab machinery as the paper suite.  The registration is process-
    local; ``SUITE`` (the paper's table) is never altered.
    """
    BY_NAME[bench.name] = bench
    return bench


def get_benchmark(name: str) -> Benchmark:
    try:
        return BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"expected one of {sorted(BY_NAME)}") from None


def check_output(bench: Benchmark, output: str) -> bool:
    """True if the program output carries every expected marker."""
    return all(marker in output for marker in bench.expected_markers)

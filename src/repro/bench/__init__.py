"""The paper's benchmark suite as minic sources plus a registry."""

from .suite import (BY_NAME, CACHE_SUITE, PROGRAM_DIR, SUITE, Benchmark,
                    check_output, get_benchmark, register_benchmark)
from .timing import BENCH_JSON, time_phases, write_bench_json

__all__ = ["BENCH_JSON", "BY_NAME", "CACHE_SUITE", "PROGRAM_DIR", "SUITE",
           "Benchmark", "check_output", "get_benchmark",
           "register_benchmark", "time_phases", "write_bench_json"]

"""The paper's benchmark suite as minic sources plus a registry."""

from .suite import (BY_NAME, CACHE_SUITE, PROGRAM_DIR, SUITE, Benchmark,
                    check_output, get_benchmark)

__all__ = ["BY_NAME", "CACHE_SUITE", "PROGRAM_DIR", "SUITE", "Benchmark",
           "check_output", "get_benchmark"]

"""Timing harness for the hot phases of the reproduction pipeline.

:func:`time_phases` measures the wall-clock-dominant phases --
compile, run, trace, cache sweep -- plus the warm-artifact-cache rerun
of each, compares the single-pass multi-configuration cache sweep
against the seed's sequential scalar per-configuration sweep, and (via
:func:`time_sim_engines`) times the whole benchmark suite under both
execution engines, verifying their statistics agree cell by cell.
:func:`time_analysis` adds the static-analysis stack (lint, WCET,
I-cache classification + replay validation) to the same report.  The
result dict is what ``scripts/bench_perf.py`` serializes into
``BENCH_repro.json``; ``scripts/check_perf_budget.py`` compares a fresh
report against the committed one in CI.

Wall-clock seconds are machine-specific, so the cross-machine perf
trajectory is carried by the *ratio* metrics (``sim_speedup``,
``cacheperf_speedup``, ``icache_replay_speedup``,
``faults_prune_speedup``): both sides of each ratio run on the same
machine in the same process.  :func:`time_fault_pruning` contributes
the last one -- a seeded fault campaign executed unpruned and then
with ``prune_masked``, cross-checked outcome for outcome.
"""

from __future__ import annotations

import json
import time

from ..cache import simulate_caches, simulate_caches_grid, use_vector

BENCH_JSON = "BENCH_repro.json"


def _stats_key(stats):
    """Every RunStats field, for exact cross-engine comparison."""
    return (stats.instructions, stats.loads, stats.stores,
            stats.interlocks, stats.load_interlocks,
            stats.math_interlocks, stats.ifetch_words,
            stats.ifetch_dwords, stats.exit_code, stats.output,
            tuple(stats.exec_counts))


def time_sim_engines(*, targets=None, programs=None) -> dict:
    """Time the benchmark-suite simulation under both execution engines.

    Runs every (program, target) cell once per engine on freshly loaded
    machines and cross-checks the full statistics of each cell, so the
    recorded speedup is always a speedup of *equivalent* simulations
    (``sim_divergent`` lists any cells that disagree; the perf-budget
    check fails on a non-empty list).  The engines are timed
    *interleaved per cell* -- step then blocks on each cell before
    moving on -- so background noise on a shared runner lands on both
    sides of the ratio instead of skewing one engine's whole phase.
    """
    from ..experiments import MAIN_TARGETS, Lab
    from ..machine import run_executable
    from .suite import SUITE

    targets = tuple(targets) if targets is not None else MAIN_TARGETS
    names = (tuple(programs) if programs is not None
             else tuple(bench.name for bench in SUITE))
    lab = Lab(cache=False)
    cells = [(name, target, lab.executable(name, target))
             for name in names for target in targets]

    stats = {"step": [], "blocks": []}
    seconds = {"step": 0.0, "blocks": 0.0}
    for _, _, exe in cells:
        for engine in ("step", "blocks"):
            started = time.perf_counter()
            run = run_executable(exe, engine=engine)[0]
            seconds[engine] += time.perf_counter() - started
            stats[engine].append(_stats_key(run))
    divergent = [f"{name}/{target}"
                 for (name, target, _), step_stats, block_stats
                 in zip(cells, stats["step"], stats["blocks"])
                 if step_stats != block_stats]
    return {
        "sim_cells": len(cells),
        "sim_divergent": divergent,
        "sim_suite_step": seconds["step"],
        "sim_suite_blocks": seconds["blocks"],
        "sim_speedup": seconds["step"] / seconds["blocks"],
    }


def time_analysis(*, program: str = "assem", target: str = "d16",
                  sizes=None) -> dict:
    """Time the static-analysis stack over one benchmark cell.

    Covers the four ``repro lint`` workloads -- the three-layer lint,
    the whole-program WCET composition, the I-cache
    classification-plus-replay sweep, and the translation-validation
    sweep (per-pass symbolic equivalence plus the binary tier) -- as
    wall-clock trajectory entries, plus one machine-independent ratio:
    ``icache_replay_speedup`` compares the scalar and the vectorized
    trace replay of :func:`repro.analysis.validate_icache` on the same
    trace in the same process, guarding the first-demand compression
    the soundness sweep leans on.
    """
    import os

    from ..analysis import (analyze_icache, analyze_wcet, lint_program,
                            tv_program)
    from ..analysis import validate_icache as validate
    from ..cache.cache import CacheConfig
    from ..cache.vector import ENGINE_ENV
    from ..cc import get_target
    from ..experiments import Lab
    from ..experiments.cacheperf import CACHE_SIZES
    from .suite import get_benchmark

    sizes = tuple(sizes) if sizes is not None else CACHE_SIZES
    bench = get_benchmark(program)
    spec = get_target(target)
    lab = Lab(cache=False)
    seconds: dict[str, float] = {}

    def clock(name, fn):
        started = time.perf_counter()
        value = fn()
        seconds[name] = time.perf_counter() - started
        return value

    exe = lab.executable(program, target)
    trace = lab.trace(program, target)
    clock("analysis_lint", lambda: lint_program(bench.source, spec))
    wcet = clock("analysis_wcet",
                 lambda: analyze_wcet(exe, spec.isa, target=spec))

    def icache_sweep():
        for size in sizes:
            analysis = analyze_icache(wcet, CacheConfig(size))
            validate(analysis, trace.itrace, trace.run.stats, penalty=8)

    clock("analysis_icache", icache_sweep)
    tv = clock("analysis_tv", lambda: tv_program(
        bench.source, program, targets=(target,)))

    # The ratio replays one configuration both ways on this trace.
    analysis = analyze_icache(wcet, CacheConfig(sizes[-1]))
    clock("icache_replay_vector", lambda: validate(
        analysis, trace.itrace, trace.run.stats, penalty=8))
    saved = os.environ.get(ENGINE_ENV)
    os.environ[ENGINE_ENV] = "python"
    try:
        clock("icache_replay_scalar", lambda: validate(
            analysis, trace.itrace, trace.run.stats, penalty=8))
    finally:
        if saved is None:
            del os.environ[ENGINE_ENV]
        else:
            os.environ[ENGINE_ENV] = saved
    tv_counts = tv.pass_counts()
    return {
        "analysis": {name: seconds[name]
                     for name in ("analysis_lint", "analysis_wcet",
                                  "analysis_icache", "analysis_tv")},
        "analysis_total": (seconds["analysis_lint"]
                           + seconds["analysis_wcet"]
                           + seconds["analysis_icache"]
                           + seconds["analysis_tv"]),
        "icache_configs": len(sizes),
        "icache_replay_speedup": (seconds["icache_replay_scalar"]
                                  / seconds["icache_replay_vector"]),
        # Machine-independent TV coverage on this cell: every
        # optimizer-pass application must stay proven (the perf budget
        # treats a nonzero unproven count as a violation outright).
        "tv_checks": sum(tv_counts.values()),
        "tv_unproven": tv_counts["unknown"] + tv_counts["divergent"],
    }


def time_fault_pruning(*, benchmarks=("ackermann", "queens"),
                       faults: int = 10, seed: int = 42) -> dict:
    """Time a seeded fault campaign unpruned vs ``prune_masked``.

    Both campaigns run sequentially in this process on the same cells
    with the same planner stream, so ``faults_prune_speedup`` is the
    wall-clock ratio of *equivalent* campaigns -- equivalence is
    enforced here by byte-comparing the per-cell outcome counts.  The
    report also carries the soundness invariant the budget check locks:
    ``vuln_unsound`` counts pruned sites whose actually-executed
    outcome in the unpruned run was anything but masked.
    """
    from ..faults import FaultCampaign

    benchmarks = tuple(benchmarks)
    seconds: dict[str, float] = {}

    def clock(name, fn):
        started = time.perf_counter()
        value = fn()
        seconds[name] = time.perf_counter() - started
        return value

    plain = clock("faults_plain", lambda: FaultCampaign(
        benchmarks=benchmarks, faults=faults, seed=seed).run())
    pruned = clock("faults_pruned", lambda: FaultCampaign(
        benchmarks=benchmarks, faults=faults, seed=seed,
        prune_masked=True).run())

    assert plain["summary"] == pruned["summary"], \
        "masked-site pruning changed campaign outcome counts"
    unsound = 0
    for cell_plain, cell_pruned in zip(plain["cells"], pruned["cells"]):
        outcomes = {f["index"]: f["outcome"]
                    for f in cell_plain.get("faults", [])}
        for fault in cell_pruned.get("faults", []):
            if str(fault.get("detail", "")).startswith("pruned:") \
                    and outcomes.get(fault["index"]) != "masked":
                unsound += 1
    return {
        "faults_campaign_cells": len(plain["cells"]),
        "faults_campaign_total": sum(len(c.get("faults", []))
                                     for c in plain["cells"]),
        "faults_campaign_pruned": sum(c.get("pruned", 0)
                                      for c in pruned["cells"]),
        "faults_plain_s": seconds["faults_plain"],
        "faults_pruned_s": seconds["faults_pruned"],
        "faults_prune_speedup": (seconds["faults_plain"]
                                 / seconds["faults_pruned"]),
        "vuln_unsound": unsound,
    }


def time_phases(*, program: str = "assem", target: str = "d16",
                sizes=None, blocks=None,
                sequential_baseline: bool = True,
                sim_engines: bool = True,
                analysis: bool = True,
                fault_pruning: bool = True,
                cache_root=None) -> dict:
    """Time each pipeline phase; returns a JSON-serializable report.

    ``cache_root`` names an artifact-cache directory: the cold phases
    populate it and the warm phases re-read it with a fresh lab, so the
    report also captures the cross-process cache win.  Without it the
    cold phases run uncached and the warm phases are skipped.
    """
    from ..experiments import Lab
    from ..experiments.cacheperf import (BLOCK_SIZES, CACHE_SIZES,
                                         grid_configs)
    from ..labcache import ArtifactCache, toolchain_fingerprint

    sizes = tuple(sizes) if sizes is not None else CACHE_SIZES
    blocks = tuple(blocks) if blocks is not None else BLOCK_SIZES
    configs = grid_configs(sizes, blocks)
    phases: dict[str, float] = {}

    def clock(name, fn):
        started = time.perf_counter()
        value = fn()
        phases[name] = time.perf_counter() - started
        return value

    cache = (ArtifactCache(cache_root) if cache_root is not None
             else False)
    lab = Lab(cache=cache)
    clock("compile", lambda: lab.executable(program, target))
    clock("run", lambda: lab.run(program, target))
    trace = clock("trace", lambda: lab.trace(program, target))

    grid = clock("cache_sweep_multi", lambda: simulate_caches_grid(
        trace.itrace, trace.dtrace, trace.run.stats, configs))
    report = {
        "schema": 3,
        "toolchain": toolchain_fingerprint(),
        "program": program,
        "target": target,
        "grid_configs": len(configs),
        "cache_engine": "numpy" if use_vector() else "python",
        "phases": phases,
    }
    if sim_engines:
        report.update(time_sim_engines())
    if analysis:
        report.update(time_analysis(program=program, target=target,
                                    sizes=sizes))
    if fault_pruning:
        report.update(time_fault_pruning())
    if sequential_baseline:
        # The baseline is the *seed's* sweep: one scalar pure-Python
        # cache walk per configuration.  Forcing the python engine
        # keeps the ratio's meaning stable when numpy is installed --
        # and makes the equality assertion below an oracle check of
        # the vectorized grid against the scalar loops.
        def scalar_sequential():
            import os

            from ..cache.vector import ENGINE_ENV
            saved = os.environ.get(ENGINE_ENV)
            os.environ[ENGINE_ENV] = "python"
            try:
                return {config: simulate_caches(
                            trace.itrace, trace.dtrace, trace.run.stats,
                            icache=config, dcache=config)
                        for config in configs}
            finally:
                if saved is None:
                    del os.environ[ENGINE_ENV]
                else:
                    os.environ[ENGINE_ENV] = saved

        sequential = clock("cache_sweep_sequential", scalar_sequential)
        assert sequential == grid, \
            "single-pass sweep diverged from sequential sweep"
        report["cacheperf_speedup"] = (phases["cache_sweep_sequential"]
                                       / phases["cache_sweep_multi"])

    if cache_root is not None:
        warm_lab = Lab(cache=ArtifactCache(cache_root))
        clock("warm_compile", lambda: warm_lab.executable(program, target))
        clock("warm_run", lambda: warm_lab.run(program, target))
        clock("warm_trace", lambda: warm_lab.trace(program, target))
        report["warm_cache_hits"] = warm_lab.cache.hits
        report["warm_cache_misses"] = warm_lab.cache.misses
    return report


def write_bench_json(report: dict, path=BENCH_JSON) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

"""Timing harness for the hot phases of the reproduction pipeline.

:func:`time_phases` measures the four wall-clock-dominant phases --
compile, run, trace, cache sweep -- plus the warm-artifact-cache rerun
of each, and compares the single-pass multi-configuration cache sweep
against the seed's sequential per-configuration sweep.  The result dict
is what ``scripts/bench_perf.py`` serializes into ``BENCH_repro.json``,
seeding the perf trajectory across PRs.
"""

from __future__ import annotations

import json
import time

from ..cache import simulate_caches, simulate_caches_grid

BENCH_JSON = "BENCH_repro.json"


def time_phases(*, program: str = "assem", target: str = "d16",
                sizes=None, blocks=None,
                sequential_baseline: bool = True,
                cache_root=None) -> dict:
    """Time each pipeline phase; returns a JSON-serializable report.

    ``cache_root`` names an artifact-cache directory: the cold phases
    populate it and the warm phases re-read it with a fresh lab, so the
    report also captures the cross-process cache win.  Without it the
    cold phases run uncached and the warm phases are skipped.
    """
    from ..experiments import Lab
    from ..experiments.cacheperf import (BLOCK_SIZES, CACHE_SIZES,
                                         grid_configs)
    from ..labcache import ArtifactCache, toolchain_fingerprint

    sizes = tuple(sizes) if sizes is not None else CACHE_SIZES
    blocks = tuple(blocks) if blocks is not None else BLOCK_SIZES
    configs = grid_configs(sizes, blocks)
    phases: dict[str, float] = {}

    def clock(name, fn):
        started = time.perf_counter()
        value = fn()
        phases[name] = time.perf_counter() - started
        return value

    cache = (ArtifactCache(cache_root) if cache_root is not None
             else False)
    lab = Lab(cache=cache)
    clock("compile", lambda: lab.executable(program, target))
    clock("run", lambda: lab.run(program, target))
    trace = clock("trace", lambda: lab.trace(program, target))

    grid = clock("cache_sweep_multi", lambda: simulate_caches_grid(
        trace.itrace, trace.dtrace, trace.run.stats, configs))
    report = {
        "schema": 1,
        "toolchain": toolchain_fingerprint(),
        "program": program,
        "target": target,
        "grid_configs": len(configs),
        "phases": phases,
    }
    if sequential_baseline:
        sequential = clock("cache_sweep_sequential", lambda: {
            config: simulate_caches(trace.itrace, trace.dtrace,
                                    trace.run.stats, icache=config,
                                    dcache=config)
            for config in configs})
        assert sequential == grid, \
            "single-pass sweep diverged from sequential sweep"
        report["cacheperf_speedup"] = (phases["cache_sweep_sequential"]
                                       / phases["cache_sweep_multi"])

    if cache_root is not None:
        warm_lab = Lab(cache=ArtifactCache(cache_root))
        clock("warm_compile", lambda: warm_lab.executable(program, target))
        clock("warm_run", lambda: warm_lab.run(program, target))
        clock("warm_trace", lambda: warm_lab.trace(program, target))
        report["warm_cache_hits"] = warm_lab.cache.hits
        report["warm_cache_misses"] = warm_lab.cache.misses
    return report


def write_bench_json(report: dict, path=BENCH_JSON) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

"""Static cycle/stall bounds over the binary CFG.

For every basic block recovered by :mod:`repro.analysis.cfg` this
module derives a provable lower and upper bound on the interlock
stalls one execution of the block can incur, using the *same*
:class:`~repro.machine.pipeline.PipelineModel` latency table and
:class:`~repro.machine.pipeline.HazardModel` rules as the simulator —
the analyzer cannot drift from the machine because they share one
source of truth.

The bounds exploit two facts about the hazard rules:

* stalls are **monotone** in the block-entry state (every update is a
  ``max`` or an addition of a non-negative latency), and
* at any instruction boundary no register can be more than
  ``PipelineModel.max_result_latency`` cycles from ready, and the math
  unit no further from free (a result becomes ready at most that many
  cycles after its writer issues).

So running the hazard model from the all-zero entry state lower-bounds
the stalls of any real entry state, and running it from the
everything-busy state (every register and the math unit exactly
``max_result_latency`` away) upper-bounds them.  Aggregating with the
simulator's per-site execution counts gives whole-run bounds::

    interlocks  in  [sum(count_b * lo_b),  sum(count_b * hi_b)]
    cycles      =   IC + interlocks        (zero-wait-state machine)

:func:`validate_run` cross-checks a simulation against the bounds:
TIM001 (error) if the observed interlocks escape the static interval,
TIM002 (warning) if the execution profile is not fully covered by the
static CFG (executed sites outside every block, or counts that are not
uniform within a block — both impossible for toolchain output, so
either indicates CFG-recovery breakage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.objfile import Executable
from ..isa import IsaSpec
from ..machine.pipeline import HazardModel, PipelineModel
from ..machine.stats import RunStats
from .cfg import BinaryCFG, build_cfg
from .findings import Finding, finding


def block_stall_bounds(instrs, model: PipelineModel) -> tuple[int, int]:
    """Provable [lo, hi] interlock stalls for one straight-line run.

    ``instrs`` is a sequence of ``(addr, Instr)`` pairs (a
    :class:`~repro.analysis.cfg.BasicBlock`'s body) or bare
    instructions.
    """
    lo_model = HazardModel(model)
    hi_model = HazardModel(model)
    busy = model.max_result_latency
    hi_model.ready = [busy] * len(hi_model.ready)
    hi_model.math_free = busy
    lo = hi = 0
    for item in instrs:
        instr = item[1] if isinstance(item, tuple) else item
        lo += lo_model.issue(instr)
        hi += hi_model.issue(instr)
    return lo, hi


@dataclass(frozen=True)
class BlockBounds:
    """Static timing facts for one basic block."""

    start: int
    n_instrs: int
    stall_lo: int
    stall_hi: int

    @property
    def cycles_lo(self) -> int:
        return self.n_instrs + self.stall_lo

    @property
    def cycles_hi(self) -> int:
        return self.n_instrs + self.stall_hi


@dataclass
class StaticBounds:
    """Per-block cycle/stall bounds for one linked image."""

    cfg: BinaryCFG
    model: PipelineModel
    blocks: dict[int, BlockBounds]           # block start -> bounds

    def describe(self) -> str:
        lines = [f"{len(self.blocks)} blocks, "
                 f"max result latency {self.model.max_result_latency}"]
        for start in sorted(self.blocks):
            b = self.blocks[start]
            lines.append(
                f"  {self.cfg.describe(start)}: {b.n_instrs} instrs, "
                f"stalls [{b.stall_lo}, {b.stall_hi}]")
        return "\n".join(lines)


def static_bounds(exe_or_cfg, isa: IsaSpec | None = None, *,
                  model: PipelineModel | None = None,
                  symbols: dict[str, int] | None = None) -> StaticBounds:
    """Compute per-block stall bounds for an image (or pre-built CFG)."""
    if isinstance(exe_or_cfg, BinaryCFG):
        cfg = exe_or_cfg
    else:
        cfg = build_cfg(exe_or_cfg, isa, symbols=symbols)
    model = model or PipelineModel()
    blocks = {}
    for start, block in cfg.blocks.items():
        lo, hi = block_stall_bounds(block.instrs, model)
        blocks[start] = BlockBounds(start=start,
                                    n_instrs=len(block.instrs),
                                    stall_lo=lo, stall_hi=hi)
    return StaticBounds(cfg=cfg, model=model, blocks=blocks)


@dataclass
class TimingValidation:
    """A simulated run checked against the static bounds."""

    bounds: StaticBounds
    interlocks_observed: int
    interlock_lo: int
    interlock_hi: int
    instructions: int                        # simulator path length
    covered_instructions: int                # executions inside CFG blocks
    findings: list[Finding] = field(default_factory=list)

    @property
    def cycles_observed(self) -> int:
        """Zero-wait-state cycles: IC + interlocks."""
        return self.instructions + self.interlocks_observed

    @property
    def cycles_lo(self) -> int:
        return self.instructions + self.interlock_lo

    @property
    def cycles_hi(self) -> int:
        return self.instructions + self.interlock_hi

    @property
    def fully_covered(self) -> bool:
        return self.covered_instructions == self.instructions

    @property
    def in_bounds(self) -> bool:
        return not self.findings or all(
            f.rule != "TIM001" for f in self.findings)

    @property
    def tightness(self) -> float:
        """Bound width relative to the observed cycles (0 = exact)."""
        if not self.cycles_observed:
            return 0.0
        return (self.cycles_hi - self.cycles_lo) / self.cycles_observed


def validate_run(bounds: StaticBounds, stats: RunStats) -> TimingValidation:
    """Check one simulation's interlocks against the static bounds.

    ``stats`` must come from running the same executable the bounds
    were computed for (the per-site ``exec_counts`` vector is matched
    against the CFG's blocks positionally).
    """
    cfg = bounds.cfg
    base, width = cfg.base, cfg.width
    shift = 1 if width == 2 else 2
    counts = stats.exec_counts
    describe = cfg.describe
    findings: list[Finding] = []

    def count_at(addr: int) -> int:
        index = (addr - base) >> shift
        return counts[index] if 0 <= index < len(counts) else 0

    lo_total = hi_total = 0
    covered = 0
    covered_sites: set[int] = set()
    for start, bb in sorted(bounds.blocks.items()):
        block = cfg.blocks[start]
        block_count = count_at(start)
        site_counts = {addr: count_at(addr) for addr, _i in block.instrs}
        covered_sites.update(site_counts)
        if len(set(site_counts.values())) > 1:
            findings.append(finding(
                "TIM002", describe(start),
                f"execution counts vary inside one basic block "
                f"({sorted(set(site_counts.values()))}): the static CFG "
                f"disagrees with the executed control flow"))
            covered += sum(site_counts.values())
            continue
        covered += block_count * bb.n_instrs
        lo_total += block_count * bb.stall_lo
        hi_total += block_count * bb.stall_hi

    stray = sum(
        count for index, count in enumerate(counts)
        if count and (base + (index << shift)) not in covered_sites)
    if stray:
        findings.append(finding(
            "TIM002", f"text:{base:#x}",
            f"{stray} executed instruction(s) fall outside every "
            f"static basic block; bounds cannot cover the full run"))

    observed = stats.interlocks
    if observed < lo_total:
        findings.append(finding(
            "TIM001", f"text:{base:#x}",
            f"simulated interlocks {observed} fall below the static "
            f"lower bound {lo_total}"))
    if not stray and observed > hi_total:
        findings.append(finding(
            "TIM001", f"text:{base:#x}",
            f"simulated interlocks {observed} exceed the static "
            f"upper bound {hi_total}"))
    return TimingValidation(
        bounds=bounds, interlocks_observed=observed,
        interlock_lo=lo_total, interlock_hi=hi_total,
        instructions=stats.instructions,
        covered_instructions=covered, findings=findings)


def check_timing(exe: Executable, isa: IsaSpec, stats: RunStats, *,
                 model: PipelineModel | None = None,
                 symbols: dict[str, int] | None = None,
                 cfg: BinaryCFG | None = None) -> TimingValidation:
    """One-call harness: static bounds + validation for one run.

    Without a pre-built ``cfg`` the control flow is recovered with
    value-analysis feedback (:func:`~repro.analysis.absint.resolve_cfg`),
    so D16's pool-loaded indirect calls are followed even when the
    executable's symbol table lost the function labels.
    """
    if cfg is None:
        from .absint import resolve_cfg
        cfg, _result = resolve_cfg(exe, isa, symbols=symbols)
    sb = static_bounds(cfg, model=model)
    return validate_run(sb, stats)

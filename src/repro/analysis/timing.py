"""Static cycle/stall bounds over the binary CFG.

For every basic block recovered by :mod:`repro.analysis.cfg` this
module derives a provable lower and upper bound on the interlock
stalls one execution of the block can incur, using the *same*
:class:`~repro.machine.pipeline.PipelineModel` latency table and
:class:`~repro.machine.pipeline.HazardModel` rules as the simulator —
the analyzer cannot drift from the machine because they share one
source of truth.

The bounds exploit two facts about the hazard rules:

* stalls are **monotone** in the block-entry state (every update is a
  ``max`` or an addition of a non-negative latency), and
* at any instruction boundary no register can be more than
  ``PipelineModel.max_result_latency`` cycles from ready, and the math
  unit no further from free (a result becomes ready at most that many
  cycles after its writer issues).

So running the hazard model from the all-zero entry state lower-bounds
the stalls of any real entry state, and running it from the
everything-busy state (every register and the math unit exactly
``max_result_latency`` away) upper-bounds them.  (Total stalls of a
sequence equal ``final issue time - entry time - n``, and the final
issue time is a max-plus — hence monotone — function of the entry
readiness vector, so ordering entry states orders the totals.)

The lower bound is additionally tightened with a **one-level
predecessor lookback**: when every CFG predecessor ``p`` of a block
provably leaves a register busy at its exit — its last writer sits
``gap`` slots before ``p``'s end, and ``result latency - gap - 1``
exceeds even the *upper* bound of the stalls ``p``'s tail suffix can
insert — that guaranteed remaining latency seeds the block's
lower-bound entry state.  Every execution enters via *some* static
predecessor, so the block bound is the minimum over per-predecessor
seeded runs; it collapses to the cold bound for function entries, call
fall-throughs, and indirect-edge targets, where the real predecessor
executes arbitrary code.  This recovers, e.g., the delayed-load
interlock of a load sitting in a predecessor's final slot with its
consumer at the block head.

Aggregating with the simulator's per-site execution counts gives
whole-run bounds::

    interlocks  in  [sum(count_b * lo_b),  sum(count_b * hi_b)]
    cycles      =   IC + interlocks        (zero-wait-state machine)

:func:`validate_run` cross-checks a simulation against the bounds:
TIM001 (error) if the observed interlocks escape the static interval,
TIM002 (warning) if the execution profile is not fully covered by the
static CFG (executed sites outside every block, or counts that are not
uniform within a block — both impossible for toolchain output, so
either indicates CFG-recovery breakage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.objfile import Executable
from collections.abc import Sequence

from ..isa import Instr, IsaSpec
from ..machine.pipeline import HazardModel, PipelineModel, hazard_indices
from ..machine.stats import RunStats
from .cfg import BasicBlock, BinaryCFG, build_cfg
from .findings import Finding, finding

#: Entry seed for a block's lower-bound run: guaranteed remaining
#: latency per hazard index, plus the guaranteed remaining math-unit
#: occupancy.  All values are relative to the block's first issue slot.
EntrySeed = tuple[dict[int, int], int]

_ZERO_SEED: EntrySeed = ({}, 0)


def block_stall_bounds(instrs: Sequence[tuple[int, Instr] | Instr],
                       model: PipelineModel,
                       entry_seed: EntrySeed | None = None
                       ) -> tuple[int, int]:
    """Provable [lo, hi] interlock stalls for one straight-line run.

    ``instrs`` is a sequence of ``(addr, Instr)`` pairs (a
    :class:`~repro.analysis.cfg.BasicBlock`'s body) or bare
    instructions.  ``entry_seed`` optionally tightens the lower bound
    with latencies every real entry state provably still carries (see
    :func:`predecessor_seed`); the upper bound is unaffected.
    """
    lo_model = HazardModel(model)
    hi_model = HazardModel(model)
    busy = model.max_result_latency
    hi_model.ready = [busy] * len(hi_model.ready)
    hi_model.math_free = busy
    if entry_seed is not None:
        seeds, math_seed = entry_seed
        # The first instruction would issue at time+1 = 1, so a value
        # that stays busy for k more slots is ready at absolute time
        # 1 + k (stall k for a first-slot consumer, decaying after).
        for index, remaining in seeds.items():
            lo_model.ready[index] = 1 + remaining
        if math_seed:
            lo_model.math_free = 1 + math_seed
    lo = hi = 0
    for item in instrs:
        instr = item[1] if isinstance(item, tuple) else item
        lo += lo_model.issue(instr)
        hi += hi_model.issue(instr)
    return lo, hi


def _suffix_stall_upper(instrs: Sequence[tuple[int, Instr] | Instr],
                        start: int, model: PipelineModel) -> int:
    """Upper bound on the stalls ``instrs[start:]`` can insert, from
    the everything-busy state (sound for any real mid-block state)."""
    hm = HazardModel(model)
    busy = model.max_result_latency
    hm.ready = [busy] * len(hm.ready)
    hm.math_free = busy
    return sum(hm.issue(item[1] if isinstance(item, tuple) else item)
               for item in instrs[start:])


def exit_seed(block: BasicBlock, model: PipelineModel) -> EntrySeed:
    """Latencies ``block`` itself guarantees at its exit boundary.

    For the last writer of each hazard index, sitting ``gap`` slots
    before the block's end with result latency ``lat``, the value is
    still at least ``lat - gap - 1 - S`` slots from ready at the
    successor's first issue slot, where ``S`` upper-bounds the stalls
    the tail suffix can insert (stalls only *delay* the boundary,
    shrinking the leftover).  Values written before the block (or
    before the last writer) contribute nothing — they may already be
    ready — so this is a sound componentwise lower bound on any real
    exit state.  The math unit is handled identically via occupancy.
    """
    instrs = block.instrs
    n = len(instrs)
    seeds: dict[int, int] = {}
    math_seed = 0
    claimed: set[int] = set()
    math_seen = False
    sup_cache: dict[int, int] = {}

    def sup(i: int) -> int:
        if i not in sup_cache:
            sup_cache[i] = _suffix_stall_upper(instrs, i, model)
        return sup_cache[i]

    window = min(n, model.max_result_latency + 1)
    for j in range(n - 1, n - 1 - window, -1):
        instr = instrs[j][1] if isinstance(instrs[j], tuple) else instrs[j]
        gap = n - 1 - j
        _reads, writes = hazard_indices(instr)
        fresh = [idx for idx in writes if idx not in claimed]
        claimed.update(writes)
        if fresh:
            rem = model.result_latency(instr.info) - gap - 1
            if rem > 0:
                rem -= sup(j + 1)
            if rem > 0:
                for idx in fresh:
                    seeds[idx] = rem
        if not math_seen:
            occ = model.occupancy(instr.info)
            if occ:
                math_seen = True
                m = occ - gap - 1
                if m > 0:
                    m -= sup(j + 1)
                if m > 0:
                    math_seed = m
    return seeds, math_seed


def predecessor_seed(preds: list, model: PipelineModel,
                     cache: dict[int, EntrySeed] | None = None) -> EntrySeed:
    """Componentwise minimum of the exit seeds of all predecessors.

    ``preds`` holds the predecessor :class:`BasicBlock`s of one block.
    A call or indirect predecessor contributes the zero seed (the real
    dynamic predecessor — callee, return site, or unknown jump source
    — executes arbitrary code first), as does an empty list (function
    entries and other blocks the static CFG cannot see into).
    """
    combined: EntrySeed | None = None
    for pred in preds:
        if pred.is_call or pred.indirect:
            return _ZERO_SEED
        if cache is not None and pred.start in cache:
            seed = cache[pred.start]
        else:
            seed = exit_seed(pred, model)
            if cache is not None:
                cache[pred.start] = seed
        if combined is None:
            combined = seed
        else:
            regs = {idx: min(v, seed[0][idx])
                    for idx, v in combined[0].items() if idx in seed[0]}
            combined = (regs, min(combined[1], seed[1]))
        if not combined[0] and not combined[1]:
            return _ZERO_SEED
    return combined if combined is not None else _ZERO_SEED


@dataclass(frozen=True)
class BlockBounds:
    """Static timing facts for one basic block."""

    start: int
    n_instrs: int
    stall_lo: int
    stall_hi: int

    @property
    def cycles_lo(self) -> int:
        return self.n_instrs + self.stall_lo

    @property
    def cycles_hi(self) -> int:
        return self.n_instrs + self.stall_hi


@dataclass
class StaticBounds:
    """Per-block cycle/stall bounds for one linked image."""

    cfg: BinaryCFG
    model: PipelineModel
    blocks: dict[int, BlockBounds]           # block start -> bounds

    def describe(self) -> str:
        lines = [f"{len(self.blocks)} blocks, "
                 f"max result latency {self.model.max_result_latency}"]
        for start in sorted(self.blocks):
            b = self.blocks[start]
            lines.append(
                f"  {self.cfg.describe(start)}: {b.n_instrs} instrs, "
                f"stalls [{b.stall_lo}, {b.stall_hi}]")
        return "\n".join(lines)


def static_bounds(exe_or_cfg: Executable | BinaryCFG,
                  isa: IsaSpec | None = None, *,
                  model: PipelineModel | None = None,
                  symbols: dict[str, int] | None = None,
                  lookback: bool = True) -> StaticBounds:
    """Compute per-block stall bounds for an image (or pre-built CFG).

    With ``lookback`` (the default) each block's lower bound is seeded
    from the guaranteed exit latencies of its CFG predecessors; pass
    ``lookback=False`` for the plain cold-entry bound.
    """
    if isinstance(exe_or_cfg, BinaryCFG):
        cfg = exe_or_cfg
    else:
        if isa is None:
            raise ValueError("isa is required with a raw executable")
        cfg = build_cfg(exe_or_cfg, isa, symbols=symbols)
    model = model or PipelineModel()

    preds: dict[int, list[BasicBlock]] = {}
    entry_points = {cfg.exe.entry} | {addr for addr, _name in cfg.funcs}
    if lookback:
        for _start, block in cfg.blocks.items():
            for succ in block.succs:
                preds.setdefault(succ, []).append(block)

    seed_cache: dict[int, EntrySeed] = {}

    def pred_seeds(start: int) -> list[EntrySeed]:
        """One seed per provable entry path, or [] if any path is
        opaque (so only the cold bound is sound)."""
        if start in entry_points:
            return []
        seeds = []
        for pred in preds.get(start, []):
            if pred.is_call or pred.indirect:
                return []
            if pred.start not in seed_cache:
                seed_cache[pred.start] = exit_seed(pred, model)
            seeds.append(seed_cache[pred.start])
        return seeds

    blocks = {}
    for start, block in cfg.blocks.items():
        lo, hi = block_stall_bounds(block.instrs, model)
        if lookback:
            # Every execution of the block enters via *some* static
            # predecessor, so the minimum over per-predecessor seeded
            # runs is a sound (and tighter) lower bound than seeding
            # with the componentwise-minimum vector.
            seeds = [s for s in pred_seeds(start) if s != _ZERO_SEED]
            if seeds and len(seeds) == len(preds.get(start, [])):
                lo = min(block_stall_bounds(block.instrs, model,
                                            entry_seed=s)[0]
                         for s in seeds)
        blocks[start] = BlockBounds(start=start,
                                    n_instrs=len(block.instrs),
                                    stall_lo=lo, stall_hi=hi)
    return StaticBounds(cfg=cfg, model=model, blocks=blocks)


@dataclass
class TimingValidation:
    """A simulated run checked against the static bounds."""

    bounds: StaticBounds
    interlocks_observed: int
    interlock_lo: int
    interlock_hi: int
    instructions: int                        # simulator path length
    covered_instructions: int                # executions inside CFG blocks
    findings: list[Finding] = field(default_factory=list)

    @property
    def cycles_observed(self) -> int:
        """Zero-wait-state cycles: IC + interlocks."""
        return self.instructions + self.interlocks_observed

    @property
    def cycles_lo(self) -> int:
        return self.instructions + self.interlock_lo

    @property
    def cycles_hi(self) -> int:
        return self.instructions + self.interlock_hi

    @property
    def fully_covered(self) -> bool:
        return self.covered_instructions == self.instructions

    @property
    def in_bounds(self) -> bool:
        return not self.findings or all(
            f.rule != "TIM001" for f in self.findings)

    @property
    def tightness(self) -> float:
        """Bound width relative to the observed cycles (0 = exact)."""
        if not self.cycles_observed:
            return 0.0
        return (self.cycles_hi - self.cycles_lo) / self.cycles_observed


def validate_run(bounds: StaticBounds, stats: RunStats) -> TimingValidation:
    """Check one simulation's interlocks against the static bounds.

    ``stats`` must come from running the same executable the bounds
    were computed for (the per-site ``exec_counts`` vector is matched
    against the CFG's blocks positionally).
    """
    cfg = bounds.cfg
    base, width = cfg.base, cfg.width
    shift = 1 if width == 2 else 2
    counts = stats.exec_counts
    describe = cfg.describe
    findings: list[Finding] = []

    def count_at(addr: int) -> int:
        index = (addr - base) >> shift
        return counts[index] if 0 <= index < len(counts) else 0

    lo_total = hi_total = 0
    covered = 0
    covered_sites: set[int] = set()
    for start, bb in sorted(bounds.blocks.items()):
        block = cfg.blocks[start]
        block_count = count_at(start)
        site_counts = {addr: count_at(addr) for addr, _i in block.instrs}
        covered_sites.update(site_counts)
        if len(set(site_counts.values())) > 1:
            findings.append(finding(
                "TIM002", describe(start),
                f"execution counts vary inside one basic block "
                f"({sorted(set(site_counts.values()))}): the static CFG "
                f"disagrees with the executed control flow"))
            covered += sum(site_counts.values())
            continue
        covered += block_count * bb.n_instrs
        lo_total += block_count * bb.stall_lo
        hi_total += block_count * bb.stall_hi

    stray = sum(
        count for index, count in enumerate(counts)
        if count and (base + (index << shift)) not in covered_sites)
    if stray:
        findings.append(finding(
            "TIM002", f"text:{base:#x}",
            f"{stray} executed instruction(s) fall outside every "
            f"static basic block; bounds cannot cover the full run"))

    observed = stats.interlocks
    if observed < lo_total:
        findings.append(finding(
            "TIM001", f"text:{base:#x}",
            f"simulated interlocks {observed} fall below the static "
            f"lower bound {lo_total}"))
    if not stray and observed > hi_total:
        findings.append(finding(
            "TIM001", f"text:{base:#x}",
            f"simulated interlocks {observed} exceed the static "
            f"upper bound {hi_total}"))
    return TimingValidation(
        bounds=bounds, interlocks_observed=observed,
        interlock_lo=lo_total, interlock_hi=hi_total,
        instructions=stats.instructions,
        covered_instructions=covered, findings=findings)


def check_timing(exe: Executable, isa: IsaSpec, stats: RunStats, *,
                 model: PipelineModel | None = None,
                 symbols: dict[str, int] | None = None,
                 cfg: BinaryCFG | None = None) -> TimingValidation:
    """One-call harness: static bounds + validation for one run.

    Without a pre-built ``cfg`` the control flow is recovered with
    value-analysis feedback (:func:`~repro.analysis.absint.resolve_cfg`),
    so D16's pool-loaded indirect calls are followed even when the
    executable's symbol table lost the function labels.
    """
    if cfg is None:
        from .absint import resolve_cfg
        cfg, _result = resolve_cfg(exe, isa, symbols=symbols)
    sb = static_bounds(cfg, model=model)
    return validate_run(sb, stats)

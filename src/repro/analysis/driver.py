"""Lint orchestration: run every analysis layer over compiled programs.

:func:`lint_program` takes one minic source through the full pipeline —
IR verification between optimizer passes, assembly-level encoding
checks, binary-level lint, and abstract interpretation of the linked
image — and returns the accumulated findings.  :func:`lint_suite` fans
that out over benchmark programs and targets, producing one
:class:`LintReport` per cell.  :func:`timing_suite`,
:func:`wcet_suite`, :func:`density_suite`, :func:`cross_isa_suite`,
and :func:`tv_suite` run the semantic modes behind ``repro lint
--timing`` / ``--wcet`` / ``--density`` / ``--cross-isa`` / ``--tv``:
static cycle-bound cross-validation against the simulator,
whole-program [BCET, WCET] interval composition, D16-compressibility
estimation of DLXe images, D16-vs-DLXe consistency checking, and
per-pass + IR-vs-binary translation validation.  ``repro lint --all``
runs every mode in one invocation and merges the reports under the
shared exit-code contract.

Exit-code semantics (:func:`exit_code`): ``0`` when every finding is a
warning or less, ``1`` when any error-severity finding exists, ``2``
when the analysis itself failed (unparsable source, internal crash) —
so CI can distinguish "the program is bad" from "the linter is broken".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..asm import AsmError, Assembler, link
from ..bench import SUITE, get_benchmark
from ..cc import TargetSpec, get_target
from ..machine.pipeline import PipelineParams
from ..cc.codegen import generate_assembly
from ..cc.irgen import lower_program
from ..cc.opt import PassVerificationError, optimize_module
from ..cc.parser import parse
from ..cc.runtime import RUNTIME_SOURCE
from .absint import analyze_executable, resolve_cfg
from .binlint import lint_assembly, lint_executable
from .cfg import build_cfg
from .density import ProgramDensity, analyze_density
from .findings import Finding, finding, has_errors
from .icache import (ICacheAnalysis, ICacheValidation, analyze_icache,
                     validate_icache)
from .irverify import verify_module
from .timing import (TimingValidation, check_timing, static_bounds,
                     validate_run)
from .wcet import (DEFAULT_SLACK, WcetValidation, _promote_direct_calls,
                   analyze_wcet, validate_wcet)
from .xisa import check_cross_isa

if TYPE_CHECKING:
    from ..experiments.runner import Lab

#: The two headline machines, linted by default.
DEFAULT_TARGETS = ("d16", "dlxe")

#: Process exit codes for ``repro lint`` (locked by tests).
EXIT_OK = 0           # no findings, or warnings/info only
EXIT_ERRORS = 1       # at least one error-severity finding
EXIT_INTERNAL = 2     # the analysis itself failed


def exit_code(reports: Iterable[LintReport]) -> int:
    """Map lint reports to the process exit code (0/1 — never 2).

    ``EXIT_INTERNAL`` is reserved for exceptions escaping the analysis;
    callers (the CLI) translate those separately.
    """
    return EXIT_ERRORS if any(not r.ok for r in reports) else EXIT_OK


@dataclass
class LintReport:
    """All findings for one (program, target) cell."""

    program: str
    target: str
    findings: list[Finding]

    @property
    def ok(self) -> bool:
        return not has_errors(self.findings)


def lint_program(source: str, target: TargetSpec | str, *,
                 opt_level: int = 2,
                 include_runtime: bool = True) -> list[Finding]:
    """Run all three lint layers over one program; returns findings.

    Layers run in dependency order and later layers are skipped once an
    earlier one reports errors (broken IR produces garbage assembly;
    unencodable assembly cannot be linked).
    """
    if isinstance(target, str):
        target = get_target(target)
    full_source = (RUNTIME_SOURCE + "\n" + source) if include_runtime \
        else source
    module = lower_program(parse(full_source))

    # Per-pass verification localizes errors to the offending pass;
    # the post-optimization sweep adds the warning-level rules (the
    # *initial* IR legitimately holds unreachable blocks that irgen
    # emits for simplify_cfg to collect — not worth reporting).
    findings: list[Finding] = []
    try:
        optimize_module(module, level=opt_level, verify=True)
    except PassVerificationError as exc:
        findings.extend(
            finding(f.rule, f.location,
                    f"after pass '{exc.pass_name}': {f.message}")
            for f in exc.findings)
        return findings
    findings.extend(verify_module(module))
    if has_errors(findings):
        return findings

    assembly = generate_assembly(module, target, schedule=opt_level >= 1)
    findings.extend(lint_assembly(assembly, target.isa))
    if has_errors(findings):
        return findings

    try:
        obj = Assembler(target.isa).assemble(assembly)
        exe = link([obj])
    except AsmError as exc:
        findings.append(finding(
            "ENC001", f"{target.isa.name}:line {exc.line_no}", str(exc)))
        return findings
    # The executable's symbol table only retains globals; rebuild the
    # full label map from the object file (single-object link: section
    # offsets translate directly to absolute addresses).
    symbols = {sym.name: exe.text_base + sym.value
               for sym in obj.symbols.values() if sym.section == "text"}
    cfg = build_cfg(exe, target.isa, symbols=symbols)
    findings.extend(lint_executable(exe, target.isa, symbols=symbols,
                                    target=target, cfg=cfg))
    findings.extend(analyze_executable(exe, target.isa, symbols=symbols,
                                       target=target, cfg=cfg).findings)
    return findings


def lint_suite(targets: Iterable[str] = DEFAULT_TARGETS,
               programs: Iterable[str] | None = None, *,
               opt_level: int = 2) -> list[LintReport]:
    """Lint benchmark programs on each target; one report per cell."""
    names = list(programs) if programs is not None \
        else [bench.name for bench in SUITE]
    reports = []
    for name in names:
        bench = get_benchmark(name)
        for target_name in targets:
            reports.append(LintReport(
                program=name, target=target_name,
                findings=lint_program(bench.source, target_name,
                                      opt_level=opt_level)))
    return reports


# ------------------------------------------------------- semantic modes


def timing_program(source: str, target: TargetSpec | str, *,
                   opt_level: int = 2,
                   include_runtime: bool = True,
                   params: PipelineParams | None = None) -> TimingValidation:
    """Compile, simulate, and validate static cycle bounds for one
    program: the simulator's interlock total must land inside the
    CFG-aggregated per-block [lower, upper] stall bounds (TIM001 on
    violation, TIM002 on a coverage gap)."""
    from ..machine import run_executable

    if isinstance(target, str):
        target = get_target(target)
    full_source = (RUNTIME_SOURCE + "\n" + source) if include_runtime \
        else source
    module = lower_program(parse(full_source))
    optimize_module(module, level=opt_level)
    assembly = generate_assembly(module, target, schedule=opt_level >= 1)
    obj = Assembler(target.isa).assemble(assembly)
    exe = link([obj])
    symbols = {sym.name: exe.text_base + sym.value
               for sym in obj.symbols.values() if sym.section == "text"}
    stats, _machine = run_executable(exe, params=params)
    cfg = build_cfg(exe, target.isa, symbols=symbols)
    return validate_run(static_bounds(cfg, model=params), stats)


def timing_suite(targets: Iterable[str] = DEFAULT_TARGETS,
                 programs: Iterable[str] | None = None, *,
                 params: PipelineParams | None = None, lab: Lab | None = None,
                 ) -> tuple[list[LintReport], dict]:
    """Cross-validate static bounds on the benchmark suite.

    Returns ``(reports, validations)`` where ``validations`` maps
    ``(program, target)`` to the :class:`TimingValidation` — the
    tightness numbers feed EXPERIMENTS.md.  Runs ride the Lab's
    persistent artifact cache, so repeated invocations (CI, docs
    regeneration) skip simulation.
    """
    from ..experiments.runner import Lab

    lab = lab or Lab(params=params)
    names = list(programs) if programs is not None \
        else [bench.name for bench in SUITE]
    targets = tuple(targets)
    reports: list[LintReport] = []
    validations: dict[tuple[str, str], TimingValidation] = {}
    for name in names:
        for target_name in targets:
            exe = lab.executable(name, target_name)
            run = lab.run(name, target_name)
            # A Lab executable's symbol table only keeps globals, so the
            # CFG is recovered with value-analysis feedback (resolving
            # D16's pool-loaded calls) rather than from labels.
            validation = check_timing(exe, get_target(target_name).isa,
                                      run.stats, model=lab.params)
            validations[(name, target_name)] = validation
            reports.append(LintReport(program=name, target=target_name,
                                      findings=validation.findings))
    return reports, validations


def wcet_program(source: str, target: TargetSpec | str, *,
                 opt_level: int = 2,
                 include_runtime: bool = True,
                 params: PipelineParams | None = None,
                 slack: float | None = DEFAULT_SLACK) -> WcetValidation:
    """Compile, simulate, and bracket one program's cycle count with
    the whole-program static interval: loop recovery, bound inference,
    and interprocedural [BCET, WCET] composition (TIM003 when the
    simulated cycles escape the interval, LOOP001/TIM004/TIM005 for
    the soundness caveats)."""
    from ..machine import run_executable

    if isinstance(target, str):
        target = get_target(target)
    full_source = (RUNTIME_SOURCE + "\n" + source) if include_runtime \
        else source
    module = lower_program(parse(full_source))
    optimize_module(module, level=opt_level)
    assembly = generate_assembly(module, target, schedule=opt_level >= 1)
    obj = Assembler(target.isa).assemble(assembly)
    exe = link([obj])
    symbols = {sym.name: exe.text_base + sym.value
               for sym in obj.symbols.values() if sym.section == "text"}
    stats, _machine = run_executable(exe, params=params)
    program = analyze_wcet(exe, target.isa, model=params, symbols=symbols,
                           target=target)
    return validate_wcet(program, stats, slack=slack)


def wcet_suite(targets: Iterable[str] = DEFAULT_TARGETS,
               programs: Iterable[str] | None = None, *,
               params: PipelineParams | None = None, lab: Lab | None = None,
               slack: float | None = DEFAULT_SLACK,
               ) -> tuple[list[LintReport], dict]:
    """Bracket every benchmark cell with the whole-program interval.

    Returns ``(reports, validations)`` where ``validations`` maps
    ``(program, target)`` to the :class:`WcetValidation` — the
    per-function bound records and BCET ratios feed EXPERIMENTS.md and
    the ``--json`` report.
    """
    from ..experiments.runner import Lab

    lab = lab or Lab(params=params)
    names = list(programs) if programs is not None \
        else [bench.name for bench in SUITE]
    targets = tuple(targets)
    reports: list[LintReport] = []
    validations: dict[tuple[str, str], WcetValidation] = {}
    for name in names:
        for target_name in targets:
            target = get_target(target_name)
            exe = lab.executable(name, target_name)
            run = lab.run(name, target_name)
            program = analyze_wcet(exe, target.isa, model=lab.params,
                                   target=target)
            validation = validate_wcet(program, run.stats, slack=slack)
            validations[(name, target_name)] = validation
            reports.append(LintReport(program=name, target=target_name,
                                      findings=validation.findings))
    return reports, validations


#: Default miss penalty (cycles) for cache-aware bounds -- the middle
#: of the cacheperf experiment's penalty grid.
DEFAULT_MISS_PENALTY = 8


def icache_program(source: str, target: TargetSpec | str, *,
                   opt_level: int = 2,
                   include_runtime: bool = True,
                   params: PipelineParams | None = None,
                   sizes: Iterable[int] | None = None,
                   block: int = 32, sub_block: int = 8,
                   penalty: int = DEFAULT_MISS_PENALTY,
                   ) -> list[tuple[ICacheAnalysis, ICacheValidation]]:
    """Compile, trace, and validate the static I-cache classification
    of one program across a cache-size grid: must/may/persistence
    fetch classification, composed miss upper bounds, and the replay
    soundness sweep (CACHE001-005)."""
    from ..cache.cache import CacheConfig
    from ..experiments.cacheperf import CACHE_SIZES
    from ..machine import run_executable

    if isinstance(target, str):
        target = get_target(target)
    full_source = (RUNTIME_SOURCE + "\n" + source) if include_runtime \
        else source
    module = lower_program(parse(full_source))
    optimize_module(module, level=opt_level)
    assembly = generate_assembly(module, target, schedule=opt_level >= 1)
    obj = Assembler(target.isa).assemble(assembly)
    exe = link([obj])
    stats, machine = run_executable(exe, params=params,
                                    trace_instructions=True)
    program = analyze_wcet(exe, target.isa, model=params, target=target)
    sizes = tuple(sizes) if sizes is not None else CACHE_SIZES
    out = []
    for size in sizes:
        config = CacheConfig(size=size, block=block,
                             sub_block=sub_block)
        analysis = analyze_icache(program, config)
        validation = validate_icache(analysis, machine.itrace, stats,
                                     penalty=penalty)
        out.append((analysis, validation))
    return out


def icache_suite(targets: Iterable[str] = DEFAULT_TARGETS,
                 programs: Iterable[str] | None = None, *,
                 params: PipelineParams | None = None, lab: Lab | None = None,
                 sizes: Iterable[int] | None = None,
                 block: int = 32, sub_block: int = 8,
                 penalty: int = DEFAULT_MISS_PENALTY,
                 ) -> tuple[list[LintReport], dict]:
    """Validate the static I-cache classification over the suite.

    Runs the must/may/persistence analysis for every benchmark cell
    across the cache-size grid and replays each cell's instruction
    trace as the soundness oracle.  Returns ``(reports, results)``
    where ``results`` maps ``(program, target)`` to the per-config
    ``(analysis, validation)`` pairs -- the static-vs-simulated miss
    numbers feed EXPERIMENTS.md and the ``--json`` report.  Analysis
    findings repeat identically across configs (boundability is a
    structural property), so the per-cell report deduplicates them.
    """
    from ..cache.cache import CacheConfig
    from ..experiments.cacheperf import CACHE_SIZES
    from ..experiments.runner import Lab

    lab = lab or Lab(params=params)
    names = list(programs) if programs is not None \
        else [bench.name for bench in SUITE]
    targets = tuple(targets)
    sizes = tuple(sizes) if sizes is not None else CACHE_SIZES
    reports: list[LintReport] = []
    results: dict[tuple[str, str], list] = {}
    for name in names:
        for target_name in targets:
            target = get_target(target_name)
            exe = lab.executable(name, target_name)
            trace = lab.trace(name, target_name)
            program = analyze_wcet(exe, target.isa, model=lab.params,
                                   target=target)
            cell = []
            cell_findings: list[Finding] = []
            seen: set[tuple] = set()
            for size in sizes:
                config = CacheConfig(size=size, block=block,
                                     sub_block=sub_block)
                analysis = analyze_icache(program, config)
                validation = validate_icache(
                    analysis, trace.itrace, trace.run.stats,
                    penalty=penalty)
                cell.append((analysis, validation))
                for f in analysis.findings + validation.findings:
                    key = (f.rule, f.location, f.message)
                    if key not in seen:
                        seen.add(key)
                        cell_findings.append(f)
            results[(name, target_name)] = cell
            reports.append(LintReport(program=name, target=target_name,
                                      findings=cell_findings))
    return reports, results


def density_suite(programs: Iterable[str] | None = None, *,
                  target: str = "dlxe", lab: Lab | None = None,
                  ) -> tuple[list[LintReport], dict]:
    """Estimate D16 compressibility of every DLXe benchmark image.

    Returns ``(reports, densities)`` where ``densities`` maps the
    program name to its :class:`ProgramDensity`.  Density is a
    property of the 32-bit encoding, so the suite runs one target
    (DLXe by default); reports carry the DEN001 INFO findings.
    """
    from ..experiments.runner import Lab

    lab = lab or Lab()
    names = list(programs) if programs is not None \
        else [bench.name for bench in SUITE]
    reports: list[LintReport] = []
    densities: dict[str, ProgramDensity] = {}
    for name in names:
        exe = lab.executable(name, target)
        cfg, result = resolve_cfg(exe, get_target(target).isa)
        # Promote jld targets to function roots so the per-function
        # records do not fold the whole DLXe image into _start.
        cfg, _result = _promote_direct_calls(cfg, None, get_target(target),
                                             result)
        density = analyze_density(cfg)
        densities[name] = density
        reports.append(LintReport(program=name, target=target,
                                  findings=density.findings))
    return reports, densities


def vuln_program(source: str, target: TargetSpec | str, *,
                 opt_level: int = 2,
                 include_runtime: bool = True,
                 params: PipelineParams | None = None,
                 faults: int = 20, seed: int = 42,
                 name: str = "<file>"):
    """Compile, trace, and statically classify one program's planned
    fault sites (``repro lint --vuln`` file mode).

    Returns ``(cell, waived, findings)`` — the
    :class:`~repro.analysis.vuln.CellVulnerability`, the liveness
    waiver list, and the combined LIV/VULN findings.
    """
    from ..machine import run_executable
    from .liveness import analyze_liveness, liveness_findings
    from .vuln import classify_cell, vuln_findings

    if isinstance(target, str):
        target = get_target(target)
    full_source = (RUNTIME_SOURCE + "\n" + source) if include_runtime \
        else source
    module = lower_program(parse(full_source))
    optimize_module(module, level=opt_level)
    assembly = generate_assembly(module, target, schedule=opt_level >= 1)
    obj = Assembler(target.isa).assemble(assembly)
    exe = link([obj])
    stats, machine = run_executable(exe, params=params,
                                    trace_instructions=True)
    cfg, result = resolve_cfg(exe, target.isa, target=target)
    cfg, result = _promote_direct_calls(cfg, None, target, result)
    liveness = analyze_liveness(exe, target.isa, target=target,
                                cfg=cfg, result=result)
    live_findings, waived = liveness_findings(liveness, target)
    cell = classify_cell(name, target.name, exe, target, machine.itrace,
                         stats.instructions, faults=faults, seed=seed,
                         liveness=liveness)
    return cell, waived, live_findings + vuln_findings(cell)


def vuln_suite(targets: Iterable[str] = DEFAULT_TARGETS,
               programs: Iterable[str] | None = None, *,
               params: PipelineParams | None = None,
               lab: Lab | None = None,
               faults: int = 20, seed: int = 42,
               ) -> tuple[list[LintReport], dict]:
    """Liveness lint plus static fault classification over the suite.

    For every benchmark cell: run the backward liveness fixpoint
    (LIV001/LIV002 dead-code findings, ABI-convention sites waived),
    then statically classify exactly the fault sites the seeded PR-4
    campaign would inject (same planner PRNG stream) and summarize the
    register-file exposure (VULN002).  Returns ``(reports, results)``
    where ``results`` maps ``(program, target)`` to
    ``(CellVulnerability, waived)`` — the cross-ISA AVF numbers feed
    EXPERIMENTS.md and the ``--json`` report.
    """
    from ..experiments.runner import Lab
    from .liveness import analyze_liveness, liveness_findings
    from .vuln import classify_cell, vuln_findings

    lab = lab or Lab(params=params)
    names = list(programs) if programs is not None \
        else [bench.name for bench in SUITE]
    targets = tuple(targets)
    reports: list[LintReport] = []
    results: dict[tuple[str, str], tuple] = {}
    for name in names:
        for target_name in targets:
            target = get_target(target_name)
            exe = lab.executable(name, target_name)
            run = lab.run(name, target_name)
            trace = lab.trace(name, target_name)
            # Lab images keep only global symbols: recover the CFG with
            # value-analysis feedback and promote direct-call targets
            # to function roots before the liveness fixpoint.
            cfg, result = resolve_cfg(exe, target.isa, target=target)
            cfg, result = _promote_direct_calls(cfg, None, target,
                                                result)
            liveness = analyze_liveness(exe, target.isa, target=target,
                                        cfg=cfg, result=result)
            live_findings, waived = liveness_findings(liveness, target)
            cell = classify_cell(name, target_name, exe, target,
                                 trace.itrace, run.stats.instructions,
                                 faults=faults, seed=seed,
                                 liveness=liveness)
            results[(name, target_name)] = (cell, waived)
            reports.append(LintReport(
                program=name, target=target_name,
                findings=live_findings + vuln_findings(cell)))
    return reports, results


def tv_suite(programs: Iterable[str] | None = None, *,
             targets: tuple[str, ...] = DEFAULT_TARGETS,
             opt_level: int = 2,
             ) -> tuple[list[LintReport], dict]:
    """Translation-validate the benchmark suite (``repro lint --tv``).

    Runs both layers per program — symbolic equivalence of every
    optimizer pass application and IR-vs-binary observable-effect
    summaries on each target — and returns ``(reports, results)``
    where ``results`` maps the program name to its
    :class:`~repro.analysis.equiv.TvReport`.  Pass-level validation is
    a property of the IR pipeline, so (like the cross-ISA mode) each
    program gets one report whose target column carries the pair.
    """
    from .equiv import tv_program

    names = list(programs) if programs is not None \
        else [bench.name for bench in SUITE]
    pair = "+".join(targets)
    reports: list[LintReport] = []
    results: dict[str, object] = {}
    for name in names:
        bench = get_benchmark(name)
        report = tv_program(bench.source, name, targets=targets,
                            opt_level=opt_level)
        results[name] = report
        reports.append(LintReport(program=name, target=pair,
                                  findings=report.findings))
    return reports, results


def cross_isa_suite(programs: Iterable[str] | None = None, *,
                    targets: tuple[str, str] = ("d16", "dlxe"),
                    opt_level: int = 2) -> list[LintReport]:
    """Cross-ISA consistency check over the benchmark suite.

    One report per program; the report's target column carries both
    ISA names since each finding is a *pairwise* fact.
    """
    names = list(programs) if programs is not None \
        else [bench.name for bench in SUITE]
    pair = "+".join(targets)
    reports = []
    for name in names:
        bench = get_benchmark(name)
        report = check_cross_isa(bench.source, targets,
                                 opt_level=opt_level)
        reports.append(LintReport(program=name, target=pair,
                                  findings=report.findings))
    return reports

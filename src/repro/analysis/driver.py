"""Lint orchestration: run every analysis layer over compiled programs.

:func:`lint_program` takes one minic source through the full pipeline —
IR verification between optimizer passes, assembly-level encoding
checks, and binary-level lint of the linked image — and returns the
accumulated findings.  :func:`lint_suite` fans that out over benchmark
programs and targets, producing one :class:`LintReport` per cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..asm import AsmError, Assembler, link
from ..bench import SUITE, get_benchmark
from ..cc import TargetSpec, get_target
from ..cc.codegen import generate_assembly
from ..cc.irgen import lower_program
from ..cc.opt import PassVerificationError, optimize_module
from ..cc.parser import parse
from ..cc.runtime import RUNTIME_SOURCE
from .binlint import lint_assembly, lint_executable
from .findings import Finding, finding, has_errors
from .irverify import verify_module

#: The two headline machines, linted by default.
DEFAULT_TARGETS = ("d16", "dlxe")


@dataclass
class LintReport:
    """All findings for one (program, target) cell."""

    program: str
    target: str
    findings: list[Finding]

    @property
    def ok(self) -> bool:
        return not has_errors(self.findings)


def lint_program(source: str, target: TargetSpec | str, *,
                 opt_level: int = 2,
                 include_runtime: bool = True) -> list[Finding]:
    """Run all three lint layers over one program; returns findings.

    Layers run in dependency order and later layers are skipped once an
    earlier one reports errors (broken IR produces garbage assembly;
    unencodable assembly cannot be linked).
    """
    if isinstance(target, str):
        target = get_target(target)
    full_source = (RUNTIME_SOURCE + "\n" + source) if include_runtime \
        else source
    module = lower_program(parse(full_source))

    # Per-pass verification localizes errors to the offending pass;
    # the post-optimization sweep adds the warning-level rules (the
    # *initial* IR legitimately holds unreachable blocks that irgen
    # emits for simplify_cfg to collect — not worth reporting).
    findings: list[Finding] = []
    try:
        optimize_module(module, level=opt_level, verify=True)
    except PassVerificationError as exc:
        findings.extend(
            finding(f.rule, f.location,
                    f"after pass '{exc.pass_name}': {f.message}")
            for f in exc.findings)
        return findings
    findings.extend(verify_module(module))
    if has_errors(findings):
        return findings

    assembly = generate_assembly(module, target, schedule=opt_level >= 1)
    findings.extend(lint_assembly(assembly, target.isa))
    if has_errors(findings):
        return findings

    try:
        obj = Assembler(target.isa).assemble(assembly)
        exe = link([obj])
    except AsmError as exc:
        findings.append(finding(
            "ENC001", f"{target.isa.name}:line {exc.line_no}", str(exc)))
        return findings
    # The executable's symbol table only retains globals; rebuild the
    # full label map from the object file (single-object link: section
    # offsets translate directly to absolute addresses).
    symbols = {sym.name: exe.text_base + sym.value
               for sym in obj.symbols.values() if sym.section == "text"}
    findings.extend(lint_executable(exe, target.isa, symbols=symbols,
                                    target=target))
    return findings


def lint_suite(targets: Iterable[str] = DEFAULT_TARGETS,
               programs: Iterable[str] | None = None, *,
               opt_level: int = 2) -> list[LintReport]:
    """Lint benchmark programs on each target; one report per cell."""
    names = list(programs) if programs is not None \
        else [bench.name for bench in SUITE]
    reports = []
    for name in names:
        bench = get_benchmark(name)
        for target_name in targets:
            reports.append(LintReport(
                program=name, target=target_name,
                findings=lint_program(bench.source, target_name,
                                      opt_level=opt_level)))
    return reports

"""Whole-program static cycle bounds: loop bounds + interprocedural
[BCET, WCET] composition.

:mod:`repro.analysis.timing` proves per-block stall bounds but needs a
dynamic execution profile to bound a whole run.  This module removes
the profile: it bounds every run of a linked image *statically*, by

1. recovering the natural-loop forest of every function
   (:mod:`repro.analysis.loops`),
2. proving trip-count bounds for counted loops with a symbolic
   iteration analysis (induction values tracked relative to the loop
   header) combined with the interval facts of
   :mod:`repro.analysis.absint` for loop-entry values and invariant
   limits — argument registers are seeded *interprocedurally*, joining
   the proven intervals over every resolved call site, so a loop bound
   that lives in a caller's constant (``init(350)``) is still proven
   in the callee, and
3. composing per-function ``[BCET, WCET]`` cycle intervals bottom-up
   over the call graph — best case by collapsing loops to
   ``min-trips x shortest-iteration-path`` summaries (falling back to
   plain shortest path over the cyclic graph, which is sound because
   block costs are non-negative), worst case by collapsing proven
   loops innermost-first to ``bound x longest-iteration-path`` summary
   nodes and taking the longest path of the resulting DAG.

Everything unprovable degrades *soundly*: an unbounded or irreducible
loop, an unresolved call, or call-graph recursion makes the affected
WCETs ``None`` (infinity) — reported via LOOP001/TIM004, never
guessed — while the BCET side stays finite and valid.  The
whole-program interval therefore always brackets the simulated cycle
count; :func:`validate_wcet` checks exactly that (TIM003 on escape,
TIM005 when a finite interval is wider than a slack factor).

The cycle currency is the zero-wait-state count used everywhere else
in the repo: ``instructions + interlocks`` (paper Figure 3's pipeline;
memory latency is layered on separately by :mod:`repro.machine.perf`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import NamedTuple

from ..asm.objfile import Executable
from ..cc.target import TargetSpec
from ..isa import COND_NEGATE, COND_SWAP, Cond, Instr, IsaSpec, Op, to_s32
from ..isa.refs import ldc_pool_addr
from ..machine.pipeline import PipelineModel
from ..machine.stats import RunStats
from .absint import (REG_LINK, REG_RET, REG_SP, AnalysisResult, Interval,
                     SPRel, ValueDomain, _join_value, _signed,
                     analyze_executable, build_cfg, resolve_cfg, solve)
from .cfg import BasicBlock, BinaryCFG
from .findings import Finding, finding
from .loops import DomTree, Loop, LoopForest, find_loops
from .timing import StaticBounds, static_bounds

U32_MAX = (1 << 32) - 1
INT_MIN, INT_MAX = -(1 << 31), (1 << 31) - 1

#: Integer argument registers (r2-r5; target.py's calling convention).
#: Their proven intervals are propagated caller -> callee.
ARG_REGS = (2, 3, 4, 5)

#: Default TIM005 trigger: warn when (WCET - BCET) exceeds this many
#: times the observed cycle count.  Chosen so the benchmark suite's
#: finite intervals stay quiet; override with ``repro lint --wcet-slack``.
DEFAULT_SLACK = 8.0

#: Rounds of best-case value iteration for recursive call-graph SCCs.
#: Every iterate is a sound lower bound, so capping only costs precision.
_BCET_ROUNDS = 64


# ---------------------------------------------------------------------------
# Symbolic one-iteration analysis: values relative to the loop header.
# ---------------------------------------------------------------------------


class Sym(NamedTuple):
    """``value of location `reg` at loop-header entry, plus `off```.

    A location is a general-register index or an SP-relative stack
    slot ``("sp", offset)`` — D16's 16-register file routinely spills
    loop counters, so slots are first-class induction locations."""

    reg: object
    off: int


class Shrink(NamedTuple):
    """``header value of `reg`, divided (toward zero) by `factor```.

    Produced by ``div rd, rs, #c`` and logical ``shri`` on the
    location's own header value — the induction shape of digit loops
    (``n = n / 10``), which terminate in at most ``log_factor(2^32)``
    iterations from *any* 32-bit start."""

    reg: object
    factor: int


class CmpFact(NamedTuple):
    """A compare result: 1 iff ``lhs cond rhs`` (operands Sym or int)."""

    cond: Cond
    lhs: object
    rhs: object


def _sym_add(a: object, b: object, sub: bool) -> object:
    # Adding/subtracting zero preserves any tracked value — DLXe
    # canonicalizes register moves as ``add rd, rs, r0``, so this
    # identity is what keeps Shrink chains alive across moves.
    if b == 0 and a is not None:
        return a
    if a == 0 and not sub and b is not None:
        return b
    if isinstance(a, int) and isinstance(b, int):
        return ((a - b) if sub else (a + b)) & U32_MAX
    if isinstance(a, Sym) and isinstance(b, int):
        d = to_s32(b)
        return Sym(a.reg, a.off - d if sub else a.off + d)
    if isinstance(a, int) and isinstance(b, Sym) and not sub:
        return Sym(b.reg, b.off + to_s32(a))
    if isinstance(a, Sym) and isinstance(b, Sym) and sub \
            and a.reg == b.reg:
        return (a.off - b.off) & U32_MAX
    return None


def _sym_shrink(a: object, divisor: int) -> Shrink | None:
    """Division/shift of a tracked value by a constant ``divisor >= 2``."""
    if divisor < 2:
        return None
    if isinstance(a, Sym) and a.off == 0:
        return Shrink(a.reg, divisor)
    if isinstance(a, Shrink):
        return Shrink(a.reg, a.factor * divisor)
    return None


#: State key asserting "no untracked store since loop-header entry":
#: while present, a stack slot with no explicit entry still holds its
#: header value.  Untracked stores and calls remove it (and every
#: explicit slot), soundly forgetting all memory.
_MEMTOK = "mem"


class _Unknown:
    """Explicit slot TOP (a plain absence would read as 'unchanged')."""

    def __repr__(self) -> str:               # pragma: no cover - debug
        return "<unknown>"


_UNKNOWN = _Unknown()


class _IterDomain:
    """Abstract domain for one loop iteration: every register (and,
    lazily, every SP-relative stack slot) starts as its own
    header-entry symbol; affine updates, constant-divisor shrinks, and
    compare facts are tracked, everything else drops to TOP."""

    def __init__(self, cfg: BinaryCFG, preserved: frozenset[int],
                 header_consts: dict[int, int] | None = None):
        self.cfg = cfg
        self.zero_r0 = cfg.isa.name == "DLXe"
        self.preserved = preserved
        #: Registers with a proven constant value at the loop header
        #: (from the interval analysis).  ``Sym(r, 0)`` means "still
        #: the header value", so these resolve hoisted loop-invariant
        #: constants — e.g. the divisor register of a digit loop.
        self.header_consts = dict(header_consts or {})

    def entry_state(self) -> dict:
        state = {r: Sym(r, 0) for r in range(32)}
        if self.zero_r0:
            state[0] = 0
        state[_MEMTOK] = True
        return state

    def lookup(self, state: dict, key: object) -> object:
        """Value of a register or slot key, implicit defaults applied."""
        v = state.get(key)
        if v is _UNKNOWN:
            return None
        if v is None and isinstance(key, tuple) and _MEMTOK in state:
            return Sym(key, 0)        # untouched slot: header value
        return v

    def join(self, old: dict, new: dict, at: int) -> dict:
        out = {}
        for k in old.keys() | new.keys():
            if isinstance(k, tuple):  # slot: absence has meaning
                a = old.get(k, Sym(k, 0) if _MEMTOK in old else _UNKNOWN)
                b = new.get(k, Sym(k, 0) if _MEMTOK in new else _UNKNOWN)
                out[k] = a if (a is not _UNKNOWN and a == b) else _UNKNOWN
            elif k == _MEMTOK:
                if _MEMTOK in old and _MEMTOK in new:
                    out[k] = True
            elif k in old and k in new and old[k] == new[k]:
                out[k] = old[k]
        return out

    def widen(self, old: dict, joined: dict, at: int) -> dict:
        return joined                 # joins only ever drop knowledge

    def edge_state(self, block: BasicBlock, succ: int, out: dict) -> dict:
        return out

    def _get(self, state: dict, reg: int | None) -> object:
        if reg is None:
            return None
        if reg == 0 and self.zero_r0:
            return 0
        return state.get(reg)

    def _set(self, state: dict, reg: int,
             value: object) -> None:
        if reg == 0 and self.zero_r0:
            return
        if value is None:
            state.pop(reg, None)
        else:
            state[reg] = value

    def _kill_memory(self, state: dict) -> None:
        state.pop(_MEMTOK, None)
        for k in [k for k in state if isinstance(k, tuple)]:
            del state[k]

    def transfer(self, block: BasicBlock, state: dict) -> dict:
        state = dict(state)
        for pc, instr in block.instrs:
            self._step(pc, instr, state)
        if block.is_call:
            for reg in list(state):
                if isinstance(reg, int) and reg != REG_SP \
                        and reg not in self.preserved \
                        and not (reg == 0 and self.zero_r0):
                    del state[reg]
            self._kill_memory(state)  # the callee may write our frame
        return state

    def _const(self, value: object) -> int | None:
        """Signed constant behind a tracked value, if provable: a
        literal, or an unmodified register whose header value the
        interval analysis pinned to a constant."""
        if isinstance(value, int):
            return to_s32(value)
        if isinstance(value, Sym) and value.off == 0 \
                and isinstance(value.reg, int):
            return self.header_consts.get(value.reg)
        return None

    def _slot_key(self, state: dict,
                  instr: Instr) -> tuple[str, int] | None:
        """Slot key of a memory operand, when the base register holds
        an offset from the header-entry stack pointer."""
        base = self._get(state, instr.rs1)
        if isinstance(base, Sym) and base.reg == REG_SP:
            return ("sp", to_s32((base.off + instr.imm) & U32_MAX))
        return None

    def _step(self, pc: int, instr: Instr,
              state: dict) -> None:
        op = instr.op
        if op == Op.LD:
            key = self._slot_key(state, instr)
            value = self.lookup(state, key) if key is not None else None
            self._set(state, instr.rd, value)
            return
        if op in (Op.LDH, Op.LDHU, Op.LDB, Op.LDBU):
            self._set(state, instr.rd, None)
            return
        if op == Op.ST:
            key = self._slot_key(state, instr)
            if key is None:
                self._kill_memory(state)
                return
            for other in [k for k in state if isinstance(k, tuple)
                          and k != key and abs(k[1] - key[1]) < 4]:
                state[other] = _UNKNOWN     # word stores can overlap
            value = self._get(state, instr.rs2)
            state[key] = _UNKNOWN if value is None else value
            return
        if op in (Op.STH, Op.STB):
            # Sub-word stores are never spill traffic; don't bother
            # modelling their footprint, just forget all memory.
            self._kill_memory(state)
            return
        a = self._get(state, instr.rs1)
        b = self._get(state, instr.rs2)
        imm = instr.imm
        if op == Op.MV:
            self._set(state, instr.rd, a)
            return
        if op == Op.MVI:
            self._set(state, instr.rd, imm & U32_MAX)
            return
        if op == Op.MVHI:
            self._set(state, instr.rd, (imm << 16) & U32_MAX)
            return
        if op == Op.LDC:
            self._set(state, instr.rd,
                      self.cfg.read_word(ldc_pool_addr(pc, imm)))
            return
        if op in (Op.ADD, Op.ADDI, Op.SUB, Op.SUBI):
            rhs = (imm & U32_MAX) if op in (Op.ADDI, Op.SUBI) else b
            self._set(state, instr.rd,
                      _sym_add(a, rhs, op in (Op.SUB, Op.SUBI)))
            return
        if op == Op.DIV:
            divisor = self._const(b)
            value = None
            if divisor is not None and divisor >= 2:
                value = _sym_shrink(a, divisor)
            self._set(state, instr.rd, value)
            return
        if op in (Op.SHRI, Op.SHR):
            k = imm if op == Op.SHRI else self._const(b)
            value = None
            if isinstance(k, int) and 1 <= (k & 31):
                value = _sym_shrink(a, 1 << (k & 31))
            self._set(state, instr.rd, value)
            return
        if op in (Op.CMP, Op.CMPI):
            rhs = (imm & U32_MAX) if op == Op.CMPI else b
            value = None
            if a is not None and rhs is not None \
                    and not isinstance(a, CmpFact) \
                    and not isinstance(rhs, CmpFact):
                value = CmpFact(instr.cond, a, rhs)
            self._set(state, instr.rd, value)
            return
        if op == Op.TRAP:
            if imm not in (0, 1):         # getc / sbrk write r2
                self._set(state, REG_RET, None)
            return
        if op == Op.JL:
            self._set(state, REG_LINK, None)
            return
        info = instr.info
        for fld in info.writes:
            if info.reg_class.get(fld) == "g":
                self._set(state, getattr(instr, fld), None)


# ---------------------------------------------------------------------------
# Loop trip-count inference.
# ---------------------------------------------------------------------------


class Trips(NamedTuple):
    """Completed-iteration range proven for one exit test."""

    lo: int
    hi: int


@dataclass(frozen=True)
class LoopBound:
    """The proven (or refused) bound of one natural loop."""

    header: int
    depth: int
    max_header_execs: int | None          # None: not provable
    reason: str                           # evidence / refusal cause
    test_pc: int | None = None
    #: Sound lower bound on header executions per loop entry.  1 by
    #: definition of entering; > 1 only when the counted exit is the
    #: loop's sole way out (no break/return/halt inside).
    min_header_execs: int = 1

    @property
    def bounded(self) -> bool:
        return self.max_header_execs is not None


class _LoopCtx:
    """Answers the trip-count queries for one loop: per-iteration
    steps/shrink factors (agreeing across every latch), loop-entry
    value ranges, and invariant limit ranges — uniformly over register
    and stack-slot induction locations."""

    def __init__(self, domain: _IterDomain, latch_outs: list[dict],
                 vd: ValueDomain, init_state: dict,
                 slot_inits: dict, header_state: dict):
        self.domain = domain
        self.latch_outs = latch_outs
        self.vd = vd
        self.init_state = init_state
        self.slot_inits = slot_inits
        self.header_state = header_state

    def step_of(self, key: object) -> int | None:
        """Affine per-iteration step of a location, if every latch
        agrees; 0 means provably loop-invariant."""
        step = None
        for out in self.latch_outs:
            v = self.domain.lookup(out, key)
            if not (isinstance(v, Sym) and v.reg == key):
                return None
            if step is None:
                step = to_s32(v.off & U32_MAX)
            elif step != to_s32(v.off & U32_MAX):
                return None
        return step

    def shrink_of(self, key: object) -> int | None:
        """Constant shrink divisor of a location, if every latch
        shrinks it (the smallest factor bounds all of them)."""
        factor = None
        for out in self.latch_outs:
            v = self.domain.lookup(out, key)
            if not (isinstance(v, Shrink) and v.reg == key):
                return None
            factor = v.factor if factor is None \
                else min(factor, v.factor)
        return factor

    def init_range(self, key: object) -> tuple[int, int] | None:
        """Signed range of a location's value on loop entry."""
        if isinstance(key, tuple):
            iv = self.slot_inits.get(key)
        else:
            iv = self.vd._get(self.init_state, key)
        if isinstance(iv, Interval):
            return _signed(iv)
        return None

    def limit_range(self, value: object) -> tuple[int, int] | None:
        """Signed range of the comparison's limit operand, if provably
        loop-invariant (a constant, or an unchanging location whose
        value on loop entry is known)."""
        if isinstance(value, int):
            s = to_s32(value)
            return s, s
        if isinstance(value, Sym) and self.step_of(value.reg) == 0:
            if isinstance(value.reg, tuple):
                # Invariant slot: its header value every iteration is
                # its loop-entry value.
                sr = self.init_range(value.reg)
            else:
                hv = self.header_state.get(value.reg)
                sr = _signed(hv) if isinstance(hv, Interval) else None
            if sr is not None:
                lo, hi = sr[0] + value.off, sr[1] + value.off
                if INT_MIN <= lo and hi <= INT_MAX:
                    return lo, hi
        return None


def _shrink_trips(ind: object, limit: object, econd: Cond,
                  ctx: _LoopCtx) -> Trips | None:
    """Bound digit-style loops: the induction is divided (or shifted)
    by a constant factor >= 2 every iteration and the loop exits when
    it reaches/crosses zero.  Truncating division moves any 32-bit
    value to 0 in at most ``ceil(log_factor(2^32))`` steps, so the
    bound holds with no knowledge of the start value at all (a known
    interval tightens it)."""
    if isinstance(ind, Sym) and ind.off == 0:
        reg = ind.reg
    elif isinstance(ind, Shrink):
        reg = ind.reg
    else:
        return None
    factor = ctx.shrink_of(reg)
    if factor is None or factor < 2:
        return None
    if not (isinstance(limit, int) and to_s32(limit) == 0):
        return None
    if econd not in (Cond.LE, Cond.EQ):   # exit when v <= 0 / v == 0
        return None
    magnitude = 1 << 32                   # any u32 (or |s32|) start
    sr = ctx.init_range(reg)
    if sr is not None:
        magnitude = max(abs(sr[0]), abs(sr[1])) + 1
    trips, ceiling = 0, 1
    while ceiling < magnitude:
        ceiling *= factor
        trips += 1
    return Trips(0, trips)


def _counted_trips(ind: object, limit: object, econd: Cond,
                  ctx: _LoopCtx) -> Trips | None:
    """[min, max] completed iterations before the exit test fires.

    ``ind`` must be the induction side (``Sym`` with a nonzero affine
    step, or a shrink chain); ``limit`` the invariant side; ``econd``
    the condition under which the loop exits.  All reasoning is done in
    exact integer arithmetic with explicit no-overflow checks, so the
    bound holds for the wrapping 32-bit machine.
    """
    shrink = _shrink_trips(ind, limit, econd, ctx)
    if shrink is not None:
        return shrink
    if not isinstance(ind, Sym):
        return None
    step = ctx.step_of(ind.reg)
    if not step:
        return None
    lim = ctx.limit_range(limit)
    if lim is None:
        return None
    llo, lhi = lim
    sr = ctx.init_range(ind.reg)
    if sr is None:
        return None
    a, b = sr[0] + ind.off, sr[1] + ind.off   # test-point value range
    if a < INT_MIN or b > INT_MAX:
        return None

    if econd in (Cond.LTU, Cond.LEU, Cond.GTU, Cond.GEU):
        # Unsigned orderings coincide with signed ones while every value
        # stays non-negative; descending loops additionally must not be
        # able to step over the [0, limit] band into the huge wrapped
        # values.
        if a < 0 or llo < 0:
            return None
        if step < 0 and llo < -step - 1:
            return None
        econd = {Cond.LTU: Cond.LT, Cond.LEU: Cond.LE,
                 Cond.GTU: Cond.GT, Cond.GEU: Cond.GE}[econd]

    if step < 0:                        # mirror into the ascending case
        a, b = -b, -a
        llo, lhi = -lhi, -llo
        step = -step
        econd = COND_SWAP[econd]

    if econd in (Cond.GE, Cond.GT):
        adj = 1 if econd == Cond.GT else 0
        target_hi, target_lo = lhi + adj, llo + adj
        if max(b, target_hi - 1 + step) > INT_MAX:
            return None               # could wrap before the test fires
        hi = max(0, -((a - target_hi) // step))     # ceil((t-a)/step)
        lo = max(0, -((b - target_lo) // step))
        return Trips(lo, hi)
    if econd in (Cond.LE, Cond.LT):
        # Marching away from the exit: bounded only if already true.
        if b <= llo - (1 if econd == Cond.LT else 0):
            return Trips(0, 0)
        return None
    if econd == Cond.EQ:
        if step == 1 and b <= llo:
            return Trips(max(0, llo - b), lhi - a)
        if a == b and llo == lhi and llo >= a and (llo - a) % step == 0:
            exact = (llo - a) // step
            return Trips(exact, exact)
        return None
    if econd == Cond.NE:
        # The induction changes every iteration, so it can sit on the
        # limit for at most one test.
        return Trips(0, 1)
    return None


def _is_terminal(blk: BasicBlock, blocks: dict[int, BasicBlock]) -> bool:
    """True when execution can end (or escape the function) at ``blk``."""
    return (blk.is_halt or blk.is_return or not blk.succs
            or any(s not in blocks for s in blk.succs))


def infer_loop_bound(cfg: BinaryCFG, blocks: dict[int, BasicBlock],
                     loop: Loop, dom: DomTree, vd: ValueDomain,
                     func_states: dict[int, dict]) -> LoopBound:
    """Prove header-execution bounds for one natural loop."""
    for addr in sorted(loop.body):
        blk = blocks[addr]
        if blk.indirect and not blk.is_return:
            return LoopBound(loop.header, loop.depth, None,
                             f"register-indirect jump at "
                             f"{blk.terminator[0]:#x} inside the loop")

    # One symbolic iteration: cut the back edges and solve to fixpoint.
    cut = {addr: replace(blocks[addr], succs=tuple(
        s for s in blocks[addr].succs
        if s in loop.body and s != loop.header))
        for addr in loop.body}
    header_consts = {
        r: to_s32(v.lo)
        for r, v in func_states.get(loop.header, {}).items()
        if isinstance(r, int) and isinstance(v, Interval) and v.is_const}
    domain = _IterDomain(cfg, vd.preserved, header_consts)
    in_states = solve(cut, loop.header, domain, widen_after=2)

    # Per-latch end-of-iteration states: a location is an induction
    # when every latch leaves it a tracked function of its own
    # header-entry value (_LoopCtx.step_of / shrink_of query these).
    latch_outs: list[dict] = []
    for latch in loop.latches:
        st = in_states.get(latch)
        if st is None:
            return LoopBound(loop.header, loop.depth, None,
                             f"latch {latch:#x} unreachable in the "
                             f"iteration analysis")
        latch_outs.append(domain.transfer(cut[latch], st))

    # Loop-entry value ranges: join the states along entry edges only.
    # Stack-slot entry values come from replaying each entry block's
    # SP-relative word stores against its abstract register state
    # (compilers emit the spill of a counter's initial value right
    # before the loop); slot offsets are keyed relative to the
    # header's stack pointer so they match the iteration domain.
    sp_at_header = func_states.get(loop.header, {}).get(REG_SP)
    sp_delta = sp_at_header.delta \
        if isinstance(sp_at_header, SPRel) else None
    init_state: dict | None = None
    slot_inits: dict | None = None
    for p in dom.preds.get(loop.header, ()):
        if p in loop.body:
            continue
        st = func_states.get(p)
        state = dict(st) if st is not None else vd.unknown_state()
        slots: dict = {}
        for pc, instr in blocks[p].instrs:
            if instr.op in (Op.ST, Op.STH, Op.STB):
                base = vd._get(state, instr.rs1)
                if instr.op == Op.ST and isinstance(base, SPRel) \
                        and sp_delta is not None:
                    key = ("sp", base.delta + instr.imm - sp_delta)
                    for other in [k for k in slots if k != key
                                  and abs(k[1] - key[1]) < 4]:
                        del slots[other]
                    value = vd._get(state, instr.rs2)
                    if isinstance(value, Interval):
                        slots[key] = value
                    else:
                        slots.pop(key, None)
                else:
                    slots.clear()     # untracked or sub-word store
            vd._step(pc, instr, state, None)
        if blocks[p].is_call:
            slots.clear()             # the callee may write our frame
            vd._call_clobber(state, blocks[p], None)
        edge = vd.edge_state(blocks[p], loop.header, state)
        init_state = edge if init_state is None \
            else vd.join(init_state, edge, loop.header)
        slot_inits = slots if slot_inits is None else {
            k: v for k in slot_inits.keys() & slots.keys()
            if isinstance(v := _join_value(slot_inits[k], slots[k]),
                          Interval)}
    if loop.header == dom.entry:
        e = vd.entry_state()
        init_state = e if init_state is None \
            else vd.join(init_state, e, loop.header)
        slot_inits = {}               # nothing known about entry memory
    if init_state is None:
        init_state = vd.unknown_state()
    ctx = _LoopCtx(domain, latch_outs, vd, init_state, slot_inits or {},
                   func_states.get(loop.header, {}))

    # A minimum above the trivial 1 requires that the counted test is
    # the only way out: a break, return, halt, or escape inside the
    # body can cut a run short.
    sole_exit_ok = len(loop.exits) <= 1 and not any(
        _is_terminal(blocks[addr], blocks) for addr in loop.body)

    # Every exit test that guards all latches is a candidate proof.
    best: Trips | None = None
    best_pc: int | None = None
    refusals: list[str] = []
    for u, s in loop.exits:
        blk = blocks[u]
        pc, term = blk.terminator
        if term.op not in (Op.BZ, Op.BNZ):
            continue
        succs = blk.succs
        if len(succs) != 2 or succs[0] == succs[1]:
            continue
        if succs[0] not in loop.body and succs[1] not in loop.body:
            continue
        if not all(dom.dominates(u, lt) for lt in loop.latches):
            refusals.append(f"test at {pc:#x} does not guard every "
                            f"iteration")
            continue
        st = in_states.get(u)
        if st is None:
            continue
        out = domain.transfer(cut[u], st)
        fact = domain._get(out, term.rs1)
        if not isinstance(fact, CmpFact):
            refusals.append(f"test at {pc:#x} is not a tracked compare")
            continue
        exit_via_taken = s == succs[1]
        exit_on_true = (term.op == Op.BNZ) == exit_via_taken
        econd = fact.cond if exit_on_true else COND_NEGATE[fact.cond]
        for ind, limit, cond in ((fact.lhs, fact.rhs, econd),
                                 (fact.rhs, fact.lhs, COND_SWAP[econd])):
            trips = _counted_trips(ind, limit, cond, ctx)
            if trips is None:
                continue
            if best is None or trips.hi + 1 < best.hi + 1:
                best, best_pc = trips, pc
    if best is not None:
        min_execs = best.lo + 1 if sole_exit_ok else 1
        return LoopBound(loop.header, loop.depth, best.hi + 1,
                         f"counted exit at {best_pc:#x}: "
                         f"[{min_execs}, {best.hi + 1}] header "
                         f"execution(s) per entry",
                         test_pc=best_pc, min_header_execs=min_execs)
    detail = refusals[0] if refusals else \
        "no exit compares an affine induction against an invariant limit"
    return LoopBound(loop.header, loop.depth, None, detail)


# ---------------------------------------------------------------------------
# Per-function interval composition.
# ---------------------------------------------------------------------------


@dataclass
class FunctionTiming:
    """The static cycle interval of one function (callees included)."""

    name: str
    start: int
    n_blocks: int
    bcet: int = 0
    wcet: int | None = None
    loops: tuple[LoopBound, ...] = ()
    irreducible: tuple[tuple[int, int], ...] = ()
    blockers: tuple[str, ...] = ()        # why wcet is None
    recursive: bool = False
    callees: tuple[int, ...] = ()         # resolved callee starts

    @property
    def n_loops(self) -> int:
        return len(self.loops)

    @property
    def bounded_loops(self) -> int:
        return sum(1 for lb in self.loops if lb.bounded)

    def to_record(self) -> dict:
        return {"name": self.name, "start": self.start,
                "blocks": self.n_blocks, "bcet": self.bcet,
                "wcet": self.wcet, "loops": self.n_loops,
                "bounded_loops": self.bounded_loops,
                "recursive": self.recursive,
                "blockers": list(self.blockers),
                "loop_bounds": [
                    {"header": lb.header, "depth": lb.depth,
                     "min": lb.min_header_execs,
                     "max": lb.max_header_execs, "reason": lb.reason}
                    for lb in self.loops]}


class _FuncInfo(NamedTuple):
    timing: FunctionTiming
    blocks: dict[int, BasicBlock]
    forest: LoopForest
    call_of: dict[int, int | None]        # call block -> callee start


def _kahn(succs: dict[int, set]) -> list[int] | None:
    """Topological order of a successor map, or None on a cycle."""
    indeg = {n: 0 for n in succs}
    for ss in succs.values():
        for s in ss:
            if s in indeg:
                indeg[s] += 1
    ready = sorted((n for n, d in indeg.items() if d == 0), reverse=True)
    order: list[int] = []
    while ready:
        n = ready.pop()
        order.append(n)
        for s in succs[n]:
            if s in indeg:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
    return order if len(order) == len(indeg) else None


def _block_costs(info: _FuncInfo, bounds: StaticBounds, lo: bool,
                 callee_cost: dict[int, int | None]) -> dict[int, int]:
    """Per-block cycle cost, callee interval folded into call blocks.

    For the lower bound an unknown callee contributes 0 (sound); the
    upper-bound path never reaches here with an unknown callee (the
    blocker machinery refuses first).
    """
    costs = {}
    for addr in info.blocks:
        bb = bounds.blocks[addr]
        cost = bb.cycles_lo if lo else bb.cycles_hi
        callee = info.call_of.get(addr)
        if callee is not None:
            extra = callee_cost.get(callee)
            cost += extra if extra is not None else 0
        costs[addr] = cost
    return costs


def _func_bcet(info: _FuncInfo, costs: dict[int, int]) -> int:
    """Shortest entry-to-end path cost: a sound best case even through
    cycles (block costs are non-negative, so loops never reduce it)."""
    blocks = info.blocks
    entry = info.timing.start
    if entry not in blocks:
        return 0
    dist = {entry: costs[entry]}
    heap = [(dist[entry], entry)]
    while heap:
        d, n = heapq.heappop(heap)
        if d > dist[n]:
            continue
        blk = blocks[n]
        if _is_terminal(blk, blocks):
            return d                  # first end popped is the minimum
        for s in blk.succs:
            nd = d + costs[s]
            if nd < dist.get(s, nd + 1):
                dist[s] = nd
                heapq.heappush(heap, (nd, s))
    return dist[entry]                # no terminating path found


def _func_bcet_collapsed(info: _FuncInfo,
                         costs: dict[int, int]) -> int | None:
    """Best case with loops collapsed to ``min-trips x shortest
    iteration``: every entry into a proven counted loop must execute
    its header at least ``min_header_execs`` times, and each header
    visit starts a segment that reaches a latch, an exit, or a
    terminal block — so charging ``min x (shortest such segment)`` is
    a sound, usually far tighter, floor than skipping the loop."""
    forest = info.forest
    blocks = info.blocks
    mins = {lb.header: lb.min_header_execs for lb in info.timing.loops}
    reach = set(forest.dom.rpo)
    node_cost = {a: costs[a] for a in reach}
    node_succs = {a: {s for s in blocks[a].succs if s in reach}
                  for a in reach}
    end_nodes = {a for a in reach if _is_terminal(blocks[a], blocks)}
    alias = {a: a for a in reach}

    for loop in forest.innermost_first():
        execs = mins.get(loop.header, 1)
        members = {alias[b] for b in loop.body if b in alias}
        head = alias.get(loop.header)
        if head is None or head not in members:
            return None
        sub = {m: [s for s in node_succs[m]
                   if s in members and s != head] for m in members}
        topo = _kahn(sub)
        if topo is None:
            return None               # leftover cycle: not reducible
        dist = {head: node_cost[head]}
        for n in topo:
            if n not in dist:
                continue
            for s in sub[n]:
                cand = dist[n] + node_cost[s]
                if cand < dist.get(s, cand + 1):
                    dist[s] = cand
        # Segment ends: latches (full iterations), exit sources, and
        # any terminal inside the body (break/return/halt cuts short).
        cands = {alias[lt] for lt in loop.latches if lt in alias}
        cands |= {alias[u] for u, _s in loop.exits if u in alias}
        cands |= members & end_nodes
        reached = [dist[c] for c in cands if c in dist]
        iter_min = min(reached) if reached else dist[head]
        externals = set()
        for m in members:
            externals |= {s for s in node_succs[m] if s not in members}
        contains_end = bool(members & end_nodes)
        for m in members:
            del node_succs[m]
            del node_cost[m]
            end_nodes.discard(m)
        node_cost[head] = execs * iter_min
        node_succs[head] = externals
        if contains_end:
            end_nodes.add(head)
        for b in loop.body:
            alias[b] = head

    start = alias.get(info.timing.start)
    if start is None or start not in node_cost:
        return None
    topo = _kahn(node_succs)
    if topo is None:
        return None
    dist = {start: node_cost[start]}
    for n in topo:
        if n not in dist:
            continue
        for s in node_succs[n]:
            if s not in node_cost:
                continue
            cand = dist[n] + node_cost[s]
            if cand < dist.get(s, cand + 1):
                dist[s] = cand
    ends = [dist[n] for n in end_nodes if n in dist]
    return min(ends) if ends else dist[start]


def _best_case(info: _FuncInfo, costs: dict[int, int]) -> int:
    plain = _func_bcet(info, costs)
    collapsed = _func_bcet_collapsed(info, costs)
    return plain if collapsed is None else max(plain, collapsed)


def _func_wcet(info: _FuncInfo, costs: dict[int, int],
               loop_extra: dict[int, int] | None = None) -> int | None:
    """Longest-path worst case after collapsing proven loops
    innermost-first into ``bound x longest-iteration`` nodes.

    ``loop_extra`` charges an additional one-off cost per collapsed
    loop (keyed by header): the I-cache composition uses it to bill
    persistent fetch sites once per loop entry rather than once per
    iteration.
    """
    forest = info.forest
    proven = {lb.header: lb.max_header_execs
              for lb in info.timing.loops if lb.bounded}
    reach = set(forest.dom.rpo)
    node_cost = {a: costs[a] for a in reach}
    node_succs = {a: {s for s in info.blocks[a].succs if s in reach}
                  for a in reach}
    alias = {a: a for a in reach}

    for loop in forest.innermost_first():
        bound = proven.get(loop.header)
        if bound is None:
            return None
        members = {alias[b] for b in loop.body if b in alias}
        head = alias.get(loop.header)
        if head is None or head not in members:
            return None
        sub = {m: [s for s in node_succs[m]
                   if s in members and s != head] for m in members}
        topo = _kahn(sub)
        if topo is None:
            return None               # leftover cycle: not reducible
        val = {head: node_cost[head]}
        longest = val[head]
        for n in topo:
            if n not in val:
                continue
            for s in sub[n]:
                cand = val[n] + node_cost[s]
                if cand > val.get(s, cand - 1):
                    val[s] = cand
            if val[n] > longest:
                longest = val[n]
        externals = set()
        for m in members:
            externals |= {s for s in node_succs[m] if s not in members}
        for m in members:
            del node_succs[m]
            del node_cost[m]
        node_cost[head] = bound * longest
        if loop_extra is not None:
            node_cost[head] += loop_extra.get(loop.header, 0)
        node_succs[head] = externals
        for b in loop.body:
            alias[b] = head

    start = alias.get(info.timing.start)
    if start is None:
        return None
    topo = _kahn(node_succs)
    if topo is None:
        return None
    val = {start: node_cost[start]}
    best = val[start]
    for n in topo:
        if n not in val:
            continue
        for s in node_succs[n]:
            if s not in node_cost:
                continue
            cand = val[n] + node_cost[s]
            if cand > val.get(s, cand - 1):
                val[s] = cand
        if val[n] > best:
            best = val[n]
    return best


def _call_sccs(nodes: set[int],
               edges: dict[int, set[int]]) -> list[list[int]]:
    """Tarjan SCCs, emitted callees-first (reverse topological)."""
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    out: list[list[int]] = []
    counter = 0
    for root in sorted(nodes):
        if root in index:
            continue
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            n, it = work[-1]
            advanced = False
            for s in it:
                if s not in nodes:
                    continue
                if s not in index:
                    index[s] = low[s] = counter
                    counter += 1
                    stack.append(s)
                    on_stack.add(s)
                    work.append((s, iter(sorted(edges.get(s, ())))))
                    advanced = True
                    break
                if s in on_stack:
                    low[n] = min(low[n], index[s])
            if not advanced:
                work.pop()
                if work:
                    low[work[-1][0]] = min(low[work[-1][0]], low[n])
                if low[n] == index[n]:
                    comp = []
                    while True:
                        m = stack.pop()
                        on_stack.discard(m)
                        comp.append(m)
                        if m == n:
                            break
                    out.append(sorted(comp))
    return out


# ---------------------------------------------------------------------------
# Whole-program analysis.
# ---------------------------------------------------------------------------


@dataclass
class ProgramWcet:
    """The statically composed cycle interval of one linked image."""

    cfg: BinaryCFG
    bounds: StaticBounds
    functions: dict[int, FunctionTiming]      # by function start
    entry_func: int | None
    bcet: int
    wcet: int | None                          # None: unbounded
    findings: list[Finding] = field(default_factory=list)
    #: Per-function structural info (blocks, loop forest, call sites),
    #: keyed by function start -- the substrate other interprocedural
    #: analyses (e.g. the I-cache classifier) compose over.
    infos: dict = field(default_factory=dict, repr=False)

    @property
    def n_loops(self) -> int:
        return sum(f.n_loops for f in self.functions.values())

    @property
    def bounded_loops(self) -> int:
        return sum(f.bounded_loops for f in self.functions.values())

    def function_records(self) -> list[dict[str, object]]:
        return [self.functions[start].to_record()
                for start in sorted(self.functions)]


def _promote_direct_calls(cfg: BinaryCFG,
                          symbols: dict[str, int] | None,
                          target: TargetSpec | None,
                          result: AnalysisResult,
                          ) -> tuple[BinaryCFG, AnalysisResult]:
    """Make every direct (``jld``) call target a function root.

    A Lab executable's symbol table only retains globals, so on DLXe —
    whose calls are all direct — the recovered CFG would otherwise fold
    the whole image into the entry function and the interprocedural
    composer would see no call graph at all.  (D16 routes calls through
    pool-loaded registers; :func:`resolve_cfg` already promotes those.)
    """
    extra: dict[int, str] = {}
    for block in cfg.blocks.values():
        if not block.is_call:
            continue
        _pc, term = block.terminator
        if term.op != Op.JLD:
            continue
        tgt = term.imm
        fo = cfg.func_of(tgt)
        if fo is None or fo[0] != tgt:
            extra[tgt] = f"fn_{tgt:x}"
    if not extra:
        return cfg, result
    extra.update({addr: name for addr, name in cfg.funcs})
    cfg = build_cfg(cfg.exe, cfg.isa, symbols=symbols, extra_funcs=extra)
    result = analyze_executable(cfg.exe, cfg.isa, symbols=symbols,
                                target=target, cfg=cfg)
    return cfg, result


def _call_site_args(vd: ValueDomain, blocks: dict[int, BasicBlock],
                    func_states: dict[int, dict],
                    call_of: dict[int, int | None],
                    ) -> dict[int, dict[int, Interval]]:
    """Proven argument-register intervals at each resolved call site."""
    out: dict[int, dict[int, Interval]] = {}
    for addr, callee in call_of.items():
        if callee is None:
            continue
        st = func_states.get(addr)
        state = dict(st) if st is not None else vd.unknown_state()
        for pc, instr in blocks[addr].instrs[:-1]:
            vd._step(pc, instr, state, None)
        args = {r: v for r in ARG_REGS
                if isinstance(v := vd._get(state, r), Interval)}
        prev = out.get(callee)
        out[callee] = args if prev is None else _join_args(prev, args)
    return out


def _join_args(a: dict[int, Interval],
               b: dict[int, Interval]) -> dict[int, Interval]:
    joined = {}
    for r in a.keys() & b.keys():
        v = _join_value(a[r], b[r])
        if isinstance(v, Interval):
            joined[r] = v
    return joined


def analyze_wcet(exe_or_cfg: Executable | BinaryCFG,
                 isa: IsaSpec | None = None, *,
                 model: PipelineModel | None = None,
                 symbols: dict[str, int] | None = None,
                 target: TargetSpec | None = None,
                 result: AnalysisResult | None = None) -> ProgramWcet:
    """Compose the whole-program static cycle interval of an image.

    Accepts either an executable (CFG recovered with value-analysis
    feedback, like :func:`~repro.analysis.timing.check_timing`) or a
    pre-built :class:`BinaryCFG` plus its :class:`AnalysisResult`.
    """
    if isinstance(exe_or_cfg, BinaryCFG):
        cfg = exe_or_cfg
        if result is None:
            result = analyze_executable(cfg.exe, cfg.isa, target=target,
                                        cfg=cfg)
    else:
        if isa is None:
            raise ValueError("isa is required with a raw executable")
        cfg, result = resolve_cfg(exe_or_cfg, isa, symbols=symbols,
                                  target=target)
    cfg, result = _promote_direct_calls(cfg, symbols, target, result)
    model = model or PipelineModel()
    bounds = static_bounds(cfg, model=model)
    preserved = frozenset(target.callee_saved_int) if target is not None \
        else frozenset(range(10, 14))
    gp_value = cfg.exe.symbols.get("__gp")

    call_targets: dict[int, int | None] = {}
    for summary in result.functions.values():
        for pc, tgt in summary.call_sites:
            call_targets[pc] = tgt

    # ---- structural pass: blocks, loop forests, resolved call sites.
    findings: list[Finding] = []
    infos: dict[int, _FuncInfo] = {}
    structural: dict[int, list[str]] = {}
    any_unresolved = False
    for fstart, name in cfg.funcs:
        blocks = {b.start: b for b in cfg.function_blocks(fstart)}
        if fstart not in blocks:
            continue
        forest = find_loops(blocks, fstart)
        blockers: list[str] = []
        if forest.irreducible:
            edges = ", ".join(f"{u:#x}->{v:#x}"
                              for u, v in forest.irreducible)
            blockers.append("irreducible control flow")
            findings.append(finding(
                "LOOP001", cfg.describe(fstart),
                f"irreducible region in '{name}': retreating edge(s) "
                f"{edges} whose target does not dominate the source"))
        for blk in blocks.values():
            if blk.indirect and not blk.is_return:
                blockers.append(
                    f"indirect jump at {blk.terminator[0]:#x}")
            if any(s not in blocks for s in blk.succs):
                blockers.append(
                    f"control flow leaves the function span at "
                    f"{blk.terminator[0]:#x}")
        call_of: dict[int, int | None] = {}
        callees: set[int] = set()
        for blk in blocks.values():
            if not blk.is_call:
                continue
            pc = blk.terminator[0]
            tgt = call_targets.get(pc)
            callee = None
            if tgt is None:
                blockers.append(f"unresolved call at {pc:#x}")
            else:
                fo = cfg.func_of(tgt)
                if fo is not None and fo[0] == tgt and tgt in cfg.blocks:
                    callee = tgt
                else:
                    blockers.append(
                        f"call at {pc:#x} targets mid-function "
                        f"{tgt:#x}")
            if callee is None:
                any_unresolved = True
            else:
                callees.add(callee)
            call_of[blk.start] = callee
        timing = FunctionTiming(
            name=name, start=fstart, n_blocks=len(blocks),
            irreducible=forest.irreducible,
            callees=tuple(sorted(callees)))
        infos[fstart] = _FuncInfo(timing=timing, blocks=blocks,
                                  forest=forest, call_of=call_of)
        structural[fstart] = blockers

    nodes = set(infos)
    edges = {f: {c for c in info.timing.callees if c in infos}
             for f, info in infos.items()}
    sccs = _call_sccs(nodes, edges)
    in_cycle = {f for scc in sccs for f in scc
                if len(scc) > 1 or scc[0] in edges[scc[0]]}
    entry = cfg.exe.entry
    fo = cfg.func_of(entry)
    entry_func = fo[0] if fo is not None and fo[0] == entry \
        and fo[0] in infos else None

    # ---- value pass, callers first: solve each function with its
    # argument registers seeded from every resolved call site, harvest
    # the call-site argument intervals for its callees, and prove loop
    # bounds from the seeded states.  An unresolved call anywhere means
    # the caller set of *no* function is fully known, so seeding is
    # disabled outright rather than made unsound.
    arg_seeds: dict[int, dict[int, Interval] | None] = {}
    for scc in reversed(sccs):             # condensation, callers first
        for fstart in scc:
            info = infos[fstart]
            name = info.timing.name
            seed = arg_seeds.get(fstart)
            if (any_unresolved or fstart in in_cycle
                    or fstart == entry_func or seed is None):
                seed = {}
            vd = ValueDomain(cfg, preserved=preserved,
                             gp_value=None if name == "_start"
                             else gp_value,
                             entry_args=seed)
            func_states = solve(info.blocks, fstart, vd)
            for callee, args in _call_site_args(
                    vd, info.blocks, func_states, info.call_of).items():
                prev = arg_seeds.get(callee)
                arg_seeds[callee] = args if prev is None \
                    else _join_args(prev, args)

            blockers = list(structural[fstart])
            loop_bounds: list[LoopBound] = []
            for loop in info.forest.innermost_first():
                lb = infer_loop_bound(cfg, info.blocks, loop,
                                      info.forest.dom, vd, func_states)
                loop_bounds.append(lb)
                if not lb.bounded:
                    blockers.append(f"unbounded loop at {lb.header:#x}")
                    findings.append(finding(
                        "LOOP001", cfg.describe(lb.header),
                        f"loop bound not provable: {lb.reason}"))
            infos[fstart] = info._replace(timing=replace(
                info.timing, loops=tuple(loop_bounds),
                blockers=tuple(blockers)))

    # ---- composition, bottom-up over call-graph SCCs.
    bcet_of: dict[int, int | None] = {}
    wcet_of: dict[int, int | None] = {}
    for scc in sccs:
        recursive = scc[0] in in_cycle
        if recursive:
            names = ", ".join(f"'{infos[f].timing.name}'" for f in scc)
            findings.append(finding(
                "TIM004", cfg.describe(scc[0]),
                f"call-graph recursion through {names}: worst-case "
                f"composition refused (best case stays valid)"))
        for f in scc:
            bcet_of[f] = 0
        for _round in range(_BCET_ROUNDS if recursive else 1):
            changed = False
            for f in scc:
                costs = _block_costs(infos[f], bounds, lo=True,
                                     callee_cost=bcet_of)
                value = _best_case(infos[f], costs)
                if value != bcet_of[f]:
                    bcet_of[f] = value
                    changed = True
            if not changed:
                break
        for f in scc:
            info = infos[f]
            timing = info.timing
            blockers = list(timing.blockers)
            if recursive:
                blockers.append("recursive")
            for c in timing.callees:
                if wcet_of.get(c) is None and c not in scc:
                    blockers.append(
                        f"callee '{infos[c].timing.name}' has no "
                        f"finite worst case")
            wcet = None
            if not blockers:
                costs = _block_costs(info, bounds, lo=False,
                                     callee_cost=wcet_of)
                wcet = _func_wcet(info, costs)
                if wcet is None:
                    blockers.append("loop collapse failed")
            wcet_of[f] = wcet
            infos[f] = info._replace(timing=replace(
                timing, bcet=bcet_of[f], wcet=wcet,
                blockers=tuple(blockers), recursive=recursive))

    functions = {f: info.timing for f, info in infos.items()}
    if entry_func is not None:
        bcet = functions[entry_func].bcet
        wcet = functions[entry_func].wcet
    else:
        bcet, wcet = 0, None
    findings.sort(key=lambda f: (f.location, f.rule))
    return ProgramWcet(cfg=cfg, bounds=bounds, functions=functions,
                       entry_func=entry_func, bcet=bcet, wcet=wcet,
                       findings=findings, infos=infos)


# ---------------------------------------------------------------------------
# Validation against a simulated run.
# ---------------------------------------------------------------------------


@dataclass
class WcetValidation:
    """A simulated run checked against the whole-program interval."""

    program: ProgramWcet
    observed_cycles: int                      # instructions + interlocks
    findings: list[Finding] = field(default_factory=list)

    @property
    def bcet(self) -> int:
        return self.program.bcet

    @property
    def wcet(self) -> int | None:
        return self.program.wcet

    @property
    def bracketed(self) -> bool:
        return all(f.rule != "TIM003" for f in self.findings)

    @property
    def bcet_ratio(self) -> float:
        """Static best case as a fraction of the observed cycles."""
        if not self.observed_cycles:
            return 0.0
        return self.program.bcet / self.observed_cycles


def validate_wcet(program: ProgramWcet, stats: RunStats, *,
                  slack: float | None = DEFAULT_SLACK) -> WcetValidation:
    """Check that a run's cycle count lands inside the static interval.

    TIM003 (error) fires when the observed zero-wait-state cycles
    escape ``[BCET, WCET]``; TIM005 (warning) when the interval is
    finite but wider than ``slack`` times the observed count.  The
    program-level LOOP001/TIM004 findings are carried through so one
    report tells the whole story.
    """
    observed = stats.instructions + stats.interlocks
    findings = list(program.findings)
    where = f"text:{program.cfg.base:#x}"
    if observed < program.bcet:
        findings.append(finding(
            "TIM003", where,
            f"simulated cycles {observed} fall below the static "
            f"whole-program best case {program.bcet}"))
    if program.wcet is not None and observed > program.wcet:
        findings.append(finding(
            "TIM003", where,
            f"simulated cycles {observed} exceed the static "
            f"whole-program worst case {program.wcet}"))
    if slack and program.wcet is not None and observed \
            and program.wcet - program.bcet > slack * observed:
        findings.append(finding(
            "TIM005", where,
            f"static interval [{program.bcet}, {program.wcet}] is "
            f"wider than {slack:g}x the observed {observed} cycles"))
    return WcetValidation(program=program, observed_cycles=observed,
                          findings=findings)


def check_wcet(exe: Executable, isa: IsaSpec, stats: RunStats, *,
               model: PipelineModel | None = None,
               symbols: dict[str, int] | None = None,
               target: TargetSpec | None = None,
               slack: float | None = DEFAULT_SLACK) -> WcetValidation:
    """One-call harness: whole-program interval + run validation."""
    program = analyze_wcet(exe, isa, model=model, symbols=symbols,
                           target=target)
    return validate_wcet(program, stats, slack=slack)

"""Backward register and stack-slot liveness over linked binaries.

This is the dataflow substrate of the static fault-vulnerability
analysis (:mod:`repro.analysis.vuln`): a bit-granular backward
liveness fixpoint over the :class:`~repro.analysis.cfg.BinaryCFG`,
answering *"if this register bit were silently corrupted at this
program point, could any observable behavior change?"*.

The domain is a map from general-register index to a 32-bit *live
mask*: bit ``i`` is set when some path from the program point reads
bit ``i`` of the register before every path overwrites it.  Masks are
per-bit because the machine's observable semantics are per-bit —
``trap 0`` exposes only ``r2 & 0xff`` as the exit code, ``andi``
discards masked-off source bits, shifts translate bit positions, and
carry chains in add/sub propagate strictly upward.  The transfer
functions below over-approximate bit flow (more-live is always sound):

* bitwise ops map demand through exactly; ``andi``/``ori`` drop bits
  forced by the immediate;
* add/sub/mul *smear* demand downward (a flip of source bit ``i`` can
  reach result bits ``>= i`` through carries, never below);
* ``div``/``rem`` keep the divisor fully live even when the result is
  dead: flipping it to zero raises a machine error, which a masking
  proof must exclude;
* memory addresses are fully live (a flipped address can fault);
* shift amounts are live only in bits 0-4 (both engines mask the
  amount with ``& 31``).

A parallel *stack-slot* domain tracks, per instruction, which bytes of
the current frame (negative entry-SP-relative offsets, recovered via
the abstract interpreter's :class:`~repro.analysis.absint.SPRel`
values) are live — giving must-kill for exact-address frame stores and
therefore dead-store detection (LIV001) plus store-data demand
refinement.  The tracked region is the function's own frame; loads
through unknown pointers or calls conservatively make every slot live.
Absolute-interval addresses are assumed not to alias the frame: the
toolchain only ever addresses locals SP-relatively, and any spilled
frame pointer reloaded from memory comes back as TOP (which is already
conservative).

Liveness is interprocedural: each function's entry live map
(``LIVE_IN``) and return-point live map (``RET_LIVE``) are summaries
iterated to a global fixpoint over the call graph recovered by the
abstract interpreter (pool-loaded D16 call targets included).  When
the image contains control flow the analysis cannot attribute — an
unresolved register-indirect call or a non-return indirect jump —
``imprecise`` is set and every function's return demand degrades to
all-live, keeping the per-pc masks sound in the presence of tail
jumps.

DLXe's hardwired ``r0`` is never live (both engines discard writes and
pin reads to zero), and registers beyond the ISA's architectural
register file (D16 names only r0-r15 of the machine's 32) have no
decodable reader, so their masks are identically zero — both facts the
fault classifier exploits directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.objfile import Executable
from ..cc.target import TargetSpec
from ..isa import Instr, IsaSpec, Op
from .absint import (REG_LINK, REG_RET, REG_SP, AnalysisResult, Interval,
                     SPRel, ValueDomain, Value, analyze_executable, solve)
from .cfg import BasicBlock, BinaryCFG

FULL = 0xFFFFFFFF

#: reg index -> 32-bit live mask; absent registers are dead (mask 0).
LiveMap = dict[int, int]

_MEM_SIZES = {Op.LD: 4, Op.ST: 4, Op.LDH: 2, Op.LDHU: 2, Op.STH: 2,
              Op.LDB: 1, Op.LDBU: 1, Op.STB: 1}
_LOADS = (Op.LD, Op.LDH, Op.LDHU, Op.LDB, Op.LDBU)
_STORES = (Op.ST, Op.STH, Op.STB)
_STORE_MASKS = {Op.ST: FULL, Op.STH: 0xFFFF, Op.STB: 0xFF}
_SHIFTS_IMM = {Op.SHLI, Op.SHRI, Op.SHRAI}
_SHIFTS_REG = {Op.SHL, Op.SHR, Op.SHRA}


def smear(mask: int) -> int:
    """Close a demand mask downward (carry-propagation closure).

    In add/sub/mul a flip of source bit ``i`` can disturb result bits
    ``i`` and above (carries move up), never below — so source bits up
    to the highest demanded result bit are live.
    """
    if not mask:
        return 0
    return (1 << mask.bit_length()) - 1


def _load_byte_mask(op: Op, byte: int) -> int:
    """Destination bits affected by flipping byte ``byte`` of the datum."""
    if op == Op.LD:
        return 0xFF << (8 * byte)
    if op == Op.LDBU:
        return 0xFF
    if op == Op.LDB:
        return FULL                        # sign bit smears upward
    if op == Op.LDHU:
        return 0xFF << (8 * byte)
    # LDH: high byte carries the sign into bits 8-31.
    return 0xFF if byte == 0 else FULL & ~0xFF


@dataclass(frozen=True)
class LoadSite:
    """One reachable load, with its abstract address, for the fault
    classifier's memory-byte and text-overlap reasoning."""

    pc: int
    op: Op
    size: int
    #: Absolute address interval ``[lo, hi]`` of the *effective* address
    #: (base + offset), or None when the base is stack-relative or TOP.
    addr: tuple[int, int] | None
    #: True when the base register is an entry-SP-relative value — the
    #: load reads the stack, assumed disjoint from static data and text.
    stack: bool
    #: Live mask of the destination at the load (0 = loaded value dead).
    dest_live: int


@dataclass
class DeadWrite:
    """A register write whose value is provably never observed (LIV002)."""

    pc: int
    func: str
    instr: Instr
    reg: int


@dataclass
class DeadStore:
    """A frame store whose bytes are provably never loaded (LIV001)."""

    pc: int
    func: str
    instr: Instr
    #: Entry-SP-relative byte offset of the first stored byte.
    offset: int
    size: int


@dataclass
class FunctionLiveness:
    """Interprocedural summary of one function."""

    name: str
    start: int
    live_in: LiveMap = field(default_factory=dict)
    ret_live: LiveMap = field(default_factory=dict)


@dataclass
class LivenessAnalysis:
    """Per-pc live masks plus derived dead-code facts for one image."""

    cfg: BinaryCFG
    #: pc -> live mask map at instruction entry / exit.
    live_in: dict[int, LiveMap]
    live_out: dict[int, LiveMap]
    functions: dict[str, FunctionLiveness]
    dead_writes: list[DeadWrite]
    dead_stores: list[DeadStore]
    loads: list[LoadSite]
    #: Set when unattributable control flow forced all-live summaries.
    imprecise: bool

    def live_mask(self, pc: int, reg: int) -> int:
        """Live mask of ``reg`` just before the instruction at ``pc``.

        Registers outside the ISA's architectural file are never
        addressable, hence dead; unknown pcs are conservatively FULL.
        """
        if reg == 0 and self.cfg.isa.name == "DLXe":
            return 0
        if reg >= self.cfg.isa.num_gregs:
            return 0
        state = self.live_in.get(pc)
        if state is None:
            return FULL
        return state.get(reg, 0)


def _join(a: LiveMap, b: LiveMap) -> LiveMap:
    out = dict(a)
    for reg, mask in b.items():
        out[reg] = out.get(reg, 0) | mask
    return out


#: Slot state: live frame-byte offsets (negative, entry-SP-relative),
#: or None = every slot live (top).
Slots = set[int] | None


def _join_slots(a: Slots, b: Slots) -> Slots:
    if a is None or b is None:
        return None
    return a | b


class _FuncLiveness:
    """Backward liveness solver for one function."""

    def __init__(self, analysis: "_ImageLiveness", fstart: int,
                 name: str) -> None:
        self.analysis = analysis
        self.fstart = fstart
        self.name = name
        cfg = analysis.cfg
        self.blocks = {b.start: b for b in cfg.function_blocks(fstart)}
        self.preds: dict[int, set[int]] = {s: set() for s in self.blocks}
        for start, block in self.blocks.items():
            for succ in block.succs:
                if succ in self.blocks:
                    self.preds[succ].add(start)
        #: Per-pc abstract value state at instruction entry, from a
        #: forward run of the interval x SP-offset domain — used to
        #: disambiguate frame addresses and constant shift amounts.
        self.value_in: dict[int, dict[int, Value]] = {}
        domain = ValueDomain(cfg, preserved=analysis.preserved,
                             gp_value=(None if name == "_start"
                                       else analysis.gp_value))
        in_states = solve(self.blocks, fstart, domain)
        for start in sorted(self.blocks):
            raw = in_states.get(start)
            state = dict(raw) if raw is not None \
                else domain.unknown_state()
            for pc, instr in self.blocks[start].instrs:
                self.value_in[pc] = dict(state)
                domain._step(pc, instr, state, None)
        #: Block-entry live state from the last backward solve.
        self.block_in: dict[int, tuple[LiveMap, Slots]] = {}

    # ------------------------------------------------------------ values

    def _value(self, pc: int, reg: int | None) -> Value:
        if reg is None:
            return None
        if reg == 0 and self.analysis.zero_r0:
            return Interval(0, 0)
        return self.value_in.get(pc, {}).get(reg)

    def _frame_offset(self, pc: int, instr: Instr) -> int | None:
        """Entry-SP-relative byte offset of a memory op's address."""
        base = self._value(pc, instr.rs1)
        if isinstance(base, SPRel):
            return base.delta + (instr.imm or 0)
        return None

    # ---------------------------------------------------------- transfer

    def _gen(self, state: LiveMap, reg: int | None, mask: int) -> None:
        if reg is None or not mask:
            return
        if reg == 0 and self.analysis.zero_r0:
            return                         # hardwired zero: never live
        state[reg] = state.get(reg, 0) | mask

    def _kill(self, state: LiveMap, reg: int | None) -> int:
        if reg is None:
            return 0
        return state.pop(reg, 0)

    def back_step(self, pc: int, instr: Instr, state: LiveMap,
                  slots: Slots) -> Slots:
        """Backward transfer of one instruction (mutates ``state``)."""
        op = instr.op
        gen, kill = self._gen, self._kill

        if op in _LOADS:
            d = kill(state, instr.rd)
            gen(state, instr.rs1, FULL)    # a flipped address can fault
            if slots is not None and d:
                off = self._frame_offset(pc, instr)
                if off is not None:
                    slots.update(b for b in
                                 range(off, off + _MEM_SIZES[op])
                                 if b < 0)
                else:
                    base = self._value(pc, instr.rs1)
                    if not isinstance(base, Interval):
                        slots = None       # unknown pointer: reads any slot
            return slots
        if op in _STORES:
            gen(state, instr.rs1, FULL)
            size = _MEM_SIZES[op]
            data_mask = _STORE_MASKS[op]
            off = self._frame_offset(pc, instr)
            if off is not None and slots is not None:
                span = range(off, off + size)
                live_bytes = [b for b in span if b >= 0 or b in slots]
                data_mask = 0
                for b in live_bytes:
                    data_mask |= 0xFF << (8 * (b - off))
                slots.difference_update(b for b in span if b < 0)
            gen(state, instr.rs2, data_mask)
            return slots
        if op == Op.LDC:
            kill(state, instr.rd)
            return slots
        if op == Op.MV:
            d = kill(state, instr.rd)
            gen(state, instr.rs1, d)
            return slots
        if op in (Op.MVI, Op.MVHI):
            kill(state, instr.rd)
            return slots
        if op == Op.NEG:
            d = kill(state, instr.rd)
            gen(state, instr.rs1, smear(d))
            return slots
        if op == Op.INV:
            d = kill(state, instr.rd)
            gen(state, instr.rs1, d)
            return slots
        if op in (Op.ADD, Op.SUB, Op.MUL):
            d = smear(kill(state, instr.rd))
            gen(state, instr.rs1, d)
            gen(state, instr.rs2, d)
            return slots
        if op in (Op.ADDI, Op.SUBI):
            d = smear(kill(state, instr.rd))
            gen(state, instr.rs1, d)
            return slots
        if op in (Op.DIV, Op.REM):
            d = kill(state, instr.rd)
            gen(state, instr.rs1, FULL if d else 0)
            gen(state, instr.rs2, FULL)    # a zero divisor traps
            return slots
        if op in (Op.AND, Op.OR, Op.XOR):
            d = kill(state, instr.rd)
            gen(state, instr.rs1, d)
            gen(state, instr.rs2, d)
            return slots
        if op == Op.ANDI:
            d = kill(state, instr.rd)
            gen(state, instr.rs1, d & ((instr.imm or 0) & FULL))
            return slots
        if op == Op.ORI:
            d = kill(state, instr.rd)
            gen(state, instr.rs1, d & ~((instr.imm or 0) & FULL) & FULL)
            return slots
        if op == Op.XORI:
            d = kill(state, instr.rd)
            gen(state, instr.rs1, d)
            return slots
        if op in _SHIFTS_IMM:
            d = kill(state, instr.rd)
            k = (instr.imm or 0) & 31
            gen(state, instr.rs1, self._shift_demand(op, d, k))
            return slots
        if op in _SHIFTS_REG:
            d = kill(state, instr.rd)
            if d:
                gen(state, instr.rs2, 0x1F)   # amount is masked with & 31
                amount = self._value(pc, instr.rs2)
                if isinstance(amount, Interval) and amount.is_const:
                    imm_op = {Op.SHL: Op.SHLI, Op.SHR: Op.SHRI,
                              Op.SHRA: Op.SHRAI}[op]
                    gen(state, instr.rs1,
                        self._shift_demand(imm_op, d, amount.lo & 31))
                else:
                    gen(state, instr.rs1, FULL)
            return slots
        if op in (Op.CMP, Op.CMPI):
            d = kill(state, instr.rd)
            if d:
                gen(state, instr.rs1, FULL)
                gen(state, instr.rs2, FULL)
            return slots
        if op == Op.RDSR:
            kill(state, instr.rd)
            return slots
        if op == Op.MVIF:
            gen(state, instr.rs1, FULL)    # FP file is untracked
            return slots
        if op == Op.MVFI:
            kill(state, instr.rd)
            return slots
        if op == Op.TRAP:
            imm = instr.imm or 0
            if imm in (0, 1):              # exit code / putc: low byte
                gen(state, REG_RET, 0xFF)
            elif imm == 2:                 # getc writes r2
                kill(state, REG_RET)
            elif imm == 3:                 # sbrk reads and writes r2
                kill(state, REG_RET)
                gen(state, REG_RET, FULL)
            else:                          # unknown trap: conservative
                gen(state, REG_RET, FULL)
            return slots
        if op in (Op.BZ, Op.BNZ):
            gen(state, instr.rs1, FULL)
            return slots
        if op in (Op.J, Op.JL):
            gen(state, instr.rs1, FULL)
            return slots
        if op in (Op.JZ, Op.JNZ):
            gen(state, instr.rs1, FULL)
            gen(state, instr.rs2, FULL)
            return slots
        if op in (Op.BR, Op.JD, Op.JLD, Op.NOP):
            return slots
        # FP-only ops and anything unhandled: kill general writes, make
        # general reads fully live — soundness over precision.
        info = instr.info
        for fld in info.writes:
            if info.reg_class.get(fld) == "g":
                kill(state, getattr(instr, fld))
        for fld in info.reads:
            if info.reg_class.get(fld) == "g":
                gen(state, getattr(instr, fld), FULL)
        return slots

    @staticmethod
    def _shift_demand(op: Op, d: int, k: int) -> int:
        if op == Op.SHLI:
            return d >> k
        if op == Op.SHRI:
            return (d << k) & FULL
        demand = (d << k) & FULL           # shrai: sign replication
        if k and d >> (32 - k):
            demand |= 1 << 31
        return demand

    # --------------------------------------------------------- call edge

    def _call_transfer(self, pc: int, instr: Instr,
                       state: LiveMap) -> LiveMap:
        """Backward transfer of a call terminator (jl / jld)."""
        analysis = self.analysis
        # What the caller needs after the call is demanded of the
        # callee's return point.
        target = analysis.call_targets.get(pc)
        callee = analysis.func_by_start.get(target) \
            if target is not None else None
        if callee is not None:
            analysis.widen_ret_live(callee, state)
            callee_in = analysis.live_in_summary.get(callee, {})
            # The call defines r1 (the return address), satisfying both
            # the callee's read of its link register and any demand the
            # fall-through path had on r1.
            before = {r: m for r, m in state.items() if r != REG_LINK}
            for reg, mask in callee_in.items():
                if reg != REG_LINK:
                    before[reg] = before.get(reg, 0) | mask
        else:
            # Unresolved callee: everything may be read.
            before = analysis.all_full()
            analysis.note_imprecise()
        if instr.op == Op.JL:
            self._gen(before, instr.rs1, FULL)
        return before

    # ------------------------------------------------------------- solve

    def _block_out(self, block: BasicBlock) -> tuple[LiveMap, Slots]:
        analysis = self.analysis
        if block.is_halt:
            return {}, set()
        if block.is_return:
            return dict(analysis.ret_live.get(self.fstart, {})), set()
        if block.indirect:
            # jz/jnz/j-non-return: an unattributable transfer.
            analysis.note_imprecise()
            return analysis.all_full(), None
        if not block.succs:
            if block.is_call:
                # Call to a non-returning function: the statically
                # unreachable fall-through contributes nothing.
                return {}, set()
            return analysis.all_full(), None
        state: LiveMap = {}
        slots: Slots = set()
        for succ in block.succs:
            if succ not in self.blocks:    # cross-function edge
                analysis.note_imprecise()
                return analysis.all_full(), None
            s, sl = self.block_in.get(succ, ({}, set()))
            state = _join(state, s)
            slots = _join_slots(slots, sl)
        return state, slots

    def solve(self) -> bool:
        """Run the backward fixpoint; True when LIVE_IN grew."""
        work = sorted(self.blocks)         # pop() takes the last first
        pending = set(work)
        while work:
            start = work.pop()
            pending.discard(start)
            block = self.blocks[start]
            state, slots = self.transfer(block)
            old = self.block_in.get(start)
            if old is not None and old[0] == state and old[1] == slots:
                continue
            self.block_in[start] = (state, slots)
            for pred in self.preds.get(start, ()):
                if pred not in pending:
                    pending.add(pred)
                    work.append(pred)
        entry = self.block_in.get(self.fstart, ({}, set()))[0]
        old_in = self.analysis.live_in_summary.get(self.fstart, {})
        grown = any(entry.get(r, 0) & ~old_in.get(r, 0)
                    for r in entry)
        if grown:
            self.analysis.live_in_summary[self.fstart] = \
                _join(old_in, entry)
        return grown

    def transfer(self, block: BasicBlock,
                 record: "_Recorder | None" = None) -> tuple[LiveMap,
                                                             Slots]:
        state, slots = self._block_out(block)
        state = dict(state)
        slots = set(slots) if slots is not None else None
        if block.is_call:
            pc, instr = block.terminator
            state = self._call_transfer(pc, instr, state)
            slots = None                   # callee may touch the frame
            if record is not None:
                record.call_site(pc, instr, state, self)
            rest = block.instrs[:-1]
        else:
            rest = block.instrs
        for pc, instr in reversed(rest):
            if record is not None:
                record.after(pc, instr, state, slots, self)
            slots = self.back_step(pc, instr, state, slots)
            if record is not None:
                record.before(pc, instr, state, slots, self)
        return state, slots


class _Recorder:
    """Collects per-pc results during the final recording pass."""

    def __init__(self, analysis: "_ImageLiveness") -> None:
        self.analysis = analysis
        self.out = analysis.result

    def after(self, pc: int, instr: Instr, state: LiveMap,
              slots: Slots, func: _FuncLiveness) -> None:
        self.out.live_out[pc] = dict(state)
        if instr.op in _STORES and slots is not None:
            # ``slots`` is the live-after-store set: a frame store none
            # of whose bytes are live there is never loaded back.
            off = func._frame_offset(pc, instr)
            if off is not None:
                size = _MEM_SIZES[instr.op]
                span = range(off, off + size)
                if all(b < 0 and b not in slots for b in span):
                    self.out.dead_stores.append(
                        DeadStore(pc=pc, func=func.name, instr=instr,
                                  offset=off, size=size))
        # Dead general-register writes (LIV002): demand zero on every
        # outgoing path.  DLXe r0 writes are architectural discards,
        # not bugs.
        info = instr.info
        if instr.op in (Op.JL, Op.JLD):
            return
        for fld in info.writes:
            if info.reg_class.get(fld) != "g":
                continue
            reg = getattr(instr, fld)
            if reg is None:
                continue
            if reg == 0 and self.analysis.zero_r0:
                continue
            if state.get(reg, 0) == 0:
                self.out.dead_writes.append(
                    DeadWrite(pc=pc, func=func.name, instr=instr,
                              reg=reg))

    def before(self, pc: int, instr: Instr, state: LiveMap,
               slots: Slots, func: _FuncLiveness) -> None:
        self.out.live_in[pc] = dict(state)
        if instr.op in _LOADS:
            self._record_load(pc, instr, func)

    def call_site(self, pc: int, instr: Instr, state: LiveMap,
                  func: _FuncLiveness) -> None:
        self.out.live_in[pc] = dict(state)
        # live_out of a call is the callee's entry demand on the
        # machine; for fault classification the conservative choice is
        # the pre-call map minus nothing (r1 is written by the call but
        # a pre-call flip of r1 is overwritten -> using live_in keeps
        # r1 live via the jl source register only).
        self.out.live_out.setdefault(pc, dict(state))

    def _record_load(self, pc: int, instr: Instr,
                     func: _FuncLiveness) -> None:
        op = instr.op
        size = _MEM_SIZES[op]
        dest_live = 0
        if instr.rd is not None:
            dest_live = self.out.live_out.get(pc, {}).get(instr.rd, 0)
            if instr.rd == 0 and self.analysis.zero_r0:
                dest_live = 0
        base = func._value(pc, instr.rs1)
        imm = instr.imm or 0
        if isinstance(base, SPRel):
            addr: tuple[int, int] | None = None
            stack = True
        elif isinstance(base, Interval):
            lo = (base.lo + imm) & FULL
            hi = (base.hi + imm) & FULL
            addr = (lo, hi) if lo <= hi else (0, FULL)
            stack = False
        else:
            addr = None
            stack = False
        self.out.loads.append(LoadSite(pc=pc, op=op, size=size,
                                       addr=addr, stack=stack,
                                       dest_live=dest_live))


class _ImageLiveness:
    """Whole-image interprocedural driver."""

    def __init__(self, cfg: BinaryCFG, result: AnalysisResult,
                 preserved: frozenset[int],
                 gp_value: int | None) -> None:
        self.cfg = cfg
        self.preserved = preserved
        self.gp_value = gp_value
        self.zero_r0 = cfg.isa.name == "DLXe"
        self.num_gregs = cfg.isa.num_gregs
        self.func_by_start = {addr: addr for addr, _name in cfg.funcs}
        self.names = dict(cfg.funcs)
        #: call-site pc -> resolved target, from the value analysis.
        self.call_targets: dict[int, int] = {}
        self.callers: dict[int, set[int]] = {s: set()
                                             for s in self.func_by_start}
        for summary in result.functions.values():
            for pc, target in summary.call_sites:
                if target is not None:
                    self.call_targets[pc] = target
                    if target in self.callers:
                        self.callers[target].add(summary.start)
        self.imprecise = False
        self._imprecision_seen = False
        self.live_in_summary: dict[int, LiveMap] = {}
        # Return demand: seeded with the calling convention's promises
        # -- r2 may carry a return value the caller consumes, and the
        # stack pointer must come back restored (treating SP as dead at
        # a return would flag every epilogue's bookkeeping).
        self.ret_live: dict[int, LiveMap] = {
            s: {REG_RET: FULL, REG_SP: FULL} for s in self.func_by_start}
        self._ret_grew: set[int] = set()
        self.result = LivenessAnalysis(
            cfg=cfg, live_in={}, live_out={}, functions={},
            dead_writes=[], dead_stores=[], loads=[], imprecise=False)

    def all_full(self) -> LiveMap:
        state = {r: FULL for r in range(self.num_gregs)}
        if self.zero_r0:
            del state[0]
        return state

    def note_imprecise(self) -> None:
        self._imprecision_seen = True

    def widen_ret_live(self, callee: int, after_call: LiveMap) -> None:
        current = self.ret_live.setdefault(
            callee, {REG_RET: FULL, REG_SP: FULL})
        grown = False
        for reg, mask in after_call.items():
            if mask & ~current.get(reg, 0):
                current[reg] = current.get(reg, 0) | mask
                grown = True
        if grown:
            self._ret_grew.add(callee)

    def run(self) -> LivenessAnalysis:
        solvers: dict[int, _FuncLiveness] = {}
        for fstart, name in self.cfg.funcs:
            if fstart in self.cfg.blocks:
                solvers[fstart] = _FuncLiveness(self, fstart, name)

        for escalate in (False, True):
            if escalate:
                # Unattributable control flow discovered during the
                # first pass: degrade every return demand to all-live
                # (a tail jump can route any function's return past
                # its recorded call sites) and re-run to fixpoint.
                self.imprecise = True
                full = self.all_full()
                for fstart in self.ret_live:
                    self.ret_live[fstart] = dict(full)
            pending = list(reversed(list(solvers)))
            in_queue = set(pending)
            while pending:
                fstart = pending.pop()
                in_queue.discard(fstart)
                solver = solvers.get(fstart)
                if solver is None:
                    continue
                self._ret_grew.clear()
                grew = solver.solve()
                requeue: set[int] = set(self._ret_grew)
                if grew:
                    requeue.update(self.callers.get(fstart, ()))
                for f in sorted(requeue):
                    if f in solvers and f not in in_queue:
                        in_queue.add(f)
                        pending.append(f)
            if not self._imprecision_seen or escalate:
                break

        recorder = _Recorder(self)
        for fstart, solver in solvers.items():
            for start in sorted(solver.blocks, reverse=True):
                solver.transfer(solver.blocks[start], record=recorder)
            self.result.functions[solver.name] = FunctionLiveness(
                name=solver.name, start=fstart,
                live_in=dict(self.live_in_summary.get(fstart, {})),
                ret_live=dict(self.ret_live.get(fstart, {})))
        self.result.imprecise = self.imprecise
        self.result.dead_writes.sort(key=lambda w: w.pc)
        self.result.dead_stores.sort(key=lambda s: s.pc)
        self.result.loads.sort(key=lambda site: site.pc)
        return self.result


def liveness_findings(analysis: LivenessAnalysis,
                      target: TargetSpec | None = None,
                      ) -> tuple[list, list[tuple[str, str]]]:
    """LIV001/LIV002 findings with the convention waiver list applied.

    The raw dead-write/dead-store lists deliberately include ABI
    bookkeeping the calling convention *requires* even when the closed
    program never observes it — prologue spills and epilogue reloads of
    callee-saved registers whose values no caller consumes, and moves
    that materialize a discarded call result.  Those are exactly the
    sites the fault classifier wants to prove masked, but they are not
    code-quality defects, so the lint surface waives them (each waiver
    is returned as ``(location, justification)`` and rendered by
    ``--stats``/``--json`` rather than silently dropped).
    """
    from .findings import Finding, finding

    preserved = frozenset(target.callee_saved_int) if target is not None \
        else frozenset(range(10, 14))
    spillable = preserved | {REG_LINK}
    cfg = analysis.cfg
    out: list[Finding] = []
    waived: list[tuple[str, str]] = []
    for store in analysis.dead_stores:
        where = cfg.describe(store.pc)
        if store.instr.rs2 in spillable:
            waived.append((
                where,
                f"'{store.instr}': ABI prologue spill of r{store.instr.rs2};"
                f" the paired reload is interprocedurally dead in this "
                f"closed program"))
            continue
        out.append(finding(
            "LIV001", where,
            f"'{store.instr}' stores {store.size} byte(s) at frame "
            f"offset {store.offset} that are never loaded back"))
    for write in analysis.dead_writes:
        instr = write.instr
        where = cfg.describe(write.pc)
        if write.reg == REG_SP:
            waived.append((where,
                           f"'{instr}': stack-pointer bookkeeping"))
            continue
        if instr.op in _LOADS and instr.rs1 == REG_SP \
                and write.reg in spillable:
            waived.append((
                where,
                f"'{instr}': ABI epilogue reload of r{write.reg}; no "
                f"caller of this closed program consumes it"))
            continue
        if (instr.op == Op.MV and instr.rs1 == REG_RET) \
                or (instr.op == Op.ADD and instr.rs1 == REG_RET
                    and instr.rs2 == 0):
            waived.append((
                where,
                f"'{instr}': call-result materialization for a value "
                f"the program discards (uniform call lowering)"))
            continue
        out.append(finding(
            "LIV002", where,
            f"'{instr}' writes r{write.reg}, which is overwritten on "
            f"every path before any use"))
    return out, waived


def analyze_liveness(exe: Executable, isa: IsaSpec, *,
                     symbols: dict[str, int] | None = None,
                     target: TargetSpec | None = None,
                     cfg: BinaryCFG | None = None,
                     result: AnalysisResult | None = None,
                     ) -> LivenessAnalysis:
    """Backward liveness over every function of a linked image.

    ``cfg``/``result`` let callers that already ran the abstract
    interpreter (the lint driver does) share the recovered CFG and the
    resolved indirect-call targets; otherwise both are computed here.
    """
    if result is None:
        result = analyze_executable(exe, isa, symbols=symbols,
                                    target=target, cfg=cfg)
    if cfg is None:
        cfg = result.cfg
    preserved = frozenset(target.callee_saved_int) if target is not None \
        else frozenset(range(10, 14))
    gp_value = exe.symbols.get("__gp")
    return _ImageLiveness(cfg, result, preserved, gp_value).run()

"""Solver-free symbolic evaluation for translation validation.

Two symbolic executors share one canonicalized term language:

* :class:`IRExecutor` evaluates :mod:`repro.cc.ir` basic blocks — the
  substrate of the per-pass equivalence checks in
  :mod:`repro.analysis.equiv`;
* :class:`MachineExecutor` evaluates disassembled function bodies over
  the shared :class:`~repro.analysis.cfg.BinaryCFG`, producing the
  observable-effect summaries that upgrade the cross-ISA comparison
  from count consistency to semantic consistency.

Terms are immutable nested tuples, so structural equality *is* the
decision procedure: the normalizing constructors below fold constants
with the optimizer's exact 32-bit wrap semantics (``_s32`` arithmetic,
shift counts masked to 5 bits, ``mul`` on sign-interpreted operands)
and rewrite every linear combination into one canonical sum-of-terms
shape.  There is no SMT solver anywhere: whatever the rewriter cannot
prove is reported as :class:`Unknown`, never guessed.

Term grammar (all tuples)::

    ("lit", u32)                     literal word
    ("sym", key)                     free symbol (correlated by key)
    ("sum", c, ((t, k), ...))        c + sum(t_i * k_i) mod 2^32
    ("mul"|"and"|"or"|"xor"|..., a, b)   residual applications
    ("cmp", cond, a, b)              0/1-valued comparison
    ("glob", name) / ("slot", id)    address atoms
    ("ld", size, signed, addr, mem)  memory read
    ("mem", key) / ("st", ...)       memory states (stores chain)

A ``sum`` never nests, never carries literal or sum entries, keeps its
entries sorted, and collapses to ``lit``/bare-term forms, so any two
expressions equal modulo associativity, commutativity, distribution
over constants, and 32-bit wraparound construct the identical tuple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from ..cc.codegen import BinImm, CJumpImm, CmpImm
from ..cc.ir import (AddrGlobal, AddrStack, Bin, Block, CallInst, CJump,
                     Cmp, Const, Cvt, FCmp, FConst, FLoad, FStore,
                     Function, Inst, Jump, Load, Move, Ret, StackSlot,
                     Store, Un, VReg)
from ..cc.target import REG_GP, REG_LINK, REG_RET, REG_SP
from ..isa.instruction import Instr
from ..isa.operations import COND_NEGATE, COND_SWAP, Cond, Op
from ..isa.refs import ldc_pool_addr
from .cfg import BasicBlock, BinaryCFG

_WORD = 0xFFFFFFFF
_M32 = 1 << 32

#: Path-exploration limits: beyond these the region is ``Unknown``.
MAX_STEPS = 4096
MAX_LEAVES = 64

Term = tuple[object, ...]


class Unknown(Exception):
    """The engine cannot decide; carries a human-readable reason."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def _s32(value: int) -> int:
    value &= _WORD
    return value - _M32 if value & 0x80000000 else value


# ------------------------------------------------------------------ terms


def lit(value: int) -> Term:
    return ("lit", value & _WORD)


def sym(key: tuple[object, ...]) -> Term:
    return ("sym", key)


def is_lit(term: Term) -> bool:
    return term[0] == "lit"


def lit_value(term: Term) -> int:
    assert term[0] == "lit"
    value = term[1]
    assert isinstance(value, int)
    return value


def _key(term: Term) -> str:
    """Total ordering key; ``repr`` of nested tuples is deterministic."""
    return repr(term)


def _sum_parts(term: Term) -> tuple[int, dict[Term, int]]:
    """Decompose any term into ``(constant, {atom: coefficient})``."""
    if term[0] == "lit":
        return lit_value(term), {}
    if term[0] == "sum":
        const = term[1]
        assert isinstance(const, int)
        pairs = term[2]
        assert isinstance(pairs, tuple)
        parts: dict[Term, int] = {}
        for entry in pairs:
            atom, coeff = entry
            parts[atom] = coeff
        return const, parts
    return 0, {term: 1}


def _make_sum(const: int, parts: Mapping[Term, int]) -> Term:
    cleaned = {t: k % _M32 for t, k in parts.items() if k % _M32}
    const %= _M32
    if not cleaned:
        return lit(const)
    if const == 0 and len(cleaned) == 1:
        (atom, coeff), = cleaned.items()
        if coeff == 1:
            return atom
    entries = tuple(sorted(cleaned.items(), key=lambda e: _key(e[0])))
    return ("sum", const, entries)


def add(a: Term, b: Term) -> Term:
    ca, pa = _sum_parts(a)
    cb, pb = _sum_parts(b)
    parts = dict(pa)
    for atom, coeff in pb.items():
        parts[atom] = parts.get(atom, 0) + coeff
    return _make_sum(ca + cb, parts)


def sub(a: Term, b: Term) -> Term:
    return add(a, _scale(b, -1))


def neg(a: Term) -> Term:
    return _scale(a, -1)


def _scale(term: Term, factor: int) -> Term:
    const, parts = _sum_parts(term)
    return _make_sum(const * factor,
                     {t: k * factor for t, k in parts.items()})


def mul(a: Term, b: Term) -> Term:
    if is_lit(a):
        return _scale(b, _s32(lit_value(a)))
    if is_lit(b):
        return _scale(a, _s32(lit_value(b)))
    lo, hi = sorted((a, b), key=_key)
    return ("mul", lo, hi)


def inv(a: Term) -> Term:
    return bitop("xor", a, lit(_WORD))


def bitop(op: str, a: Term, b: Term) -> Term:
    """``and``/``or``/``xor`` with literal folding and identities."""
    if is_lit(a) and is_lit(b):
        va, vb = lit_value(a), lit_value(b)
        folded = {"and": va & vb, "or": va | vb, "xor": va ^ vb}[op]
        return lit(folded)
    lo, hi = sorted((a, b), key=_key)
    if is_lit(lo):
        value = lit_value(lo)
        if op == "and":
            if value == 0:
                return lit(0)
            if value == _WORD:
                return hi
        elif op in ("or", "xor") and value == 0:
            return hi
        elif op == "or" and value == _WORD:
            return lit(_WORD)
    if lo == hi:
        if op == "xor":
            return lit(0)
        return lo                      # and/or idempotence
    return (op, lo, hi)


def shift(op: str, a: Term, b: Term) -> Term:
    """``shl``/``shr``/``shra``; shift counts are masked to 5 bits."""
    if is_lit(b):
        count = lit_value(b) & 31
        if count == 0:
            return a
        if op == "shl":
            return _scale(a, 1 << count)
        if is_lit(a):
            value = lit_value(a)
            if op == "shr":
                return lit(value >> count)
            return lit(_s32(value) >> count)
    return (op, a, b)


def divrem(op: str, a: Term, b: Term) -> Term:
    """Signed ``div``/``rem`` with the optimizer's rounding rules."""
    if is_lit(a) and is_lit(b) and _s32(lit_value(b)) != 0:
        sa, sb = _s32(lit_value(a)), _s32(lit_value(b))
        quot = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quot = -quot
        return lit(sa - quot * sb if op == "rem" else quot)
    if op == "div" and b == lit(1):
        return a
    return (op, a, b)


def _cond_eval(cond: str, a: int, b: int) -> bool:
    signed = {"lt": lambda x, y: x < y, "le": lambda x, y: x <= y,
              "gt": lambda x, y: x > y, "ge": lambda x, y: x >= y}
    unsigned = {"ltu": lambda x, y: x < y, "leu": lambda x, y: x <= y,
                "gtu": lambda x, y: x > y, "geu": lambda x, y: x >= y}
    if cond in signed:
        return signed[cond](_s32(a), _s32(b))
    if cond in unsigned:
        return unsigned[cond](a & _WORD, b & _WORD)
    if cond == "eq":
        return (a & _WORD) == (b & _WORD)
    return (a & _WORD) != (b & _WORD)      # neq


#: ``Cond.value`` spellings with a reflexive truth value.
_REFLEXIVE_TRUE = frozenset({"le", "leu", "ge", "geu", "eq"})


def compare(cond: Cond, a: Term, b: Term) -> Term:
    """0/1-valued comparison term with canonical operand order."""
    if is_lit(a) and is_lit(b):
        return lit(1 if _cond_eval(cond.value, lit_value(a),
                                   lit_value(b)) else 0)
    if a == b:
        return lit(1 if cond.value in _REFLEXIVE_TRUE else 0)
    # A comparison of a 0/1-valued comparison against zero collapses:
    # ``(a < b) != 0`` is ``a < b`` and ``(a < b) == 0`` its negation.
    # This makes "compute flag, branch on flag" and "branch on
    # condition" construct the identical term.
    if cond in (Cond.EQ, Cond.NE):
        for flag, other in ((a, b), (b, a)):
            if flag[0] == "cmp" and other == lit(0):
                if cond == Cond.NE:
                    return flag
                flag_cond = flag[1]
                assert isinstance(flag_cond, str)
                negated = COND_NEGATE[_COND_BY_NAME[flag_cond]]
                return ("cmp", negated.value, flag[2], flag[3])
    if _key(b) < _key(a):
        a, b, cond = b, a, COND_SWAP[cond]
    return ("cmp", cond.value, a, b)


#: Canonical members of each (condition, negation) pair, used when a
#: comparison term only matters for its truth value (branch guards).
_CANONICAL_CONDS = frozenset({"lt", "le", "eq", "ltu", "leu"})

_COND_BY_NAME = {c.value: c for c in Cond}


def guard(term: Term, taken: bool) -> tuple[Term, bool]:
    """Normalize a branch guard ``(condition term, taken)``.

    A guard only carries truth, so ``(a >= b, taken)`` and
    ``(a < b, not taken)`` are the same fact; both map to the
    canonical member of the condition pair.
    """
    if term[0] == "cmp":
        cond_name = term[1]
        assert isinstance(cond_name, str)
        if cond_name not in _CANONICAL_CONDS:
            flipped = COND_NEGATE[_COND_BY_NAME[cond_name]]
            a, b = term[2], term[3]
            assert isinstance(a, tuple) and isinstance(b, tuple)
            return (("cmp", flipped.value, a, b), not taken)
    return (term, taken)


def binop(op: str, a: Term, b: Term) -> Term:
    """Dispatch one IR ``Bin`` operation to the normalizing rewriter."""
    if op == "add":
        return add(a, b)
    if op == "sub":
        return sub(a, b)
    if op == "mul":
        return mul(a, b)
    if op in ("and", "or", "xor"):
        return bitop(op, a, b)
    if op in ("shl", "shr", "shra"):
        return shift(op, a, b)
    if op in ("div", "rem"):
        return divrem(op, a, b)
    if op in ("fadd", "fmul"):
        lo, hi = sorted((a, b), key=_key)
        return ("fbin", op, lo, hi)
    if op in ("fsub", "fdiv"):
        return ("fbin", op, a, b)
    raise Unknown(f"unsupported binary op '{op}'")


def unop(op: str, a: Term) -> Term:
    if op == "neg":
        return neg(a)
    if op == "inv":
        return inv(a)
    if op == "fneg":
        return ("fun", "fneg", a)
    raise Unknown(f"unsupported unary op '{op}'")


# ------------------------------------------------------- symbolic memory


def _addr_split(addr: Term) -> tuple[tuple[tuple[Term, int], ...], int]:
    """``(symbolic part, literal displacement)`` of an address term."""
    const, parts = _sum_parts(addr)
    base = tuple(sorted(parts.items(), key=lambda e: _key(e[0])))
    return base, const


def _distinct_atoms(a: Term, b: Term) -> bool:
    """True when two address atoms provably name disjoint regions.

    Stack slots are pairwise disjoint and never overlap globals; two
    distinct global symbols occupy separate definitions.  Anything
    involving a free symbol (or a literal against a symbol) may alias.
    """
    if a == b:
        return False
    tags = (a[0], b[0])
    if tags == ("slot", "slot") or "slot" in tags and "glob" in tags:
        return True
    if tags == ("glob", "glob"):
        return True
    return False


def addrs_disjoint(addr_a: Term, size_a: int,
                   addr_b: Term, size_b: int) -> bool:
    """Provably non-overlapping accesses (conservative)."""
    base_a, off_a = _addr_split(addr_a)
    base_b, off_b = _addr_split(addr_b)
    if base_a == base_b:
        lo, lo_size, hi_off = ((off_a, size_a, off_b)
                               if off_a <= off_b else (off_b, size_b, off_a))
        return lo + lo_size <= hi_off
    if len(base_a) == 1 and len(base_b) == 1 \
            and base_a[0][1] == 1 and base_b[0][1] == 1:
        return _distinct_atoms(base_a[0][0], base_b[0][0])
    return False


def frame_access(addr: Term, stack_atoms: frozenset[Term]) \
        -> tuple[Term, int] | str | None:
    """Classify an address against the private stack frame.

    Returns ``(base atom, byte offset)`` for an exact frame slot,
    ``"mixed"`` when a stack atom appears with a symbolic displacement
    or coefficient (in-frame, but not a trackable slot), and ``None``
    for public (non-stack) memory.
    """
    base, off = _addr_split(addr)
    if not any(atom in stack_atoms for atom, _coeff in base):
        return None
    if len(base) == 1 and base[0][1] == 1:
        return (base[0][0], off)
    return "mixed"


def mentions_atoms(term: Term, atoms: frozenset[Term]) -> bool:
    """True when any of the address ``atoms`` occurs inside ``term``."""
    stack: list[object] = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, tuple):
            if node in atoms:
                return True
            stack.extend(node)
    return False


class Frame:
    """Private per-function stack memory for summary-mode execution.

    Keys are ``(base atom, byte offset)``.  A store with a symbolic
    in-frame displacement invalidates the whole frame (``hazy``) —
    after that, any unmatched load is :class:`Unknown`.  Contents
    survive calls: the callee operates strictly below the caller's
    stack pointer, which is exactly the privacy invariant the escape
    checks protect.  Only word-sized integer slots and exact
    floating-point spills forward; sub-word traffic would need
    truncation semantics the raw value term does not carry.
    """

    __slots__ = ("slots", "hazy")

    def __init__(self,
                 slots: Mapping[tuple[Term, int],
                                tuple[object, Term]] | None = None,
                 hazy: bool = False) -> None:
        self.slots: dict[tuple[Term, int], tuple[object, Term]] = \
            dict(slots or {})
        self.hazy = hazy

    def fork(self) -> "Frame":
        return Frame(self.slots, self.hazy)

    def store(self, atom: Term, off: int, kind: object,
              value: Term) -> None:
        self.slots[(atom, off)] = (kind, value)

    def invalidate(self) -> None:
        self.slots.clear()
        self.hazy = True

    def load(self, atom: Term, off: int, kind: object,
             where: str) -> Term:
        entry = self.slots.get((atom, off))
        if entry is not None:
            stored_kind, value = entry
            if stored_kind == kind \
                    and (kind == 4 or isinstance(kind, tuple)):
                return value
            raise Unknown(f"{where}: sub-word or mixed-type stack "
                          f"access at offset {off}")
        detail = " (frame clobbered)" if self.hazy else ""
        raise Unknown(f"{where}: read of untracked stack "
                      f"slot{detail}")


def mem_store(mem: Term, size: int, addr: Term, value: Term) -> Term:
    return ("st", mem, size, addr, value)


def mem_fstore(mem: Term, cls: str, addr: Term, value: Term) -> Term:
    return ("fst", mem, 8 if cls == "d" else 4, addr, value)


def mem_call(mem: Term, index: int) -> Term:
    return ("mcall", mem, index)


def mem_load(mem: Term, size: int, signed: bool, addr: Term, *,
             forward: bool = False) -> Term:
    """A load term; with ``forward`` it walks the store chain.

    Forwarding returns the stored value on an exact word-sized match
    and steps over provably disjoint stores; it stops at a call marker
    (the callee may write any public location).  Word-sized loads
    normalize ``signed`` away — signedness is meaningless at 32 bits.
    """
    if size == 4:
        signed = True
    if forward:
        node = mem
        while True:
            tag = node[0]
            if tag in ("st", "fst"):
                prev, st_size, st_addr, st_value = \
                    node[1], node[2], node[3], node[4]
                assert isinstance(prev, tuple)
                assert isinstance(st_size, int)
                assert isinstance(st_addr, tuple)
                assert isinstance(st_value, tuple)
                if tag == "st" and st_addr == addr \
                        and st_size == size == 4:
                    return st_value
                if addrs_disjoint(addr, size, st_addr, st_size):
                    node = prev
                    continue
                break
            break
        mem = node
    return ("ld", size, signed, addr, mem)


def mem_fload(mem: Term, cls: str, addr: Term) -> Term:
    return ("fld", cls, addr, mem)


def term_symbols(term: Term) -> frozenset[tuple[object, ...]]:
    """Every ``("sym", key)`` key mentioned anywhere inside ``term``."""
    found: set[tuple[object, ...]] = set()
    stack: list[object] = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, tuple):
            if len(node) == 2 and node[0] == "sym" \
                    and isinstance(node[1], tuple):
                found.add(node[1])
                continue
            stack.extend(node)
    return frozenset(found)


def mentions_symbol(term: Term, key: tuple[object, ...]) -> bool:
    return key in term_symbols(term)


def is_ground(term: Term) -> bool:
    """True when the term contains no free symbols or memory states."""
    stack: list[object] = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, tuple):
            if node and node[0] in ("sym", "mem", "ld", "fld"):
                return False
            stack.extend(node)
    return True


# --------------------------------------------------------- environments


class LazyEnv:
    """VReg environment with memoized lazy initialization.

    Reads of registers the region has not written are answered by the
    ``init`` hook — a shared start-of-region symbol or, for provably
    single-definition registers, the definition's own term.  ``written``
    records genuine assignments (the leaf's simulation-relation
    obligation); memoized lazy reads are not writes.
    """

    def __init__(self, init: Callable[[VReg], Term],
                 values: dict[VReg, Term] | None = None,
                 written: set[VReg] | None = None) -> None:
        self._init = init
        self.values: dict[VReg, Term] = dict(values or {})
        self.written: set[VReg] = set(written or ())

    def get(self, reg: VReg) -> Term:
        term = self.values.get(reg)
        if term is None:
            term = self._init(reg)
            self.values[reg] = term
        return term

    def set(self, reg: VReg, term: Term) -> None:
        self.values[reg] = term
        self.written.add(reg)

    def fork(self) -> "LazyEnv":
        return LazyEnv(self._init, self.values, self.written)

    def writes(self) -> dict[VReg, Term]:
        return {reg: self.values[reg] for reg in self.written}


def single_def_terms(func: Function) -> dict[VReg, Term]:
    """Pure closed-form terms for single-definition registers.

    A register qualifies when its one definition is a pure instruction
    whose operands are themselves single-definition computable.  The IR
    verifier's must-be-defined dataflow (IR006) guarantees any use is
    dominated by the definition, so substituting the term for a lazy
    region-entry read is exact — this is what lets the checker prove
    ``licm`` and ``dedupe_single_defs`` rewrites.
    """
    counts: dict[VReg, int] = {}
    defining: dict[VReg, Inst] = {}
    for block in func.blocks:
        for inst in block.instrs:
            for reg in inst.defs():
                counts[reg] = counts.get(reg, 0) + 1
                defining[reg] = inst
    terms: dict[VReg, Term] = {}
    changed = True
    while changed:
        changed = False
        for reg, inst in defining.items():
            if reg in terms or counts[reg] != 1:
                continue
            if not all(use in terms and counts.get(use, 0) == 1
                       for use in inst.uses()):
                continue
            term = _pure_term(inst, terms)
            if term is not None:
                terms[reg] = term
                changed = True
    return terms


def _pure_term(inst: Inst, env: Mapping[VReg, Term]) -> Term | None:
    """The term a pure instruction computes, if it is in fact pure."""
    try:
        if isinstance(inst, Const):
            return lit(inst.value)
        if isinstance(inst, FConst):
            return ("flit", inst.dst.cls, repr(inst.value))
        if isinstance(inst, Move):
            return env[inst.src]
        if isinstance(inst, AddrGlobal):
            return add(("glob", inst.name), lit(inst.offset))
        if isinstance(inst, AddrStack):
            return ("slot", inst.slot.id)
        if isinstance(inst, Bin):
            return binop(inst.op, env[inst.a], env[inst.b])
        if isinstance(inst, BinImm):
            return binop(inst.op, env[inst.a], lit(inst.value))
        if isinstance(inst, Un):
            return unop(inst.op, env[inst.a])
        if isinstance(inst, Cmp):
            return compare(inst.cond, env[inst.a], env[inst.b])
        if isinstance(inst, CmpImm):
            return compare(inst.cond, env[inst.a], lit(inst.value))
        if isinstance(inst, FCmp):
            return ("fcmp", inst.cond.value, env[inst.a], env[inst.b])
        if isinstance(inst, Cvt):
            return ("cvt", inst.kind, env[inst.a])
    except Unknown:
        return None
    return None


# ------------------------------------------------------------ block-level


@dataclass(frozen=True)
class Leaf:
    """One fully explored path through a region.

    ``kind`` is ``"cut"`` (reached a cut-point label), ``"ret"``, or
    ``"halt"``; ``guards`` are the normalized symbolic branch decisions
    taken along the way; ``effects`` is the ordered observable
    sequence; ``writes`` the register assignments made on the path.
    """

    kind: str
    target: str | None
    guards: tuple[tuple[Term, bool], ...]
    effects: tuple[Term, ...]
    ret: Term | None
    writes: tuple[tuple[VReg, Term], ...] = ()
    mem: Term | None = None

    def writes_map(self) -> dict[VReg, Term]:
        return dict(self.writes)


@dataclass
class _PathState:
    label: str
    env: LazyEnv
    mem: Term
    effects: list[Term]
    guards: list[tuple[Term, bool]]
    visited: set[str] = field(default_factory=set)
    frame: Frame = field(default_factory=Frame)
    steps: int = 0
    calls: int = 0

    def fork(self) -> "_PathState":
        return _PathState(self.label, self.env.fork(), self.mem,
                          list(self.effects), list(self.guards),
                          set(self.visited), self.frame.fork(),
                          self.steps, self.calls)


#: Builtins the backends lower to trap instructions (irgen BUILTINS).
TRAP_BUILTINS = {"exit": 0, "putchar": 1, "getchar": 2, "sbrk": 3}

#: Trap codes whose handler reads the ``r2`` argument.
_TRAP_READS_ARG = frozenset({0, 1, 3})

#: Trap codes whose handler overwrites ``r2`` with a result.
_TRAP_WRITES_RESULT = frozenset({2, 3})


class IRExecutor:
    """Symbolic execution of IR regions between cut-point labels.

    ``mode`` selects the simulation-relation flavour:

    * ``"pass"`` — per-pass translation validation: every store and
      call is an ordered observable, memory is an exact chain (no
      forwarding), calls are opaque effects;
    * ``"summary"`` — whole-function observable summaries for the
      cross-ISA comparison: stack-slot traffic is private (forwarded),
      trap builtins mirror the machine's trap semantics, and stack
      addresses must not escape.
    """

    def __init__(self, func: Function, *, cuts: frozenset[str],
                 region: str, init: Callable[[VReg], Term],
                 mode: str = "pass",
                 signatures: Mapping[str, int] | None = None,
                 max_steps: int = MAX_STEPS,
                 max_leaves: int = MAX_LEAVES) -> None:
        self.blocks = func.block_map()
        self.func = func
        self.cuts = cuts
        self.region = region
        self.init = init
        self.mode = mode
        self.signatures = signatures
        self.max_steps = max_steps
        self.max_leaves = max_leaves
        self.stack_atoms: frozenset[Term] = frozenset(
            ("slot", slot.id) for slot in func.slots)

    # -- entry point

    def explore(self, start: str) -> list[Leaf]:
        mem0: Term = ("mem", (self.region,))
        first = _PathState(start, LazyEnv(self.init), mem0, [], [])
        pending = [first]
        leaves: list[Leaf] = []
        while pending:
            state = pending.pop()
            try:
                self._run_path(state, pending, leaves,
                               entry=state is first)
            except _Halted as halted:
                leaves.append(halted.leaf)
            if len(leaves) > self.max_leaves:
                raise Unknown(f"region '{self.region}': more than "
                              f"{self.max_leaves} symbolic paths")
        return leaves

    def _run_path(self, state: _PathState, pending: list[_PathState],
                  leaves: list[Leaf], *, entry: bool) -> None:
        while True:
            label = state.label
            if label in self.cuts and not entry:
                leaves.append(self._leaf(state, "cut", label))
                return
            entry = False
            if label in state.visited:
                raise Unknown(f"region '{self.region}': cycle through "
                              f"non-cut label '{label}'")
            state.visited.add(label)
            block = self.blocks.get(label)
            if block is None:
                raise Unknown(f"region '{self.region}': missing block "
                              f"'{label}'")
            outcome = self._run_block(block, state, pending, leaves)
            if outcome is None:
                return
            state.label = outcome

    def _run_block(self, block: Block, state: _PathState,
                   pending: list[_PathState],
                   leaves: list[Leaf]) -> str | None:
        """Execute one block; returns the next label or None (done)."""
        for inst in block.instrs:
            state.steps += 1
            if state.steps > self.max_steps:
                raise Unknown(f"region '{self.region}': exceeded "
                              f"{self.max_steps} instructions")
            if isinstance(inst, Ret):
                ret = (state.env.get(inst.src)
                       if inst.src is not None else None)
                leaves.append(self._leaf(state, "ret", None, ret=ret))
                return None
            if isinstance(inst, Jump):
                return inst.target
            if isinstance(inst, CJump):
                b = (state.env.get(inst.b) if inst.b is not None
                     else lit(0))
                return self._branch(inst.cond, state.env.get(inst.a), b,
                                    inst.if_true, inst.if_false,
                                    state, pending)
            if isinstance(inst, CJumpImm):
                return self._branch(inst.cond, state.env.get(inst.a),
                                    lit(inst.value), inst.if_true,
                                    inst.if_false, state, pending)
            self._eval(inst, state)
        raise Unknown(f"block '{block.label}' has no terminator")

    def _branch(self, cond_name: Cond, a: Term, b: Term, if_true: str,
                if_false: str, state: _PathState,
                pending: list[_PathState]) -> str | None:
        cond = compare(cond_name, a, b)
        if is_lit(cond):
            return if_true if lit_value(cond) else if_false
        taken = state.fork()
        taken.guards.append(guard(cond, True))
        taken.label = if_true
        pending.append(taken)
        state.guards.append(guard(cond, False))
        return if_false

    def _leaf(self, state: _PathState, kind: str, target: str | None,
              ret: Term | None = None) -> Leaf:
        return Leaf(kind=kind, target=target,
                    guards=tuple(state.guards),
                    effects=tuple(state.effects), ret=ret,
                    writes=tuple(sorted(
                        state.env.writes().items(),
                        key=lambda item: (item[0].id, item[0].cls))),
                    mem=state.mem)

    # -- straight-line evaluation

    def _addr(self, base: VReg | StackSlot | str, offset: int,
              env: LazyEnv) -> Term:
        if isinstance(base, VReg):
            root: Term = env.get(base)
        elif isinstance(base, StackSlot):
            root = ("slot", base.id)
        else:
            root = ("glob", base)
        return add(root, lit(offset))

    def _eval(self, inst: Inst, state: _PathState) -> None:
        env = state.env
        if isinstance(inst, Const):
            env.set(inst.dst, lit(inst.value))
        elif isinstance(inst, FConst):
            env.set(inst.dst, ("flit", inst.dst.cls, repr(inst.value)))
        elif isinstance(inst, Move):
            env.set(inst.dst, env.get(inst.src))
        elif isinstance(inst, Bin):
            env.set(inst.dst,
                    binop(inst.op, env.get(inst.a), env.get(inst.b)))
        elif isinstance(inst, BinImm):
            env.set(inst.dst,
                    binop(inst.op, env.get(inst.a), lit(inst.value)))
        elif isinstance(inst, Un):
            env.set(inst.dst, unop(inst.op, env.get(inst.a)))
        elif isinstance(inst, Cmp):
            env.set(inst.dst,
                    compare(inst.cond, env.get(inst.a), env.get(inst.b)))
        elif isinstance(inst, CmpImm):
            env.set(inst.dst,
                    compare(inst.cond, env.get(inst.a), lit(inst.value)))
        elif isinstance(inst, FCmp):
            env.set(inst.dst, ("fcmp", inst.cond.value,
                               env.get(inst.a), env.get(inst.b)))
        elif isinstance(inst, Cvt):
            env.set(inst.dst, ("cvt", inst.kind, env.get(inst.a)))
        elif isinstance(inst, AddrGlobal):
            env.set(inst.dst, add(("glob", inst.name), lit(inst.offset)))
        elif isinstance(inst, AddrStack):
            env.set(inst.dst, ("slot", inst.slot.id))
        elif isinstance(inst, Load):
            addr = self._addr(inst.base, inst.offset, env)
            env.set(inst.dst,
                    self._load(addr, inst.size, inst.signed, state))
        elif isinstance(inst, FLoad):
            addr = self._addr(inst.base, inst.offset, env)
            env.set(inst.dst, self._fload(addr, inst.dst.cls, state))
        elif isinstance(inst, Store):
            self._store(inst, state)
        elif isinstance(inst, FStore):
            self._fstore(inst, state)
        elif isinstance(inst, CallInst):
            self._call(inst, state)
        else:
            raise Unknown(f"unsupported instruction {inst!r}")

    def _load(self, addr: Term, size: int, signed: bool,
              state: _PathState) -> Term:
        if self.mode != "summary":
            return mem_load(state.mem, size, signed, addr)
        where = frame_access(addr, self.stack_atoms)
        if where is None:
            return mem_load(state.mem, size, signed, addr, forward=True)
        if where == "mixed":
            raise Unknown(f"region '{self.region}': symbolic stack "
                          f"address in load")
        atom, off = where
        return state.frame.load(atom, off, size, self.region)

    def _fload(self, addr: Term, cls: str, state: _PathState) -> Term:
        if self.mode != "summary":
            return mem_fload(state.mem, cls, addr)
        where = frame_access(addr, self.stack_atoms)
        if where is None:
            return mem_fload(state.mem, cls, addr)
        if where == "mixed":
            raise Unknown(f"region '{self.region}': symbolic stack "
                          f"address in FP load")
        atom, off = where
        return state.frame.load(atom, off, ("f", cls), self.region)

    def _store(self, inst: Store, state: _PathState) -> None:
        addr = self._addr(inst.base, inst.offset, state.env)
        value = state.env.get(inst.src)
        if self.mode == "summary":
            where = frame_access(addr, self.stack_atoms)
            if where == "mixed":
                state.frame.invalidate()
                return
            if where is not None:
                atom, off = where
                state.frame.store(atom, off, inst.size, value)
                return
            if mentions_atoms(value, self.stack_atoms):
                raise Unknown(f"region '{self.region}': stack address "
                              f"stored to memory")
        state.effects.append(("store", inst.size, addr, value))
        state.mem = mem_store(state.mem, inst.size, addr, value)

    def _fstore(self, inst: FStore, state: _PathState) -> None:
        addr = self._addr(inst.base, inst.offset, state.env)
        value = state.env.get(inst.src)
        if self.mode == "summary":
            where = frame_access(addr, self.stack_atoms)
            if where == "mixed":
                state.frame.invalidate()
                return
            if where is not None:
                atom, off = where
                state.frame.store(atom, off, ("f", inst.src.cls), value)
                return
        state.effects.append(("fstore", inst.src.cls, addr, value))
        state.mem = mem_fstore(state.mem, inst.src.cls, addr, value)

    def _call(self, inst: CallInst, state: _PathState) -> None:
        env = state.env
        args = tuple(env.get(arg) for arg in inst.args)
        if self.mode == "summary":
            if any(mentions_atoms(arg, self.stack_atoms)
                   for arg in args):
                raise Unknown(
                    f"stack address escapes into call '{inst.name}'")
            code = TRAP_BUILTINS.get(inst.name)
            if code is not None:
                self._trap_builtin(inst, code, args, state)
                return
            if self.signatures is not None \
                    and inst.name not in self.signatures:
                raise Unknown(f"call to non-comparable function "
                              f"'{inst.name}'")
        index = state.calls
        state.calls += 1
        state.effects.append(("call", inst.name, args))
        state.mem = mem_call(state.mem, index)
        if inst.dst is not None:
            env.set(inst.dst, sym(("ret", self.region, index)))

    def _trap_builtin(self, inst: CallInst, code: int,
                      args: tuple[Term, ...], state: _PathState) -> None:
        """Builtin call, modelled exactly like the machine trap."""
        effect: Term = (("trap", code, args[0])
                        if code in _TRAP_READS_ARG
                        else ("trap", code))
        state.effects.append(effect)
        if inst.name == "exit":
            # The machine halts; anything after this call is dead.
            raise _Halted(self._leaf(state, "halt", None))
        if inst.dst is not None:
            if code in _TRAP_WRITES_RESULT:
                index = state.calls
                state.calls += 1
                state.env.set(inst.dst, sym(("trapret", index)))
            else:
                # PUTC leaves r2 (the argument) in place.
                state.env.set(inst.dst, args[0])


class _Halted(Exception):
    """Internal: a path ended in ``exit``/``trap 0``."""

    def __init__(self, leaf: Leaf) -> None:
        super().__init__("halted")
        self.leaf = leaf


def explore_region(func: Function, start: str, *, cuts: frozenset[str],
                   region: str, init: Callable[[VReg], Term],
                   mode: str = "pass",
                   max_steps: int = MAX_STEPS,
                   max_leaves: int = MAX_LEAVES) -> list[Leaf]:
    """All symbolic paths from ``start`` to the next cut points."""
    executor = IRExecutor(func, cuts=cuts, region=region, init=init,
                          mode=mode, max_steps=max_steps,
                          max_leaves=max_leaves)
    return executor.explore(start)


def summarize_ir_function(func: Function,
                          signatures: Mapping[str, int], *,
                          max_steps: int = MAX_STEPS,
                          max_leaves: int = MAX_LEAVES) -> list[Leaf]:
    """Whole-function observable summary of an IR function.

    Integer parameters are named by their argument registers
    (``("g", 2)`` …), matching :class:`MachineExecutor`'s register
    symbols, so IR and binary summaries are directly comparable.
    ``signatures`` maps each callable function to its integer-argument
    count (comparable signatures only).  Raises :class:`Unknown` for
    signatures the machine level cannot mirror (FP or stack-passed
    arguments) and for looping bodies.
    """
    if len(func.params) > 4 \
            or any(p.cls != "i" for p in func.params):
        raise Unknown(f"{func.name}: signature not comparable "
                      f"(FP or stack-passed arguments)")
    param_syms = {param: sym(("g", 2 + index))
                  for index, param in enumerate(func.params)}

    def init(reg: VReg) -> Term:
        term = param_syms.get(reg)
        if term is None:
            raise Unknown(f"{func.name}: read of undefined {reg}")
        return term

    if not func.blocks:
        raise Unknown(f"{func.name}: empty function")
    executor = IRExecutor(func, cuts=frozenset(), region="<fn>",
                          init=init, mode="summary",
                          signatures=signatures,
                          max_steps=max_steps, max_leaves=max_leaves)
    return executor.explore(func.blocks[0].label)


# --------------------------------------------------------- machine level


_LOAD_OPS = {Op.LD: (4, True), Op.LDH: (2, True), Op.LDHU: (2, False),
             Op.LDB: (1, True), Op.LDBU: (1, False)}
_STORE_OPS = {Op.ST: 4, Op.STH: 2, Op.STB: 1}
_ALU_OPS = {Op.ADD: "add", Op.SUB: "sub", Op.AND: "and", Op.OR: "or",
            Op.XOR: "xor", Op.SHL: "shl", Op.SHR: "shr",
            Op.SHRA: "shra"}
_ALU_IMM_OPS = {Op.ADDI: "add", Op.SUBI: "sub", Op.ANDI: "and",
                Op.ORI: "or", Op.XORI: "xor", Op.SHLI: "shl",
                Op.SHRI: "shr", Op.SHRAI: "shra"}
_CONTROL_OPS = frozenset({Op.BR, Op.BZ, Op.BNZ, Op.J, Op.JZ, Op.JNZ,
                          Op.JD, Op.JL, Op.JLD})


@dataclass
class _MachState:
    label: int
    regs: dict[int, Term]
    mem: Term
    effects: list[Term]
    guards: list[tuple[Term, bool]]
    visited: set[int] = field(default_factory=set)
    frame: Frame = field(default_factory=Frame)
    steps: int = 0
    calls: int = 0

    def fork(self) -> "_MachState":
        return _MachState(self.label, dict(self.regs), self.mem,
                          list(self.effects), list(self.guards),
                          set(self.visited), self.frame.fork(),
                          self.steps, self.calls)


class MachineExecutor:
    """Symbolic execution of one disassembled function body.

    Mirrors the interpreter in :mod:`repro.machine.cpu` op for op over
    the recovered :class:`~repro.analysis.cfg.BinaryCFG`, producing
    whole-function observable summaries in the same term language as
    :func:`summarize_ir_function`: argument registers are the shared
    ``("g", i)`` symbols, public memory the shared ``("mem",
    ("<fn>",))`` chain, call/trap results the shared ``("ret", ...)``/
    ``("trapret", ...)`` symbols with one path-ordered counter, and the
    stack frame (everything addressed off the entry stack pointer) is
    private.  The IR summary is *grounded* first
    (:func:`ground_leaves`), substituting link-time addresses for its
    global atoms, so both sides speak absolute addresses and term
    equality is meaningful.

    Assumptions the comparison inherits (all standard for this
    toolchain's output, all conservative — violations surface as
    :class:`Unknown`, never as a wrong "proven" verdict at the pass
    level): callee frames live strictly below the caller's stack
    pointer, in-frame accesses never alias parameter pointers or
    globals, and no frame address escapes.

    Floating-point instructions are not modelled: any FP op raises
    :class:`Unknown`.  The comparable-signature filter already excludes
    FP interfaces; functions using FP internally simply stay unproven.
    """

    def __init__(self, cfg: BinaryCFG, fstart: int, name: str,
                 signatures: Mapping[str, int], *,
                 max_steps: int = MAX_STEPS,
                 max_leaves: int = MAX_LEAVES) -> None:
        self.cfg = cfg
        self.fstart = fstart
        self.name = name
        self.signatures = signatures
        self.max_steps = max_steps
        self.max_leaves = max_leaves
        self.width = cfg.width
        self.zero_r0 = cfg.isa.name == "DLXe"
        self.blocks = {block.start: block
                       for block in cfg.function_blocks(fstart)}
        self.funcs_by_addr = {addr: fname for addr, fname in cfg.funcs}
        self.gp = cfg.exe.symbols.get("__gp")
        self.link_atom = sym(("g", REG_LINK))
        self.stack_atoms: frozenset[Term] = \
            frozenset({sym(("g", REG_SP))})

    # -- registers

    def _get(self, state: _MachState, index: int) -> Term:
        if index == 0 and self.zero_r0:
            return lit(0)
        term = state.regs.get(index)
        if term is None:
            if index == REG_GP and self.gp is not None:
                term = lit(self.gp)
            else:
                term = sym(("g", index))
            state.regs[index] = term
        return term

    def _set(self, state: _MachState, index: int, term: Term) -> None:
        if index == 0 and self.zero_r0:
            return                        # DLXe r0 is pinned to zero
        state.regs[index] = term

    # -- entry point

    def explore(self) -> list[Leaf]:
        if self.fstart not in self.blocks:
            raise Unknown(f"{self.name}: entry {self.fstart:#x} has no "
                          f"recovered block")
        mem0: Term = ("mem", ("<fn>",))
        pending = [_MachState(self.fstart, {}, mem0, [], [])]
        leaves: list[Leaf] = []
        while pending:
            state = pending.pop()
            try:
                self._run_path(state, pending, leaves)
            except _Halted as halted:
                leaves.append(halted.leaf)
            if len(leaves) > self.max_leaves:
                raise Unknown(f"{self.name}: more than "
                              f"{self.max_leaves} symbolic paths")
        return leaves

    def _run_path(self, state: _MachState, pending: list[_MachState],
                  leaves: list[Leaf]) -> None:
        while True:
            label = state.label
            if label in state.visited:
                raise Unknown(f"{self.name}: loop through block "
                              f"{label:#x}")
            state.visited.add(label)
            block = self.blocks.get(label)
            if block is None:
                raise Unknown(f"{self.name}: no block at {label:#x}")
            outcome = self._run_block(block, state, pending, leaves)
            if outcome is None:
                return
            state.label = outcome

    def _run_block(self, block: BasicBlock, state: _MachState,
                   pending: list[_MachState],
                   leaves: list[Leaf]) -> int | None:
        for pc, instr in block.instrs:
            state.steps += 1
            if state.steps > self.max_steps:
                raise Unknown(f"{self.name}: exceeded "
                              f"{self.max_steps} instructions")
            if instr.op in _CONTROL_OPS:
                return self._control(pc, instr, state, pending, leaves)
            self._eval(pc, instr, state)
        return self._target(block.end)

    def _target(self, addr: int) -> int:
        if addr not in self.blocks:
            raise Unknown(f"{self.name}: control reaches {addr:#x}, "
                          f"which has no block in this function")
        return addr

    # -- control flow

    def _control(self, pc: int, instr: Instr, state: _MachState,
                 pending: list[_MachState],
                 leaves: list[Leaf]) -> int | None:
        op = instr.op
        imm = instr.imm
        if op == Op.BR:
            assert imm is not None
            return self._target(pc + imm)
        if op == Op.JD:
            assert imm is not None
            return self._target(imm)
        if op in (Op.BZ, Op.BNZ):
            assert instr.rs1 is not None and imm is not None
            nonzero = compare(Cond.NE, self._get(state, instr.rs1),
                              lit(0))
            want = op == Op.BNZ
            return self._branch(nonzero, want, pc + imm,
                                pc + self.width, state, pending)
        if op == Op.J:
            assert instr.rs1 is not None
            return self._jump(self._get(state, instr.rs1), state,
                              leaves)
        if op in (Op.JZ, Op.JNZ):
            assert instr.rs1 is not None and instr.rs2 is not None
            nonzero = compare(Cond.NE, self._get(state, instr.rs2),
                              lit(0))
            want = op == Op.JNZ
            value = self._get(state, instr.rs1)
            if is_lit(nonzero):
                if bool(lit_value(nonzero)) == want:
                    return self._jump(value, state, leaves)
                return self._target(pc + self.width)
            branch = state.fork()
            branch.guards.append(guard(nonzero, want))
            outcome = self._jump(value, branch, leaves)
            if outcome is not None:
                branch.label = outcome
                pending.append(branch)
            state.guards.append(guard(nonzero, not want))
            return self._target(pc + self.width)
        if op in (Op.JL, Op.JLD):
            return self._call(pc, instr, state)
        raise Unknown(f"{self.name}: unmodelled control op "
                      f"{op.value}")          # pragma: no cover

    def _branch(self, nonzero: Term, want: bool, taken: int,
                fall: int, state: _MachState,
                pending: list[_MachState]) -> int:
        if is_lit(nonzero):
            return self._target(taken if bool(lit_value(nonzero)) == want
                                else fall)
        branch = state.fork()
        branch.guards.append(guard(nonzero, want))
        branch.label = self._target(taken)
        pending.append(branch)
        state.guards.append(guard(nonzero, not want))
        return self._target(fall)

    def _jump(self, value: Term, state: _MachState,
              leaves: list[Leaf]) -> int | None:
        if value == self.link_atom:
            leaves.append(Leaf(kind="ret", target=None,
                               guards=tuple(state.guards),
                               effects=tuple(state.effects),
                               ret=self._get(state, REG_RET),
                               mem=state.mem))
            return None
        if is_lit(value):
            return self._target(lit_value(value))
        raise Unknown(f"{self.name}: register-indirect jump to "
                      f"unresolved target")

    def _call(self, pc: int, instr: Instr, state: _MachState) -> int:
        if instr.op == Op.JL:
            assert instr.rs1 is not None
            target = self._get(state, instr.rs1)
            if not is_lit(target):
                raise Unknown(f"{self.name}: indirect call through "
                              f"unresolved register")
            addr = lit_value(target)
        else:
            assert instr.imm is not None
            addr = instr.imm
        callee = self.funcs_by_addr.get(addr)
        if callee is None:
            raise Unknown(f"{self.name}: call to unlabelled address "
                          f"{addr:#x}")
        arity = self.signatures.get(callee)
        if arity is None:
            raise Unknown(f"{self.name}: call to non-comparable "
                          f"function '{callee}'")
        args = tuple(self._get(state, REG_RET + index)
                     for index in range(arity))
        if any(mentions_atoms(arg, self.stack_atoms) for arg in args):
            raise Unknown(f"{self.name}: stack address escapes into "
                          f"call '{callee}'")
        index = state.calls
        state.calls += 1
        state.effects.append(("call", callee, args))
        state.mem = mem_call(state.mem, index)
        self._set(state, REG_LINK, lit(pc + self.width))
        self._set(state, REG_RET, sym(("ret", "<fn>", index)))
        for reg in range(REG_RET + 1, 10):   # caller-saved r3..r9
            state.regs[reg] = sym(("clob", index, reg))
        return self._target(pc + self.width)

    # -- straight-line evaluation

    def _eval(self, pc: int, instr: Instr, state: _MachState) -> None:
        op = instr.op
        rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
        if op in _ALU_OPS:
            assert rd is not None and rs1 is not None \
                and rs2 is not None
            self._set(state, rd, binop(_ALU_OPS[op],
                                       self._get(state, rs1),
                                       self._get(state, rs2)))
        elif op in _ALU_IMM_OPS:
            assert rd is not None and rs1 is not None \
                and imm is not None
            self._set(state, rd, binop(_ALU_IMM_OPS[op],
                                       self._get(state, rs1),
                                       lit(imm)))
        elif op == Op.NEG:
            assert rd is not None and rs1 is not None
            self._set(state, rd, neg(self._get(state, rs1)))
        elif op == Op.INV:
            assert rd is not None and rs1 is not None
            self._set(state, rd, inv(self._get(state, rs1)))
        elif op == Op.MV:
            assert rd is not None and rs1 is not None
            self._set(state, rd, self._get(state, rs1))
        elif op == Op.MVI:
            assert rd is not None and imm is not None
            self._set(state, rd, lit(imm))
        elif op == Op.MVHI:
            assert rd is not None and imm is not None
            self._set(state, rd, lit(imm << 16))
        elif op == Op.CMP:
            assert rd is not None and rs1 is not None \
                and rs2 is not None and instr.cond is not None
            self._set(state, rd, compare(instr.cond,
                                         self._get(state, rs1),
                                         self._get(state, rs2)))
        elif op == Op.CMPI:
            assert rd is not None and rs1 is not None \
                and imm is not None and instr.cond is not None
            self._set(state, rd, compare(instr.cond,
                                         self._get(state, rs1),
                                         lit(imm)))
        elif op == Op.MUL:
            assert rd is not None and rs1 is not None \
                and rs2 is not None
            self._set(state, rd, mul(self._get(state, rs1),
                                     self._get(state, rs2)))
        elif op in (Op.DIV, Op.REM):
            assert rd is not None and rs1 is not None \
                and rs2 is not None
            self._set(state, rd,
                      divrem("rem" if op == Op.REM else "div",
                             self._get(state, rs1),
                             self._get(state, rs2)))
        elif op in _LOAD_OPS:
            assert rd is not None and rs1 is not None \
                and imm is not None
            size, signed = _LOAD_OPS[op]
            addr = add(self._get(state, rs1), lit(imm))
            self._set(state, rd,
                      self._load(addr, size, signed, state))
        elif op == Op.LDC:
            assert rd is not None and imm is not None
            word = self.cfg.read_word(ldc_pool_addr(pc, imm))
            if word is None:
                raise Unknown(f"{self.name}: ldc pool word outside "
                              f"the text segment")
            self._set(state, rd, lit(word))
        elif op in _STORE_OPS:
            assert rs1 is not None and rs2 is not None \
                and imm is not None
            addr = add(self._get(state, rs1), lit(imm))
            self._store(addr, _STORE_OPS[op],
                        self._get(state, rs2), state)
        elif op == Op.TRAP:
            assert imm is not None
            self._trap(imm, state)
        elif op == Op.NOP:
            pass
        else:
            raise Unknown(f"{self.name}: unmodelled op {op.value}")

    def _load(self, addr: Term, size: int, signed: bool,
              state: _MachState) -> Term:
        where = frame_access(addr, self.stack_atoms)
        if where is None:
            return mem_load(state.mem, size, signed, addr,
                            forward=True)
        if where == "mixed":
            raise Unknown(f"{self.name}: symbolic stack address in "
                          f"load")
        atom, off = where
        return state.frame.load(atom, off, size, self.name)

    def _store(self, addr: Term, size: int, value: Term,
               state: _MachState) -> None:
        where = frame_access(addr, self.stack_atoms)
        if where == "mixed":
            state.frame.invalidate()
            return
        if where is not None:
            atom, off = where
            state.frame.store(atom, off, size, value)
            return
        if mentions_atoms(value, self.stack_atoms):
            raise Unknown(f"{self.name}: stack address stored to "
                          f"memory")
        state.effects.append(("store", size, addr, value))
        state.mem = mem_store(state.mem, size, addr, value)

    def _trap(self, code: int, state: _MachState) -> None:
        if code in _TRAP_READS_ARG:
            arg = self._get(state, REG_RET)
            if mentions_atoms(arg, self.stack_atoms):
                raise Unknown(f"{self.name}: stack address escapes "
                              f"into trap {code}")
            effect: Term = ("trap", code, arg)
        else:
            effect = ("trap", code)
        state.effects.append(effect)
        if code == 0:
            raise _Halted(Leaf(kind="halt", target=None,
                               guards=tuple(state.guards),
                               effects=tuple(state.effects),
                               ret=None, mem=state.mem))
        if code in _TRAP_WRITES_RESULT:
            index = state.calls
            state.calls += 1
            self._set(state, REG_RET, sym(("trapret", index)))


def summarize_binary_function(cfg: BinaryCFG, fstart: int, name: str,
                              signatures: Mapping[str, int], *,
                              max_steps: int = MAX_STEPS,
                              max_leaves: int = MAX_LEAVES) \
        -> list[Leaf]:
    """Whole-function observable summary of one binary function."""
    executor = MachineExecutor(cfg, fstart, name, signatures,
                               max_steps=max_steps,
                               max_leaves=max_leaves)
    return executor.explore()


# ------------------------------------------------------------- grounding


def ground_term(term: Term, symbols: Mapping[str, int]) -> Term:
    """Substitute link-time addresses for global atoms, re-normalized.

    Applied to an IR summary before comparing it against a machine
    summary: after grounding, both sides express addresses as absolute
    words and canonical-term equality is a meaningful equivalence.
    Re-running the normalizing constructors matters — a comparison of
    two now-literal addresses folds to the same 0/1 the machine side
    folded during execution.
    """
    tag = term[0]
    if tag in ("lit", "sym", "mem", "flit", "slot"):
        return term
    if tag == "glob":
        name = term[1]
        assert isinstance(name, str)
        addr = symbols.get(name)
        if addr is None:
            raise Unknown(f"no link-time address for '{name}'")
        return lit(addr)
    if tag == "sum":
        const, entries = term[1], term[2]
        assert isinstance(const, int) and isinstance(entries, tuple)
        out = lit(const)
        for atom, coeff in entries:
            out = add(out, _scale(ground_term(atom, symbols), coeff))
        return out
    if tag == "mul":
        return mul(ground_term(term[1], symbols),      # type: ignore[arg-type]
                   ground_term(term[2], symbols))      # type: ignore[arg-type]
    if tag in ("and", "or", "xor"):
        return bitop(tag, ground_term(term[1], symbols),   # type: ignore[arg-type]
                     ground_term(term[2], symbols))        # type: ignore[arg-type]
    if tag in ("shl", "shr", "shra"):
        return shift(tag, ground_term(term[1], symbols),   # type: ignore[arg-type]
                     ground_term(term[2], symbols))        # type: ignore[arg-type]
    if tag in ("div", "rem"):
        return divrem(tag, ground_term(term[1], symbols),  # type: ignore[arg-type]
                      ground_term(term[2], symbols))       # type: ignore[arg-type]
    if tag == "cmp":
        cond = term[1]
        assert isinstance(cond, str)
        return compare(_COND_BY_NAME[cond],
                       ground_term(term[2], symbols),      # type: ignore[arg-type]
                       ground_term(term[3], symbols))      # type: ignore[arg-type]
    if tag == "ld":
        size, signed = term[1], term[2]
        return ("ld", size, signed,
                ground_term(term[3], symbols),             # type: ignore[arg-type]
                ground_term(term[4], symbols))             # type: ignore[arg-type]
    if tag == "fld":
        return ("fld", term[1],
                ground_term(term[2], symbols),             # type: ignore[arg-type]
                ground_term(term[3], symbols))             # type: ignore[arg-type]
    if tag in ("st", "fst"):
        return (tag, ground_term(term[1], symbols),        # type: ignore[arg-type]
                term[2],
                ground_term(term[3], symbols),             # type: ignore[arg-type]
                ground_term(term[4], symbols))             # type: ignore[arg-type]
    if tag == "mcall":
        return ("mcall", ground_term(term[1], symbols),    # type: ignore[arg-type]
                term[2])
    if tag in ("fbin", "fcmp"):
        return (tag, term[1],
                ground_term(term[2], symbols),             # type: ignore[arg-type]
                ground_term(term[3], symbols))             # type: ignore[arg-type]
    if tag in ("fun", "cvt"):
        return (tag, term[1],
                ground_term(term[2], symbols))             # type: ignore[arg-type]
    raise Unknown(f"cannot ground term tag '{tag}'")


def _ground_effect(effect: Term, symbols: Mapping[str, int]) -> Term:
    tag = effect[0]
    if tag in ("store", "fstore"):
        return (tag, effect[1],
                ground_term(effect[2], symbols),           # type: ignore[arg-type]
                ground_term(effect[3], symbols))           # type: ignore[arg-type]
    if tag == "call":
        args = effect[2]
        assert isinstance(args, tuple)
        return ("call", effect[1],
                tuple(ground_term(arg, symbols) for arg in args))
    if tag == "trap":
        if len(effect) == 3:
            return ("trap", effect[1],
                    ground_term(effect[2], symbols))       # type: ignore[arg-type]
        return effect
    raise Unknown(f"cannot ground effect tag '{tag}'")


def ground_leaves(leaves: Iterable[Leaf],
                  symbols: Mapping[str, int]) -> list[Leaf]:
    """Ground an IR summary against one target's link-time layout.

    Guards that fold to a truth value after grounding are resolved:
    satisfied guards are dropped, contradicted guards make the whole
    path infeasible (its twin from the same fork survives).
    """
    grounded: list[Leaf] = []
    for leaf in leaves:
        guards: list[tuple[Term, bool]] = []
        feasible = True
        for term, want in leaf.guards:
            gterm = ground_term(term, symbols)
            if is_lit(gterm):
                if bool(lit_value(gterm)) != want:
                    feasible = False
                    break
                continue
            guards.append(guard(gterm, want))
        if not feasible:
            continue
        grounded.append(Leaf(
            kind=leaf.kind, target=leaf.target, guards=tuple(guards),
            effects=tuple(_ground_effect(effect, symbols)
                          for effect in leaf.effects),
            ret=(ground_term(leaf.ret, symbols)
                 if leaf.ret is not None else None)))
    return grounded

"""Static analysis: IR verifier, binary/assembly linter, lint driver.

Three layers keep the density/path-length experiments honest:

* :mod:`~repro.analysis.irverify` — compiler IR invariants (CFG shape,
  def-before-use dataflow, register classes, stack slots), also run
  between optimizer passes under ``--verify-ir``;
* :mod:`~repro.analysis.binlint` — encoding limits, round-trip
  byte-equality, control-flow targets, unreachable code, and
  calling-convention discipline of linked images;
* :mod:`~repro.analysis.driver` — orchestration over programs and
  benchmark suites, feeding ``repro lint``.
"""

from .binlint import lint_assembly, lint_executable
from .driver import (DEFAULT_TARGETS, LintReport, lint_program,
                     lint_suite)
from .findings import (Finding, RULES, Rule, Severity, finding,
                       has_errors, render_json, render_text, summarize)
from .irverify import verify_function, verify_module

__all__ = [
    "DEFAULT_TARGETS", "Finding", "LintReport", "RULES", "Rule",
    "Severity", "finding", "has_errors", "lint_assembly",
    "lint_executable", "lint_program", "lint_suite", "render_json",
    "render_text", "summarize", "verify_function", "verify_module",
]

"""Static analysis: IR verifier, linter, abstract interpreter, timing.

Five layers keep the density/path-length experiments honest:

* :mod:`~repro.analysis.irverify` — compiler IR invariants (CFG shape,
  def-before-use dataflow, register classes, stack slots), also run
  between optimizer passes under ``--verify-ir``;
* :mod:`~repro.analysis.binlint` — encoding limits, round-trip
  byte-equality, control-flow targets, unreachable code, and
  calling-convention discipline of linked images;
* :mod:`~repro.analysis.absint` — abstract interpretation over the
  recovered CFG (:mod:`~repro.analysis.cfg`): constant/range/stack
  analysis behind the ABS rules and the per-function summaries;
* :mod:`~repro.analysis.timing` — static per-block cycle/stall bounds
  from the shared pipeline model, cross-validated against the
  simulator (TIM rules);
* :mod:`~repro.analysis.xisa` — cross-ISA consistency of the same
  source compiled for D16 and DLXe (XISA rules);

with :mod:`~repro.analysis.driver` orchestrating them over programs
and benchmark suites, feeding ``repro lint``.
"""

from .absint import (AnalysisResult, FunctionSummary, Interval, SPRel,
                     ValueDomain, analyze_executable, resolve_cfg, solve)
from .binlint import lint_assembly, lint_executable
from .cfg import BasicBlock, BinaryCFG, build_cfg
from .driver import (DEFAULT_TARGETS, EXIT_ERRORS, EXIT_INTERNAL,
                     EXIT_OK, LintReport, cross_isa_suite, exit_code,
                     lint_program, lint_suite, timing_program,
                     timing_suite)
from .findings import (Finding, RULES, Rule, SCHEMA_VERSION, Severity,
                       finding, has_errors, render_json, render_text,
                       rule_doc_url, summarize)
from .irverify import verify_function, verify_module
from .timing import (BlockBounds, StaticBounds, TimingValidation,
                     block_stall_bounds, check_timing, static_bounds,
                     validate_run)
from .xisa import (CrossIsaReport, analyze_source, check_cross_isa,
                   compare_analyses)

__all__ = [
    "AnalysisResult", "BasicBlock", "BinaryCFG", "BlockBounds",
    "CrossIsaReport", "DEFAULT_TARGETS", "EXIT_ERRORS", "EXIT_INTERNAL",
    "EXIT_OK", "Finding", "FunctionSummary", "Interval", "LintReport",
    "RULES", "Rule", "SCHEMA_VERSION", "SPRel", "Severity",
    "StaticBounds", "TimingValidation", "ValueDomain",
    "analyze_executable", "analyze_source", "block_stall_bounds",
    "build_cfg", "check_cross_isa", "check_timing", "compare_analyses",
    "cross_isa_suite", "exit_code", "finding", "has_errors",
    "lint_assembly", "lint_executable", "lint_program", "lint_suite",
    "render_json", "render_text", "resolve_cfg", "rule_doc_url",
    "solve", "static_bounds", "summarize", "timing_program",
    "timing_suite", "validate_run", "verify_function", "verify_module",
]

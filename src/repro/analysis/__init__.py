"""Static analysis: IR verifier, linter, abstract interpreter, timing.

Several layers keep the density/path-length experiments honest:

* :mod:`~repro.analysis.irverify` — compiler IR invariants (CFG shape,
  def-before-use dataflow, register classes, stack slots), also run
  between optimizer passes under ``--verify-ir``;
* :mod:`~repro.analysis.binlint` — encoding limits, round-trip
  byte-equality, control-flow targets, unreachable code, and
  calling-convention discipline of linked images;
* :mod:`~repro.analysis.absint` — abstract interpretation over the
  recovered CFG (:mod:`~repro.analysis.cfg`): constant/range/stack
  analysis behind the ABS rules and the per-function summaries;
* :mod:`~repro.analysis.timing` — static per-block cycle/stall bounds
  from the shared pipeline model, cross-validated against the
  simulator (TIM001/TIM002);
* :mod:`~repro.analysis.loops` + :mod:`~repro.analysis.wcet` —
  dominator-based loop recovery, loop-bound inference over a symbolic
  one-iteration domain, and interprocedural [BCET, WCET] composition
  bracketing whole runs (LOOP001, TIM003-005);
* :mod:`~repro.analysis.icache` — must/may/persistence abstract
  interpretation of the direct-mapped sub-blocked I-cache, composed
  into cache-aware miss/cycle bounds and validated against simulated
  replay (CACHE001-005);
* :mod:`~repro.analysis.density` — static D16-compressibility
  estimate of DLXe images, instruction by instruction (DEN001);
* :mod:`~repro.analysis.xisa` — cross-ISA consistency of the same
  source compiled for D16 and DLXe (XISA rules);
* :mod:`~repro.analysis.symex` + :mod:`~repro.analysis.equiv` —
  solver-free symbolic execution over the compiler IR and both
  machine ISAs, driving per-pass translation validation of the
  optimizer and IR-vs-binary observable-effect matching (EQ rules);

with :mod:`~repro.analysis.driver` orchestrating them over programs
and benchmark suites, feeding ``repro lint``.
"""

from .absint import (AnalysisResult, FunctionSummary, Interval, SPRel,
                     ValueDomain, analyze_executable, resolve_cfg, solve)
from .binlint import lint_assembly, lint_executable
from .cfg import BasicBlock, BinaryCFG, build_cfg
from .density import (FunctionDensity, ProgramDensity, analyze_density,
                      estimate_halfwords, fused_constant_pair)
from .driver import (DEFAULT_MISS_PENALTY, DEFAULT_TARGETS, EXIT_ERRORS,
                     EXIT_INTERNAL, EXIT_OK, LintReport, cross_isa_suite,
                     density_suite, exit_code, icache_program,
                     icache_suite, lint_program, lint_suite,
                     timing_program, timing_suite, tv_suite,
                     vuln_program, vuln_suite, wcet_program, wcet_suite)
from .equiv import (BinaryCheck, MutantResult, PassCheck, TvReport,
                    check_binary_program, check_pass, mutation_campaign,
                    tv_program, validate_passes)
from .findings import (Finding, RULES, Rule, SCHEMA_VERSION, Severity,
                       finding, has_errors, render_json, render_text,
                       rule_doc_url, summarize)
from .icache import (FetchSite, ICacheAnalysis, ICacheValidation,
                     SiteClass, analyze_icache, validate_icache)
from .irverify import verify_function, verify_module
from .liveness import (DeadStore, DeadWrite, FunctionLiveness, LoadSite,
                       LivenessAnalysis, analyze_liveness,
                       liveness_findings)
from .vuln import (CellVulnerability, MaskingOracle, SiteVerdict,
                   VulnSummary, avf_summary, build_oracle,
                   check_soundness, classify_cell, vuln_findings)
from .loops import DomTree, Loop, LoopForest, dominator_tree, find_loops
from .timing import (BlockBounds, StaticBounds, TimingValidation,
                     block_stall_bounds, check_timing, exit_seed,
                     predecessor_seed, static_bounds, validate_run)
from .wcet import (DEFAULT_SLACK, FunctionTiming, LoopBound, ProgramWcet,
                   WcetValidation, analyze_wcet, check_wcet,
                   infer_loop_bound, validate_wcet)
from .symex import (Leaf, Term, Unknown, explore_region, ground_leaves,
                    is_ground, single_def_terms,
                    summarize_binary_function, summarize_ir_function)
from .xisa import (CrossIsaReport, analyze_source, check_cross_isa,
                   compare_analyses)

__all__ = [
    "AnalysisResult", "BasicBlock", "BinaryCFG", "BinaryCheck",
    "BlockBounds", "CellVulnerability",
    "CrossIsaReport", "DEFAULT_MISS_PENALTY", "DEFAULT_SLACK",
    "DEFAULT_TARGETS", "DeadStore", "DeadWrite", "DomTree",
    "EXIT_ERRORS", "EXIT_INTERNAL", "EXIT_OK", "FetchSite", "Finding",
    "FunctionDensity", "FunctionLiveness", "FunctionSummary",
    "FunctionTiming",
    "ICacheAnalysis", "ICacheValidation", "Interval", "Leaf",
    "LintReport", "LivenessAnalysis", "LoadSite", "Loop", "LoopBound",
    "LoopForest", "MaskingOracle", "MutantResult",
    "PassCheck", "ProgramDensity",
    "ProgramWcet", "RULES", "Rule", "SCHEMA_VERSION", "SPRel",
    "Severity", "SiteClass", "SiteVerdict", "StaticBounds", "Term",
    "TimingValidation", "TvReport", "Unknown",
    "ValueDomain", "VulnSummary",
    "WcetValidation", "analyze_density", "analyze_executable",
    "analyze_icache", "analyze_liveness",
    "analyze_source", "analyze_wcet", "avf_summary",
    "block_stall_bounds", "build_cfg", "build_oracle",
    "check_binary_program", "check_cross_isa", "check_pass",
    "check_soundness",
    "check_timing", "check_wcet", "classify_cell", "compare_analyses",
    "cross_isa_suite", "density_suite", "dominator_tree",
    "estimate_halfwords", "exit_code", "exit_seed", "explore_region",
    "find_loops",
    "finding", "fused_constant_pair", "ground_leaves", "has_errors",
    "icache_program",
    "icache_suite", "infer_loop_bound", "is_ground",
    "lint_assembly", "lint_executable", "lint_program", "lint_suite",
    "liveness_findings", "mutation_campaign",
    "predecessor_seed", "render_json", "render_text", "resolve_cfg",
    "rule_doc_url", "single_def_terms", "solve", "static_bounds",
    "summarize", "summarize_binary_function", "summarize_ir_function",
    "timing_program", "timing_suite", "tv_program", "tv_suite",
    "validate_icache", "validate_passes", "validate_run",
    "validate_wcet",
    "verify_function", "verify_module", "vuln_findings",
    "vuln_program", "vuln_suite", "wcet_program", "wcet_suite",
]

"""Static analysis: IR verifier, linter, abstract interpreter, timing.

Several layers keep the density/path-length experiments honest:

* :mod:`~repro.analysis.irverify` — compiler IR invariants (CFG shape,
  def-before-use dataflow, register classes, stack slots), also run
  between optimizer passes under ``--verify-ir``;
* :mod:`~repro.analysis.binlint` — encoding limits, round-trip
  byte-equality, control-flow targets, unreachable code, and
  calling-convention discipline of linked images;
* :mod:`~repro.analysis.absint` — abstract interpretation over the
  recovered CFG (:mod:`~repro.analysis.cfg`): constant/range/stack
  analysis behind the ABS rules and the per-function summaries;
* :mod:`~repro.analysis.timing` — static per-block cycle/stall bounds
  from the shared pipeline model, cross-validated against the
  simulator (TIM001/TIM002);
* :mod:`~repro.analysis.loops` + :mod:`~repro.analysis.wcet` —
  dominator-based loop recovery, loop-bound inference over a symbolic
  one-iteration domain, and interprocedural [BCET, WCET] composition
  bracketing whole runs (LOOP001, TIM003-005);
* :mod:`~repro.analysis.icache` — must/may/persistence abstract
  interpretation of the direct-mapped sub-blocked I-cache, composed
  into cache-aware miss/cycle bounds and validated against simulated
  replay (CACHE001-005);
* :mod:`~repro.analysis.density` — static D16-compressibility
  estimate of DLXe images, instruction by instruction (DEN001);
* :mod:`~repro.analysis.xisa` — cross-ISA consistency of the same
  source compiled for D16 and DLXe (XISA rules);

with :mod:`~repro.analysis.driver` orchestrating them over programs
and benchmark suites, feeding ``repro lint``.
"""

from .absint import (AnalysisResult, FunctionSummary, Interval, SPRel,
                     ValueDomain, analyze_executable, resolve_cfg, solve)
from .binlint import lint_assembly, lint_executable
from .cfg import BasicBlock, BinaryCFG, build_cfg
from .density import (FunctionDensity, ProgramDensity, analyze_density,
                      estimate_halfwords, fused_constant_pair)
from .driver import (DEFAULT_MISS_PENALTY, DEFAULT_TARGETS, EXIT_ERRORS,
                     EXIT_INTERNAL, EXIT_OK, LintReport, cross_isa_suite,
                     density_suite, exit_code, icache_program,
                     icache_suite, lint_program, lint_suite,
                     timing_program, timing_suite, wcet_program,
                     wcet_suite)
from .findings import (Finding, RULES, Rule, SCHEMA_VERSION, Severity,
                       finding, has_errors, render_json, render_text,
                       rule_doc_url, summarize)
from .icache import (FetchSite, ICacheAnalysis, ICacheValidation,
                     SiteClass, analyze_icache, validate_icache)
from .irverify import verify_function, verify_module
from .loops import DomTree, Loop, LoopForest, dominator_tree, find_loops
from .timing import (BlockBounds, StaticBounds, TimingValidation,
                     block_stall_bounds, check_timing, exit_seed,
                     predecessor_seed, static_bounds, validate_run)
from .wcet import (DEFAULT_SLACK, FunctionTiming, LoopBound, ProgramWcet,
                   WcetValidation, analyze_wcet, check_wcet,
                   infer_loop_bound, validate_wcet)
from .xisa import (CrossIsaReport, analyze_source, check_cross_isa,
                   compare_analyses)

__all__ = [
    "AnalysisResult", "BasicBlock", "BinaryCFG", "BlockBounds",
    "CrossIsaReport", "DEFAULT_MISS_PENALTY", "DEFAULT_SLACK",
    "DEFAULT_TARGETS", "DomTree",
    "EXIT_ERRORS", "EXIT_INTERNAL", "EXIT_OK", "FetchSite", "Finding",
    "FunctionDensity", "FunctionSummary", "FunctionTiming",
    "ICacheAnalysis", "ICacheValidation", "Interval",
    "LintReport", "Loop", "LoopBound", "LoopForest", "ProgramDensity",
    "ProgramWcet", "RULES", "Rule", "SCHEMA_VERSION", "SPRel",
    "Severity", "SiteClass", "StaticBounds", "TimingValidation",
    "ValueDomain",
    "WcetValidation", "analyze_density", "analyze_executable",
    "analyze_icache",
    "analyze_source", "analyze_wcet", "block_stall_bounds", "build_cfg",
    "check_cross_isa", "check_timing", "check_wcet", "compare_analyses",
    "cross_isa_suite", "density_suite", "dominator_tree",
    "estimate_halfwords", "exit_code", "exit_seed", "find_loops",
    "finding", "fused_constant_pair", "has_errors", "icache_program",
    "icache_suite", "infer_loop_bound",
    "lint_assembly", "lint_executable", "lint_program", "lint_suite",
    "predecessor_seed", "render_json", "render_text", "resolve_cfg",
    "rule_doc_url", "solve", "static_bounds", "summarize",
    "timing_program", "timing_suite", "validate_icache", "validate_run",
    "validate_wcet",
    "verify_function", "verify_module", "wcet_program", "wcet_suite",
]

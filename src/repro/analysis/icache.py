"""Static I-cache must/may/persistence analysis with cache-aware WCET.

Classifies every reachable instruction fetch of a linked image --
per :class:`~repro.cache.cache.CacheConfig` -- as **always-hit**,
**always-miss**, **persistent** (at most one miss per loop entry), or
**not-classified**, by abstract interpretation over the shared
:class:`~repro.analysis.cfg.BinaryCFG` in the style of
Ferdinand-Wilhelm cache analysis.  Because the modeled cache is
direct-mapped, the abstract domains are exact per line (no LRU ages):

* **must** maps a cache line to ``(tag, submask)``: the tag the line
  *certainly* holds and a lower bound on its valid sub-block bits.
  An access whose (tag, sub) is covered is an always-hit; a must entry
  with a *different* tag proves a conflict miss.
* **may** maps a cache line to ``{tag: submask}``: an upper bound on
  what the line can hold.  An access whose bit is provably absent is
  an always-miss (this is what makes cold-start and post-replacement
  misses provable).

Fetch *sites* are per-block word runs: consecutive instructions in one
basic block sharing a word address form one site, which is exactly the
consecutive-word deduplication the simulator applies to the fetch
stream (two 16-bit D16 instructions in one word cost one fetch).
Literal-pool words never appear in blocks, so the existing code/data
classification excludes them by construction.

The miss *upper bound* composes like the WCET: per-block miss costs
(always-miss + not-classified sites), callee bounds folded into call
blocks, proven loops collapsed to ``bound x longest-iteration`` --
with persistent sites charged once per entry of their loop via the
``loop_extra`` hook of :func:`~repro.analysis.wcet._func_wcet`.  Any
structural obstruction (unresolved call, recursion, unbounded loop,
unknown indirect jump) makes the bound refuse (``None``) exactly like
TIM004/LOOP001 do for cycles -- never silently unsound.

:func:`validate_icache` replays a recorded instruction trace through
the real :class:`~repro.cache.cache.Cache` (via the vectorized
first-demand compression of :mod:`repro.cache.vector` when numpy is
available) and checks the three soundness obligations: no always-hit
fetch ever misses (CACHE001), simulated misses never exceed a finite
static bound and observed cycles stay inside the cache-aware interval
(CACHE002), and the analysis's assumed prefetch semantics agree with
the simulated cache access by access (CACHE005).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, NamedTuple, Sequence

from ..cache.cache import Cache, CacheConfig
from ..machine.stats import RunStats
from .cfg import BasicBlock
from .findings import Finding, finding
from .wcet import ProgramWcet, _call_sccs, _FuncInfo, _func_wcet

#: ``Cache`` initializes tags to -1: a cold line provably holds no
#: real (non-negative) tag, which is what makes cold misses provable.
_EMPTY_TAG = -1

#: How many example findings one validation emits per rule before
#: summarizing (a broken analysis would otherwise flood the report).
_MAX_EXAMPLES = 5


class SiteClass(enum.Enum):
    """Classification of one static fetch site under one config."""

    ALWAYS_HIT = "always-hit"
    ALWAYS_MISS = "always-miss"
    PERSISTENT = "persistent"
    NOT_CLASSIFIED = "not-classified"


class FetchSite(NamedTuple):
    """One static instruction-fetch site (a per-block word run)."""

    pc: int           # first instruction address of the run
    word: int         # word-aligned fetch address
    func: int         # owning function start
    block: int        # owning basic-block start
    line: int         # cache line (under the analyzed config)
    tag: int
    sub: int


class _Geometry(NamedTuple):
    block_shift: int
    line_mask: int
    line_shift: int
    sub_shift: int
    sub_mask: int
    nsubs: int


def _geometry(config: CacheConfig) -> _Geometry:
    num_lines = config.num_lines
    return _Geometry(
        block_shift=config.block.bit_length() - 1,
        line_mask=num_lines - 1,
        line_shift=num_lines.bit_length() - 1,
        sub_shift=config.sub_block.bit_length() - 1,
        sub_mask=config.subs_per_block - 1,
        nsubs=config.subs_per_block)


def _decompose(word: int, g: _Geometry) -> tuple[int, int, int]:
    """(line, tag, sub) of a word address -- mirrors ``Cache.access``."""
    bi = word >> g.block_shift
    return (bi & g.line_mask, bi >> g.line_shift,
            (word >> g.sub_shift) & g.sub_mask)


# ---------------------------------------------------------------------------
# Abstract cache states.
# ---------------------------------------------------------------------------


class _State:
    """One abstract cache state: must + may, with a cold-start mode.

    ``cold`` flips the meaning of *missing* lines: in a cold state a
    missing line is known empty (tag -1, nothing valid / nothing
    possibly cached); otherwise it is unknown (no must guarantee, any
    content possible).  The program entry starts cold -- every other
    function entry starts fully unknown.
    """

    __slots__ = ("must", "may", "cold")

    def __init__(self,
                 must: dict[int, tuple[int, int] | None] | None = None,
                 may: dict[int, dict[int, int] | None] | None = None,
                 cold: bool = False):
        # must: line -> (tag, submask) | None (no guarantee)
        # may:  line -> {tag: submask} | None (anything possible)
        self.must: dict[int, tuple[int, int] | None] = \
            must if must is not None else {}
        self.may: dict[int, dict[int, int] | None] = \
            may if may is not None else {}
        self.cold = cold

    def copy(self) -> _State:
        return _State(dict(self.must),
                      {ln: (None if v is None else dict(v))
                       for ln, v in self.may.items()},
                      self.cold)

    def must_at(self, line: int) -> tuple[int, int] | None:
        if line in self.must:
            return self.must[line]
        return (_EMPTY_TAG, 0) if self.cold else None

    def may_at(self, line: int) -> dict[int, int] | None:
        if line in self.may:
            return self.may[line]
        return {} if self.cold else None

    def clear(self) -> None:
        """Forget everything (unresolvable callee)."""
        self.must.clear()
        self.may.clear()
        self.cold = False

    def damage(self, lines: Iterable[int]) -> None:
        """Forget the given lines (resolved callee's footprint)."""
        for line in lines:
            self.must[line] = None
            self.may[line] = None
        self.normalize()

    def normalize(self) -> None:
        """Drop entries equal to the missing-line default."""
        must_default = (_EMPTY_TAG, 0) if self.cold else None
        for line in [ln for ln, v in self.must.items()
                     if v == must_default]:
            del self.must[line]
        may_default: dict[int, int] | None = \
            {} if self.cold else None
        for line in [ln for ln, v in self.may.items()
                     if v == may_default]:
            del self.may[line]

    def key(self) -> tuple[object, ...]:
        """Hashable snapshot for fixpoint convergence checks."""
        return (self.cold, tuple(sorted(self.must.items())),
                tuple(sorted(
                    (ln, None if v is None
                     else tuple(sorted(v.items())))
                    for ln, v in self.may.items())))


def _join(a: _State, b: _State) -> _State:
    """Control-flow join: intersect must, union may.

    Missing lines need no enumeration: the join of the two defaults is
    always the default of the joined state (cold iff both are cold).
    """
    out = _State(cold=a.cold and b.cold)
    for line in set(a.must) | set(b.must) | set(a.may) | set(b.may):
        ma, mb = a.must_at(line), b.must_at(line)
        if ma is not None and mb is not None and ma[0] == mb[0]:
            out.must[line] = (ma[0], ma[1] & mb[1])
        else:
            out.must[line] = None
        pa, pb = a.may_at(line), b.may_at(line)
        if pa is None or pb is None:
            out.may[line] = None
        else:
            merged = dict(pa)
            for tag, mask in pb.items():
                merged[tag] = merged.get(tag, 0) | mask
            out.may[line] = merged
    out.normalize()
    return out


def _access(state: _State, site: FetchSite,
            g: _Geometry) -> tuple[bool, bool]:
    """Abstract transfer of one fetch; returns (hit proof, miss proof).

    Mirrors ``Cache.access`` for reads: a tag mismatch installs the new
    tag with all valid bits cleared; a miss validates the demanded
    sub-block *and* its wrap-around successor (prefetch).  After any
    access the line's tag is certainly the site's tag, so the may
    component always collapses to a single-tag entry.
    """
    line, tag, sub = site.line, site.tag, site.sub
    bit = 1 << sub
    nbit = 1 << ((sub + 1) % g.nsubs)
    m = state.must_at(line)
    p = state.may_at(line)
    hit = m is not None and m[0] == tag and bool(m[1] & bit)
    conflict = m is not None and m[0] != tag
    may_miss = p is not None and not (p.get(tag, 0) & bit)
    miss = conflict or may_miss
    base = m[1] if (m is not None and m[0] == tag) else 0
    state.must[line] = (tag, base | bit | (nbit if miss else 0))
    if conflict:
        upper = bit | nbit            # replacement: exactly these bits
    elif p is not None:
        upper = p.get(tag, 0) | bit | (0 if hit else nbit)
    else:
        upper = (1 << g.nsubs) - 1
    state.may[line] = {tag: upper}
    return hit, miss


# ---------------------------------------------------------------------------
# Sites, damage sets, per-function fixpoints.
# ---------------------------------------------------------------------------


def _block_word_runs(block: BasicBlock) -> list[tuple[int, int]]:
    """(first pc, word) of each consecutive-word run of a block.

    This is the static image of the simulator's fetch-stream word
    deduplication: a D16 word holding two instructions is one site.
    """
    runs: list[tuple[int, int]] = []
    prev = None
    for addr, _instr in block.instrs:
        word = addr & ~3
        if word != prev:
            runs.append((addr, word))
            prev = word
    return runs


def _taint_reasons(info: _FuncInfo) -> list[str]:
    """Why this function's intra-procedural flow is not fully known.

    An indirect non-call, non-return jump (or an edge leaving the
    function span) can re-enter anywhere, so no per-block abstract
    state inside the function is trustworthy: every site degrades to
    not-classified and the function's misses are unboundable.
    """
    reasons = []
    for blk in info.blocks.values():
        if blk.indirect and not blk.is_return and not blk.is_call:
            reasons.append(
                f"indirect jump at {blk.terminator[0]:#x}")
        if any(s not in info.blocks for s in blk.succs):
            reasons.append(
                f"control flow leaves the function at "
                f"{blk.terminator[0]:#x}")
    return reasons


def _damage_sets(infos: dict[int, _FuncInfo],
                 sites: dict[int, dict[int, list[FetchSite]]],
                 tainted: dict[int, list[str]],
                 ) -> dict[int, dict[int, set[int]] | None]:
    """Transitive cache footprint of each function.

    Maps function start to ``{line: {tags}}`` -- every (line, tag) any
    fetch in the function or its transitive callees can touch -- or
    ``None`` when the footprint is unknowable (taint, unresolved
    call).  Computed callees-first over call-graph SCCs; a recursive
    SCC shares the union of its members.
    """
    edges = {f: {c for c in info.timing.callees if c in infos}
             for f, info in infos.items()}
    damage: dict[int, dict[int, set[int]] | None] = {}
    for scc in _call_sccs(set(infos), edges):
        total: dict[int, set[int]] | None = {}
        for f in scc:
            info = infos[f]
            if tainted[f] or any(c is None
                                 for c in info.call_of.values()):
                total = None
                break
            for run_sites in sites[f].values():
                for site in run_sites:
                    total.setdefault(site.line, set()).add(site.tag)
            for c in info.timing.callees:
                if c in scc or c not in infos:
                    continue
                d = damage.get(c)
                if d is None:
                    total = None
                    break
                for line, tags in d.items():
                    total.setdefault(line, set()).update(tags)
            if total is None:
                break
        for f in scc:
            damage[f] = total
    return damage


def _solve_function(info: _FuncInfo, g: _Geometry,
                    sites: dict[int, list[FetchSite]],
                    damage: dict[int, dict[int, set[int]] | None],
                    cold: bool) -> dict[int, _State]:
    """Fixpoint over the function's blocks; returns block entry states."""
    blocks = info.blocks
    entry = info.timing.start
    pos = {b: i for i, b in enumerate(info.forest.dom.rpo)}
    states: dict[int, _State] = {entry: _State(cold=cold)}
    pending = {entry}
    while pending:
        b = min(pending, key=lambda n: pos.get(n, len(pos)))
        pending.discard(b)
        out = states[b].copy()
        for site in sites.get(b, ()):
            _access(out, site, g)
        blk = blocks[b]
        if blk.is_call:
            callee = info.call_of.get(b)
            d = damage.get(callee) if callee is not None else None
            if d is None:
                out.clear()
            else:
                out.damage(d)
        for s in blk.succs:
            if s not in blocks:
                continue
            if s in states:
                joined = _join(states[s], out)
                if joined.key() != states[s].key():
                    states[s] = joined
                    pending.add(s)
            else:
                states[s] = out.copy()
                pending.add(s)
    return states


# ---------------------------------------------------------------------------
# Whole-program analysis.
# ---------------------------------------------------------------------------


@dataclass
class ICacheAnalysis:
    """Per-config fetch classification plus the composed miss bound."""

    program: ProgramWcet
    config: CacheConfig
    #: (block start, word) -> site / class; the key is unique because
    #: a block visits each word in one consecutive run.
    sites: dict[tuple[int, int], FetchSite]
    classes: dict[tuple[int, int], SiteClass]
    #: Persistent sites' chosen loop header (outermost qualifying).
    ps_loop: dict[tuple[int, int], int]
    #: Every instruction address -> its site key (for trace attribution).
    site_of_pc: dict[int, tuple[int, int]]
    #: Per-function fetch-miss upper bound (None: not boundable).
    miss_ub_of: dict[int, int | None]
    #: Loop-bound-free whole-text bound: when no two text words
    #: conflict under this config, every sub-block misses at most
    #: once, so the distinct-sub-block count of the text range bounds
    #: total misses for *any* execution (None: text conflicts).
    geometric_ub: int | None
    #: Whole-program fetch-miss upper bound: the tightest sound bound
    #: available (entry-function composition and/or geometric).
    miss_ub: int | None
    #: Functions without a finite miss bound, with the reason.
    unbounded: dict[int, str]
    #: Did the entry function get the cold-cache entry state?
    cold_entry: bool
    findings: list[Finding] = field(default_factory=list)

    @property
    def counts(self) -> dict[str, int]:
        out = {cls.value: 0 for cls in SiteClass}
        for cls in self.classes.values():
            out[cls.value] += 1
        return out

    def cycle_bounds(self, penalty: int) -> tuple[int, int | None]:
        """Cache-aware [BCET, WCET] under the given miss penalty.

        The BCET stays cache-blind (every fetch may hit: sound and
        exactly the seed's lower bound); the WCET charges ``penalty``
        per statically possible miss.  Summing the two path maxima is
        sound -- max(cycles) + penalty * max(misses) dominates the
        maximum of their sum -- at the cost of some looseness.
        """
        wcet = self.program.wcet
        if wcet is None or self.miss_ub is None:
            return self.program.bcet, None
        return self.program.bcet, wcet + penalty * self.miss_ub

    def to_record(self) -> dict:
        cfg = self.config
        return {"size": cfg.size, "block": cfg.block,
                "sub_block": cfg.sub_block, "sites": len(self.sites),
                "classes": self.counts, "miss_ub": self.miss_ub,
                "geometric_ub": self.geometric_ub,
                "cold_entry": self.cold_entry,
                "unbounded_functions": len(self.unbounded)}


def analyze_icache(program: ProgramWcet,
                   config: CacheConfig) -> ICacheAnalysis:
    """Classify every fetch site of ``program`` under ``config``."""
    infos: dict[int, _FuncInfo] = program.infos
    cfg = program.cfg
    g = _geometry(config)

    # ---- static fetch sites, one per per-block word run.
    func_sites: dict[int, dict[int, list[FetchSite]]] = {}
    sites: dict[tuple[int, int], FetchSite] = {}
    site_of_pc: dict[int, tuple[int, int]] = {}
    for fstart, info in infos.items():
        by_block: dict[int, list[FetchSite]] = {}
        for b, blk in info.blocks.items():
            runs = []
            for pc, word in _block_word_runs(blk):
                line, tag, sub = _decompose(word, g)
                runs.append(FetchSite(pc=pc, word=word, func=fstart,
                                      block=b, line=line, tag=tag,
                                      sub=sub))
            by_block[b] = runs
            for site in runs:
                sites[(b, site.word)] = site
            current = None
            for pc, _instr in blk.instrs:
                word = pc & ~3
                if current is None or current[1] != word:
                    current = (b, word)
                site_of_pc[pc] = current
        func_sites[fstart] = by_block

    tainted = {f: _taint_reasons(info) for f, info in infos.items()}
    damage = _damage_sets(infos, func_sites, tainted)

    # ---- the entry function alone may assume a cold cache, and only
    # when nothing can call back into it.
    entry_func = program.entry_func
    called = {c for info in infos.values() for c in info.timing.callees}
    any_unresolved = any(c is None for info in infos.values()
                         for c in info.call_of.values())
    cold_entry = (entry_func is not None and entry_func not in called
                  and not any_unresolved)

    findings: list[Finding] = []
    classes: dict[tuple[int, int], SiteClass] = {}
    ps_loop: dict[tuple[int, int], int] = {}
    for fstart, info in infos.items():
        by_block = func_sites[fstart]
        if tainted[fstart]:
            for runs in by_block.values():
                for site in runs:
                    classes[(site.block, site.word)] = \
                        SiteClass.NOT_CLASSIFIED
            continue
        states = _solve_function(
            info, g, by_block, damage,
            cold=cold_entry and fstart == entry_func)
        for b, runs in by_block.items():
            entry_state = states.get(b)
            st = entry_state.copy() if entry_state is not None \
                else _State()
            for site in runs:
                hit, miss = _access(st, site, g)
                key = (site.block, site.word)
                if hit and miss:
                    findings.append(finding(
                        "CACHE001", cfg.describe(site.pc),
                        f"internal contradiction: fetch at "
                        f"{site.pc:#x} proved both always-hit and "
                        f"always-miss"))
                    classes[key] = SiteClass.NOT_CLASSIFIED
                elif hit:
                    classes[key] = SiteClass.ALWAYS_HIT
                elif miss:
                    classes[key] = SiteClass.ALWAYS_MISS
                else:
                    classes[key] = SiteClass.NOT_CLASSIFIED

        # ---- persistence: a not-classified site is first-miss-only
        # within a loop in which no other tag touches its line (and no
        # call can).  Outermost qualifying loop wins: one miss per
        # entry of the biggest region is the strongest claim.
        loops = sorted(info.forest.loops.values(),
                       key=lambda lp: lp.depth)
        for loop in loops:
            touch: dict[int, set[int]] | None = {}
            for b in loop.body:
                if b not in info.blocks:
                    continue
                for site in by_block.get(b, ()):
                    touch.setdefault(site.line, set()).add(site.tag)
                blk = info.blocks[b]
                if blk.is_call:
                    callee = info.call_of.get(b)
                    d = damage.get(callee) if callee is not None \
                        else None
                    if d is None:
                        touch = None
                        break
                    for line, tags in d.items():
                        touch.setdefault(line, set()).update(tags)
            if touch is None:
                continue
            for b in loop.body:
                for site in by_block.get(b, ()):
                    key = (site.block, site.word)
                    if classes[key] is not SiteClass.NOT_CLASSIFIED \
                            or key in ps_loop:
                        continue
                    if touch.get(site.line) == {site.tag}:
                        classes[key] = SiteClass.PERSISTENT
                        ps_loop[key] = loop.header

    # ---- miss upper bounds, composed bottom-up like the WCET.
    miss_ub_of: dict[int, int | None] = {}
    unbounded: dict[int, str] = {}
    edges = {f: {c for c in info.timing.callees if c in infos}
             for f, info in infos.items()}
    sccs = _call_sccs(set(infos), edges)
    in_cycle = {f for scc in sccs for f in scc
                if len(scc) > 1 or scc[0] in edges[scc[0]]}
    for scc in sccs:
        for f in scc:
            info = infos[f]
            reason = None
            if tainted[f]:
                reason = tainted[f][0]
            elif f in in_cycle:
                reason = "recursive"
            elif any(c is None for c in info.call_of.values()):
                reason = "unresolved call"
            else:
                for c in info.timing.callees:
                    if miss_ub_of.get(c) is None:
                        reason = (f"callee "
                                  f"'{infos[c].timing.name}' has no "
                                  f"finite miss bound")
                        break
            ub = None
            if reason is None:
                costs = {}
                for b in info.blocks:
                    cost = sum(
                        1 for site in func_sites[f].get(b, ())
                        if classes[(site.block, site.word)] in
                        (SiteClass.ALWAYS_MISS,
                         SiteClass.NOT_CLASSIFIED))
                    callee = info.call_of.get(b)
                    if callee is not None:
                        cost += miss_ub_of[callee]
                    costs[b] = cost
                extra: dict[int, int] = {}
                for key, header in ps_loop.items():
                    if sites[key].func == f:
                        extra[header] = extra.get(header, 0) + 1
                ub = _func_wcet(info, costs, loop_extra=extra)
                if ub is None:
                    reason = "loop bounds not provable"
            if reason is not None:
                unbounded[f] = reason
                findings.append(finding(
                    "CACHE003", cfg.describe(f),
                    f"fetch misses of '{info.timing.name}' not "
                    f"statically boundable: {reason}"))
            miss_ub_of[f] = ub

    # ---- the conflict-free whole-text bound needs no loop bounds:
    # when the text range maps to at most one tag per line, a line's
    # tag is never replaced, so each distinct sub-block of the range
    # misses at most once -- for any execution confined to the text
    # segment (which validation enforces as CACHE004).
    geometric_ub = None
    bi_lo, bi_hi = cfg.base >> g.block_shift, \
        (cfg.end - 1) >> g.block_shift
    if cfg.end > cfg.base and bi_hi - bi_lo < config.num_lines:
        geometric_ub = (((cfg.end - 1) >> g.sub_shift)
                        - (cfg.base >> g.sub_shift) + 1)

    composed = miss_ub_of.get(entry_func) if entry_func is not None \
        else None
    candidates = [ub for ub in (composed, geometric_ub)
                  if ub is not None]
    miss_ub = min(candidates) if candidates else None
    findings.sort(key=lambda f: (f.location, f.rule))
    return ICacheAnalysis(
        program=program, config=config, sites=sites, classes=classes,
        ps_loop=ps_loop, site_of_pc=site_of_pc,
        miss_ub_of=miss_ub_of, geometric_ub=geometric_ub,
        miss_ub=miss_ub, unbounded=unbounded,
        cold_entry=cold_entry, findings=findings)


# ---------------------------------------------------------------------------
# Validation against simulated replay.
# ---------------------------------------------------------------------------


class _ModelCache:
    """The analysis's assumed concrete semantics, for divergence
    checks against the real ``Cache`` (CACHE005)."""

    __slots__ = ("g", "tags", "valid")

    def __init__(self, config: CacheConfig):
        self.g = _geometry(config)
        self.tags = [_EMPTY_TAG] * config.num_lines
        self.valid = [0] * config.num_lines

    def access(self, word: int) -> bool:
        g = self.g
        line, tag, sub = _decompose(word, g)
        if self.tags[line] != tag:
            self.tags[line] = tag
            self.valid[line] = 0
        bit = 1 << sub
        if self.valid[line] & bit:
            return True
        self.valid[line] |= bit | (1 << ((sub + 1) % g.nsubs))
        return False


@dataclass
class ICacheValidation:
    """Soundness sweep of one analysis against one simulated trace."""

    analysis: ICacheAnalysis
    penalty: int
    fetches: int                  # word-deduped fetch count
    sim_misses: int
    miss_ub: int | None
    contradictions: int           # always-hit fetches that missed
    unattributed: int             # misses at pcs with no static site
    observed_cycles: int
    bcet: int
    wcet: int | None              # cache-aware upper bound
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        from .findings import Severity
        return not any(f.severity == Severity.ERROR
                       for f in self.findings)

    def to_record(self) -> dict:
        record = self.analysis.to_record()
        record.update({
            "penalty": self.penalty, "fetches": self.fetches,
            "sim_misses": self.sim_misses,
            "contradictions": self.contradictions,
            "unattributed": self.unattributed,
            "observed_cycles": self.observed_cycles,
            "bcet": self.bcet, "wcet": self.wcet})
        return record


def _replay_vector(analysis: ICacheAnalysis, itrace: Sequence[int],
                   config: CacheConfig, findings: list[Finding],
                   ) -> tuple[int, int, int, int]:
    """Numpy replay: first-demand walk with pc attribution."""
    from ..cache import vector
    _np = vector._np

    addrs = vector.as_addresses(itrace)
    words = addrs & ~3
    keep = _np.empty(words.size, dtype=bool)
    keep[0] = True
    keep[1:] = words[1:] != words[:-1]
    deduped = words[keep]
    keep_idx = _np.flatnonzero(keep)
    order, _line, _tag, _sub, first = vector._first_demands(
        config, deduped)

    model = _ModelCache(config)
    real = Cache(config)
    misses = contradictions = unattributed = diverged = 0
    for k in first.tolist():
        pos = int(order[k])
        word = int(deduped[pos])
        model_hit = model.access(word)
        real_hit = real.access(word)
        if model_hit != real_hit:
            diverged += 1
            if diverged <= _MAX_EXAMPLES:
                findings.append(finding(
                    "CACHE005", f"addr {word:#x}",
                    f"analysis model predicts "
                    f"{'hit' if model_hit else 'miss'} but the "
                    f"simulated cache "
                    f"{'hit' if real_hit else 'missed'}"))
        if real_hit:
            continue
        misses += 1
        pc = int(addrs[int(keep_idx[pos])])
        key = analysis.site_of_pc.get(pc)
        if key is None:
            unattributed += 1
        elif analysis.classes[key] is SiteClass.ALWAYS_HIT:
            contradictions += 1
            if contradictions <= _MAX_EXAMPLES:
                findings.append(finding(
                    "CACHE001", analysis.program.cfg.describe(pc),
                    f"always-hit fetch at {pc:#x} missed in "
                    f"simulation"))

    # Cross-check the totals against the vectorized replay oracle.
    oracle = Cache(config)
    vector.replay_reads(oracle, itrace, dedup=True)
    if oracle.read_misses != misses:
        findings.append(finding(
            "CACHE005", "replay",
            f"first-demand walk counted {misses} misses but the "
            f"replay oracle counted {oracle.read_misses}"))
    return oracle.read_accesses, misses, contradictions, unattributed


def _replay_scalar(analysis: ICacheAnalysis, itrace: Sequence[int],
                   config: CacheConfig, findings: list[Finding],
                   ) -> tuple[int, int, int, int]:
    """Pure-Python replay: full deduped walk with pc attribution."""
    model = _ModelCache(config)
    real = Cache(config)
    misses = contradictions = unattributed = diverged = fetches = 0
    prev = None
    for pc in itrace:
        word = pc & ~3
        if word == prev:
            continue
        prev = word
        fetches += 1
        model_hit = model.access(word)
        real_hit = real.access(word)
        if model_hit != real_hit:
            diverged += 1
            if diverged <= _MAX_EXAMPLES:
                findings.append(finding(
                    "CACHE005", f"addr {word:#x}",
                    f"analysis model predicts "
                    f"{'hit' if model_hit else 'miss'} but the "
                    f"simulated cache "
                    f"{'hit' if real_hit else 'missed'}"))
        if real_hit:
            continue
        misses += 1
        key = analysis.site_of_pc.get(pc)
        if key is None:
            unattributed += 1
        elif analysis.classes[key] is SiteClass.ALWAYS_HIT:
            contradictions += 1
            if contradictions <= _MAX_EXAMPLES:
                findings.append(finding(
                    "CACHE001", analysis.program.cfg.describe(pc),
                    f"always-hit fetch at {pc:#x} missed in "
                    f"simulation"))
    return fetches, misses, contradictions, unattributed


def validate_icache(analysis: ICacheAnalysis, itrace: Sequence[int],
                    stats: RunStats, *,
                    penalty: int,
                    config: CacheConfig | None = None,
                    ) -> ICacheValidation:
    """Replay ``itrace`` and check every static claim against it.

    ``config``, when given, must equal the analyzed configuration --
    a mismatch is a CACHE004 error (the sweep would otherwise compare
    bounds and misses from different geometries).  ``stats`` is the
    run's :class:`~repro.machine.stats.RunStats`; observed cycles are
    ``instructions + interlocks + penalty * misses``, the same
    I-cache-only cycle model the cacheperf experiments use.
    """
    from ..cache.vector import use_vector

    findings: list[Finding] = []
    if config is not None and config != analysis.config:
        findings.append(finding(
            "CACHE004", "config",
            f"analysis ran on {analysis.config} but validation was "
            f"asked about {config}"))
    config = analysis.config
    cfg = analysis.program.cfg
    if len(itrace):
        if use_vector():
            from ..cache import vector
            addrs = vector.as_addresses(itrace)
            lo, hi = int(addrs.min()), int(addrs.max())
        else:
            lo, hi = min(itrace), max(itrace)
    if len(itrace) and not (cfg.base <= lo and hi < cfg.end):
        findings.append(finding(
            "CACHE004", "trace",
            f"instruction trace leaves the analyzed text segment "
            f"[{cfg.base:#x}, {cfg.end:#x})"))
        replay = (0, 0, 0, 0)
    elif len(itrace) == 0:
        replay = (0, 0, 0, 0)
    elif use_vector():
        replay = _replay_vector(analysis, itrace, config, findings)
    else:
        replay = _replay_scalar(analysis, itrace, config, findings)
    fetches, misses, contradictions, unattributed = replay

    miss_ub = analysis.miss_ub
    if miss_ub is not None and misses > miss_ub:
        findings.append(finding(
            "CACHE002", cfg.describe(cfg.exe.entry),
            f"simulated fetch misses {misses} exceed the static "
            f"upper bound {miss_ub}"))
    bcet, wcet = analysis.cycle_bounds(penalty)
    observed = stats.instructions + stats.interlocks + penalty * misses
    if observed < bcet or (wcet is not None and observed > wcet):
        upper = "unbounded" if wcet is None else str(wcet)
        findings.append(finding(
            "CACHE002", cfg.describe(cfg.exe.entry),
            f"observed {observed} cycles escape the cache-aware "
            f"interval [{bcet}, {upper}] at penalty {penalty}"))
    findings.sort(key=lambda f: (f.location, f.rule))
    return ICacheValidation(
        analysis=analysis, penalty=penalty, fetches=fetches,
        sim_misses=misses, miss_ub=miss_ub,
        contradictions=contradictions, unattributed=unattributed,
        observed_cycles=observed, bcet=bcet, wcet=wcet,
        findings=findings)

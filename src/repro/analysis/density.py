"""Static code-density analysis: D16 compressibility of DLXe images.

The paper's 1.5x density headline (Table 5) compares linked image
sizes; this module explains *where* that factor comes from, one
instruction at a time, without recompiling.  It walks a DLXe image's
recovered CFG and estimates, for every reachable instruction, how many
16-bit halfwords the D16 encoding of the same operation would need —
grounded in the real encoder limits of :mod:`repro.isa.d16`
(two-address forms, 5-bit unsigned immediates, 16 registers, constant
pools), not in a hand-waved ratio.

It also implements **DEN001**, a macro-op-fusion-style rule in the
spirit of Celio et al.'s RISC-V density analysis: adjacent DLXe pairs
that a 16-bit ISA swallows as *one* instruction.  The flagship pattern
is the 32-bit constant build ``mvhi rd, hi ; addi/ori/xori rd, rd, lo``,
which D16 replaces with a single ``ldc`` (one halfword of code plus a
shared pool word).  Each fused pair is reported as an INFO finding and
folded into the per-function compressibility estimate.

The estimate is a *model*, not a compilation: branch and pool
displacement limits are ignored (layout shifts when everything
shrinks), and register pressure beyond the r16+ penalty is not
simulated.  Its value is relative — which functions compress well,
which idioms resist — and as a static cross-check of the measured
density ratio in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.objfile import Executable
from ..isa import COND_NEGATE, D16_CONDS, Instr, IsaSpec, Op
from ..isa.common import fits_signed, fits_unsigned
from ..isa.d16 import (MAX_MEM_OFFSET, MVI_IMM_BITS, RI_IMM_BITS,
                       UNSUPPORTED_OPS)
from .cfg import BinaryCFG, build_cfg
from .findings import Finding, finding

#: Operations whose operands commute, so ``rd == rs2`` is as good as
#: ``rd == rs1`` for D16's two-address forms.
_COMMUTATIVE = frozenset({Op.ADD, Op.AND, Op.OR, Op.XOR, Op.MUL,
                          Op.ADD_SF, Op.MUL_SF, Op.ADD_DF, Op.MUL_DF})

#: The constant-build second halves fusable with a leading ``mvhi``.
_FUSE_LOW_OPS = frozenset({Op.ADDI, Op.ORI, Op.XORI})

_SUBWORD_MEM = (Op.LDH, Op.LDHU, Op.LDB, Op.LDBU, Op.STH, Op.STB)
_TWO_ADDRESS_IMM = (Op.ADDI, Op.SUBI, Op.SHRAI, Op.SHRI, Op.SHLI)
_LOGIC_IMM = (Op.ANDI, Op.ORI, Op.XORI)


def _reg_penalty(instr: Instr) -> int:
    """One extra halfword whenever an operand lives above r15: the
    value must be shuffled through D16's 16-register file."""
    return 1 if any(index >= 16
                    for _f, cls, index in instr.reg_operands()
                    if cls == "g") else 0


def estimate_halfwords(instr: Instr) -> int:
    """Estimated 16-bit code units for the D16 form of one DLXe
    instruction (constant-pool words included, branch/pool reach
    ignored)."""
    op = instr.op
    penalty = _reg_penalty(instr)

    if op == Op.JD:
        return 1                      # same-reach direct jump (br/j)
    if op == Op.JLD:
        return 3 + penalty            # ldc rt, =target ; jl rt ; pool
    if op == Op.MVHI:
        return 3 + penalty            # ldc + pool word
    if op == Op.CMPI:
        base = 1 if fits_signed(instr.imm, MVI_IMM_BITS) else 3
        return base + 1 + penalty     # materialize imm, then cmp
    if op in _LOGIC_IMM:
        base = 1 if fits_signed(instr.imm, MVI_IMM_BITS) else 3
        return base + 1 + penalty     # materialize imm, then op
    if op in UNSUPPORTED_OPS:         # defensive: all handled above
        return 2 + penalty

    if op == Op.MVI:
        return (1 if fits_signed(instr.imm, MVI_IMM_BITS) else 3) + penalty
    if op in (Op.LD, Op.ST):
        ok = instr.imm % 4 == 0 and 0 <= instr.imm <= MAX_MEM_OFFSET
        return (1 if ok else 2) + penalty
    if op in _SUBWORD_MEM:
        return (1 if instr.imm == 0 else 2) + penalty
    if op in _TWO_ADDRESS_IMM:
        cost = 1
        if instr.rd != instr.rs1:
            cost += 1                 # mv rd, rs1 first
        if not fits_unsigned(instr.imm, RI_IMM_BITS):
            cost += 1 if fits_signed(instr.imm, MVI_IMM_BITS) else 2
        return cost + penalty
    if op == Op.CMP:
        # D16 compares write the implicit r0 (the branch then tests r0
        # for free); missing conditions negate or swap at no code cost,
        # except the strict signed/unsigned 'greater' forms which need
        # an operand shuffle when the negation is taken elsewhere.
        return (1 if instr.cond in D16_CONDS
                or COND_NEGATE[instr.cond] in D16_CONDS else 2) + penalty
    info = instr.info
    if info.reads and "rs2" in info.signature and "rd" in info.signature:
        # Three-operand register form: free when it is already
        # two-address (or commutes into it), else a leading mv.
        two_address = instr.rd == instr.rs1 or \
            (op in _COMMUTATIVE and instr.rd == instr.rs2)
        return (1 if two_address else 2) + penalty
    return 1 + penalty


def fused_constant_pair(first: Instr, second: Instr) -> bool:
    """True for ``mvhi rd, hi`` + ``addi/ori/xori rd, rd, lo``: one
    D16 ``ldc`` builds the same 32-bit constant."""
    return (first.op == Op.MVHI
            and second.op in _FUSE_LOW_OPS
            and second.rd == first.rd
            and second.rs1 == first.rd)


@dataclass
class FunctionDensity:
    """Static D16-compressibility estimate of one DLXe function."""

    name: str
    start: int
    n_instrs: int = 0
    dlxe_bytes: int = 0
    est_d16_bytes: int = 0
    fused_pairs: int = 0

    @property
    def ratio(self) -> float:
        """DLXe bytes per estimated D16 byte (paper headline ~1.5)."""
        return self.dlxe_bytes / self.est_d16_bytes \
            if self.est_d16_bytes else 1.0

    def to_record(self) -> dict[str, object]:
        return {"name": self.name, "start": self.start,
                "instrs": self.n_instrs, "dlxe_bytes": self.dlxe_bytes,
                "est_d16_bytes": self.est_d16_bytes,
                "fused_pairs": self.fused_pairs,
                "ratio": round(self.ratio, 4)}


@dataclass
class ProgramDensity:
    """Whole-image density estimate plus the DEN001 findings."""

    cfg: BinaryCFG
    functions: dict[int, FunctionDensity]
    findings: list[Finding] = field(default_factory=list)

    @property
    def dlxe_bytes(self) -> int:
        return sum(f.dlxe_bytes for f in self.functions.values())

    @property
    def est_d16_bytes(self) -> int:
        return sum(f.est_d16_bytes for f in self.functions.values())

    @property
    def fused_pairs(self) -> int:
        return sum(f.fused_pairs for f in self.functions.values())

    @property
    def ratio(self) -> float:
        return self.dlxe_bytes / self.est_d16_bytes \
            if self.est_d16_bytes else 1.0

    def function_records(self) -> list[dict[str, object]]:
        return [self.functions[start].to_record()
                for start in sorted(self.functions)]


def analyze_density(exe_or_cfg: Executable | BinaryCFG,
                    isa: IsaSpec | None = None, *,
                    symbols: dict[str, int] | None = None) -> ProgramDensity:
    """Estimate the D16 compressibility of a DLXe image's functions.

    Accepts an executable plus its ISA, or a pre-built
    :class:`BinaryCFG`.  Only 32-bit images are meaningful input: a
    D16 image is already in its densest form, so the analysis returns
    an empty report for one rather than inventing numbers.
    """
    if isinstance(exe_or_cfg, BinaryCFG):
        cfg = exe_or_cfg
    else:
        if isa is None:
            raise ValueError("isa is required with a raw executable")
        cfg = build_cfg(exe_or_cfg, isa, symbols=symbols)
    report = ProgramDensity(cfg=cfg, functions={})
    if cfg.isa.name != "DLXe":
        return report

    for fstart, name in cfg.funcs:
        blocks = cfg.function_blocks(fstart)
        if not blocks:
            continue
        fd = FunctionDensity(name=name, start=fstart)
        for block in blocks:
            instrs = block.instrs
            i = 0
            while i < len(instrs):
                pc, instr = instrs[i]
                if i + 1 < len(instrs) \
                        and fused_constant_pair(instr, instrs[i + 1][1]):
                    lo_pc, lo = instrs[i + 1]
                    value = ((instr.imm << 16) + lo.imm) & 0xFFFFFFFF \
                        if lo.op == Op.ADDI \
                        else ((instr.imm << 16) | (lo.imm & 0xFFFF))
                    report.findings.append(finding(
                        "DEN001", cfg.describe(pc),
                        f"'{instr}' + '{lo}' build the constant "
                        f"{value:#x}: one D16 'ldc r{instr.rd}' "
                        f"(2 bytes + shared pool word) replaces both"))
                    fd.n_instrs += 2
                    fd.dlxe_bytes += 8
                    fd.est_d16_bytes += 2 * (3 + _reg_penalty(instr))
                    fd.fused_pairs += 1
                    i += 2
                    continue
                fd.n_instrs += 1
                fd.dlxe_bytes += 4
                fd.est_d16_bytes += 2 * estimate_halfwords(instr)
                i += 1
        report.functions[fstart] = fd
    report.findings.sort(key=lambda f: (f.location, f.rule))
    return report

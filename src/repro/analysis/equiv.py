"""Translation validation for the optimizer and the compiled binaries.

Two checkers built on the symbolic evaluator (:mod:`repro.analysis.symex`):

* **Per-pass validation** (:func:`check_pass`, :func:`validate_passes`) —
  after every optimizer pass application a block-level simulation
  relation is checked between the function before and after the pass.
  Cut points are the basic-block labels common to both versions; every
  region between cut points is explored symbolically on both sides and
  the resulting path leaves must agree on branch guards, the ordered
  observable-effect sequence, the return value, and the registers live
  at the target cut.  The checker *refuses* rather than guesses: any
  construct the evaluator cannot canonicalize yields an explicit
  ``unknown`` verdict (EQ001), and ``divergent`` (EQ002) is reported
  only for unconditional paths whose mismatching observables are fully
  ground — a proven miscompile, never a modelling artifact.

* **Binary validation** (:func:`check_binary_program`) — each D16/DLXe
  function body is symbolically executed over the shared
  :class:`~repro.analysis.cfg.BinaryCFG` and its observable-effect
  summary is matched against the (link-time grounded) IR summary of the
  same function, upgrading the cross-ISA layer from count consistency
  to semantic consistency (EQ003/EQ004).

:func:`mutation_campaign` is the checker's own soundness harness: it
plants seeded miscompile mutations into pass outputs and records
whether the checker catches each one.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from ..asm import Assembler, link
from ..cc import TargetSpec, get_target
from ..cc.codegen import generate_assembly
from ..cc.ir import (CallInst, CJump, Const, Function, Inst, Jump, Module,
                     Ret, Store, VReg)
from ..cc.irgen import lower_program
from ..cc.opt import optimize_module
from ..cc.parser import parse
from ..cc.runtime import RUNTIME_SOURCE
from .cfg import build_cfg
from .findings import Finding, finding
from .symex import (MAX_LEAVES, MAX_STEPS, Leaf, Term, Unknown,
                    explore_region, ground_leaves, is_ground,
                    single_def_terms, sym, summarize_binary_function,
                    summarize_ir_function)

#: Verdicts (ordered by badness).
PROVEN = "proven"
UNKNOWN = "unknown"
DIVERGENT = "divergent"

#: The entry region's name (cut regions are named after their label).
ENTRY_REGION = "<entry>"


# --------------------------------------------------------------- liveness


def live_in_map(func: Function) -> dict[str, frozenset[VReg]]:
    """Backward live-variable dataflow; live-in set per block label."""
    labels = [block.label for block in func.blocks]
    gen: dict[str, set[VReg]] = {}
    kill: dict[str, set[VReg]] = {}
    succs: dict[str, list[str]] = {}
    for block in func.blocks:
        use: set[VReg] = set()
        defined: set[VReg] = set()
        for inst in block.instrs:
            for reg in inst.uses():
                if reg not in defined:
                    use.add(reg)
            defined.update(inst.defs())
        gen[block.label] = use
        kill[block.label] = defined
        succs[block.label] = list(block.successors())
    live: dict[str, frozenset[VReg]] = \
        {label: frozenset() for label in labels}
    changed = True
    while changed:
        changed = False
        for label in reversed(labels):
            out: set[VReg] = set()
            for succ in succs[label]:
                out |= live.get(succ, frozenset())
            new = frozenset(gen[label] | (out - kill[label]))
            if new != live[label]:
                live[label] = new
                changed = True
    return live


# ------------------------------------------------------ cut-point choice


def _jump_only(block_instrs: Sequence[Inst]) -> bool:
    return len(block_instrs) == 1 and isinstance(block_instrs[0], Jump)


def cut_points(before: Function, after: Function) -> frozenset[str]:
    """Labels usable as simulation-relation cut points.

    A label qualifies when it names a block in *both* versions, the
    block is not a bare ``jump`` in either — jump threading retargets
    edges around such blocks, so stopping at them would make the two
    sides' leaves point at different (but equivalent) cuts — and it is
    graph-reachable from the entry in both.  Unreachable code has no
    observable behavior, so exploring a region rooted in it could only
    manufacture vacuous verdicts (including false divergences when a
    pass legitimately rewrites dead blocks).
    """
    bmap = before.block_map()
    amap = after.block_map()
    reachable = {b.label for b in _reachable_blocks(before)} \
        & {b.label for b in _reachable_blocks(after)}
    return frozenset(
        label for label in set(bmap) & set(amap)
        if label in reachable
        and not _jump_only(bmap[label].instrs)
        and not _jump_only(amap[label].instrs))


def _reg_init(closed: Mapping[VReg, Term]) -> Callable[[VReg], Term]:
    """Region-entry values: closed form if provably single-def, else a
    shared per-register symbol (the induction hypothesis that both
    versions agree on the register at the cut)."""
    def init(reg: VReg) -> Term:
        term = closed.get(reg)
        if term is not None:
            return term
        return sym(("reg", reg.id, reg.cls))
    return init


# --------------------------------------------------------- leaf matching


def _relevant_writes(leaf: Leaf,
                     live_of: Callable[[str], frozenset[VReg]],
                     ) -> dict[VReg, Term]:
    if leaf.kind != "cut" or leaf.target is None:
        return {}
    live = live_of(leaf.target)
    return {reg: term for reg, term in leaf.writes if reg in live}


def _try_merge(first: Leaf, second: Leaf,
               live_of: Callable[[str], frozenset[VReg]]) -> Leaf | None:
    """Merge two leaves differing only in one complementary guard.

    ``simplify_cfg`` collapses ``if c goto L else L`` into ``jump L``;
    the unsimplified side then has two path leaves whose union is the
    simplified side's single leaf.  Only observably identical siblings
    merge, so the merge never hides a difference.
    """
    if (first.kind, first.target, first.effects, first.ret) \
            != (second.kind, second.target, second.effects, second.ret):
        return None
    if _relevant_writes(first, live_of) != _relevant_writes(second, live_of):
        return None
    one = set(first.guards)
    two = set(second.guards)
    diff = one ^ two
    if len(diff) != 2:
        return None
    (term_a, want_a), (term_b, want_b) = sorted(diff, key=repr)
    if term_a != term_b or want_a == want_b:
        return None
    common = tuple(entry for entry in first.guards if entry in two)
    return Leaf(kind=first.kind, target=first.target, guards=common,
                effects=first.effects, ret=first.ret,
                writes=first.writes, mem=first.mem)


def merge_complementary(leaves: Iterable[Leaf],
                        live_of: Callable[[str], frozenset[VReg]],
                        ) -> list[Leaf]:
    """Fixpoint of complementary-guard merging over a leaf set."""
    out = list(leaves)
    merged = True
    while merged:
        merged = False
        for i in range(len(out)):
            for j in range(i + 1, len(out)):
                joined = _try_merge(out[i], out[j], live_of)
                if joined is not None:
                    out[i] = joined
                    del out[j]
                    merged = True
                    break
            if merged:
                break
    return out


def _keyed(leaves: Iterable[Leaf]) -> dict[frozenset, Leaf] | None:
    """Leaves keyed by guard set; ``None`` when two paths share one."""
    by_guards: dict[frozenset, Leaf] = {}
    for leaf in leaves:
        key = frozenset(leaf.guards)
        if key in by_guards:
            return None
        by_guards[key] = leaf
    return by_guards


def _all_ground(terms: Iterable[object]) -> bool:
    return all(is_ground(term) for term in terms)  # type: ignore[arg-type]


def _first_mismatch(before: Leaf, after: Leaf,
                    live_of: Callable[[str], frozenset[VReg]],
                    return_cls: str | None,
                    init_b: Callable[[VReg], Term],
                    init_a: Callable[[VReg], Term],
                    ) -> tuple[str, bool] | None:
    """First observable difference between two guard-matched leaves.

    Returns ``(description, ground)`` where ``ground`` is True when the
    mismatching observables contain no free symbols on either side —
    the precondition for a *proven* divergence.
    """
    if before.effects != after.effects:
        if len(before.effects) != len(after.effects):
            desc = (f"effect count {len(before.effects)} != "
                    f"{len(after.effects)}")
            ground = _all_ground(before.effects) \
                and _all_ground(after.effects)
            return desc, ground
        for index, (eff_b, eff_a) in enumerate(
                zip(before.effects, after.effects)):
            if eff_b != eff_a:
                return (f"effect #{index} differs: {eff_b!r} vs {eff_a!r}",
                        is_ground(eff_b) and is_ground(eff_a))
    if before.kind == "ret" and return_cls is not None:
        if before.ret != after.ret:
            if before.ret is None or after.ret is None:
                return "return value present on one side only", False
            return (f"return value differs: {before.ret!r} vs "
                    f"{after.ret!r}",
                    is_ground(before.ret) and is_ground(after.ret))
    if before.kind == "cut" and before.target is not None:
        writes_b = before.writes_map()
        writes_a = after.writes_map()
        for reg in sorted(live_of(before.target),
                          key=lambda r: (r.cls, r.id)):
            value_b = writes_b.get(reg)
            value_a = writes_a.get(reg)
            if value_b is None and value_a is None:
                continue        # both keep the region-entry value
            if value_b is None:
                value_b = init_b(reg)
            if value_a is None:
                value_a = init_a(reg)
            if value_b != value_a:
                return (f"live register {reg} differs at '{before.target}':"
                        f" {value_b!r} vs {value_a!r}",
                        is_ground(value_b) and is_ground(value_a))
    return None


def _compare_leaves(leaves_before: list[Leaf], leaves_after: list[Leaf],
                    live_of: Callable[[str], frozenset[VReg]],
                    return_cls: str | None,
                    init_b: Callable[[VReg], Term],
                    init_a: Callable[[VReg], Term],
                    ) -> tuple[str, str] | None:
    """Match two leaf sets; ``None`` on success, else (verdict, reason).

    Divergence requires an *unconditional* path (empty guard set) with a
    fully ground mismatch; everything else is an unknown — a symbolic
    mismatch could still be equal under every concrete valuation, and a
    guarded path could be infeasible.
    """
    merged_before = merge_complementary(leaves_before, live_of)
    merged_after = merge_complementary(leaves_after, live_of)
    by_before = _keyed(merged_before)
    by_after = _keyed(merged_after)
    if by_before is None or by_after is None:
        return UNKNOWN, "two paths share one guard set"
    if set(by_before) != set(by_after):
        only_b = [g for g in by_before if g not in by_after]
        only_a = [g for g in by_after if g not in by_before]
        sample = (sorted(map(repr, only_b)) + sorted(map(repr, only_a)))[0]
        return UNKNOWN, f"path guard structure differs (e.g. {sample})"
    for key in by_before:
        leaf_b = by_before[key]
        leaf_a = by_after[key]
        if leaf_b.kind != leaf_a.kind or leaf_b.target != leaf_a.target:
            desc = (f"path shape differs: {leaf_b.kind}->{leaf_b.target} "
                    f"vs {leaf_a.kind}->{leaf_a.target}")
            return (DIVERGENT if not key else UNKNOWN), desc
        mismatch = _first_mismatch(leaf_b, leaf_a, live_of, return_cls,
                                   init_b, init_a)
        if mismatch is not None:
            desc, ground = mismatch
            if ground and not key:
                return DIVERGENT, desc
            return UNKNOWN, desc
    return None


# --------------------------------------------------- per-pass validation


def check_pass(before: Function, after: Function, *,
               max_steps: int = MAX_STEPS,
               max_leaves: int = MAX_LEAVES,
               ) -> tuple[str, str | None, int]:
    """Check the simulation relation between two versions of a function.

    Returns ``(verdict, reason, regions_checked)`` where the verdict is
    :data:`PROVEN`, :data:`UNKNOWN`, or :data:`DIVERGENT`.
    """
    if not before.blocks or not after.blocks:
        if not before.blocks and not after.blocks:
            return PROVEN, "both versions empty", 0
        return UNKNOWN, "one version has no blocks", 0
    cuts = cut_points(before, after)
    closed_before = single_def_terms(before)
    closed_after = single_def_terms(after)
    live_before = live_in_map(before)
    live_after = live_in_map(after)

    def live_of(label: str) -> frozenset[VReg]:
        # A register live in only one version cannot influence the other
        # version's behaviour, and the leaf comparison stays conservative
        # for it: a proven match is syntactic, so every region-entry
        # symbol it contains was read by BOTH versions and is therefore
        # in the intersection at the region entry (where its cross-version
        # equality was established by the predecessor check).
        return live_before.get(label, frozenset()) \
            & live_after.get(label, frozenset())

    entry_b = before.blocks[0].label
    entry_a = after.blocks[0].label
    regions: list[tuple[str, str, str]] = [(ENTRY_REGION, entry_b, entry_a)]
    for label in sorted(cuts):
        if label == entry_b and label == entry_a:
            continue            # identical to the entry region
        regions.append((label, label, label))

    init_b = _reg_init(closed_before)
    init_a = _reg_init(closed_after)
    checked = 0
    for region, start_b, start_a in regions:
        try:
            leaves_b = explore_region(
                before, start_b, cuts=cuts, region=region,
                init=init_b, max_steps=max_steps, max_leaves=max_leaves)
            leaves_a = explore_region(
                after, start_a, cuts=cuts, region=region,
                init=init_a, max_steps=max_steps, max_leaves=max_leaves)
        except Unknown as exc:
            return UNKNOWN, f"region '{region}': {exc.reason}", checked
        problem = _compare_leaves(leaves_b, leaves_a, live_of,
                                  before.return_cls, init_b, init_a)
        if problem is not None:
            verdict, reason = problem
            return verdict, f"region '{region}': {reason}", checked
        checked += 1
    return PROVEN, None, checked


@dataclass(frozen=True)
class PassCheck:
    """The verdict for one optimizer pass application."""

    function: str
    pass_name: str
    round: int
    changed: bool
    verdict: str
    reason: str | None
    regions: int

    @property
    def location(self) -> str:
        return f"{self.function}:{self.pass_name}#{self.round}"


def validate_passes(module: Module, *, opt_level: int = 2,
                    max_steps: int = MAX_STEPS,
                    max_leaves: int = MAX_LEAVES) -> list[PassCheck]:
    """Optimize ``module`` with per-pass translation validation.

    The module is optimized in place (exactly as ``optimize_module``
    would); every pass application is checked and its verdict recorded.
    Structurally unchanged applications are proven trivially.
    """
    checks: list[PassCheck] = []

    def observer(func_name: str, pass_name: str, round_index: int,
                 before: Function, after: Function,
                 changed: bool) -> None:
        if str(before) == str(after):
            checks.append(PassCheck(func_name, pass_name, round_index,
                                    changed, PROVEN,
                                    "structurally unchanged", 0))
            return
        verdict, reason, regions = check_pass(
            before, after, max_steps=max_steps, max_leaves=max_leaves)
        checks.append(PassCheck(func_name, pass_name, round_index,
                                changed, verdict, reason, regions))

    optimize_module(module, level=opt_level, observer=observer)
    return checks


# ---------------------------------------------------- binary validation


@dataclass(frozen=True)
class BinaryCheck:
    """IR-vs-binary summary verdict for one function on one target."""

    function: str
    target: str
    verdict: str
    reason: str | None
    paths: int

    @property
    def location(self) -> str:
        return f"{self.target}:{self.function}"


def comparable_signatures(module: Module) -> dict[str, int]:
    """Integer-argument counts for machine-comparable functions."""
    return {func.name: len(func.params) for func in module.functions
            if len(func.params) <= 4
            and all(param.cls == "i" for param in func.params)}


def _compare_summaries(ir_leaves: list[Leaf], mc_leaves: list[Leaf],
                       return_cls: str | None,
                       ) -> tuple[str, str] | None:
    """Match grounded IR leaves against machine leaves by guard set."""
    by_ir = _keyed(ir_leaves)
    by_mc = _keyed(mc_leaves)
    if by_ir is None or by_mc is None:
        return UNKNOWN, "two paths share one guard set"
    if set(by_ir) != set(by_mc):
        return UNKNOWN, (f"path guard structure differs "
                         f"({len(by_ir)} IR vs {len(by_mc)} machine "
                         f"paths)")
    for key in by_ir:
        leaf_ir = by_ir[key]
        leaf_mc = by_mc[key]
        if leaf_ir.kind != leaf_mc.kind:
            desc = f"path kind {leaf_ir.kind} vs {leaf_mc.kind}"
            return (DIVERGENT if not key else UNKNOWN), desc
        if leaf_ir.effects != leaf_mc.effects:
            if len(leaf_ir.effects) != len(leaf_mc.effects):
                desc = (f"effect count {len(leaf_ir.effects)} != "
                        f"{len(leaf_mc.effects)}")
                ground = _all_ground(leaf_ir.effects) \
                    and _all_ground(leaf_mc.effects)
            else:
                desc, ground = "", False
                for index, (eff_ir, eff_mc) in enumerate(
                        zip(leaf_ir.effects, leaf_mc.effects)):
                    if eff_ir != eff_mc:
                        desc = (f"effect #{index} differs: {eff_ir!r} "
                                f"vs {eff_mc!r}")
                        ground = is_ground(eff_ir) and is_ground(eff_mc)
                        break
            if ground and not key:
                return DIVERGENT, desc
            return UNKNOWN, desc
        if leaf_ir.kind == "ret" and return_cls == "i" \
                and leaf_ir.ret != leaf_mc.ret:
            desc = (f"return value differs: {leaf_ir.ret!r} vs "
                    f"{leaf_mc.ret!r}")
            if not key and leaf_ir.ret is not None \
                    and leaf_mc.ret is not None \
                    and is_ground(leaf_ir.ret) \
                    and is_ground(leaf_mc.ret):
                return DIVERGENT, desc
            return UNKNOWN, desc
    return None


def check_binary_program(source: str,
                         targets: Sequence[str] = ("d16", "dlxe"), *,
                         opt_level: int = 2,
                         include_runtime: bool = True,
                         max_steps: int = MAX_STEPS,
                         max_leaves: int = MAX_LEAVES,
                         ) -> list[BinaryCheck]:
    """Semantic IR-vs-binary validation of every comparable function.

    Compiles the program once per target (legalization mutates the IR
    per target, so each binary is matched against the exact module that
    produced it) and compares grounded IR summaries with symbolic
    machine summaries over the disassembled CFG.
    """
    checks: list[BinaryCheck] = []
    full_source = (RUNTIME_SOURCE + "\n" + source) if include_runtime \
        else source
    for target_name in targets:
        target: TargetSpec = get_target(target_name)
        module = lower_program(parse(full_source))
        optimize_module(module, level=opt_level)
        signatures = comparable_signatures(module)
        assembly = generate_assembly(module, target,
                                     schedule=opt_level >= 1)
        obj = Assembler(target.isa).assemble(assembly)
        exe = link([obj])
        bases = {"text": exe.text_base, "data": exe.data_base, "abs": 0}
        labels = {symbol.name: bases[symbol.section] + symbol.value
                  for symbol in obj.symbols.values()}
        ground_symbols = dict(exe.symbols)
        ground_symbols.update(labels)
        text_symbols = {
            name: addr for name, addr in labels.items()
            if exe.text_base <= addr < exe.text_base + len(exe.text)}
        cfg = build_cfg(exe, target.isa, symbols=text_symbols)
        for func in module.functions:
            if func.name not in signatures:
                checks.append(BinaryCheck(
                    func.name, target_name, UNKNOWN,
                    "signature not machine-comparable", 0))
                continue
            try:
                ir_leaves = ground_leaves(
                    summarize_ir_function(func, signatures,
                                          max_steps=max_steps,
                                          max_leaves=max_leaves),
                    ground_symbols)
            except Unknown as exc:
                checks.append(BinaryCheck(func.name, target_name,
                                          UNKNOWN, f"IR: {exc.reason}", 0))
                continue
            fstart = labels.get(func.name)
            if fstart is None:
                checks.append(BinaryCheck(func.name, target_name, UNKNOWN,
                                          "no text symbol", 0))
                continue
            try:
                mc_leaves = summarize_binary_function(
                    cfg, fstart, func.name, signatures,
                    max_steps=max_steps, max_leaves=max_leaves)
            except Unknown as exc:
                checks.append(BinaryCheck(
                    func.name, target_name, UNKNOWN,
                    f"machine: {exc.reason}", 0))
                continue
            problem = _compare_summaries(ir_leaves, mc_leaves,
                                         func.return_cls)
            if problem is None:
                checks.append(BinaryCheck(func.name, target_name, PROVEN,
                                          None, len(ir_leaves)))
            else:
                verdict, reason = problem
                checks.append(BinaryCheck(func.name, target_name, verdict,
                                          reason, len(ir_leaves)))
    return checks


# ------------------------------------------------------- report assembly


@dataclass
class TvReport:
    """Translation-validation results for one program."""

    program: str
    passes: list[PassCheck]
    binary: list[BinaryCheck]
    findings: list[Finding]

    def pass_counts(self) -> dict[str, int]:
        counts = {PROVEN: 0, UNKNOWN: 0, DIVERGENT: 0}
        for check in self.passes:
            counts[check.verdict] += 1
        return counts

    def binary_counts(self) -> dict[str, int]:
        counts = {PROVEN: 0, UNKNOWN: 0, DIVERGENT: 0}
        for check in self.binary:
            counts[check.verdict] += 1
        return counts


def tv_program(source: str, program: str = "<source>", *,
               targets: Sequence[str] = ("d16", "dlxe"),
               opt_level: int = 2,
               include_runtime: bool = True,
               max_steps: int = MAX_STEPS,
               max_leaves: int = MAX_LEAVES) -> TvReport:
    """Run both translation-validation layers over one program."""
    full_source = (RUNTIME_SOURCE + "\n" + source) if include_runtime \
        else source
    module = lower_program(parse(full_source))
    passes = validate_passes(module, opt_level=opt_level,
                             max_steps=max_steps, max_leaves=max_leaves)
    binary = check_binary_program(source, targets, opt_level=opt_level,
                                  include_runtime=include_runtime,
                                  max_steps=max_steps,
                                  max_leaves=max_leaves)
    findings: list[Finding] = []
    for check in passes:
        if check.verdict == DIVERGENT:
            findings.append(finding("EQ002", check.location,
                                    check.reason or "proven divergence"))
        elif check.verdict == UNKNOWN:
            findings.append(finding("EQ001", check.location,
                                    check.reason or "not provable"))
    for bincheck in binary:
        if bincheck.verdict == DIVERGENT:
            findings.append(finding(
                "EQ004", bincheck.location,
                bincheck.reason or "proven divergence"))
        elif bincheck.verdict == UNKNOWN:
            findings.append(finding("EQ003", bincheck.location,
                                    bincheck.reason or "not provable"))
    pass_counts = {}
    for check in passes:
        pass_counts[check.verdict] = pass_counts.get(check.verdict, 0) + 1
    bin_counts = {}
    for bincheck in binary:
        bin_counts[bincheck.verdict] = \
            bin_counts.get(bincheck.verdict, 0) + 1
    findings.append(finding(
        "EQ005", program,
        f"pass applications: {len(passes)} "
        f"({pass_counts.get(PROVEN, 0)} proven, "
        f"{pass_counts.get(UNKNOWN, 0)} unknown, "
        f"{pass_counts.get(DIVERGENT, 0)} divergent); "
        f"binary summaries: {len(binary)} "
        f"({bin_counts.get(PROVEN, 0)} proven, "
        f"{bin_counts.get(UNKNOWN, 0)} unknown, "
        f"{bin_counts.get(DIVERGENT, 0)} divergent)"))
    return TvReport(program=program, passes=passes, binary=binary,
                    findings=findings)


# ------------------------------------------------------ mutation harness


@dataclass(frozen=True)
class MutantResult:
    """One planted miscompile and whether the checker caught it."""

    function: str
    pass_name: str
    round: int
    mutation: str
    verdict: str
    reason: str | None

    @property
    def caught(self) -> bool:
        return self.verdict != PROVEN


def _reachable_blocks(func: Function) -> list:
    """Blocks reachable from the entry — mutations planted in dead
    blocks would be (correctly) proven unobservable."""
    blocks = func.block_map()
    reached: set[str] = set()
    stack = [func.blocks[0].label] if func.blocks else []
    while stack:
        label = stack.pop()
        if label in reached:
            continue
        reached.add(label)
        block = blocks.get(label)
        if block is not None:
            stack.extend(block.successors())
    return [block for block in func.blocks if block.label in reached]


def _mutate_store_offset(func: Function, rng: random.Random) -> bool:
    """Shift one store's displacement — a classic fold_offsets bug."""
    stores = [inst for block in _reachable_blocks(func)
              for inst in block.instrs if isinstance(inst, Store)]
    if not stores:
        return False
    rng.choice(stores).offset += 1
    return True


def _mutate_store_drop(func: Function, rng: random.Random) -> bool:
    """Delete one store — over-eager dead-code elimination."""
    sites = [(block, index) for block in _reachable_blocks(func)
             for index, inst in enumerate(block.instrs)
             if isinstance(inst, Store)]
    if not sites:
        return False
    block, index = rng.choice(sites)
    del block.instrs[index]
    return True


def _mutate_undef_use(func: Function, rng: random.Random) -> bool:
    """Delete a definition whose value feeds an observable.

    Models dead-code elimination removing a live computation; the
    surviving consumer reads a never-written register.
    """
    consumed: set[VReg] = set()
    for block in func.blocks:
        for inst in block.instrs:
            if isinstance(inst, (Store, Ret, CJump, CallInst)):
                consumed.update(inst.uses())
    sites = [(block, index) for block in _reachable_blocks(func)
             for index, inst in enumerate(block.instrs)
             if not isinstance(inst, (Store, Ret, CJump, CallInst, Jump))
             and inst.defs()
             and any(reg in consumed for reg in inst.defs())]
    if not sites:
        return False
    block, index = rng.choice(sites)
    del block.instrs[index]
    return True


def _resolve_jumps(func: Function, label: str) -> str:
    seen: set[str] = set()
    blocks = func.block_map()
    while label not in seen:
        seen.add(label)
        block = blocks.get(label)
        if block is None or not _jump_only(block.instrs):
            return label
        jump = block.instrs[0]
        assert isinstance(jump, Jump)
        label = jump.target
    return label


def _mutate_cjump_swap(func: Function, rng: random.Random) -> bool:
    """Swap a conditional branch's targets without negating the
    condition — an inverted-branch miscompile."""
    sites = [inst for block in _reachable_blocks(func)
             for inst in block.instrs
             if isinstance(inst, CJump)
             and _resolve_jumps(func, inst.if_true)
             != _resolve_jumps(func, inst.if_false)]
    if not sites:
        return False
    cjump = rng.choice(sites)
    cjump.if_true, cjump.if_false = cjump.if_false, cjump.if_true
    return True


def _mutate_jump_retarget(func: Function, rng: random.Random) -> bool:
    """Redirect one unconditional jump to a different block — a broken
    CFG rewrite (bad jump threading / preheader insertion)."""
    labels = [block.label for block in func.blocks]
    sites = []
    for block in _reachable_blocks(func):
        term = block.terminator
        if not isinstance(term, Jump):
            continue
        resolved = _resolve_jumps(func, term.target)
        options = [label for label in labels
                   if label != block.label
                   and _resolve_jumps(func, label) != resolved
                   and not _jump_only(func.block_map()[label].instrs)]
        if options:
            sites.append((term, options))
    if not sites:
        return False
    term, options = rng.choice(sites)
    term.target = rng.choice(options)
    return True


def _mutate_const_value(func: Function, rng: random.Random) -> bool:
    """Flip the low bit of a constant that feeds an observable."""
    consumed: set[VReg] = set()
    for block in func.blocks:
        for inst in block.instrs:
            if isinstance(inst, (Store, Ret, CJump, CallInst)):
                consumed.update(inst.uses())
    sites = [inst for block in _reachable_blocks(func)
             for inst in block.instrs
             if isinstance(inst, Const) and inst.dst in consumed]
    if not sites:
        return False
    rng.choice(sites).value ^= 1
    return True


#: The seeded miscompile catalog: name -> mutator.  Every mutator
#: either plants an observable bug (and returns True) or reports the
#: function has no applicable site (False).
MUTATIONS: dict[str, Callable[[Function, random.Random], bool]] = {
    "store-offset": _mutate_store_offset,
    "store-drop": _mutate_store_drop,
    "undef-use": _mutate_undef_use,
    "cjump-swap": _mutate_cjump_swap,
    "jump-retarget": _mutate_jump_retarget,
    "const-value": _mutate_const_value,
}


#: Exercises every pass in the pipeline: loops over global arrays for
#: licm/fold_offsets/dedupe, repeated subexpressions for CSE, constant
#: branches for fold_constants/simplify_cfg, copies and dead values.
MUTATION_SOURCE = """
int data[16];
int total;

int fill(int n) {
    int i;
    int x;
    for (i = 0; i < n; i = i + 1) {
        x = i * 4;
        data[i] = x + i * 4 + total;
        total = total + data[i];
    }
    return total;
}

int classify(int x) {
    int zero;
    zero = 0;
    if (x < zero) { total = zero - x; return 0 - 1; }
    if (x == 0) return 0;
    return 1;
}

int main() {
    int t;
    if (2 * 3 == 6) { total = 1; } else { total = 2; }
    t = fill(16);
    putchar(48 + classify(t - total));
    return classify(t);
}
"""


def mutation_campaign(source: str = MUTATION_SOURCE, *,
                      seed: int = 42, opt_level: int = 2,
                      include_runtime: bool = False,
                      max_steps: int = MAX_STEPS,
                      max_leaves: int = MAX_LEAVES) -> list[MutantResult]:
    """Plant seeded miscompiles into pass outputs; record detection.

    For every distinct pass in the pipeline the campaign takes that
    pass's applications (in order), perturbs a deep copy of each
    *output* with every applicable mutation from :data:`MUTATIONS`, and
    re-runs :func:`check_pass` between the unmodified input and the
    mutated output.  A sound checker reports every mutant as
    non-proven (``caught``).
    """
    full_source = (RUNTIME_SOURCE + "\n" + source) if include_runtime \
        else source
    module = lower_program(parse(full_source))
    snapshots: list[tuple[str, str, int, Function, Function]] = []

    def observer(func_name: str, pass_name: str, round_index: int,
                 before: Function, after: Function,
                 changed: bool) -> None:
        if round_index == 0:
            snapshots.append((func_name, pass_name, round_index,
                              before, copy.deepcopy(after)))

    optimize_module(module, level=opt_level, observer=observer)

    rng = random.Random(seed)
    results: list[MutantResult] = []
    by_pass: dict[str, list[tuple[str, str, int, Function, Function]]] = {}
    for snapshot in snapshots:
        by_pass.setdefault(snapshot[1], []).append(snapshot)
    for pass_name in sorted(by_pass):
        for mutation_name in sorted(MUTATIONS):
            mutate = MUTATIONS[mutation_name]
            for func_name, _pass, round_index, before, after \
                    in by_pass[pass_name]:
                mutant = copy.deepcopy(after)
                if not mutate(mutant, rng):
                    continue
                verdict, reason, _regions = check_pass(
                    before, mutant, max_steps=max_steps,
                    max_leaves=max_leaves)
                results.append(MutantResult(
                    func_name, pass_name, round_index, mutation_name,
                    verdict, reason))
                break           # one mutant per (pass, mutation)
    return results

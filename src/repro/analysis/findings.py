"""Structured findings shared by every static-analysis layer.

A :class:`Finding` is one diagnostic: a stable rule id (catalogued in
:data:`RULES`), a severity, a human-readable location, and a message.
Findings render as text (one line each) or JSON so that CI, the
experiment runner, and humans can all consume the same output.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Iterable


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Rule:
    """One catalogued lint rule."""

    id: str
    severity: Severity
    title: str


#: The rule catalog.  Ids are stable; docs/linting.md documents each one.
RULES: dict[str, Rule] = {r.id: r for r in (
    # IR verifier (repro.analysis.irverify)
    Rule("IR001", Severity.ERROR, "block has no terminator"),
    Rule("IR002", Severity.ERROR, "terminator in the middle of a block"),
    Rule("IR003", Severity.ERROR, "branch target does not exist"),
    Rule("IR004", Severity.ERROR, "duplicate block label"),
    Rule("IR005", Severity.WARNING, "block unreachable from entry"),
    Rule("IR006", Severity.ERROR, "virtual register used before definition"),
    Rule("IR007", Severity.ERROR, "virtual register id reused inconsistently"),
    Rule("IR008", Severity.ERROR, "operand register class mismatch"),
    Rule("IR009", Severity.ERROR, "stack slot not registered with function"),
    Rule("IR010", Severity.WARNING, "memory access outside stack slot bounds"),
    # Assembly linter (repro.analysis.binlint.lint_assembly)
    Rule("ENC001", Severity.ERROR, "instruction not encodable on target ISA"),
    # Binary linter (repro.analysis.binlint.lint_executable)
    Rule("BIN001", Severity.ERROR, "encode/decode round-trip mismatch"),
    Rule("BIN002", Severity.ERROR, "reachable word does not decode"),
    Rule("BIN003", Severity.ERROR, "control-flow target outside text segment"),
    Rule("BIN004", Severity.ERROR, "control-flow target lands in pool data"),
    Rule("BIN005", Severity.WARNING, "unreachable code in text segment"),
    Rule("CC001", Severity.ERROR, "callee-saved register clobbered "
                                  "without spill"),
    Rule("CC002", Severity.ERROR, "link register not saved across calls"),
    # Abstract interpretation (repro.analysis.absint)
    Rule("ABS001", Severity.ERROR, "stack height mismatch at join "
                                   "or return"),
    Rule("ABS002", Severity.ERROR, "memory access provably invalid"),
    Rule("ABS003", Severity.ERROR, "indirect jump to provably "
                                   "non-code target"),
    Rule("ABS004", Severity.WARNING, "conditional branch provably "
                                     "always or never taken"),
    # Static cycle bounds (repro.analysis.timing)
    Rule("TIM001", Severity.ERROR, "simulated cycles outside static "
                                   "bounds"),
    Rule("TIM002", Severity.WARNING, "execution profile not covered "
                                     "by the static CFG"),
    # Whole-program cycle bounds (repro.analysis.loops / wcet)
    Rule("LOOP001", Severity.WARNING, "loop bound not provable "
                                      "(unbounded or irreducible)"),
    Rule("TIM003", Severity.ERROR, "simulated cycles escape the static "
                                   "whole-program interval"),
    Rule("TIM004", Severity.WARNING, "call-graph recursion blocks "
                                     "worst-case composition"),
    Rule("TIM005", Severity.WARNING, "whole-program interval wider "
                                     "than the slack factor"),
    # Static code density (repro.analysis.density)
    Rule("DEN001", Severity.INFO, "adjacent DLXe pair encodable as "
                                  "one D16 instruction"),
    # Cross-ISA consistency (repro.analysis.xisa)
    Rule("XISA001", Severity.ERROR, "call-graph shape differs "
                                    "between ISAs"),
    Rule("XISA002", Severity.ERROR, "trap/IO sequence differs "
                                    "between ISAs"),
    Rule("XISA003", Severity.ERROR, "returned constant differs "
                                    "between ISAs"),
    # Static I-cache analysis (repro.analysis.icache)
    Rule("CACHE001", Severity.ERROR, "always-hit classification "
                                     "contradicted (unsound)"),
    Rule("CACHE002", Severity.ERROR, "simulation escapes the static "
                                     "I-cache miss/cycle bound"),
    Rule("CACHE003", Severity.WARNING, "instruction-fetch misses not "
                                       "statically boundable"),
    Rule("CACHE004", Severity.ERROR, "cache configuration mismatch "
                                     "between analysis and replay"),
    Rule("CACHE005", Severity.ERROR, "prefetch model diverges from "
                                     "the simulated cache"),
    # Translation validation (repro.analysis.equiv / symex)
    Rule("EQ001", Severity.WARNING, "optimizer pass application not "
                                    "proven equivalent"),
    Rule("EQ002", Severity.ERROR, "optimizer pass application provably "
                                  "changes behavior"),
    Rule("EQ003", Severity.WARNING, "binary summary not proven against "
                                    "the IR"),
    Rule("EQ004", Severity.ERROR, "binary observable behavior diverges "
                                  "from the IR"),
    Rule("EQ005", Severity.INFO, "translation-validation statistics"),
    # Liveness / dead code (repro.analysis.liveness)
    Rule("LIV001", Severity.WARNING, "frame store provably dead "
                                     "(never loaded back)"),
    Rule("LIV002", Severity.WARNING, "register write provably dead "
                                     "(overwritten before any use)"),
    # Static fault vulnerability (repro.analysis.vuln)
    Rule("VULN001", Severity.ERROR, "statically-proven-masked fault "
                                    "site observed as non-masked"),
    Rule("VULN002", Severity.INFO, "static fault-vulnerability "
                                   "statistics"),
)}

#: Version of the JSON report layout produced by :func:`render_json`.
#: Bump on any backwards-incompatible change to the payload shape.
#: Version 2 added the loop/WCET rules (LOOP001, TIM003-005, DEN001)
#: to the ``rules`` metadata and the per-function ``bounds`` records
#: emitted by ``repro lint --wcet --json``.  Version 3 added the
#: I-cache rules (CACHE001-005) and the per-cell ``icache`` records
#: emitted by ``repro lint --icache --json``.  Version 4 added the
#: translation-validation rules (EQ001-005), the per-cell ``tv``
#: records emitted by ``repro lint --tv --json``, and the aggregate
#: ``modes`` map emitted by ``repro lint --all --json``.  Version 5
#: added the liveness/vulnerability rules (LIV001-002, VULN001-002)
#: and the per-cell ``vuln`` records emitted by ``repro lint --vuln
#: --json``; docs/linting.md documents every migration.
SCHEMA_VERSION = 5


def rule_doc_url(rule_id: str) -> str:
    """Stable documentation anchor for a rule id."""
    return f"docs/linting.md#{rule_id.lower()}"


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a lint layer."""

    rule: str
    severity: Severity
    location: str
    message: str

    def format(self) -> str:
        return f"{self.severity.value}: {self.rule} {self.location}: " \
               f"{self.message}"

    def to_dict(self) -> dict:
        return {"rule": self.rule, "severity": self.severity.value,
                "location": self.location, "message": self.message}


def finding(rule_id: str, location: str, message: str,
            severity: Severity | None = None) -> Finding:
    """Build a finding, defaulting severity from the rule catalog."""
    rule = RULES[rule_id]
    return Finding(rule=rule_id, severity=severity or rule.severity,
                   location=location, message=message)


def has_errors(findings: Iterable[Finding]) -> bool:
    return any(f.severity == Severity.ERROR for f in findings)


def summarize(findings: Iterable[Finding]) -> dict:
    """Counts by severity and by rule (for ``repro lint --stats``)."""
    by_rule: dict[str, int] = {}
    by_severity: dict[str, int] = {}
    total = 0
    for f in findings:
        total += 1
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        by_severity[f.severity.value] = \
            by_severity.get(f.severity.value, 0) + 1
    return {"total": total, "by_rule": dict(sorted(by_rule.items())),
            "by_severity": dict(sorted(by_severity.items()))}


def render_text(findings: Iterable[Finding]) -> str:
    return "\n".join(f.format() for f in findings)


def render_json(findings: Iterable[Finding], **extra: object) -> str:
    """Machine-readable report (schema locked by ``SCHEMA_VERSION``).

    Top-level keys: ``schema_version``, ``findings`` (list of finding
    dicts), ``summary`` (counts), and ``rules`` — catalog metadata
    (severity, title, documentation URL) for every rule referenced by
    the findings, so consumers need not hard-code the catalog.
    """
    findings = list(findings)
    rules = {f.rule: {"severity": RULES[f.rule].severity.value,
                      "title": RULES[f.rule].title,
                      "doc": rule_doc_url(f.rule)}
             for f in findings if f.rule in RULES}
    payload = {"schema_version": SCHEMA_VERSION,
               "findings": [f.to_dict() for f in findings],
               "summary": summarize(findings),
               "rules": dict(sorted(rules.items()))}
    payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)

"""Static fault-vulnerability classification over linked binaries.

Every fault the PR-4 campaigns inject is a point perturbation of the
machine — a register bit, an instruction word, a memory byte, a trap
resource, a cache line.  The :class:`MaskingOracle` decides, *before
any execution*, whether a given :class:`~repro.faults.model.FaultSpec`
is **provably masked**: no observable behavior (stdout bytes, exit
code, structured machine errors, termination) can change.  Everything
it cannot prove stays *potentially ACE* (Architecturally Correct
Execution required — the AVF term for "this bit may matter").

The proofs compose the backward liveness fixpoint of
:mod:`repro.analysis.liveness` with the interval x SP-offset value
analysis and the golden instruction trace:

``reg``
    The flip lands in the paused architectural register file just
    before the instruction at ``itrace[trigger]`` executes.  Masked
    when the flipped bit is dead there (per-bit liveness), when the
    register is DLXe's hard-wired r0 (the injector absorbs it), or
    when the register is beyond the ISA's architectural file (no
    encoding can read it).

``ifetch``
    The flipped word is patched into text permanently.  Masked when
    both the original and the patched word decode to *pure* ALU
    operations (no memory access, control transfer, trap, division,
    or untracked-state access) whose written registers are dead after
    that program point, and no load with a live destination can read
    the patched word (text is data too).  Purity makes every future
    visit of the pc behave identically, so the per-pc liveness fact
    covers the permanent patch.

``mem``
    A flipped data byte is observable only through a load that reads
    it into live destination bits.  Masked when every reachable load
    either targets the stack (the toolchain addresses locals
    SP-relatively; the stack, at the top of memory, never overlaps
    the static data segment), provably cannot cover the byte (absint
    interval), or covers it only with dead destination bits (exact
    addresses refine per byte).  Instruction fetch never reads the
    byte because the planner draws addresses from the data segment —
    checked anyway.

``trap``
    ``getc-eof`` truncates stdin at the current read position — an
    identity on the empty stdin every campaign run uses, and a no-op
    whenever no ``trap 2`` is reachable.  ``sbrk-exhaust`` pulls the
    heap limit down to the current break, which only ``trap 3`` can
    observe (the handler fails soft with -1, it never raises).

``cache``
    The replay corrupts one line's metadata.  Masked when no address
    of the instruction trace maps to that line: the line is neither
    consulted nor refilled, so miss and traffic counts are identical.

Whole-trace quantifications (``ifetch``/``mem``/``trap``) additionally
require ``liveness.imprecise`` to be False — when control flow escaped
attribution the recovered load/trap sets may be incomplete and only
the per-pc register proofs remain sound.

The same liveness facts integrate into AVF-style summaries
(:func:`avf_summary`): vulnerable bit-cycles are the live register
bits summed over every retired instruction of the golden trace,
normalized by the architectural register file size — the static
D16-vs-DLXe exposure comparison of EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from ..asm.objfile import Executable
from ..cc.target import TargetSpec
from ..isa import Op
from ..machine.memory import DEFAULT_MEM_SIZE
from .findings import Finding, finding
from .liveness import (FULL, LivenessAnalysis, _load_byte_mask,
                       analyze_liveness)

if TYPE_CHECKING:
    from ..faults.model import FaultSpec

#: Operations whose execution touches nothing but general registers
#: and can never raise: replacing one with another at the same pc
#: keeps control flow, memory, traps, and the FP/SR files untouched.
PURE_OPS = frozenset({
    Op.NOP, Op.MV, Op.MVI, Op.MVHI, Op.NEG, Op.INV,
    Op.ADD, Op.SUB, Op.MUL, Op.ADDI, Op.SUBI,
    Op.AND, Op.OR, Op.XOR, Op.ANDI, Op.ORI, Op.XORI,
    Op.SHL, Op.SHR, Op.SHRA, Op.SHLI, Op.SHRI, Op.SHRAI,
    Op.CMP, Op.CMPI,
})


@dataclass(frozen=True)
class SiteVerdict:
    """Static classification of one fault site."""

    index: int
    kind: str
    masked: bool          # True = provably masked
    reason: str
    #: pc about to execute at the trigger (None when not consulted).
    pc: int | None = None


@dataclass
class VulnSummary:
    """AVF-style exposure summary of one (program, target) cell."""

    instructions: int
    #: Sum over the golden trace of live register bits per cycle.
    vulnerable_bit_cycles: int
    #: ``instructions * architectural-register-bits`` (r0 excluded on
    #: DLXe: hard-wired bits can never hold ACE state).
    total_bit_cycles: int
    #: Architectural vulnerability factor of the register file.
    avf: float
    #: function -> {instructions, vulnerable_bit_cycles, avf}.
    functions: dict[str, dict[str, float]] = field(default_factory=dict)


@dataclass
class CellVulnerability:
    """Verdicts plus exposure summary for one campaign cell."""

    bench: str
    target: str
    verdicts: list[SiteVerdict]
    summary: VulnSummary

    @property
    def proven_masked(self) -> int:
        return sum(1 for v in self.verdicts if v.masked)

    def by_kind(self) -> dict[str, dict[str, int]]:
        out: dict[str, dict[str, int]] = {}
        for verdict in self.verdicts:
            per = out.setdefault(verdict.kind, {"sites": 0, "masked": 0})
            per["sites"] += 1
            if verdict.masked:
                per["masked"] += 1
        return dict(sorted(out.items()))

    def to_dict(self) -> dict[str, object]:
        return {
            "bench": self.bench,
            "target": self.target,
            "sites": len(self.verdicts),
            "proven_masked": self.proven_masked,
            "by_kind": self.by_kind(),
            "verdicts": [{"index": v.index, "kind": v.kind,
                          "masked": v.masked, "reason": v.reason}
                         for v in self.verdicts],
            "avf": self.summary.avf,
            "vulnerable_bit_cycles": self.summary.vulnerable_bit_cycles,
            "total_bit_cycles": self.summary.total_bit_cycles,
        }


class MaskingOracle:
    """Per-image static masked/ACE classifier for fault specs."""

    def __init__(self, exe: Executable, target: TargetSpec,
                 liveness: LivenessAnalysis, itrace: Sequence[int], *,
                 stdin: bytes = b"",
                 mem_size: int = DEFAULT_MEM_SIZE) -> None:
        self.exe = exe
        self.target = target
        self.isa = target.isa
        self.liveness = liveness
        self.cfg = liveness.cfg
        self.itrace = itrace
        self.stdin = stdin
        self.mem_size = mem_size
        self.zero_r0 = self.isa.name == "DLXe"
        self.num_gregs = self.isa.num_gregs
        #: Immediates of every reachable ``trap`` instruction.
        self.trap_codes: set[int] = set()
        for block in self.cfg.blocks.values():
            for _pc, instr in block.instrs:
                if instr.op == Op.TRAP:
                    self.trap_codes.add(instr.imm or 0)
        self._touched_lines: dict[tuple[int, int], set[int]] = {}

    # ----------------------------------------------------------- entry

    def classify(self, spec: "FaultSpec") -> SiteVerdict:
        """Prove ``spec`` masked, or return the obstacle."""
        if spec.kind == "cache":
            return self._classify_cache(spec)
        if spec.kind == "trap":
            return self._classify_trap(spec)
        if spec.trigger >= len(self.itrace):
            return self._verdict(spec, True,
                                 "program exits before the trigger")
        if spec.kind == "reg":
            return self._classify_reg(spec)
        if spec.kind == "ifetch":
            return self._classify_ifetch(spec)
        if spec.kind == "mem":
            return self._classify_mem(spec)
        return self._verdict(spec, False,
                             f"unknown fault kind {spec.kind!r}")

    def _verdict(self, spec: "FaultSpec", masked: bool, reason: str,
                 pc: int | None = None) -> SiteVerdict:
        return SiteVerdict(index=spec.index, kind=spec.kind,
                           masked=masked, reason=reason, pc=pc)

    # ------------------------------------------------------------- reg

    def _classify_reg(self, spec: "FaultSpec") -> SiteVerdict:
        reg = spec.reg % 32
        bit = spec.bit % 32
        if self.zero_r0 and reg == 0:
            return self._verdict(spec, True,
                                 "hard-wired r0 absorbs the flip")
        if reg >= self.num_gregs:
            return self._verdict(
                spec, True,
                f"r{reg} is beyond {self.isa.name}'s architectural "
                f"file; no encoding reads it")
        pc = self.itrace[spec.trigger]
        mask = self.liveness.live_mask(pc, reg)
        if not (mask >> bit) & 1:
            return self._verdict(
                spec, True,
                f"bit {bit} of r{reg} is dead at {pc:#x}", pc)
        return self._verdict(
            spec, False,
            f"bit {bit} of r{reg} is live at {pc:#x}", pc)

    # ---------------------------------------------------------- ifetch

    def _classify_ifetch(self, spec: "FaultSpec") -> SiteVerdict:
        if self.liveness.imprecise:
            return self._verdict(
                spec, False, "control-flow attribution is incomplete")
        pc = self.itrace[spec.trigger]
        width = self.isa.width_bytes
        index = (pc - self.exe.text_base) // width
        word = bytearray(
            self.exe.text[index * width:(index + 1) * width])
        if len(word) != width:
            return self._verdict(spec, False,
                                 f"trigger pc {pc:#x} outside text", pc)
        bit = spec.bit % (width * 8)
        word[bit // 8] ^= 1 << (bit % 8)
        try:
            patched = self.isa.decode_bytes(bytes(word))
        except Exception:  # noqa: BLE001 - strict decoder rejection
            return self._verdict(
                spec, False,
                "patched word does not decode (detected, not masked)",
                pc)
        _word, original = self.cfg.instr_at(pc)
        if not hasattr(original, "op"):
            return self._verdict(spec, False,
                                 f"no decoded instruction at {pc:#x}",
                                 pc)
        for label, instr in (("original", original),
                             ("patched", patched)):
            if instr.op not in PURE_OPS:
                return self._verdict(
                    spec, False,
                    f"{label} op {instr.op.value} is not a pure ALU "
                    f"write", pc)
        live_out = self.liveness.live_out.get(pc)
        if live_out is None:
            return self._verdict(spec, False,
                                 f"no liveness fact at {pc:#x}", pc)
        for label, instr in (("original", original),
                             ("patched", patched)):
            rd = instr.rd
            if rd is None or (self.zero_r0 and rd == 0):
                continue
            if live_out.get(rd, 0):
                return self._verdict(
                    spec, False,
                    f"{label} destination r{rd} is live after "
                    f"{pc:#x}", pc)
        lo = self.exe.text_base + index * width
        clash = self._live_load_over(lo, lo + width - 1)
        if clash is not None:
            return self._verdict(spec, False, clash, pc)
        return self._verdict(
            spec, True,
            f"both encodings at {pc:#x} are pure ALU writes to dead "
            f"destinations", pc)

    # ------------------------------------------------------------- mem

    def _classify_mem(self, spec: "FaultSpec") -> SiteVerdict:
        if self.liveness.imprecise:
            return self._verdict(
                spec, False, "control-flow attribution is incomplete")
        addr = spec.addr % self.mem_size
        text_end = self.exe.text_base + len(self.exe.text)
        if self.exe.text_base <= addr < text_end:
            return self._verdict(
                spec, False,
                f"byte {addr:#x} lies in text; fetch reads it")
        clash = self._live_load_over(addr, addr)
        if clash is not None:
            return self._verdict(spec, False, clash)
        return self._verdict(
            spec, True,
            f"byte {addr:#x} is never read into live destination bits")

    def _live_load_over(self, lo: int, hi: int) -> str | None:
        """Why some load may observe bytes ``[lo, hi]`` (None = none)."""
        for load in self.liveness.loads:
            if load.stack or load.dest_live == 0:
                continue
            if load.addr is None:
                return (f"load at {load.pc:#x} has an unknown address "
                        f"and a live destination")
            alo, ahi = load.addr
            if ahi + load.size - 1 < lo or hi < alo:
                continue
            if alo == ahi:
                # Exact address: refine per byte through the datum's
                # destination-bit mapping.
                masks = 0
                for byte in range(max(lo, alo),
                                  min(hi, alo + load.size - 1) + 1):
                    masks |= _load_byte_mask(load.op, byte - alo)
                if load.dest_live & masks:
                    return (f"load at {load.pc:#x} reads the byte into "
                            f"live bits")
                continue
            return (f"load at {load.pc:#x} may cover the byte "
                    f"(address in [{alo:#x}, {ahi:#x}])")
        return None

    # ------------------------------------------------------------ trap

    def _classify_trap(self, spec: "FaultSpec") -> SiteVerdict:
        if spec.mode == "getc-eof":
            if not self.stdin:
                return self._verdict(
                    spec, True,
                    "stdin is empty: truncating at the read position "
                    "is an identity")
            if not self.liveness.imprecise and 2 not in self.trap_codes:
                return self._verdict(spec, True,
                                     "no reachable getc trap")
            return self._verdict(spec, False,
                                 "a reachable getc may observe the "
                                 "truncated stdin")
        if spec.mode == "sbrk-exhaust":
            if self.liveness.imprecise:
                return self._verdict(
                    spec, False,
                    "control-flow attribution is incomplete")
            if 3 not in self.trap_codes:
                return self._verdict(spec, True,
                                     "no reachable sbrk trap")
            return self._verdict(spec, False,
                                 "a reachable sbrk may observe the "
                                 "pulled-down heap limit")
        return self._verdict(spec, False,
                             f"unknown trap mode {spec.mode!r}")

    # ----------------------------------------------------------- cache

    def _classify_cache(self, spec: "FaultSpec") -> SiteVerdict:
        from ..cache import CacheConfig

        config = CacheConfig(size=8192)
        line = spec.line % config.num_lines
        key = (config.block, config.num_lines)
        touched = self._touched_lines.get(key)
        if touched is None:
            touched = {(a // config.block) % config.num_lines
                       for a in self.itrace}
            self._touched_lines[key] = touched
        if line not in touched:
            return self._verdict(
                spec, True,
                f"cache line {line} is never touched by the fetch "
                f"trace")
        return self._verdict(
            spec, False, f"cache line {line} is touched by the trace")


def avf_summary(liveness: LivenessAnalysis,
                itrace: Sequence[int]) -> VulnSummary:
    """Vulnerable bit-cycles of the register file over a golden trace.

    Weights every retired instruction by the number of live register
    bits just before it executes — the classic ACE approximation of
    the architectural vulnerability factor, here computed from a sound
    static analysis, so the result is an *upper bound* on true AVF.
    Unknown pcs (possible only on imprecise images) weigh fully.
    """
    cfg = liveness.cfg
    reg_bits = cfg.isa.num_gregs * 32
    if cfg.isa.name == "DLXe":
        reg_bits -= 32                 # r0 can never hold ACE state
    weights: dict[int, int] = {}
    per_func: dict[str, dict[str, float]] = {}
    counts = Counter(itrace)
    vulnerable = 0
    for pc, n in counts.items():
        weight = weights.get(pc)
        if weight is None:
            state = liveness.live_in.get(pc)
            weight = reg_bits if state is None else \
                sum(mask.bit_count() for mask in state.values())
            weights[pc] = weight
        vulnerable += weight * n
        name = cfg.func_of(pc) or "?"
        entry = per_func.setdefault(
            name, {"instructions": 0, "vulnerable_bit_cycles": 0})
        entry["instructions"] += n
        entry["vulnerable_bit_cycles"] += weight * n
    total = len(itrace) * reg_bits
    for entry in per_func.values():
        denom = entry["instructions"] * reg_bits
        entry["avf"] = round(entry["vulnerable_bit_cycles"] / denom, 6) \
            if denom else 0.0
    return VulnSummary(
        instructions=len(itrace),
        vulnerable_bit_cycles=vulnerable,
        total_bit_cycles=total,
        avf=round(vulnerable / total, 6) if total else 0.0,
        functions=dict(sorted(per_func.items())))


def build_oracle(exe: Executable, target: TargetSpec,
                 itrace: Sequence[int], *, stdin: bytes = b"",
                 liveness: LivenessAnalysis | None = None,
                 ) -> MaskingOracle:
    """Run the CFG/value/liveness stack and wrap it in an oracle.

    ``liveness`` lets callers that already analyzed the image (the
    lint driver) share the result; otherwise the full pipeline runs:
    CFG recovery with value-analysis feedback, direct-call promotion
    (Lab images keep only global symbols — without promotion every
    DLXe image folds into ``_start``), then the backward liveness
    fixpoint.
    """
    if liveness is None:
        from .absint import resolve_cfg
        from .wcet import _promote_direct_calls

        cfg, result = resolve_cfg(exe, target.isa, target=target)
        cfg, result = _promote_direct_calls(cfg, None, target, result)
        liveness = analyze_liveness(exe, target.isa, target=target,
                                    cfg=cfg, result=result)
    return MaskingOracle(exe, target, liveness, itrace, stdin=stdin)


def classify_cell(bench: str, target_name: str, exe: Executable,
                  target: TargetSpec, itrace: Sequence[int],
                  golden_instructions: int, *,
                  faults: int = 20, seed: int = 42,
                  kinds: tuple[str, ...] | None = None,
                  liveness: LivenessAnalysis | None = None,
                  ) -> CellVulnerability:
    """Statically classify one campaign cell's planned fault list.

    Plans exactly the specs the seeded campaign would execute (same
    PRNG stream) and runs every one through the oracle — no simulation
    beyond the golden trace the caller already has.
    """
    from ..faults.campaign import plan_cell
    from ..faults.model import DEFAULT_KINDS, GoldenRun

    oracle = build_oracle(exe, target, itrace, liveness=liveness)
    golden = GoldenRun(instructions=golden_instructions, interlocks=0,
                       exit_code=0)
    specs = plan_cell(bench, target_name, golden, exe, faults=faults,
                      seed=seed, kinds=kinds or DEFAULT_KINDS)
    verdicts = [oracle.classify(spec) for spec in specs]
    return CellVulnerability(bench=bench, target=target_name,
                             verdicts=verdicts,
                             summary=avf_summary(oracle.liveness,
                                                 itrace))


def vuln_findings(cell: CellVulnerability) -> list[Finding]:
    """The VULN002 statistics finding for one cell."""
    kinds = ", ".join(f"{kind} {per['masked']}/{per['sites']}"
                      for kind, per in cell.by_kind().items())
    return [finding(
        "VULN002", f"{cell.bench}/{cell.target}",
        f"{cell.proven_masked}/{len(cell.verdicts)} sites proven "
        f"masked ({kinds}); register-file AVF "
        f"{cell.summary.avf:.3f}")]


def check_soundness(cell: CellVulnerability,
                    results: Iterable[object]) -> list[Finding]:
    """VULN001 findings: proven-masked sites observed non-masked.

    ``results`` are the executed :class:`~repro.faults.model.
    FaultResult` list of the same cell (same seed and fault count, so
    index aligns with the verdict list).  Any contradiction is an
    analysis soundness bug — an ERROR, locked to zero in CI.
    """
    verdicts = {v.index: v for v in cell.verdicts}
    out: list[Finding] = []
    for result in results:
        spec = result.spec            # type: ignore[attr-defined]
        outcome = result.outcome      # type: ignore[attr-defined]
        verdict = verdicts.get(spec.index)
        if verdict is None or not verdict.masked:
            continue
        if outcome != "masked":
            out.append(finding(
                "VULN001",
                f"{cell.bench}/{cell.target}#"
                f"{spec.index}",
                f"{spec.kind} fault proven masked "
                f"({verdict.reason}) but observed {outcome}"))
    return out


__all__ = ["PURE_OPS", "SiteVerdict", "VulnSummary",
           "CellVulnerability", "MaskingOracle", "avf_summary",
           "build_oracle", "classify_cell", "vuln_findings",
           "check_soundness", "FULL"]

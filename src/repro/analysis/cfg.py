"""Control-flow graph recovery over linked binary images.

:func:`build_cfg` performs the static reachability sweep that
``binlint`` pioneered — a depth-first walk from the entry point and
every function label, classifying text words as code or (D16)
literal-pool data — and additionally partitions the reachable
instructions into single-entry basic blocks with explicit successor
edges.  The resulting :class:`BinaryCFG` is the shared substrate of
every binary-level analysis:

* the binary linter (``BIN00x`` reachability and round-trip rules),
* the abstract interpreter (:mod:`repro.analysis.absint`), and
* the static cycle-bound estimator (:mod:`repro.analysis.timing`).

Successor edges cover *static* control flow only.  Register-indirect
jumps (``j``/``jz``/``jnz``/``jl``) have unknown targets at this level;
their blocks are marked with :attr:`BasicBlock.indirect` and the value
analysis refines them (in this toolchain's output they are returns,
pool-loaded calls, or jump-table-free tail positions, so every indirect
target is a function label and therefore already a reachability root).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from ..asm.objfile import Executable
from ..isa import DecodingError, Instr, IsaSpec, Op, OpKind
from ..isa.refs import (ABS_JUMPS, PCREL_BRANCHES, ldc_pool_addr,
                        transfer_target)

#: PC-relative branches with a statically known target.
STATIC_BRANCHES = PCREL_BRANCHES
#: Direct (J-type) jumps with an absolute target in the immediate.
STATIC_JUMPS = ABS_JUMPS
#: Calls (direct and register-indirect).
CALL_OPS = (Op.JL, Op.JLD)
#: Ops after which execution cannot fall through.
NO_FALLTHROUGH = (Op.BR, Op.J, Op.JD)


def is_halt(instr: Instr) -> bool:
    """Trap 0 halts the machine: it terminates a block with no successor."""
    return instr.op == Op.TRAP and instr.imm == 0


#: The statically known control-flow target of an instruction, if any.
static_target = transfer_target


@dataclass
class BasicBlock:
    """A maximal single-entry run of reachable instructions."""

    start: int
    instrs: list[tuple[int, Instr]]          # (address, instruction)
    succs: tuple[int, ...] = ()              # successor block start addrs
    indirect: bool = False                   # ends in a register jump
    is_call: bool = False                    # ends in jl / jld
    is_return: bool = False                  # ends in ``j r1``
    is_halt: bool = False                    # ends in trap 0

    _end: int = 0

    @property
    def end(self) -> int:
        """First address past the block."""
        return self._end

    @property
    def terminator(self) -> tuple[int, Instr]:
        return self.instrs[-1]


@dataclass
class BinaryCFG:
    """The recovered control-flow structure of one linked image."""

    exe: Executable
    isa: IsaSpec
    base: int
    end: int
    width: int
    blocks: dict[int, BasicBlock]            # start address -> block
    funcs: list[tuple[int, str]]             # sorted (address, name)
    visited: set[int]                        # reachable code addresses
    pool: set[int]                           # literal-pool byte addresses
    branch_targets: list[tuple[int, int]]    # (branch addr, target addr)
    ldc_refs: list[tuple[int, int]]          # (ldc addr, pool word addr)
    decoded: dict[int, tuple[int, object]] = field(repr=False,
                                                   default_factory=dict)

    # ------------------------------------------------------------ lookups

    def instr_at(self, addr: int) -> tuple[int, object]:
        """(word, Instr-or-DecodingError) for the text word at ``addr``."""
        if addr in self.decoded:
            return self.decoded[addr]
        word = int.from_bytes(
            self.exe.text[addr - self.base:addr - self.base + self.width],
            "little")
        try:
            result = (word, self.isa.decode(word))
        except DecodingError as exc:
            result = (word, exc)
        self.decoded[addr] = result
        return result

    def read_word(self, addr: int) -> int | None:
        """A 32-bit little-endian text word (e.g. a D16 pool constant)."""
        offset = addr - self.base
        if offset < 0 or offset + 4 > len(self.exe.text):
            return None
        return int.from_bytes(self.exe.text[offset:offset + 4], "little")

    def func_of(self, addr: int) -> tuple[int, str] | None:
        """The (start, name) of the function containing ``addr``."""
        index = bisect_right(self._func_addrs, addr) - 1
        return self.funcs[index] if index >= 0 else None

    def func_span(self, fstart: int) -> tuple[int, int]:
        """[start, end) address range of the function at ``fstart``."""
        index = self._func_addrs.index(fstart)
        span_end = (self.funcs[index + 1][0]
                    if index + 1 < len(self.funcs) else self.end)
        return fstart, span_end

    def function_blocks(self, fstart: int) -> list[BasicBlock]:
        """The blocks lying inside one function's address span."""
        start, span_end = self.func_span(fstart)
        return [block for addr, block in sorted(self.blocks.items())
                if start <= addr < span_end]

    def describe(self, addr: int) -> str:
        """address -> ``text:0xADDR (name+off)`` for findings."""
        index = bisect_right(self._mark_addrs, addr) - 1
        if index < 0:
            return f"text:{addr:#x}"
        mark_addr, name = self._marks[index]
        offset = addr - mark_addr
        suffix = f"+{offset:#x}" if offset else ""
        return f"text:{addr:#x} ({name}{suffix})"

    # ---------------------------------------------------------- internals

    def _index_symbols(self, symbols: dict[str, int]) -> None:
        self._func_addrs = [addr for addr, _name in self.funcs]
        self._marks = sorted(
            (addr, name) for name, addr in symbols.items()
            if self.base <= addr <= self.end)
        self._mark_addrs = [addr for addr, _name in self._marks]


def build_cfg(exe: Executable, isa: IsaSpec, *,
              symbols: dict[str, int] | None = None,
              extra_funcs: dict[int, str] | None = None) -> BinaryCFG:
    """Recover the reachable control-flow graph of a linked image.

    ``symbols`` maps label names to absolute text addresses (the
    executable's own table only retains globals; the lint driver passes
    the full label map from the object file).  Non-dot text symbols are
    treated as function starts: reachability roots, block leaders, and
    calling-convention extents.

    ``extra_funcs`` (address -> synthesized name) adds function starts
    beyond the symbol table — the abstract interpreter feeds resolved
    register-indirect call targets back through it
    (:func:`repro.analysis.absint.resolve_cfg`) so stripped images
    still recover full coverage.
    """
    symbols = dict(symbols if symbols is not None else exe.symbols)
    base, text = exe.text_base, bytes(exe.text)
    end = base + len(text)
    width = isa.width_bytes
    func_map = {addr: name for name, addr in sorted(symbols.items())
                if not name.startswith(".") and base <= addr < end}
    for addr, name in (extra_funcs or {}).items():
        if base <= addr < end:
            func_map.setdefault(addr, name)
            symbols.setdefault(name, addr)
    funcs = sorted((addr, name) for addr, name in func_map.items())

    cfg = BinaryCFG(exe=exe, isa=isa, base=base, end=end, width=width,
                    blocks={}, funcs=funcs, visited=set(), pool=set(),
                    branch_targets=[], ldc_refs=[])
    cfg._index_symbols(symbols)

    # --- reachability sweep (identical rules to the original binlint
    # walk: follow static targets, treat trap 0 and the no-fallthrough
    # ops as block-enders, collect D16 literal-pool words).
    visited, pool = cfg.visited, cfg.pool
    leaders: set[int] = {exe.entry} | {addr for addr, _name in funcs}
    stack = [exe.entry] + [addr for addr, _name in funcs]
    while stack:
        pc = stack.pop()
        if pc in visited or not base <= pc < end:
            continue
        visited.add(pc)
        _word, instr = cfg.instr_at(pc)
        if isinstance(instr, DecodingError):
            continue
        op = instr.op
        if op == Op.LDC:
            addr = ldc_pool_addr(pc, instr.imm)
            cfg.ldc_refs.append((pc, addr))
            if base <= addr < end:
                pool.update(range(addr, addr + 4))
        tgt = static_target(pc, instr)
        if tgt is not None:
            cfg.branch_targets.append((pc, tgt))
            if base <= tgt < end:
                leaders.add(tgt)
                stack.append(tgt)
        if is_halt(instr):
            continue
        if op not in NO_FALLTHROUGH:
            if instr.info.kind in (OpKind.BRANCH, OpKind.JUMP):
                leaders.add(pc + width)      # fall-through edge of a CTI
            stack.append(pc + width)

    # --- block partition: walk each leader forward until the next
    # control transfer, the next leader, or the edge of reachability.
    for leader in sorted(leaders):
        if leader not in visited:
            continue
        _word, first = cfg.instr_at(leader)
        if isinstance(first, DecodingError):
            continue
        instrs: list[tuple[int, Instr]] = []
        pc = leader
        while True:
            _word, instr = cfg.instr_at(pc)
            if isinstance(instr, DecodingError):
                break
            instrs.append((pc, instr))
            ends_block = (instr.info.kind in (OpKind.BRANCH, OpKind.JUMP)
                          or is_halt(instr))
            pc += width
            if ends_block or pc in leaders or pc not in visited:
                break
        if not instrs:
            continue
        block = BasicBlock(start=leader, instrs=instrs)
        block._end = pc
        _finish_block(cfg, block)
        cfg.blocks[leader] = block
    return cfg


def _finish_block(cfg: BinaryCFG, block: BasicBlock) -> None:
    """Classify the terminator and attach static successor edges."""
    last_pc, last = block.terminator
    op = last.op
    fall = last_pc + cfg.width
    succs: list[int] = []
    if is_halt(last):
        block.is_halt = True
    elif op in (Op.BR, Op.JD):
        tgt = static_target(last_pc, last)
        if cfg.base <= tgt < cfg.end:
            succs.append(tgt)
    elif op in (Op.BZ, Op.BNZ):
        succs.append(fall)
        tgt = static_target(last_pc, last)
        if cfg.base <= tgt < cfg.end:
            succs.append(tgt)
    elif op in CALL_OPS:
        # A call returns to its fall-through site; the callee is a
        # separate root, so the edge stays intra-procedural.
        block.is_call = True
        if fall in cfg.blocks or fall in cfg.visited:
            succs.append(fall)
    elif op == Op.J:
        block.indirect = True
        block.is_return = last.rs1 == 1      # ``j r1``: the return idiom
    elif op in (Op.JZ, Op.JNZ):
        block.indirect = True
        succs.append(fall)
    elif fall in cfg.visited:
        succs.append(fall)                   # plain fall-through
    block.succs = tuple(succs)

"""Dominator trees and natural-loop recovery over binary CFGs.

The whole-program cycle-bound analysis (:mod:`repro.analysis.wcet`)
needs the loop structure of every function: which blocks form a loop,
where the back edges are, and whether the region is *reducible* (every
cycle is entered through a single header that dominates the whole
body).  This module recovers that structure from the basic blocks of a
:class:`~repro.analysis.cfg.BinaryCFG` function:

* :func:`dominator_tree` — iterative immediate-dominator computation
  (Cooper/Harvey/Kennedy) over the blocks reachable from a function
  entry;
* :func:`find_loops` — natural loops from back edges (edges whose
  target dominates their source), merged per header, nested by body
  containment.  Retreating edges whose target does *not* dominate the
  source mark an **irreducible** region; those are reported, never
  guessed at, and the timing composer refuses to bound them.

Toolchain-generated code is always reducible (the compiler emits
structured ``for``/``while`` loops only), so irreducibility in a
linked image indicates either hand-written assembly or CFG-recovery
breakage — both worth a finding rather than silent unsoundness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .cfg import BasicBlock


def reverse_postorder(blocks: dict[int, BasicBlock],
                      entry: int) -> list[int]:
    """Reverse post-order of the blocks reachable from ``entry``.

    Successor edges leaving ``blocks`` (e.g. cross-function branches in
    a restricted view) are ignored.
    """
    if entry not in blocks:
        return []
    seen = {entry}
    post: list[int] = []
    stack: list[tuple[int, iter]] = [(entry, iter(blocks[entry].succs))]
    while stack:
        node, it = stack[-1]
        advanced = False
        for succ in it:
            if succ in blocks and succ not in seen:
                seen.add(succ)
                stack.append((succ, iter(blocks[succ].succs)))
                advanced = True
                break
        if not advanced:
            post.append(node)
            stack.pop()
    return post[::-1]


@dataclass
class DomTree:
    """Immediate dominators of one function's reachable blocks."""

    entry: int
    idom: dict[int, int]                  # block -> immediate dominator
    rpo: list[int]                        # reverse post-order
    index: dict[int, int]                 # block -> RPO position
    preds: dict[int, list[int]]           # reachable-predecessor map

    def dominates(self, a: int, b: int) -> bool:
        """True when every path from the entry to ``b`` passes ``a``."""
        while True:
            if a == b:
                return True
            if b == self.entry or b not in self.idom:
                return False
            parent = self.idom[b]
            if parent == b:
                return False
            b = parent


def dominator_tree(blocks: dict[int, BasicBlock], entry: int) -> DomTree:
    """Compute immediate dominators with the iterative RPO algorithm."""
    rpo = reverse_postorder(blocks, entry)
    index = {b: i for i, b in enumerate(rpo)}
    preds: dict[int, list[int]] = {b: [] for b in rpo}
    for b in rpo:
        for succ in blocks[b].succs:
            if succ in index and b not in preds[succ]:
                preds[succ].append(b)
    idom: dict[int, int] = {entry: entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for b in rpo[1:]:
            new = None
            for p in preds[b]:
                if p in idom:
                    new = p if new is None else intersect(p, new)
            if new is not None and idom.get(b) != new:
                idom[b] = new
                changed = True
    return DomTree(entry=entry, idom=idom, rpo=rpo, index=index,
                   preds=preds)


@dataclass
class Loop:
    """One natural loop: a header and the blocks that cycle back to it."""

    header: int
    body: frozenset[int]                  # block starts, header included
    latches: tuple[int, ...]              # back-edge source blocks
    exits: tuple[tuple[int, int], ...]    # (from-block, to-block) edges
    parent: int | None = None             # enclosing loop's header
    depth: int = 1                        # 1 = outermost


@dataclass
class LoopForest:
    """All natural loops of one function, plus irreducibility evidence."""

    entry: int
    dom: DomTree
    loops: dict[int, Loop] = field(default_factory=dict)   # by header
    irreducible: tuple[tuple[int, int], ...] = ()

    @property
    def reducible(self) -> bool:
        return not self.irreducible

    def innermost_first(self) -> list[Loop]:
        """Loops ordered so inner loops precede the loops containing
        them (body-size order; ties cannot nest)."""
        return sorted(self.loops.values(),
                      key=lambda lp: (len(lp.body), lp.header))

    def loop_of(self, block: int) -> Loop | None:
        """The innermost loop containing ``block``, if any."""
        best = None
        for loop in self.loops.values():
            if block in loop.body and (
                    best is None or len(loop.body) < len(best.body)):
                best = loop
        return best


def find_loops(blocks: dict[int, BasicBlock], entry: int) -> LoopForest:
    """Recover the natural-loop forest of one function's blocks."""
    dom = dominator_tree(blocks, entry)
    forest = LoopForest(entry=entry, dom=dom)
    if not dom.rpo:
        return forest

    # Classify retreating edges with an explicit DFS stack: an edge to a
    # block currently on the stack closes a cycle; it is a back edge
    # when its target dominates its source, irreducible otherwise.
    back_edges: list[tuple[int, int]] = []
    irreducible: list[tuple[int, int]] = []
    on_stack: set[int] = set()
    visited: set[int] = set()
    stack: list[tuple[int, iter]] = [(entry, iter(blocks[entry].succs))]
    visited.add(entry)
    on_stack.add(entry)
    while stack:
        node, it = stack[-1]
        advanced = False
        for succ in it:
            if succ not in blocks:
                continue
            if succ in on_stack:
                if dom.dominates(succ, node):
                    back_edges.append((node, succ))
                else:
                    irreducible.append((node, succ))
            elif succ not in visited:
                visited.add(succ)
                on_stack.add(succ)
                stack.append((succ, iter(blocks[succ].succs)))
                advanced = True
                break
        if not advanced:
            stack.pop()
            on_stack.discard(node)
    forest.irreducible = tuple(sorted(set(irreducible)))

    # Natural loop of each header: the header plus everything that
    # reaches a latch without passing through the header.
    latches_of: dict[int, set[int]] = {}
    for src, header in back_edges:
        latches_of.setdefault(header, set()).add(src)
    for header, latches in sorted(latches_of.items()):
        body = {header}
        work = [lt for lt in latches if lt != header]
        body.update(work)
        while work:
            b = work.pop()
            for p in dom.preds.get(b, ()):
                if p not in body:
                    body.add(p)
                    work.append(p)
        exits = tuple(sorted(
            (b, s) for b in body for s in set(blocks[b].succs)
            if s in blocks and s not in body))
        forest.loops[header] = Loop(header=header, body=frozenset(body),
                                    latches=tuple(sorted(latches)),
                                    exits=exits)

    # Nesting: the parent is the smallest strictly-containing loop.
    loops = list(forest.loops.values())
    for loop in loops:
        parent = None
        for other in loops:
            if other is loop or loop.header not in other.body:
                continue
            if not loop.body <= other.body:
                continue
            if parent is None or len(other.body) < len(parent.body):
                parent = other
        if parent is not None:
            forest.loops[loop.header] = replace(
                loop, parent=parent.header)
    for header in list(forest.loops):
        depth = 1
        seen = {header}
        walk = forest.loops[header].parent
        while walk is not None and walk not in seen:
            seen.add(walk)
            depth += 1
            walk = forest.loops[walk].parent
        forest.loops[header] = replace(forest.loops[header], depth=depth)
    return forest

"""Cross-ISA consistency checking of compiled binaries.

The paper's central comparison — the same minic source compiled for the
16-bit D16 and the 32-bit DLXe — is only meaningful if the two binaries
*compute the same thing*.  This module checks that mechanically, from
the binaries alone: the abstract interpreter
(:mod:`repro.analysis.absint`) summarizes each image per function, and
:func:`compare_analyses` cross-checks the summaries:

======= ==========================================================
XISA001 call-graph shape differs: a function exists on one side
        only, or the sequence of resolved callees (in call-site
        address order, i.e. source evaluation order) disagrees
XISA002 trap/IO behaviour differs: the per-function sequence of
        statically-known trap codes disagrees
XISA003 provable return values differ: both sides prove a function
        returns a constant, and the constants are not equal
======= ==========================================================

Every rule errs on the side of silence: a comparison is skipped
whenever either side could not prove the fact (unresolved indirect
calls, non-constant return value), so only *provable* divergence is
reported — a code-generation or ISA-model bug, never optimization
noise.

:func:`check_cross_isa` is the one-call harness: compile one source
for each target, analyze both images, and compare.  Since the
translation-validation layer landed it also runs a *semantic* tier by
default: every function whose machine-code observable-effect summary
is symbolically proven against the shared IR on both targets
(:func:`repro.analysis.equiv.check_binary_program`) is semantically
consistent across the ISAs by transitivity — count-consistency
upgraded to behavior, with proven divergence surfaced as EQ004.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm import AsmError, Assembler, link
from ..cc import TargetSpec, get_target
from ..cc.codegen import generate_assembly
from ..cc.irgen import lower_program
from ..cc.opt import optimize_module
from ..cc.parser import parse
from ..cc.runtime import RUNTIME_SOURCE
from .absint import AnalysisResult, FunctionSummary, analyze_executable
from .findings import Finding, finding


@dataclass
class CrossIsaReport:
    """Outcome of one cross-ISA comparison."""

    targets: tuple[str, str]
    results: dict[str, AnalysisResult]
    findings: list[Finding] = field(default_factory=list)
    #: Functions whose facts were actually compared (had provable
    #: summaries on both sides) — coverage evidence for the docs.
    compared: list[str] = field(default_factory=list)
    #: Per-function semantic verdicts from the translation-validation
    #: tier: "proven" when the machine-code observable-effect summary
    #: matched the shared IR on *every* target (the IR is the hub —
    #: segment layouts differ between ISAs, so binaries are never
    #: compared address-for-address), "unknown" when any side refused
    #: (loops, non-comparable signature), "divergent" on a proven
    #: mismatch (also surfaced as an EQ004 error finding).
    semantic: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings


def _comparable_callees(summary: FunctionSummary) -> list[str] | None:
    """Callee sequence, or None when not fully resolved."""
    if summary.unresolved_calls:
        return None
    if any(name.startswith("<") for name in summary.callees):
        return None
    return summary.callees


def _is_address(result: AnalysisResult, value: int) -> bool:
    """True when ``value`` points into the image's text or data.

    A function returning the address of a global returns a *different*
    constant on each ISA (segment layout differs with instruction
    width), so address-valued constants are never comparable across
    images.
    """
    exe = result.cfg.exe
    if exe.text_base <= value < exe.text_base + len(exe.text):
        return True
    data_end = exe.symbols.get("__data_end",
                               exe.data_base + len(exe.data))
    return exe.data_base <= value < data_end


def compare_analyses(results: dict[str, AnalysisResult],
                     ) -> CrossIsaReport:
    """Cross-check per-function facts of two analyzed images.

    ``results`` maps exactly two target names to their
    :class:`~repro.analysis.absint.AnalysisResult`.
    """
    if len(results) != 2:
        raise ValueError(f"need exactly two analyses to compare, "
                         f"got {sorted(results)}")
    (name_a, res_a), (name_b, res_b) = sorted(results.items())
    report = CrossIsaReport(targets=(name_a, name_b), results=results)
    out = report.findings

    funcs_a, funcs_b = set(res_a.functions), set(res_b.functions)
    for missing in sorted(funcs_a ^ funcs_b):
        present = name_a if missing in funcs_a else name_b
        absent = name_b if missing in funcs_a else name_a
        out.append(finding(
            "XISA001", f"xisa:{missing}",
            f"function exists on {present} but not on {absent}"))

    for fname in sorted(funcs_a & funcs_b):
        sa, sb = res_a.functions[fname], res_b.functions[fname]
        compared = False

        ca, cb = _comparable_callees(sa), _comparable_callees(sb)
        if ca is not None and cb is not None:
            compared = True
            if ca != cb:
                out.append(finding(
                    "XISA001", f"xisa:{fname}",
                    f"callee sequences differ: {name_a} calls {ca}, "
                    f"{name_b} calls {cb}"))

        if ca is not None and cb is not None:
            # Trap sequences are only comparable when the whole call
            # chain is resolved on both sides (an unresolved call could
            # hide traps behind it on one side only).
            if sa.traps != sb.traps:
                out.append(finding(
                    "XISA002", f"xisa:{fname}",
                    f"trap sequences differ: {name_a} issues "
                    f"{sa.traps}, {name_b} issues {sb.traps}"))

        ra = res_a.returned_constant(fname)
        rb = res_b.returned_constant(fname)
        if ra is not None and rb is not None \
                and not _is_address(res_a, ra) \
                and not _is_address(res_b, rb):
            compared = True
            if ra != rb:
                out.append(finding(
                    "XISA003", f"xisa:{fname}",
                    f"provable return values differ: {name_a} returns "
                    f"{ra:#x}, {name_b} returns {rb:#x}"))

        if compared:
            report.compared.append(fname)
    return report


def analyze_source(source: str, target: TargetSpec | str, *,
                   opt_level: int = 2,
                   include_runtime: bool = True) -> AnalysisResult:
    """Compile one minic source and run the value analysis on the image.

    Mirrors the lint driver's layering (full label map from the object
    file, so every function is a named reachability root).
    """
    if isinstance(target, str):
        target = get_target(target)
    full = (RUNTIME_SOURCE + "\n" + source) if include_runtime else source
    module = lower_program(parse(full))
    optimize_module(module, level=opt_level)
    assembly = generate_assembly(module, target, schedule=opt_level >= 1)
    try:
        obj = Assembler(target.isa).assemble(assembly)
        exe = link([obj])
    except AsmError as exc:
        raise ValueError(
            f"{target.isa.name}: source does not assemble "
            f"(line {exc.line_no}): {exc}") from exc
    symbols = {sym.name: exe.text_base + sym.value
               for sym in obj.symbols.values() if sym.section == "text"}
    return analyze_executable(exe, target.isa, symbols=symbols,
                              target=target)


def check_cross_isa(source: str,
                    targets: tuple[str, str] = ("d16", "dlxe"), *,
                    opt_level: int = 2,
                    include_runtime: bool = True,
                    semantic: bool = True) -> CrossIsaReport:
    """Compile ``source`` for both targets, analyze, and cross-check.

    With ``semantic`` (the default) the count-based XISA comparison is
    upgraded with the translation-validation tier: each binary's
    observable-effect summaries are symbolically matched against the
    shared IR, and a function whose summaries are proven on every
    target is semantically consistent across the ISAs by transitivity.
    Only *proven* divergence adds findings (EQ004); incompleteness is
    recorded in :attr:`CrossIsaReport.semantic`, never reported as an
    error — the same erring-on-silence contract as the XISA rules.
    """
    results = {
        name: analyze_source(source, name, opt_level=opt_level,
                             include_runtime=include_runtime)
        for name in targets}
    report = compare_analyses(results)
    if not semantic:
        return report
    from .equiv import (BinaryCheck, DIVERGENT, PROVEN,
                        check_binary_program)

    checks = check_binary_program(source, targets, opt_level=opt_level,
                                  include_runtime=include_runtime)
    by_fn: dict[str, list[BinaryCheck]] = {}
    for check in checks:
        by_fn.setdefault(check.function, []).append(check)
    for fname, cell in sorted(by_fn.items()):
        if any(c.verdict == DIVERGENT for c in cell):
            report.semantic[fname] = DIVERGENT
            for check in cell:
                if check.verdict == DIVERGENT:
                    report.findings.append(finding(
                        "EQ004", f"xisa:{check.location}", check.reason
                        or "observable behavior diverges from the IR"))
        elif all(c.verdict == PROVEN for c in cell) \
                and len(cell) == len(targets):
            report.semantic[fname] = PROVEN
            if fname not in report.compared:
                report.compared.append(fname)
        else:
            report.semantic[fname] = "unknown"
    return report

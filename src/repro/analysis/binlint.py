"""Binary and assembly linter for D16/DLXe program images.

Two entry points:

* :func:`lint_assembly` range-checks every instruction statement of an
  assembly listing against the target ISA (``supports``), reporting
  each violation as an ENC001 finding instead of stopping at the first
  assembler error.
* :func:`lint_executable` walks a linked image via the shared
  control-flow recovery of :mod:`repro.analysis.cfg`: a static
  reachability sweep from the entry point and every function label
  classifies text words as code or (D16) literal-pool data, then the
  linter checks that every reachable word decodes (BIN002) and
  re-encodes byte-identically (BIN001), that static control-flow
  targets stay inside the text segment (BIN003) and never land in pool
  data (BIN004), and warns about decodable-but-unreached words
  (BIN005).  With a :class:`~repro.cc.target.TargetSpec` it
  additionally lints the calling convention: a callee-saved register
  written inside a function with no matching spill-store to the frame
  is CC001, and a function that makes calls without saving the link
  register is CC002.

The calling-convention check is evidence-based: a store of the
register to a stack-pointer- or assembler-temporary-based address
counts as a save, and an ``mvfi`` reading a floating-point register
counts as saving its pair.  This can miss a clobber (never invent one)
when a function stores the register for unrelated reasons.
"""

from __future__ import annotations

from ..asm.assembler import AsmError, Assembler
from collections.abc import Iterator

from ..asm.objfile import Executable
from ..cc.target import TargetSpec
from ..isa import DecodingError, IsaSpec, OP_INFO, Op
from .cfg import BinaryCFG, CALL_OPS, build_cfg
from .findings import Finding, finding

_REG_LINK = 1
_SAVE_BASES = (9, 15)     # assembler temporary (AT), stack pointer


def lint_assembly(source: str, isa: IsaSpec) -> list[Finding]:
    """Check every instruction of ``source`` against ``isa``'s limits."""
    out: list[Finding] = []
    asm = Assembler(isa)
    try:
        scanned = list(asm.scan(source))
    except AsmError as exc:
        return [finding("ENC001", f"{isa.name}:line {exc.line_no}",
                        str(exc))]
    for stmt, instr, error in scanned:
        loc = f"{isa.name}:line {stmt.line_no}"
        if error is not None:
            out.append(finding("ENC001", loc, str(error)))
            continue
        reason = isa.supports(instr)
        if reason is not None:
            out.append(finding("ENC001", loc, f"'{instr}': {reason}"))
    return out


def lint_executable(exe: Executable, isa: IsaSpec, *,
                    symbols: dict[str, int] | None = None,
                    target: TargetSpec | None = None,
                    cfg: BinaryCFG | None = None) -> list[Finding]:
    """Lint a linked image; see the module docstring for the rules.

    ``symbols`` maps label names to absolute text addresses (the
    executable's own table only retains globals; the lint driver passes
    the full label map from the object file).  Non-dot text symbols
    are treated as function starts: reachability roots and
    calling-convention extents.  A pre-built ``cfg`` (from
    :func:`repro.analysis.cfg.build_cfg`) is reused instead of
    re-walking the image.
    """
    if cfg is None:
        cfg = build_cfg(exe, isa, symbols=symbols)
    base, end, width = cfg.base, cfg.end, cfg.width
    describe = cfg.describe

    out: list[Finding] = []
    for pc in sorted(cfg.visited):
        word, instr = cfg.instr_at(pc)
        if isinstance(instr, DecodingError):
            out.append(finding(
                "BIN002", describe(pc),
                f"word {word:#0{2 + width * 2}x} is reachable but does "
                f"not decode: {instr}"))
            continue
        if isa.encode(instr) != word:
            out.append(finding(
                "BIN001", describe(pc),
                f"{word:#0{2 + width * 2}x} decodes to '{instr}' which "
                f"re-encodes to {isa.encode(instr):#x}"))

    for pc, addr in cfg.ldc_refs:
        if not base <= addr < end:
            _word, instr = cfg.instr_at(pc)
            out.append(finding(
                "BIN003", describe(pc),
                f"'{instr}' pool reference {addr:#x} is outside "
                f"the text segment"))
    for pc, tgt in cfg.branch_targets:
        _word, instr = cfg.instr_at(pc)
        if not base <= tgt < end:
            out.append(finding(
                "BIN003", describe(pc),
                f"'{instr}' targets {tgt:#x}, outside the text "
                f"segment [{base:#x}, {end:#x})"))
        elif tgt in cfg.pool:
            out.append(finding(
                "BIN004", describe(pc),
                f"'{instr}' targets {tgt:#x} ({describe(tgt)}), which "
                f"is literal-pool data"))
    for addr in sorted(cfg.visited & cfg.pool):
        out.append(finding(
            "BIN004", describe(addr),
            "literal-pool data is reachable as code"))

    out.extend(_unreachable_runs(cfg))
    if target is not None:
        out.extend(_lint_calling_convention(cfg, target))
    return out


def _unreachable_runs(cfg: BinaryCFG) -> Iterator[Finding]:
    """BIN005 warnings, merged into contiguous address runs.

    Only decodable words count: pool slack, alignment padding, and
    other non-code bytes do not decode on either ISA (guaranteed by
    the strict decoders), so flagging them would be noise.
    """
    run_start = None
    count = 0
    for pc in range(cfg.base, cfg.end, cfg.width):
        dead = pc not in cfg.visited and pc not in cfg.pool \
            and not isinstance(cfg.instr_at(pc)[1], DecodingError)
        if dead and run_start is None:
            run_start, count = pc, 1
        elif dead:
            count += 1
        elif run_start is not None:
            yield finding(
                "BIN005", cfg.describe(run_start),
                f"{count} decodable instruction(s) at "
                f"[{run_start:#x}, {run_start + count * cfg.width:#x}) "
                f"are unreachable from the entry point and every "
                f"function")
            run_start = None
    if run_start is not None:
        yield finding(
            "BIN005", cfg.describe(run_start),
            f"{count} decodable instruction(s) at "
            f"[{run_start:#x}, {cfg.end:#x}) are unreachable from the "
            f"entry point and every function")


def _lint_calling_convention(cfg: BinaryCFG,
                             target: TargetSpec) -> Iterator[Finding]:
    """CC001/CC002 over each function's visited instructions."""
    for start, name in cfg.funcs:
        _start, span_end = cfg.func_span(start)
        int_writes: dict[int, int] = {}     # reg -> first write address
        fp_writes: dict[int, int] = {}      # even pair -> first write
        saved: set[int] = set()
        saved_pairs: set[int] = set()
        link_saved = False
        calls: list[int] = []
        for pc in range(start, span_end, cfg.width):
            if pc not in cfg.visited:
                continue
            _word, instr = cfg.instr_at(pc)
            if isinstance(instr, DecodingError):
                continue
            info = OP_INFO[instr.op]
            if instr.op == Op.ST and instr.rs1 in _SAVE_BASES:
                saved.add(instr.rs2)
                if instr.rs2 == _REG_LINK:
                    link_saved = True
            if instr.op == Op.MVFI:
                saved_pairs.add(instr.rs1 & ~1)
            if instr.op in CALL_OPS:
                calls.append(pc)
            for field in info.writes:
                reg = getattr(instr, field)
                if reg is None:
                    continue
                if info.reg_class.get(field) == "f":
                    pair = reg & ~1
                    if pair in target.callee_saved_fp_pairs:
                        fp_writes.setdefault(pair, pc)
                elif reg in target.callee_saved_int:
                    int_writes.setdefault(reg, pc)
        for reg, pc in sorted(int_writes.items()):
            if reg not in saved:
                yield finding(
                    "CC001", cfg.describe(pc),
                    f"callee-saved r{reg} written in {name} with no "
                    f"spill to the frame")
        for pair, pc in sorted(fp_writes.items()):
            if pair not in saved_pairs:
                yield finding(
                    "CC001", cfg.describe(pc),
                    f"callee-saved f{pair} pair written in {name} with "
                    f"no save to the frame")
        if calls and not link_saved and name != "_start":
            yield finding(
                "CC002", cfg.describe(calls[0]),
                f"{name} makes calls but never saves the link "
                f"register r{_REG_LINK}")

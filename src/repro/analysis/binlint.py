"""Binary and assembly linter for D16/DLXe program images.

Two entry points:

* :func:`lint_assembly` range-checks every instruction statement of an
  assembly listing against the target ISA (``supports``), reporting
  each violation as an ENC001 finding instead of stopping at the first
  assembler error.
* :func:`lint_executable` walks a linked image: a static reachability
  sweep from the entry point and every function label classifies text
  words as code or (D16) literal-pool data, then checks that every
  reachable word decodes (BIN002) and re-encodes byte-identically
  (BIN001), that static control-flow targets stay inside the text
  segment (BIN003) and never land in pool data (BIN004), and warns
  about decodable-but-unreached words (BIN005).  With a
  :class:`~repro.cc.target.TargetSpec` it additionally lints the
  calling convention: a callee-saved register written inside a
  function with no matching spill-store to the frame is CC001, and a
  function that makes calls without saving the link register is CC002.

The calling-convention check is evidence-based: a store of the
register to a stack-pointer- or assembler-temporary-based address
counts as a save, and an ``mvfi`` reading a floating-point register
counts as saving its pair.  This can miss a clobber (never invent one)
when a function stores the register for unrelated reasons.
"""

from __future__ import annotations

from bisect import bisect_right

from ..asm.assembler import AsmError, Assembler
from ..asm.objfile import Executable
from ..isa import DecodingError, IsaSpec, OP_INFO, Op
from .findings import Finding, finding

_STATIC_BRANCHES = (Op.BR, Op.BZ, Op.BNZ)
_STATIC_JUMPS = (Op.JD, Op.JLD)
_CALLS = (Op.JL, Op.JLD)
#: Ops after which execution cannot fall through.
_NO_FALLTHROUGH = (Op.BR, Op.J, Op.JD)

_REG_LINK = 1
_SAVE_BASES = (9, 15)     # assembler temporary (AT), stack pointer


def lint_assembly(source: str, isa: IsaSpec) -> list[Finding]:
    """Check every instruction of ``source`` against ``isa``'s limits."""
    out: list[Finding] = []
    asm = Assembler(isa)
    try:
        scanned = list(asm.scan(source))
    except AsmError as exc:
        return [finding("ENC001", f"{isa.name}:line {exc.line_no}",
                        str(exc))]
    for stmt, instr, error in scanned:
        loc = f"{isa.name}:line {stmt.line_no}"
        if error is not None:
            out.append(finding("ENC001", loc, str(error)))
            continue
        reason = isa.supports(instr)
        if reason is not None:
            out.append(finding("ENC001", loc, f"'{instr}': {reason}"))
    return out


def lint_executable(exe: Executable, isa: IsaSpec, *,
                    symbols: dict[str, int] | None = None,
                    target=None) -> list[Finding]:
    """Lint a linked image; see the module docstring for the rules.

    ``symbols`` maps label names to absolute text addresses (the
    executable's own table only retains globals; the lint driver passes
    the full label map from the object file).  Non-dot text symbols
    are treated as function starts: reachability roots and
    calling-convention extents.
    """
    symbols = dict(symbols if symbols is not None else exe.symbols)
    base, text = exe.text_base, bytes(exe.text)
    end = base + len(text)
    width = isa.width_bytes
    funcs = sorted((addr, name) for name, addr in symbols.items()
                   if not name.startswith(".") and base <= addr < end)
    describe = _locator(symbols, base, end)

    out: list[Finding] = []
    decoded: dict[int, object] = {}

    def instr_at(addr):
        if addr in decoded:
            return decoded[addr]
        word = int.from_bytes(text[addr - base:addr - base + width],
                              "little")
        try:
            result = (word, isa.decode(word))
        except DecodingError as exc:
            result = (word, exc)
        decoded[addr] = result
        return result

    visited: set[int] = set()
    pool: set[int] = set()       # byte addresses occupied by pool data
    targets: list[tuple[int, int]] = []     # (branch addr, target addr)
    stack = [exe.entry] + [addr for addr, _name in funcs]
    while stack:
        pc = stack.pop()
        if pc in visited or not base <= pc < end:
            continue
        visited.add(pc)
        word, instr = instr_at(pc)
        if isinstance(instr, DecodingError):
            out.append(finding(
                "BIN002", describe(pc),
                f"word {word:#0{2 + width * 2}x} is reachable but does "
                f"not decode: {instr}"))
            continue
        if isa.encode(instr) != word:
            out.append(finding(
                "BIN001", describe(pc),
                f"{word:#0{2 + width * 2}x} decodes to '{instr}' which "
                f"re-encodes to {isa.encode(instr):#x}"))
        op = instr.op
        if op == Op.LDC:
            addr = (pc & ~3) + instr.imm
            if not base <= addr < end:
                out.append(finding(
                    "BIN003", describe(pc),
                    f"'{instr}' pool reference {addr:#x} is outside "
                    f"the text segment"))
            else:
                pool.update(range(addr, addr + 4))
        elif op in _STATIC_BRANCHES or op in _STATIC_JUMPS:
            tgt = instr.imm if op in _STATIC_JUMPS else pc + instr.imm
            targets.append((pc, tgt))
            if not base <= tgt < end:
                out.append(finding(
                    "BIN003", describe(pc),
                    f"'{instr}' targets {tgt:#x}, outside the text "
                    f"segment [{base:#x}, {end:#x})"))
            else:
                stack.append(tgt)
        if op == Op.TRAP and instr.imm == 0:
            continue                         # trap 0 halts the machine
        if op not in _NO_FALLTHROUGH:
            stack.append(pc + width)

    for pc, tgt in targets:
        if tgt in pool:
            _word, instr = instr_at(pc)
            out.append(finding(
                "BIN004", describe(pc),
                f"'{instr}' targets {tgt:#x} ({describe(tgt)}), which "
                f"is literal-pool data"))
    executed_pool = sorted(addr for addr in visited if addr in pool)
    for addr in executed_pool:
        out.append(finding(
            "BIN004", describe(addr),
            "literal-pool data is reachable as code"))

    out.extend(_unreachable_runs(base, end, width, visited, pool,
                                 instr_at, describe))
    if target is not None:
        out.extend(_lint_calling_convention(funcs, end, width, visited,
                                            instr_at, target, describe))
    return out


def _unreachable_runs(base, end, width, visited, pool, instr_at,
                      describe):
    """BIN005 warnings, merged into contiguous address runs.

    Only decodable words count: pool slack, alignment padding, and
    other non-code bytes do not decode on either ISA (guaranteed by
    the strict decoders), so flagging them would be noise.
    """
    run_start = None
    count = 0
    for pc in range(base, end, width):
        dead = pc not in visited and pc not in pool \
            and not isinstance(instr_at(pc)[1], DecodingError)
        if dead and run_start is None:
            run_start, count = pc, 1
        elif dead:
            count += 1
        elif run_start is not None:
            yield finding(
                "BIN005", describe(run_start),
                f"{count} decodable instruction(s) at "
                f"[{run_start:#x}, {run_start + count * width:#x}) are "
                f"unreachable from the entry point and every function")
            run_start = None
    if run_start is not None:
        yield finding(
            "BIN005", describe(run_start),
            f"{count} decodable instruction(s) at "
            f"[{run_start:#x}, {end:#x}) are unreachable from the "
            f"entry point and every function")


def _lint_calling_convention(funcs, text_end, width, visited, instr_at,
                             target, describe):
    """CC001/CC002 over each function's visited instructions."""
    for index, (start, name) in enumerate(funcs):
        span_end = funcs[index + 1][0] if index + 1 < len(funcs) \
            else text_end
        int_writes: dict[int, int] = {}     # reg -> first write address
        fp_writes: dict[int, int] = {}      # even pair -> first write
        saved: set[int] = set()
        saved_pairs: set[int] = set()
        link_saved = False
        calls: list[int] = []
        for pc in range(start, span_end, width):
            if pc not in visited:
                continue
            _word, instr = instr_at(pc)
            if isinstance(instr, DecodingError):
                continue
            info = OP_INFO[instr.op]
            if instr.op == Op.ST and instr.rs1 in _SAVE_BASES:
                saved.add(instr.rs2)
                if instr.rs2 == _REG_LINK:
                    link_saved = True
            if instr.op == Op.MVFI:
                saved_pairs.add(instr.rs1 & ~1)
            if instr.op in _CALLS:
                calls.append(pc)
            for field in info.writes:
                reg = getattr(instr, field)
                if reg is None:
                    continue
                if info.reg_class.get(field) == "f":
                    pair = reg & ~1
                    if pair in target.callee_saved_fp_pairs:
                        fp_writes.setdefault(pair, pc)
                elif reg in target.callee_saved_int:
                    int_writes.setdefault(reg, pc)
        for reg, pc in sorted(int_writes.items()):
            if reg not in saved:
                yield finding(
                    "CC001", describe(pc),
                    f"callee-saved r{reg} written in {name} with no "
                    f"spill to the frame")
        for pair, pc in sorted(fp_writes.items()):
            if pair not in saved_pairs:
                yield finding(
                    "CC001", describe(pc),
                    f"callee-saved f{pair} pair written in {name} with "
                    f"no save to the frame")
        if calls and not link_saved and name != "_start":
            yield finding(
                "CC002", describe(calls[0]),
                f"{name} makes calls but never saves the link "
                f"register r{_REG_LINK}")


def _locator(symbols, base, end):
    """address -> ``text:0xADDR (name+off)`` describer."""
    marks = sorted((addr, name) for name, addr in symbols.items()
                   if base <= addr <= end)
    addrs = [addr for addr, _name in marks]

    def describe(addr: int) -> str:
        index = bisect_right(addrs, addr) - 1
        if index < 0:
            return f"text:{addr:#x}"
        mark_addr, name = marks[index]
        offset = addr - mark_addr
        suffix = f"+{offset:#x}" if offset else ""
        return f"text:{addr:#x} ({name}{suffix})"

    return describe

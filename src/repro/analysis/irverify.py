"""IR verifier: structural and dataflow invariants for :mod:`repro.cc.ir`.

Checks are grouped in three families:

* **CFG well-formedness** — every block ends in exactly one terminator
  (IR001/IR002), every branch target names an existing block (IR003),
  labels are unique (IR004), and every block is reachable from the
  entry (IR005, warning: optimizer passes legitimately leave dead
  blocks behind for ``simplify_cfg`` to collect).
* **Dataflow** — no virtual register is read on a path where it has not
  been defined (IR006), computed by a forward must-be-defined analysis
  (intersection over predecessors) seeded with the function parameters.
* **Operands** — one vreg id never carries two register classes
  (IR007), every instruction's operand classes match its operation
  (IR08), stack-slot operands are registered with the function (IR009)
  and accesses stay inside the slot's extent (IR010, warning).

The verifier is deliberately tolerant of machine-level IR extensions
(``BinImm`` and friends from codegen): unknown instruction types still
participate in CFG and def-use checks through ``uses``/``defs`` but
skip the per-type class checks.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..cc.ir import (AddrGlobal, AddrStack, Bin, Block, CJump, Cmp, Const,
                     Cvt, FCmp, FConst, FLoad, FStore, Function, Inst, Load,
                     Module, Move, Ret, StackSlot, Store, TERMINATORS, Un,
                     VReg)
from .findings import Finding, finding

_INT_BIN = {"add", "sub", "mul", "div", "rem", "and", "or", "xor",
            "shl", "shr", "shra"}
_FP_BIN = {"fadd", "fsub", "fmul", "fdiv"}
_CVT_SIG = {"i2f": ("i", "f"), "i2d": ("i", "d"), "f2i": ("f", "i"),
            "d2i": ("d", "i"), "f2d": ("f", "d"), "d2f": ("d", "f")}


def _is_terminator(inst: Inst) -> bool:
    return isinstance(inst, TERMINATORS) or hasattr(inst, "if_true")


def verify_function(func: Function) -> list[Finding]:
    """Verify one function; returns findings (empty list = clean)."""
    out: list[Finding] = []
    if not func.blocks:
        return out

    labels: dict[str, int] = {}
    for block in func.blocks:
        if block.label in labels:
            out.append(finding("IR004", f"{func.name}:{block.label}",
                               "label defined more than once"))
        labels[block.label] = labels.get(block.label, 0) + 1
    block_map = func.block_map()

    for block in func.blocks:
        loc = f"{func.name}:{block.label}"
        if block.terminator is None:
            out.append(finding("IR001", loc,
                               "block does not end in ret/jump/cjump"))
        for index, inst in enumerate(block.instrs[:-1]):
            if _is_terminator(inst):
                out.append(finding(
                    "IR002", f"{loc}:{index}",
                    f"terminator '{inst}' is not the last instruction"))
        for succ in block.successors():
            if succ not in block_map:
                out.append(finding(
                    "IR003", loc,
                    f"branch target '{succ}' is not a block"))

    reachable = _reachable(func, block_map)
    for block in func.blocks:
        if block.label not in reachable:
            out.append(finding("IR005", f"{func.name}:{block.label}",
                               "no path from entry reaches this block"))

    out.extend(_check_classes(func))
    out.extend(_check_slots(func))
    # Dataflow only makes sense over a structurally sound CFG.
    if not any(f.rule in ("IR001", "IR002", "IR003", "IR004") for f in out):
        out.extend(_check_defs(func, block_map, reachable))
    return out


def verify_module(module: Module) -> list[Finding]:
    out: list[Finding] = []
    for func in module.functions:
        out.extend(verify_function(func))
    return out


def _reachable(func: Function,
               block_map: dict[str, Block]) -> set[str]:
    seen: set[str] = set()
    stack = [func.blocks[0].label]
    while stack:
        label = stack.pop()
        if label in seen or label not in block_map:
            continue
        seen.add(label)
        stack.extend(block_map[label].successors())
    return seen


# -------------------------------------------------------- def-before-use


def _check_defs(func: Function, block_map: dict[str, Block],
                reachable: set[str]) -> list[Finding]:
    """Forward must-be-defined dataflow over vreg ids.

    ``IN[entry]`` is the parameter set; ``IN[b]`` is the intersection of
    the predecessors' ``OUT`` sets (initialised to "everything" so loops
    converge from above); a use not covered by ``IN`` plus the defs so
    far in the block is a path where the vreg may be uninitialised.
    """
    out_findings: list[Finding] = []
    order = [b for b in func.blocks if b.label in reachable]
    preds: dict[str, set[str]] = {b.label: set() for b in order}
    for block in order:
        for succ in block.successors():
            if succ in preds:
                preds[succ].add(block.label)

    universe = _all_vreg_ids(func)
    entry = func.blocks[0].label
    in_sets: dict[str, set[int]] = {
        b.label: set(universe) for b in order}
    in_sets[entry] = {p.id for p in func.params}
    out_sets: dict[str, set[int]] = {
        label: s | _block_defs(block_map[label])
        for label, s in in_sets.items()}

    changed = True
    while changed:
        changed = False
        for block in order:
            if block.label == entry:
                continue
            if preds[block.label]:
                new_in = set.intersection(
                    *(out_sets[p] for p in preds[block.label]))
            else:
                new_in = {p.id for p in func.params}
            if new_in != in_sets[block.label]:
                in_sets[block.label] = new_in
                new_out = new_in | _block_defs(block)
                if new_out != out_sets[block.label]:
                    out_sets[block.label] = new_out
                    changed = True

    for block in order:
        defined = set(in_sets[block.label])
        for index, inst in enumerate(block.instrs):
            for use in inst.uses():
                if use.id not in defined:
                    out_findings.append(finding(
                        "IR006",
                        f"{func.name}:{block.label}:{index}",
                        f"{use} used by '{inst}' before any definition "
                        f"reaches it"))
            defined.update(d.id for d in inst.defs())
    return out_findings


def _block_defs(block: Block) -> set[int]:
    defs: set[int] = set()
    for inst in block.instrs:
        defs.update(d.id for d in inst.defs())
    return defs


def _all_vreg_ids(func: Function) -> set[int]:
    ids = {p.id for p in func.params}
    for block in func.blocks:
        for inst in block.instrs:
            ids.update(v.id for v in inst.uses())
            ids.update(v.id for v in inst.defs())
    return ids


# -------------------------------------------------------- operand classes


def _check_classes(func: Function) -> list[Finding]:
    out: list[Finding] = []
    cls_of: dict[int, tuple[str, str]] = {
        p.id: (p.cls, f"{func.name} parameter") for p in func.params}

    def note(reg: VReg, loc: str) -> None:
        seen = cls_of.get(reg.id)
        if seen is None:
            cls_of[reg.id] = (reg.cls, loc)
        elif seen[0] != reg.cls:
            out.append(finding(
                "IR007", loc,
                f"vreg id {reg.id} is class '{reg.cls}' here but "
                f"class '{seen[0]}' at {seen[1]}"))

    for block in func.blocks:
        for index, inst in enumerate(block.instrs):
            loc = f"{func.name}:{block.label}:{index}"
            for reg in (*inst.uses(), *inst.defs()):
                note(reg, loc)
            for message in _class_errors(inst):
                out.append(finding("IR008", loc, f"{message} in '{inst}'"))
    return out


def _class_errors(inst: Inst) -> Iterator[str]:
    if isinstance(inst, Const):
        if inst.dst.cls != "i":
            yield f"const destination {inst.dst} is not class 'i'"
    elif isinstance(inst, FConst):
        if inst.dst.cls not in ("f", "d"):
            yield f"fconst destination {inst.dst} is not class 'f'/'d'"
    elif isinstance(inst, Move):
        if inst.dst.cls != inst.src.cls:
            yield f"move between classes '{inst.src.cls}'->'{inst.dst.cls}'"
    elif isinstance(inst, Bin):
        want = "i" if inst.op in _INT_BIN else None
        if inst.op in _FP_BIN:
            want = inst.dst.cls if inst.dst.cls in ("f", "d") else "f"
            if inst.dst.cls == "i":
                yield f"fp op '{inst.op}' writes integer {inst.dst}"
        elif inst.op not in _INT_BIN:
            yield f"unknown binary op '{inst.op}'"
        if want is not None:
            for reg in (inst.dst, inst.a, inst.b):
                if reg.cls != want:
                    yield f"operand {reg} is not class '{want}'"
    elif isinstance(inst, Un):
        if inst.op in ("neg", "inv"):
            for reg in (inst.dst, inst.a):
                if reg.cls != "i":
                    yield f"operand {reg} is not class 'i'"
        elif inst.op == "fneg":
            if inst.dst.cls not in ("f", "d") or inst.a.cls != inst.dst.cls:
                yield "fneg operands must share an fp class"
        else:
            yield f"unknown unary op '{inst.op}'"
    elif isinstance(inst, Cmp):
        for reg in (inst.dst, inst.a, inst.b):
            if reg.cls != "i":
                yield f"operand {reg} is not class 'i'"
    elif isinstance(inst, FCmp):
        if inst.dst.cls != "i":
            yield f"fcmp result {inst.dst} is not class 'i'"
        if inst.a.cls not in ("f", "d") or inst.b.cls != inst.a.cls:
            yield "fcmp operands must share an fp class"
    elif isinstance(inst, Cvt):
        sig = _CVT_SIG.get(inst.kind)
        if sig is None:
            yield f"unknown conversion '{inst.kind}'"
        else:
            if inst.a.cls != sig[0]:
                yield f"{inst.kind} source {inst.a} is not class '{sig[0]}'"
            if inst.dst.cls != sig[1]:
                yield f"{inst.kind} result {inst.dst} is not " \
                      f"class '{sig[1]}'"
    elif isinstance(inst, Load):
        if inst.dst.cls != "i":
            yield f"load destination {inst.dst} is not class 'i'"
    elif isinstance(inst, FLoad):
        if inst.dst.cls not in ("f", "d"):
            yield f"fload destination {inst.dst} is not class 'f'/'d'"
    elif isinstance(inst, Store):
        if inst.src.cls != "i":
            yield f"store source {inst.src} is not class 'i'"
    elif isinstance(inst, FStore):
        if inst.src.cls not in ("f", "d"):
            yield f"fstore source {inst.src} is not class 'f'/'d'"
    elif isinstance(inst, (AddrGlobal, AddrStack)):
        if inst.dst.cls != "i":
            yield f"address result {inst.dst} is not class 'i'"
    elif isinstance(inst, CJump):
        if inst.a.cls != "i" or (inst.b is not None and inst.b.cls != "i"):
            yield "cjump compares non-integer operands"
    if isinstance(inst, (Load, FLoad, Store, FStore)) \
            and isinstance(inst.base, VReg) and inst.base.cls != "i":
        yield f"address base {inst.base} is not class 'i'"


# ------------------------------------------------------------ stack slots


def _check_slots(func: Function) -> list[Finding]:
    out: list[Finding] = []
    known = {slot.id for slot in func.slots}

    def check(slot: StackSlot, loc: str, inst: Inst,
              offset: int | None = None,
              size: int | None = None) -> None:
        if slot.id not in known:
            out.append(finding(
                "IR009", loc,
                f"{slot} in '{inst}' is not in the function's slot list"))
            return
        if offset is None:
            return
        end = offset + size
        if offset < 0 or end > slot.size:
            out.append(finding(
                "IR010", loc,
                f"access [{offset}, {end}) in '{inst}' is outside "
                f"{slot} of size {slot.size}"))

    for block in func.blocks:
        for index, inst in enumerate(block.instrs):
            loc = f"{func.name}:{block.label}:{index}"
            if isinstance(inst, AddrStack):
                check(inst.slot, loc, inst)
            elif isinstance(inst, (Load, Store)) \
                    and isinstance(inst.base, StackSlot):
                check(inst.base, loc, inst, inst.offset, inst.size)
            elif isinstance(inst, (FLoad, FStore)) \
                    and isinstance(inst.base, StackSlot):
                reg = inst.src if isinstance(inst, FStore) else inst.dst
                check(inst.base, loc, inst, inst.offset,
                      8 if reg.cls == "d" else 4)
    return out

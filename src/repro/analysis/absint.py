"""Abstract interpretation over linked binary images.

A generic worklist solver (:func:`solve`) runs a pluggable abstract
domain to a fixpoint over the basic blocks recovered by
:mod:`repro.analysis.cfg`, with widening after a bounded number of
joins so looping and irreducible control flow terminates.

:class:`ValueDomain` is the concrete domain behind the semantic lint
rules: a product of

* **constant propagation / value ranges** — each general register maps
  to an unsigned 32-bit interval ``[lo, hi]`` (a constant when
  ``lo == hi``), with D16 literal-pool ``ldc`` loads folded from the
  linked image and DLXe's hardwired ``r0`` pinned to zero;
* **stack height** — the stack pointer is tracked symbolically as
  *entry SP + delta*, so frame pushes and pops cancel exactly.

:func:`analyze_executable` runs the domain over every function and
derives the semantic findings:

====== =========================================================
ABS001 stack-height mismatch at a join or a non-empty frame at
       a return
ABS002 memory access with a provably invalid address (outside the
       simulated memory, or constant and misaligned)
ABS003 register-indirect jump to a provably non-code target
ABS004 conditional branch provably always or never taken
====== =========================================================

Every claim is *provable-by-construction*: a rule only fires when the
abstract state shows no concrete execution could behave otherwise, so
a clean toolchain stays clean and any hit is a real defect.  The
per-function :class:`FunctionSummary` (resolved call targets, trap
sequence, returned-constant values, stack discipline) additionally
feeds the cross-ISA consistency checker in
:mod:`repro.analysis.xisa`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, NamedTuple

from ..asm.objfile import Executable
from ..cc.target import TargetSpec
from ..isa import DecodingError, Instr, IsaSpec, Op
from ..isa.common import to_s32
from ..isa.operations import Cond
from ..isa.refs import ldc_pool_addr
from ..machine.memory import DEFAULT_MEM_SIZE
from .cfg import BasicBlock, BinaryCFG, build_cfg
from .findings import Finding, finding

U32 = 1 << 32
U32_MAX = U32 - 1

#: Joins per block before widening kicks in (keeps loops terminating).
WIDEN_AFTER = 4

REG_LINK = 1
REG_RET = 2
REG_GP = 14
REG_SP = 15


class Interval(NamedTuple):
    """An unsigned 32-bit value range ``[lo, hi]`` (inclusive)."""

    lo: int
    hi: int

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    def __repr__(self) -> str:  # compact in test failures
        if self.is_const:
            return f"={self.lo:#x}"
        return f"[{self.lo:#x},{self.hi:#x}]"


@dataclass(frozen=True)
class SPRel:
    """Entry-stack-pointer-relative value: ``SP_entry + delta`` bytes."""

    delta: int

    def __repr__(self) -> str:
        return f"sp{self.delta:+d}"


#: The unknown value (absent from the state dict).
TOP = None

#: An abstract register value: an interval, a stack-pointer offset, or
#: TOP (``None`` — unknown, absent from the state dict).
Value = Interval | SPRel | None

FULL = Interval(0, U32_MAX)
BIT = Interval(0, 1)


def const(value: int) -> Interval:
    value &= U32_MAX
    return Interval(value, value)


def _norm(lo: int, hi: int) -> Interval | None:
    """Wrap an unbounded integer range into u32 space (TOP on straddle)."""
    if hi - lo >= U32:
        return TOP
    if lo // U32 == hi // U32:
        return Interval(lo % U32, hi % U32)
    return TOP


def _join_value(a: Value, b: Value) -> Value:
    if a is TOP or b is TOP:
        return TOP
    if isinstance(a, SPRel) or isinstance(b, SPRel):
        return a if a == b else TOP
    return Interval(min(a.lo, b.lo), max(a.hi, b.hi))


def _signed(iv: Interval) -> tuple[int, int] | None:
    """The interval as a signed range, if it does not straddle the sign bit."""
    if iv.hi <= 0x7FFFFFFF:
        return iv.lo, iv.hi
    if iv.lo >= 0x80000000:
        return iv.lo - U32, iv.hi - U32
    return None


def eval_cond(cond: Cond, a: Interval, b: Interval) -> bool | None:
    """Decide ``a cond b`` over intervals; None when not provable."""
    if cond in (Cond.EQ, Cond.NE):
        if a.is_const and b.is_const:
            result = a.lo == b.lo
        elif a.hi < b.lo or b.hi < a.lo:
            result = False
        else:
            return None
        return result if cond == Cond.EQ else not result
    unsigned = cond in (Cond.LTU, Cond.LEU, Cond.GTU, Cond.GEU)
    if unsigned:
        alo, ahi, blo, bhi = a.lo, a.hi, b.lo, b.hi
    else:
        sa, sb = _signed(a), _signed(b)
        if sa is None or sb is None:
            return None
        (alo, ahi), (blo, bhi) = sa, sb
    base = {Cond.LT: Cond.LT, Cond.LTU: Cond.LT, Cond.LE: Cond.LE,
            Cond.LEU: Cond.LE, Cond.GT: Cond.GT, Cond.GTU: Cond.GT,
            Cond.GE: Cond.GE, Cond.GEU: Cond.GE}[cond]
    if base == Cond.LT:
        if ahi < blo:
            return True
        if alo >= bhi:
            return False
    elif base == Cond.LE:
        if ahi <= blo:
            return True
        if alo > bhi:
            return False
    elif base == Cond.GT:
        if alo > bhi:
            return True
        if ahi <= blo:
            return False
    elif base == Cond.GE:
        if alo >= bhi:
            return True
        if ahi < blo:
            return False
    return None


# ---------------------------------------------------------------------------
# Generic worklist solver.
# ---------------------------------------------------------------------------


def solve(blocks: dict[int, BasicBlock], entry: int, domain: Any, *,
          widen_after: int = WIDEN_AFTER) -> dict[int, object]:
    """Run ``domain`` to a fixpoint; returns block-entry states.

    ``domain`` supplies ``entry_state()``, ``transfer(block, state)``,
    ``edge_state(block, succ, out_state)``, ``join(old, new, at)`` and
    ``widen(old, joined, at)``; states are compared with ``==``.  After
    ``widen_after`` joins at one block the widening operator is applied
    on every further join, which bounds the chain length on loops and
    irreducible regions alike.
    """
    if entry not in blocks:
        return {}
    in_states: dict[int, object] = {entry: domain.entry_state()}
    join_counts: dict[int, int] = {}
    pending = [entry]
    while pending:
        start = pending.pop()
        block = blocks[start]
        out = domain.transfer(block, in_states[start])
        for succ in block.succs:
            if succ not in blocks:
                continue
            new = domain.edge_state(block, succ, out)
            if succ not in in_states:
                in_states[succ] = new
                pending.append(succ)
                continue
            old = in_states[succ]
            joined = domain.join(old, new, succ)
            count = join_counts.get(succ, 0) + 1
            join_counts[succ] = count
            if count > widen_after:
                joined = domain.widen(old, joined, succ)
            if joined != old:
                in_states[succ] = joined
                pending.append(succ)
    return in_states


# ---------------------------------------------------------------------------
# The value / stack-height domain.
# ---------------------------------------------------------------------------

_MEM_SIZES = {Op.LD: 4, Op.ST: 4, Op.LDH: 2, Op.LDHU: 2, Op.STH: 2,
              Op.LDB: 1, Op.LDBU: 1, Op.STB: 1}
_INDIRECT = (Op.J, Op.JZ, Op.JNZ, Op.JL)


class ValueDomain:
    """Constant x range x stack-height product domain for one function.

    A state is a dict mapping general-register index to an
    :class:`Interval` or :class:`SPRel`; absent registers are TOP.
    ``sp_conflicts`` records blocks whose incoming stack heights
    disagree (reported as ABS001 by the driver).
    """

    def __init__(self, cfg: BinaryCFG, *, preserved: frozenset[int],
                 gp_value: int | None = None,
                 entry_args: dict[int, Interval] | None = None):
        self.cfg = cfg
        self.zero_r0 = cfg.isa.name == "DLXe"
        self.preserved = preserved
        self.gp_value = gp_value
        #: Interprocedural seed: proven intervals for the argument
        #: registers at function entry (joined over every resolved call
        #: site by the whole-program analysis in
        #: :mod:`repro.analysis.wcet`).  Absent registers stay TOP.
        self.entry_args = dict(entry_args or {})
        self.sp_conflicts: dict[int, tuple[int, int]] = {}

    # ------------------------------------------------------- lattice ops

    def entry_state(self) -> dict:
        state = {REG_SP: SPRel(0)}
        state.update(self.entry_args)
        if self.gp_value is not None:
            state[REG_GP] = const(self.gp_value)
        if self.zero_r0:
            state[0] = const(0)
        return state

    def unknown_state(self) -> dict:
        """Entry state for blocks with no intra-procedural predecessor."""
        return {0: const(0)} if self.zero_r0 else {}

    def join(self, old: dict, new: dict, at: int) -> dict:
        joined = {}
        for reg in old.keys() & new.keys():
            a, b = old[reg], new[reg]
            if reg == REG_SP and isinstance(a, SPRel) \
                    and isinstance(b, SPRel) and a != b:
                self.sp_conflicts.setdefault(at, (a.delta, b.delta))
            value = _join_value(a, b)
            if value is not TOP:
                joined[reg] = value
        return joined

    def widen(self, old: dict, joined: dict, at: int) -> dict:
        widened = {}
        for reg, value in joined.items():
            prev = old.get(reg)
            if isinstance(value, Interval) and isinstance(prev, Interval):
                lo = value.lo if value.lo >= prev.lo else 0
                hi = value.hi if value.hi <= prev.hi else U32_MAX
                widened[reg] = Interval(lo, hi)
            else:
                widened[reg] = value
        return widened

    # ------------------------------------------------------ state access

    def _get(self, state: dict, reg: int | None) -> Value:
        if reg is None:
            return TOP
        if reg == 0 and self.zero_r0:
            return const(0)
        return state.get(reg)

    def _set(self, state: dict, reg: int,
             value: Value) -> None:
        if reg == 0 and self.zero_r0:
            return                        # writes to DLXe r0 are discarded
        if value is TOP:
            state.pop(reg, None)
        else:
            state[reg] = value

    # ---------------------------------------------------------- transfer

    def transfer(self, block: BasicBlock, state: dict,
                 report: _Reporter | None = None) -> dict:
        state = dict(state)
        for pc, instr in block.instrs:
            self._step(pc, instr, state, report)
        if block.is_call:
            self._call_clobber(state, block, report)
        return state

    def edge_state(self, block: BasicBlock, succ: int, out: dict) -> dict:
        """Refine the branch-test register along conditional edges."""
        _pc, term = block.terminator
        if term.op in (Op.BZ, Op.BNZ) and len(set(block.succs)) == 2:
            taken = block.succs[1] == succ
            zero_edge = taken if term.op == Op.BZ else not taken
            if zero_edge:
                out = dict(out)
                self._set(out, term.rs1, const(0))
        return out

    def _call_clobber(self, state: dict, block: BasicBlock,
                      report: _Reporter | None) -> None:
        for reg in list(state):
            if reg == REG_SP or reg in self.preserved \
                    or (reg == 0 and self.zero_r0) \
                    or (reg == REG_GP and self.gp_value is not None):
                continue
            del state[reg]

    def _step(self, pc: int, instr: Instr, state: dict,
              report: _Reporter | None) -> None:
        op = instr.op
        get = self._get
        a = get(state, instr.rs1)
        b = get(state, instr.rs2)
        imm = instr.imm

        if op in _MEM_SIZES:
            if report is not None:
                report.check_memory(pc, instr, a)
            if op not in (Op.ST, Op.STH, Op.STB):
                self._set(state, instr.rd, TOP)
            return
        if op == Op.LDC:
            addr = ldc_pool_addr(pc, imm)
            word = self.cfg.read_word(addr)
            self._set(state, instr.rd,
                      const(word) if word is not None else TOP)
            return

        if op in (Op.ADD, Op.ADDI, Op.SUB, Op.SUBI):
            rhs = const(imm) if op in (Op.ADDI, Op.SUBI) else b
            sub = op in (Op.SUB, Op.SUBI)
            self._set(state, instr.rd, _add_sub(a, rhs, sub))
            return
        if op == Op.MV:
            self._set(state, instr.rd, a)
            return
        if op == Op.MVI:
            self._set(state, instr.rd, const(imm))
            return
        if op == Op.MVHI:
            self._set(state, instr.rd, const(imm << 16))
            return
        if op == Op.NEG:
            self._set(state, instr.rd,
                      _norm(-a.hi, -a.lo) if isinstance(a, Interval)
                      else TOP)
            return
        if op == Op.INV:
            self._set(state, instr.rd,
                      Interval(a.hi ^ U32_MAX, a.lo ^ U32_MAX)
                      if isinstance(a, Interval) else TOP)
            return
        if op in (Op.AND, Op.ANDI, Op.OR, Op.ORI, Op.XOR, Op.XORI):
            rhs = const(imm) if op in (Op.ANDI, Op.ORI, Op.XORI) else b
            self._set(state, instr.rd, _bitwise(op, a, rhs))
            return
        if op in (Op.SHL, Op.SHLI, Op.SHR, Op.SHRI, Op.SHRA, Op.SHRAI):
            rhs = const(imm) if op in (Op.SHLI, Op.SHRI, Op.SHRAI) else b
            self._set(state, instr.rd, _shift(op, a, rhs))
            return
        if op in (Op.MUL, Op.DIV, Op.REM):
            self._set(state, instr.rd, _muldiv(op, a, b))
            return
        if op in (Op.CMP, Op.CMPI):
            rhs = const(imm) if op == Op.CMPI else b
            value = BIT
            if isinstance(a, Interval) and isinstance(rhs, Interval):
                verdict = eval_cond(instr.cond, a, rhs)
                if verdict is not None:
                    value = const(int(verdict))
            elif isinstance(a, SPRel) and isinstance(rhs, SPRel):
                verdict = eval_cond(instr.cond, const(a.delta),
                                    const(rhs.delta))
                if verdict is not None:
                    value = const(int(verdict))
            self._set(state, instr.rd, value)
            return
        if op == Op.RDSR:
            self._set(state, instr.rd, BIT)
            return
        if op == Op.MVFI:
            self._set(state, instr.rd, TOP)
            return
        if op == Op.TRAP:
            if report is not None:
                report.record_trap(pc, imm)
            if imm != 0 and imm != 1:         # getc / sbrk write r2
                self._set(state, REG_RET, TOP)
            return

        if op in (Op.BZ, Op.BNZ):
            if report is not None:
                report.check_branch(pc, instr, a)
            return
        if op in _INDIRECT:
            if report is not None:
                report.check_indirect(pc, instr, a, state)
            if op == Op.JL:
                self._set(state, REG_LINK, TOP)
            return
        if op in (Op.JLD,):
            if report is not None:
                report.record_call(pc, instr.imm)
            self._set(state, REG_LINK, TOP)
            return
        # br, jd, nop, FP ops (FP registers are not tracked).  Any op
        # that writes a general register must still invalidate it here,
        # or a stale constant would survive — soundness over precision.
        info = instr.info
        for fld in info.writes:
            if info.reg_class.get(fld) == "g":
                self._set(state, getattr(instr, fld), TOP)
        return


def _add_sub(a: Value, b: Value, sub: bool) -> Value:
    if isinstance(a, SPRel) and isinstance(b, SPRel):
        return const(a.delta - b.delta) if sub else TOP
    if isinstance(a, SPRel) or isinstance(b, SPRel):
        rel, other, flipped = (a, b, False) if isinstance(a, SPRel) \
            else (b, a, True)
        if not (isinstance(other, Interval) and other.is_const):
            return TOP
        if sub and flipped:
            return TOP                    # const - sp: not an address
        offset = to_s32(other.lo)
        return SPRel(rel.delta - offset if sub else rel.delta + offset)
    if not (isinstance(a, Interval) and isinstance(b, Interval)):
        return TOP
    if sub:
        return _norm(a.lo - b.hi, a.hi - b.lo)
    return _norm(a.lo + b.lo, a.hi + b.hi)


def _bitwise(op: Op, a: Value, b: Value) -> Value:
    if not (isinstance(a, Interval) and isinstance(b, Interval)):
        return TOP
    if a.is_const and b.is_const:
        fn = {Op.AND: int.__and__, Op.ANDI: int.__and__,
              Op.OR: int.__or__, Op.ORI: int.__or__,
              Op.XOR: int.__xor__, Op.XORI: int.__xor__}[op]
        return const(fn(a.lo, b.lo))
    if op in (Op.AND, Op.ANDI):
        # x & mask is bounded by each operand's maximum.
        return Interval(0, min(a.hi, b.hi))
    return TOP


def _shift(op: Op, a: Value, b: Value) -> Value:
    if not (isinstance(a, Interval) and isinstance(b, Interval)) \
            or not b.is_const:
        return TOP
    k = b.lo & 31
    if op in (Op.SHR, Op.SHRI):
        return Interval(a.lo >> k, a.hi >> k)
    if op in (Op.SHL, Op.SHLI):
        return _norm(a.lo << k, a.hi << k)
    if a.is_const:                        # shra: signed, constants only
        return const((to_s32(a.lo) >> k) & U32_MAX)
    return TOP


def _muldiv(op: Op, a: Value, b: Value) -> Value:
    if not (isinstance(a, Interval) and isinstance(b, Interval)):
        return TOP
    if op == Op.MUL:
        if a.is_const and b.is_const:
            return _norm(to_s32(a.lo) * to_s32(b.lo),
                         to_s32(a.lo) * to_s32(b.lo))
        if a.hi <= 0x7FFFFFFF and b.hi <= 0x7FFFFFFF:
            return _norm(a.lo * b.lo, a.hi * b.hi)
        return TOP
    if not (a.is_const and b.is_const) or b.lo == 0:
        return TOP
    x, y = to_s32(a.lo), to_s32(b.lo)
    quotient = abs(x) // abs(y)
    if (x < 0) != (y < 0):
        quotient = -quotient
    remainder = x - quotient * y
    return const(remainder if op == Op.REM else quotient)


# ---------------------------------------------------------------------------
# Whole-image analysis and the ABS rules.
# ---------------------------------------------------------------------------


@dataclass
class FunctionSummary:
    """Semantic facts about one function, for cross-ISA comparison."""

    name: str
    start: int
    callees: list[str] = field(default_factory=list)   # site-address order
    #: Every call site in address order: ``(pc, resolved target)`` with
    #: ``None`` for targets the value analysis could not prove.  The
    #: whole-program timing composer consumes this.
    call_sites: list[tuple[int, int | None]] = field(default_factory=list)
    unresolved_calls: int = 0
    traps: list[int] = field(default_factory=list)     # codes, addr order
    return_values: list[object] = field(default_factory=list)
    stack_balanced: bool = True


@dataclass
class AnalysisResult:
    """Findings plus per-function summaries of one analyzed image."""

    cfg: BinaryCFG
    findings: list[Finding]
    functions: dict[str, FunctionSummary]
    #: Constant register-indirect control targets proven by the value
    #: analysis (D16 pool-loaded call targets, mostly).  Feeds the
    #: CFG-refinement loop in :func:`resolve_cfg`.
    resolved_targets: set[int] = field(default_factory=set)

    def returned_constant(self, name: str) -> int | None:
        """The constant a function provably returns, if any."""
        summary = self.functions.get(name)
        if summary is None or not summary.return_values:
            return None
        values = summary.return_values
        if all(isinstance(v, Interval) and v.is_const for v in values) \
                and len({v.lo for v in values}) == 1:
            return values[0].lo
        return None


class _Reporter:
    """Check hooks invoked by the domain during the reporting pass."""

    def __init__(self, result: AnalysisResult, summary: FunctionSummary,
                 mem_limit: int):
        self.result = result
        self.summary = summary
        self.cfg = result.cfg
        self.mem_limit = mem_limit

    def _emit(self, rule: str, pc: int, message: str) -> None:
        self.result.findings.append(
            finding(rule, self.cfg.describe(pc), message))

    def check_memory(self, pc: int, instr: Instr,
                     base_value: Value) -> None:
        size = _MEM_SIZES[instr.op]
        if not isinstance(base_value, Interval):
            return
        addr = _add_sub(base_value, const(instr.imm), sub=False)
        if not isinstance(addr, Interval):
            return
        if addr.lo >= self.mem_limit or addr.hi + size > U32:
            self._emit(
                "ABS002", pc,
                f"'{instr}' accesses {addr!r}, provably outside the "
                f"{self.mem_limit:#x}-byte simulated memory")
        elif addr.is_const and addr.lo % size:
            self._emit(
                "ABS002", pc,
                f"'{instr}' accesses {addr.lo:#x}, provably misaligned "
                f"for a {size}-byte transfer")

    def check_branch(self, pc: int, instr: Instr,
                     test_value: Value) -> None:
        if not isinstance(test_value, Interval):
            return
        always_zero = test_value == const(0)
        never_zero = test_value.lo > 0
        if not (always_zero or never_zero):
            return
        taken = always_zero if instr.op == Op.BZ else never_zero
        self._emit(
            "ABS004", pc,
            f"'{instr}' is provably {'always' if taken else 'never'} "
            f"taken (test register is {test_value!r})")

    def check_indirect(self, pc: int, instr: Instr,
                       target_value: Value, state: dict) -> None:
        cfg = self.cfg
        if instr.op == Op.JL:
            if isinstance(target_value, Interval) and target_value.is_const:
                self.record_call(pc, target_value.lo)
            else:
                self.summary.unresolved_calls += 1
                self.summary.call_sites.append((pc, None))
        if instr.op == Op.J and instr.rs1 == REG_LINK:
            # The return idiom: close out the stack-height obligation.
            sp = state.get(REG_SP)
            if isinstance(sp, SPRel) and sp.delta != 0:
                self._emit(
                    "ABS001", pc,
                    f"return with a non-empty frame: stack pointer is "
                    f"entry SP{sp.delta:+d} bytes")
            self.summary.return_values.append(state.get(REG_RET))
            if isinstance(sp, SPRel) and sp.delta != 0:
                self.summary.stack_balanced = False
            return
        if not (isinstance(target_value, Interval)
                and target_value.is_const):
            return
        target = target_value.lo
        bad = None
        if not cfg.base <= target < cfg.end:
            bad = "outside the text segment"
        elif target in cfg.pool:
            bad = "literal-pool data"
        elif (target - cfg.base) % cfg.width:
            bad = "misaligned"
        elif isinstance(cfg.instr_at(target)[1], DecodingError):
            bad = "not decodable"
        if bad is not None:
            self._emit(
                "ABS003", pc,
                f"'{instr}' jumps to {target:#x}, which is provably "
                f"not code ({bad})")
        else:
            self.result.resolved_targets.add(target)

    def record_call(self, pc: int, target: int) -> None:
        self.summary.call_sites.append((pc, target))
        func = self.cfg.func_of(target)
        if func is not None and func[0] == target:
            self.summary.callees.append(func[1])
        else:
            self.summary.callees.append(f"<{target:#x}>")

    def record_trap(self, pc: int, code: int) -> None:
        self.summary.traps.append(code)


def analyze_executable(exe: Executable, isa: IsaSpec, *,
                       symbols: dict[str, int] | None = None,
                       target: TargetSpec | None = None,
                       mem_limit: int = DEFAULT_MEM_SIZE,
                       cfg: BinaryCFG | None = None) -> AnalysisResult:
    """Run the value/stack analysis over every function of an image.

    ``target`` (a :class:`~repro.cc.target.TargetSpec`) supplies the
    callee-saved register set assumed preserved across calls — an
    assumption separately enforced by the CC001 lint, so the two layers
    check each other.  Without a target only r10-r13 (both ISAs'
    common callee-saved set) are assumed preserved.
    """
    if cfg is None:
        return resolve_cfg(exe, isa, symbols=symbols, target=target,
                           mem_limit=mem_limit)[1]
    preserved = frozenset(target.callee_saved_int) if target is not None \
        else frozenset(range(10, 14))
    gp_value = exe.symbols.get("__gp")
    result = AnalysisResult(cfg=cfg, findings=[], functions={})

    for fstart, name in cfg.funcs:
        blocks = {b.start: b for b in cfg.function_blocks(fstart)}
        if fstart not in blocks:
            continue
        # _start runs before the global pointer is established.
        domain = ValueDomain(
            cfg, preserved=preserved,
            gp_value=None if name == "_start" else gp_value)
        in_states = solve(blocks, fstart, domain)
        summary = FunctionSummary(name=name, start=fstart)
        result.functions[name] = summary
        reporter = _Reporter(result, summary, mem_limit)
        for start in sorted(blocks):
            state = in_states.get(start)
            if state is None:
                state = domain.unknown_state()
            domain.transfer(blocks[start], state, report=reporter)
        for at, (d1, d2) in sorted(domain.sp_conflicts.items()):
            summary.stack_balanced = False
            result.findings.append(finding(
                "ABS001", cfg.describe(at),
                f"stack heights disagree at join: entry SP{d1:+d} vs "
                f"entry SP{d2:+d} bytes"))
    result.findings.sort(key=lambda f: (f.location, f.rule))
    return result


def resolve_cfg(exe: Executable, isa: IsaSpec, *,
                symbols: dict[str, int] | None = None,
                target: TargetSpec | None = None,
                mem_limit: int = DEFAULT_MEM_SIZE,
                max_rounds: int = 64,
                ) -> tuple[BinaryCFG, AnalysisResult]:
    """CFG recovery with value-analysis feedback, to a fixpoint.

    The plain reachability sweep cannot follow register-indirect calls
    (D16 routes *every* call through a pool-loaded register), so on an
    image whose symbol table lost the function labels it only recovers
    the entry function.  This loop alternates sweeping and abstract
    interpretation: each round's provably-constant indirect targets
    become synthesized function roots (``fn_<addr>``) for the next,
    until no new code is discovered.  With a full symbol table the
    first round already converges.
    """
    extra: dict[int, str] = {}
    for _round in range(max_rounds):
        cfg = build_cfg(exe, isa, symbols=symbols,
                        extra_funcs=extra or None)
        result = analyze_executable(exe, isa, symbols=symbols,
                                    target=target, mem_limit=mem_limit,
                                    cfg=cfg)
        new = sorted(t for t in result.resolved_targets
                     if t not in cfg.visited)
        if not new:
            break
        for t in new:
            extra[t] = f"fn_{t:x}"
    return cfg, result

"""Object-file model: sections, symbols, relocations, executables.

An :class:`ObjectFile` is what the assembler emits for one translation
unit; the linker lays object files out in memory, resolves symbols, patches
relocations, and produces an :class:`Executable`.  The executable's
``binary_size`` (text + data bytes) is the paper's code-density metric
("the number of bytes in the stripped binary executable file, including
both text and data segments").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Reloc(enum.Enum):
    """Relocation kinds patched at link time."""

    WORD32 = "word32"    # 32-bit data/pool word := symbol address + addend
    HI16 = "hi16"        # DLXe mvhi: upper 16 bits, with %lo carry adjust
    LO16 = "lo16"        # DLXe I-type imm: lower 16 bits (signed view)
    ABS16 = "abs16"      # DLXe I-type imm := full address (must fit 16 bits)
    J26 = "j26"          # DLXe J-type: word-scaled absolute address


@dataclass(frozen=True)
class Relocation:
    section: str
    offset: int          # byte offset within the section
    kind: Reloc
    symbol: str
    addend: int = 0


@dataclass(frozen=True)
class Symbol:
    name: str
    section: str         # "text", "data", or "abs"
    value: int           # offset within section (or absolute value)
    is_global: bool = False


@dataclass
class Section:
    name: str
    data: bytearray = field(default_factory=bytearray)

    @property
    def size(self) -> int:
        return len(self.data)


class LinkError(Exception):
    """Symbol resolution or relocation failure."""


@dataclass
class ObjectFile:
    """Relocatable output of one assembly unit."""

    isa_name: str
    sections: dict[str, Section] = field(default_factory=dict)
    symbols: dict[str, Symbol] = field(default_factory=dict)
    relocations: list[Relocation] = field(default_factory=list)

    def section(self, name: str) -> Section:
        if name not in self.sections:
            self.sections[name] = Section(name)
        return self.sections[name]


@dataclass
class Executable:
    """A linked, loadable program image."""

    isa_name: str
    text_base: int
    text: bytes
    data_base: int
    data: bytes
    entry: int
    symbols: dict[str, int]   # name -> absolute address

    @property
    def text_size(self) -> int:
        return len(self.text)

    @property
    def data_size(self) -> int:
        return len(self.data)

    @property
    def binary_size(self) -> int:
        """Stripped-binary size: text + data bytes (the density metric)."""
        return len(self.text) + len(self.data)

    def segments(self) -> list[tuple[int, bytes]]:
        """(base, bytes) pairs to load into memory."""
        return [(self.text_base, self.text), (self.data_base, self.data)]

    def __getstate__(self):
        # The simulator parks its compiled-block code cache on the
        # executable (shared by every Machine running this image); code
        # objects don't pickle, so the cache stays behind when the exe
        # crosses a process boundary (fault campaigns, the lab cache).
        state = self.__dict__.copy()
        state.pop("_block_code_cache", None)
        state.pop("_decoded_text", None)
        state.pop("_slot_meta_cache", None)
        return state

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise LinkError(f"undefined symbol {name!r}") from None

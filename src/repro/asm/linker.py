"""Linker: lay out object files, resolve symbols, patch relocations.

Memory map of a linked executable::

    text_base (default 0x1000):  all text sections, in object order
    data_base (text end, 16-aligned): all data sections, in object order
    __gp   = data_base            (global pointer for gp-relative access)
    __stack_top = configurable    (initial stack pointer)

The linker defines ``__gp``, ``__data_start``, ``__data_end`` and
``__stack_top``; the entry point is the global symbol ``_start``.
"""

from __future__ import annotations

import struct

from .objfile import Executable, LinkError, ObjectFile, Reloc

TEXT_BASE = 0x1000
STACK_TOP = 0x0010_0000          # 1 MiB; grows down
DATA_ALIGN = 16


def link(objects: list[ObjectFile], *, text_base: int = TEXT_BASE,
         stack_top: int = STACK_TOP, entry_symbol: str = "_start",
         ) -> Executable:
    """Link ``objects`` into an executable image."""
    if not objects:
        raise LinkError("nothing to link")
    isa_name = objects[0].isa_name
    if any(o.isa_name != isa_name for o in objects):
        raise LinkError("cannot mix ISAs in one link")
    if text_base % 4:
        raise LinkError("text base must be word-aligned")

    # Concatenate sections, remembering each object's placement.
    text = bytearray()
    data = bytearray()
    placements: list[dict[str, int]] = []
    for obj in objects:
        place = {}
        for name, buf in (("text", text), ("data", data)):
            section = obj.sections.get(name)
            pad = (-len(buf)) % 4
            buf.extend(b"\0" * pad)
            place[name] = len(buf)
            if section is not None:
                buf.extend(section.data)
        placements.append(place)

    data_base = text_base + len(text)
    data_base += (-data_base) % DATA_ALIGN

    # Global symbol table.
    bases = {"text": text_base, "data": data_base}
    symbols: dict[str, int] = {
        "__gp": data_base,
        "__data_start": data_base,
        "__data_end": data_base + len(data),
        "__stack_top": stack_top,
    }
    local_tables: list[dict[str, int]] = []
    for obj, place in zip(objects, placements):
        table = {}
        for sym in obj.symbols.values():
            if sym.section == "abs":
                address = sym.value
            else:
                address = bases[sym.section] + place[sym.section] + sym.value
            table[sym.name] = address
            if sym.is_global:
                if sym.name in symbols and symbols[sym.name] != address:
                    raise LinkError(f"duplicate global symbol {sym.name!r}")
                symbols[sym.name] = address
        local_tables.append(table)

    # Patch relocations.
    buffers = {"text": text, "data": data}
    for obj, place, table in zip(objects, placements, local_tables):
        for reloc in obj.relocations:
            value = table.get(reloc.symbol, symbols.get(reloc.symbol))
            if value is None:
                raise LinkError(f"undefined symbol {reloc.symbol!r}")
            value += reloc.addend
            buf = buffers[reloc.section]
            at = place[reloc.section] + reloc.offset
            _patch(buf, at, reloc.kind, value, reloc.symbol)

    entry = None
    for table in local_tables:
        if entry_symbol in table:
            entry = table[entry_symbol]
            break
    if entry is None:
        raise LinkError(f"no entry symbol {entry_symbol!r}")

    return Executable(isa_name=isa_name, text_base=text_base,
                      text=bytes(text), data_base=data_base,
                      data=bytes(data), entry=entry, symbols=symbols)


def _patch(buf: bytearray, at: int, kind: Reloc, value: int,
           symbol: str) -> None:
    if kind == Reloc.WORD32:
        struct.pack_into("<I", buf, at, value & 0xFFFFFFFF)
        return

    (word,) = struct.unpack_from("<I", buf, at)
    if kind == Reloc.HI16:
        lo = value & 0xFFFF
        hi = (value >> 16) + (1 if lo >= 0x8000 else 0)
        word = (word & 0xFFFF0000) | (hi & 0xFFFF)
    elif kind == Reloc.LO16:
        word = (word & 0xFFFF0000) | (value & 0xFFFF)
    elif kind == Reloc.ABS16:
        if not 0 <= value <= 0x7FFF:
            raise LinkError(
                f"%abs16({symbol}) = {value:#x} does not fit in a signed "
                "16-bit immediate")
        word = (word & 0xFFFF0000) | value
    elif kind == Reloc.J26:
        if value % 4:
            raise LinkError(f"jump target {symbol} not word-aligned")
        if value // 4 >= 1 << 26:
            raise LinkError(f"jump target {symbol} out of J-type range")
        word = (word & 0xFC000000) | (value // 4)
    else:  # pragma: no cover - exhaustive over Reloc
        raise LinkError(f"unhandled relocation kind {kind}")
    struct.pack_into("<I", buf, at, word)

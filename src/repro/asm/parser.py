"""Line-level parsing for the shared assembly syntax.

One statement per line::

    [label:] [mnemonic operand, operand ...]  [; comment]
    [label:] [.directive args]                [; comment]

Operands are registers (``r4``, ``f2``, or the aliases ``sp``/``gp``/``lr``),
immediates (decimal, hex, or ``'c'`` character literals), symbols, the
relocation operators ``%hi(sym)``/``%lo(sym)``/``%abs16(sym)``, and memory
operands ``offset(reg)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


class AsmSyntaxError(Exception):
    def __init__(self, message: str, line_no: int = 0):
        super().__init__(f"line {line_no}: {message}" if line_no else message)
        self.line_no = line_no


REG_ALIASES = {"sp": 15, "gp": 14, "lr": 1}

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_REG_RE = re.compile(r"^([rf])(\d+)$")
_INT_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+)$")
_SYM_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_RELOP_RE = re.compile(r"^%(hi|lo|abs16)\(([A-Za-z_.$][\w.$]*)\)$")
_MEM_RE = re.compile(r"^(.*)\(\s*(\w+)\s*\)$")
_EXPR_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*([+-])\s*(\d+|0[xX][0-9a-fA-F]+)$")


@dataclass(frozen=True)
class RegOperand:
    cls: str            # "g" or "f"
    index: int


@dataclass(frozen=True)
class ImmOperand:
    value: int


@dataclass(frozen=True)
class SymOperand:
    symbol: str
    addend: int = 0
    relop: str | None = None   # None, "hi", "lo", "abs16"


@dataclass(frozen=True)
class MemOperand:
    offset: "ImmOperand | SymOperand"
    base: RegOperand


Operand = RegOperand | ImmOperand | SymOperand | MemOperand


@dataclass(frozen=True)
class Statement:
    line_no: int
    label: str | None
    mnemonic: str | None          # lower-case mnemonic or .directive
    operands: tuple = ()
    raw_args: str = ""            # unparsed argument text (directives)


def _strip_comment(line: str) -> str:
    out = []
    in_str = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == '"' and (i == 0 or line[i - 1] != "\\"):
            in_str = not in_str
        if not in_str and (ch == ";" or ch == "#"):
            break
        out.append(ch)
        i += 1
    return "".join(out).rstrip()


def _split_operands(text: str) -> list[str]:
    """Split on commas not inside parens or string quotes."""
    parts, depth, in_str, cur = [], 0, False, []
    for ch in text:
        if ch == '"':
            in_str = not in_str
        if not in_str:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            elif ch == "," and depth == 0:
                parts.append("".join(cur).strip())
                cur = []
                continue
        cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


def parse_register(token: str, line_no: int = 0) -> RegOperand:
    token = token.strip()
    if token in REG_ALIASES:
        return RegOperand("g", REG_ALIASES[token])
    m = _REG_RE.match(token)
    if not m:
        raise AsmSyntaxError(f"bad register {token!r}", line_no)
    cls = "g" if m.group(1) == "r" else "f"
    return RegOperand(cls, int(m.group(2)))


def parse_value(token: str, line_no: int = 0) -> ImmOperand | SymOperand:
    """Parse an immediate, character literal, symbol, or reloc operator."""
    token = token.strip()
    if _INT_RE.match(token):
        return ImmOperand(int(token, 0))
    if len(token) >= 3 and token[0] == "'" and token[-1] == "'":
        body = token[1:-1]
        char = {"\\n": "\n", "\\t": "\t", "\\0": "\0", "\\'": "'",
                "\\\\": "\\"}.get(body, body)
        if len(char) != 1:
            raise AsmSyntaxError(f"bad character literal {token!r}", line_no)
        return ImmOperand(ord(char))
    m = _RELOP_RE.match(token)
    if m:
        return SymOperand(symbol=m.group(2), relop=m.group(1))
    m = _EXPR_RE.match(token)
    if m:
        sign = 1 if m.group(2) == "+" else -1
        return SymOperand(symbol=m.group(1), addend=sign * int(m.group(3), 0))
    if _SYM_RE.match(token):
        return SymOperand(symbol=token)
    raise AsmSyntaxError(f"cannot parse operand {token!r}", line_no)


def parse_operand(token: str, line_no: int = 0) -> Operand:
    token = token.strip()
    m = _MEM_RE.match(token)
    if m and (_REG_RE.match(m.group(2)) or m.group(2) in REG_ALIASES):
        offset_text = m.group(1).strip()
        offset = (ImmOperand(0) if not offset_text
                  else parse_value(offset_text, line_no))
        return MemOperand(offset=offset, base=parse_register(m.group(2), line_no))
    if _REG_RE.match(token) or token in REG_ALIASES:
        return parse_register(token, line_no)
    return parse_value(token, line_no)


def parse_line(line: str, line_no: int) -> Statement | None:
    """Parse one source line; None for blank/comment-only lines."""
    text = _strip_comment(line).strip()
    label = None
    m = _LABEL_RE.match(text)
    if m:
        label = m.group(1)
        text = text[m.end():].strip()
    if not text:
        return Statement(line_no, label, None) if label else None

    parts = text.split(None, 1)
    mnemonic = parts[0].lower()
    args = parts[1].strip() if len(parts) > 1 else ""
    if mnemonic.startswith("."):
        return Statement(line_no, label, mnemonic, raw_args=args)
    operands = tuple(parse_operand(tok, line_no)
                     for tok in _split_operands(args))
    return Statement(line_no, label, mnemonic, operands, raw_args=args)


def parse_source(source: str) -> list[Statement]:
    """Parse a full assembly source into statements."""
    statements = []
    for line_no, line in enumerate(source.splitlines(), start=1):
        stmt = parse_line(line, line_no)
        if stmt is not None:
            statements.append(stmt)
    return statements

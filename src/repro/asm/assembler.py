"""Two-pass assembler targeting either the D16 or the DLXe encoding.

Pass 1 assigns every statement a section offset and collects labels; pass 2
encodes instructions (resolving PC-relative references) and emits
relocations for link-time constants.

The same source syntax serves both ISAs; ISA-specific restrictions (field
widths, register counts, two-address forms) are enforced by the encoding
modules and surface here as :class:`AsmError` with source line numbers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..isa import EncodingError, Instr, IsaSpec, OP_INFO, Op, OpKind
from ..isa.operations import Cond
from .objfile import ObjectFile, Reloc, Relocation, Symbol
from .parser import (ImmOperand, MemOperand, RegOperand, Statement,
                     SymOperand, parse_source, parse_value)


class AsmError(Exception):
    """Assembly failure, annotated with the source line."""

    def __init__(self, message: str, line_no: int = 0):
        super().__init__(f"line {line_no}: {message}" if line_no else message)
        self.line_no = line_no


def _build_mnemonics() -> dict[str, tuple[Op, Cond | None]]:
    table: dict[str, tuple[Op, Cond | None]] = {}
    for op, info in OP_INFO.items():
        if "cond" not in info.signature:
            table[op.value] = (op, None)
            continue
        for cond in Cond:
            if op in (Op.CMP, Op.CMPI):
                table[f"{op.value}{cond.value}"] = (op, cond)
            else:  # cmp.sf / cmp.df
                base, suffix = op.value.split(".")
                table[f"{base}{cond.value}.{suffix}"] = (op, cond)
    return table


MNEMONICS = _build_mnemonics()

_DATA_DIRECTIVES = {".word": 4, ".half": 2, ".byte": 1}


@dataclass
class _Item:
    """One pass-1 placement: an instruction or data blob."""

    stmt: Statement
    section: str
    offset: int
    size: int


class Assembler:
    """Assembles one translation unit for a given ISA."""

    def __init__(self, isa: IsaSpec):
        self.isa = isa
        self._labels: dict[str, tuple[str, int]] = {}

    def assemble(self, source: str) -> ObjectFile:
        statements = parse_source(source)
        obj = ObjectFile(isa_name=self.isa.name)
        items, labels, globals_, equs = self._pass1(statements)
        self._labels = labels
        for name, (section, offset) in labels.items():
            obj.symbols[name] = Symbol(name, section, offset,
                                       is_global=name in globals_)
        for name, value in equs.items():
            obj.symbols[name] = Symbol(name, "abs", value,
                                       is_global=name in globals_)
        self._pass2(items, obj)
        return obj

    def scan(self, source: str):
        """Yield ``(statement, instr, error)`` for every instruction.

        Unlike :meth:`assemble`, operand mapping continues past a bad
        statement (``instr`` is then ``None`` and ``error`` the
        :class:`AsmError`); the lint layers use this to report every
        unencodable instruction instead of dying at the first.
        """
        statements = parse_source(source)
        items, labels, _globals, _equs = self._pass1(statements)
        self._labels = labels
        for item in items:
            if item.stmt.mnemonic.startswith("."):
                continue
            try:
                instr, _reloc = self._build_instr(item)
            except AsmError as exc:
                yield item.stmt, None, exc
                continue
            yield item.stmt, instr, None

    # ------------------------------------------------------------- pass 1

    def _pass1(self, statements):
        section = "text"
        offsets = {"text": 0, "data": 0}
        items: list[_Item] = []
        labels: dict[str, tuple[str, int]] = {}
        globals_: set[str] = set()
        equs: dict[str, int] = {}

        for stmt in statements:
            if stmt.label:
                if stmt.label in labels or stmt.label in equs:
                    raise AsmError(f"duplicate label {stmt.label!r}",
                                   stmt.line_no)
                labels[stmt.label] = (section, offsets[section])
            if stmt.mnemonic is None:
                continue
            m = stmt.mnemonic
            if m.startswith("."):
                section, size = self._directive_pass1(
                    stmt, section, offsets, globals_, equs, labels)
                if size:
                    items.append(_Item(stmt, section, offsets[section], size))
                    offsets[section] += size
                continue
            if m not in MNEMONICS:
                raise AsmError(f"unknown mnemonic {m!r}", stmt.line_no)
            if section != "text":
                raise AsmError("instructions outside .text", stmt.line_no)
            items.append(_Item(stmt, section, offsets[section],
                               self.isa.width_bytes))
            offsets[section] += self.isa.width_bytes
        return items, labels, globals_, equs

    def _directive_pass1(self, stmt, section, offsets, globals_, equs,
                         labels):
        """Handle a directive in pass 1; returns (section, reserved_size)."""
        m, args = stmt.mnemonic, stmt.raw_args
        if m == ".text":
            return "text", 0
        if m == ".data":
            return "data", 0
        if m == ".global":
            globals_.update(a.strip() for a in args.split(","))
            return section, 0
        if m == ".equ":
            name, _, value = args.partition(",")
            try:
                equs[name.strip()] = int(value.strip(), 0)
            except ValueError as exc:
                raise AsmError(f"bad .equ value {value!r}",
                               stmt.line_no) from exc
            return section, 0
        if m == ".align":
            boundary = int(args, 0)
            pad = (-offsets[section]) % boundary
            # Re-point any label on this line past the padding.
            if stmt.label:
                labels[stmt.label] = (section, offsets[section] + pad)
            return section, pad
        if m == ".space":
            return section, int(args, 0)
        if m in _DATA_DIRECTIVES:
            count = len(_split_args(args))
            return section, _DATA_DIRECTIVES[m] * count
        if m in (".ascii", ".asciiz"):
            text = _parse_string(args, stmt.line_no)
            return section, len(text) + (1 if m == ".asciiz" else 0)
        raise AsmError(f"unknown directive {m!r}", stmt.line_no)

    # ------------------------------------------------------------- pass 2

    def _pass2(self, items: list[_Item], obj: ObjectFile) -> None:
        for item in items:
            section = obj.section(item.section)
            if len(section.data) < item.offset:
                section.data.extend(b"\0" * (item.offset - len(section.data)))
            m = item.stmt.mnemonic
            if m.startswith("."):
                self._emit_data(item, obj)
            else:
                self._emit_instr(item, obj)

    def _emit_data(self, item: _Item, obj: ObjectFile) -> None:
        stmt = item.stmt
        m = stmt.mnemonic
        section = obj.section(item.section)
        if m == ".align" or m == ".space":
            section.data.extend(b"\0" * item.size)
            return
        if m in (".ascii", ".asciiz"):
            text = _parse_string(stmt.raw_args, stmt.line_no)
            section.data.extend(text)
            if m == ".asciiz":
                section.data.append(0)
            return
        width = _DATA_DIRECTIVES[m]
        fmt = {1: "<b", 2: "<h", 4: "<i"}[width]
        for token in _split_args(stmt.raw_args):
            token = token.strip()
            offset = len(section.data)
            try:
                value = int(token, 0)
            except ValueError:
                if width != 4:
                    raise AsmError("symbol data must be .word",
                                   stmt.line_no) from None
                sym, addend = _sym_and_addend(token, stmt.line_no)
                obj.relocations.append(Relocation(
                    item.section, offset, Reloc.WORD32, sym, addend))
                section.data.extend(b"\0\0\0\0")
                continue
            lo, hi = -(1 << (width * 8 - 1)), (1 << (width * 8)) - 1
            if not lo <= value <= hi:
                raise AsmError(f"{m} value {value} out of range", stmt.line_no)
            if value >= 1 << (width * 8 - 1):     # store large unsigned
                value -= 1 << (width * 8)
            section.data.extend(struct.pack(fmt, value))

    def _build_instr(self, item: _Item):
        """Map a parsed statement onto an :class:`Instr`.

        Returns ``(instr, reloc)`` where ``reloc`` is the pending
        relocation triple (kind, symbol, addend) or ``None``.  Operand
        mapping and validation happen here, *encoding* in
        :meth:`_emit_instr` — the binary linter reuses this method to
        range-check instructions without stopping at the first
        encoding failure.
        """
        stmt = item.stmt
        op, cond = MNEMONICS[stmt.mnemonic]
        info = OP_INFO[op]
        fields: dict[str, object] = {}
        if cond is not None:
            fields["cond"] = cond

        sig = [f for f in info.signature if f != "cond"]
        operands = list(stmt.operands)
        reloc: tuple[Reloc, str, int] | None = None

        if info.kind in (OpKind.LOAD, OpKind.STORE) and op != Op.LDC:
            if len(operands) != 2 or not isinstance(operands[1], MemOperand):
                raise AsmError(f"{stmt.mnemonic} expects 'reg, off(base)'",
                               stmt.line_no)
            data_field = sig[0]                     # rd or rs2
            fields[data_field] = self._reg(operands[0], info, data_field,
                                           stmt.line_no)
            mem = operands[1]
            fields["rs1"] = self._reg(mem.base, info, "rs1", stmt.line_no)
            imm, reloc = self._imm(mem.offset, op, item, stmt.line_no)
            fields["imm"] = imm
        else:
            if len(operands) != len(sig):
                raise AsmError(
                    f"{stmt.mnemonic} expects {len(sig)} operands, "
                    f"got {len(operands)}", stmt.line_no)
            for field, operand in zip(sig, operands):
                if field == "imm":
                    imm, reloc = self._imm(operand, op, item, stmt.line_no)
                    fields["imm"] = imm
                else:
                    fields[field] = self._reg(operand, info, field,
                                              stmt.line_no)

        instr = Instr(op=op, **fields)
        try:
            instr.validate()
        except Exception as exc:
            raise AsmError(f"{stmt.mnemonic}: {exc}",
                           stmt.line_no) from exc
        return instr, reloc

    def _emit_instr(self, item: _Item, obj: ObjectFile) -> None:
        stmt = item.stmt
        instr, reloc = self._build_instr(item)
        try:
            word = self.isa.encode(instr)
        except EncodingError as exc:
            raise AsmError(str(exc), stmt.line_no) from exc
        section = obj.section(item.section)
        section.data.extend(word.to_bytes(self.isa.width_bytes, "little"))
        if reloc is not None:
            kind, symbol, addend = reloc
            obj.relocations.append(Relocation(
                item.section, item.offset, kind, symbol, addend))

    def _reg(self, operand, info, field: str, line_no: int) -> int:
        if not isinstance(operand, RegOperand):
            raise AsmError(f"expected register for {field}", line_no)
        expected = info.reg_class.get(field, "g")
        if operand.cls != expected:
            kind = "floating-point" if expected == "f" else "general"
            raise AsmError(f"{field} must be a {kind} register", line_no)
        return operand.index

    def _imm(self, operand, op: Op, item: _Item, line_no: int):
        """Resolve an immediate operand; returns (value, reloc-or-None)."""
        if isinstance(operand, ImmOperand):
            return operand.value, None
        if not isinstance(operand, SymOperand):
            raise AsmError("expected immediate or symbol", line_no)

        labels = self._labels
        if operand.relop == "hi":
            return 0, (Reloc.HI16, operand.symbol, operand.addend)
        if operand.relop == "lo":
            return 0, (Reloc.LO16, operand.symbol, operand.addend)
        if operand.relop == "abs16":
            return 0, (Reloc.ABS16, operand.symbol, operand.addend)

        if op in (Op.BR, Op.BZ, Op.BNZ, Op.LDC):
            target = labels.get(operand.symbol)
            if target is None:
                raise AsmError(f"undefined local label {operand.symbol!r}",
                               line_no)
            t_section, t_offset = target
            if t_section != item.section:
                raise AsmError("PC-relative reference across sections",
                               line_no)
            t_offset += operand.addend
            if op == Op.LDC:
                return t_offset - (item.offset & ~3), None
            return t_offset - item.offset, None
        if op in (Op.JD, Op.JLD):
            return 0, (Reloc.J26, operand.symbol, operand.addend)
        raise AsmError(f"{op.value} cannot take a symbolic operand", line_no)

def _sym_and_addend(token: str, line_no: int) -> tuple[str, int]:
    """Parse a ``symbol`` or ``symbol±offset`` data expression."""
    operand = parse_value(token, line_no)
    if not isinstance(operand, SymOperand) or operand.relop is not None:
        raise AsmError(f"bad .word expression {token!r}", line_no)
    return operand.symbol, operand.addend


def _split_args(args: str) -> list[str]:
    return [a for a in (p.strip() for p in args.split(",")) if a]


def _parse_string(args: str, line_no: int) -> bytes:
    args = args.strip()
    if len(args) < 2 or args[0] != '"' or args[-1] != '"':
        raise AsmError("expected a quoted string", line_no)
    body = args[1:-1]
    out = bytearray()
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            esc = body[i + 1]
            mapped = {"n": 10, "t": 9, "0": 0, '"': 34, "\\": 92}.get(esc)
            if mapped is None:
                raise AsmError(f"bad escape \\{esc}", line_no)
            out.append(mapped)
            i += 2
        else:
            out.append(ord(ch))
            i += 1
    return bytes(out)


def assemble(source: str, isa: IsaSpec) -> ObjectFile:
    """Assemble ``source`` for ``isa`` into a relocatable object file."""
    return Assembler(isa).assemble(source)

"""Disassembler for linked executables (debugging aid)."""

from __future__ import annotations

from ..isa import DecodingError, get_isa
from .objfile import Executable


def disassemble(exe: Executable, *, start: int | None = None,
                count: int | None = None) -> list[tuple[int, str]]:
    """Disassemble the text segment; returns (address, text) pairs."""
    isa = get_isa(exe.isa_name)
    rev_symbols = {}
    for name, addr in exe.symbols.items():
        rev_symbols.setdefault(addr, name)
    out: list[tuple[int, str]] = []
    address = start if start is not None else exe.text_base
    end = exe.text_base + len(exe.text)
    emitted = 0
    while address < end:
        if count is not None and emitted >= count:
            break
        offset = address - exe.text_base
        try:
            instr = isa.decode_bytes(exe.text, offset)
            text = str(instr)
        except DecodingError:
            word = int.from_bytes(
                exe.text[offset:offset + isa.width_bytes], "little")
            text = f".word {word:#x}"
        label = rev_symbols.get(address)
        if label is not None:
            text = f"{label}: {text}"
        out.append((address, text))
        address += isa.width_bytes
        emitted += 1
    return out


def format_listing(exe: Executable, **kwargs) -> str:
    """Human-readable disassembly listing."""
    lines = [f"{addr:#010x}  {text}"
             for addr, text in disassemble(exe, **kwargs)]
    return "\n".join(lines)

"""Disassembler for linked executables (debugging aid).

Every decodable word renders as its assembly form; anything else (pool
constants, padding) falls back to ``.word``.  Control transfers and
PC-relative pool loads are annotated with their resolved absolute
target and, when the symbol table covers it, the nearest label — which
makes listings cross-referenceable with the binary linter's findings.
"""

from __future__ import annotations

from ..isa import DecodingError, Instr, IsaSpec, Op, get_isa
from ..isa.refs import ldc_pool_addr, transfer_target
from .objfile import Executable


def check_roundtrip(isa: IsaSpec, instr: Instr) -> str | None:
    """Encode -> decode -> re-encode; ``None`` if byte-identical.

    Returns a description of the first mismatch otherwise.  The binary
    linter's BIN001 rule and the encoding property tests are built on
    this invariant: for every encodable instruction the decoder must
    recover an instruction producing the same word.
    """
    word = isa.encode(instr)
    try:
        decoded = isa.decode(word)
    except DecodingError as exc:
        return f"'{instr}' encodes to {word:#x} which does not decode: {exc}"
    back = isa.encode(decoded)
    if back != word:
        return (f"'{instr}' -> {word:#x} -> '{decoded}' -> {back:#x}: "
                f"round-trip is not byte-identical")
    return None


def _target_of(instr: Instr, address: int) -> int | None:
    """Absolute address referenced by a control/pool instruction."""
    if instr.op == Op.LDC:
        return ldc_pool_addr(address, instr.imm)
    return transfer_target(address, instr)


def disassemble(exe: Executable, *, start: int | None = None,
                count: int | None = None,
                symbols: dict[str, int] | None = None,
                ) -> list[tuple[int, str]]:
    """Disassemble the text segment; returns (address, text) pairs.

    ``symbols`` supplements the executable's (globals-only) symbol
    table with extra name -> address pairs, e.g. the local labels from
    the object file.
    """
    isa = get_isa(exe.isa_name)
    symtab = dict(exe.symbols)
    if symbols:
        symtab.update(symbols)
    rev_symbols: dict[int, str] = {}
    for name, addr in sorted(symtab.items()):
        rev_symbols.setdefault(addr, name)
    out: list[tuple[int, str]] = []
    address = start if start is not None else exe.text_base
    end = exe.text_base + len(exe.text)
    emitted = 0
    while address < end:
        if count is not None and emitted >= count:
            break
        offset = address - exe.text_base
        try:
            instr = isa.decode_bytes(exe.text, offset)
            text = str(instr)
            target = _target_of(instr, address)
            if target is not None:
                name = rev_symbols.get(target)
                text += f"\t; {target:#x}" + (f" <{name}>" if name else "")
        except DecodingError:
            word = int.from_bytes(
                exe.text[offset:offset + isa.width_bytes], "little")
            text = f".word {word:#x}"
        label = rev_symbols.get(address)
        if label is not None:
            text = f"{label}: {text}"
        out.append((address, text))
        address += isa.width_bytes
        emitted += 1
    return out


def format_listing(exe: Executable, **kwargs) -> str:
    """Human-readable disassembly listing with raw instruction words."""
    isa = get_isa(exe.isa_name)
    lines = []
    for addr, text in disassemble(exe, **kwargs):
        offset = addr - exe.text_base
        word = int.from_bytes(exe.text[offset:offset + isa.width_bytes],
                              "little")
        lines.append(f"{addr:#010x}  {word:0{isa.width_bytes * 2}x}  {text}")
    return "\n".join(lines)

"""Assembler, linker and object-file model."""

from .assembler import AsmError, Assembler, assemble
from .disasm import check_roundtrip, disassemble, format_listing
from .linker import STACK_TOP, TEXT_BASE, link
from .objfile import (Executable, LinkError, ObjectFile, Reloc, Relocation,
                      Section, Symbol)
from .parser import AsmSyntaxError, parse_line, parse_source

__all__ = [
    "AsmError", "AsmSyntaxError", "Assembler", "Executable", "LinkError",
    "ObjectFile", "Reloc", "Relocation", "STACK_TOP", "Section", "Symbol",
    "TEXT_BASE", "assemble", "check_roundtrip", "disassemble",
    "format_listing", "link",
    "parse_line", "parse_source",
]

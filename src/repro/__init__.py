"""repro: a reproduction of "16-Bit vs. 32-Bit Instructions for
Pipelined Microprocessors" (Bunda, Fussell, Jenevein, Athas; ISCA 1993).

Subpackages:

* :mod:`repro.isa` -- the D16 (16-bit) and DLXe (32-bit) instruction sets
* :mod:`repro.asm` -- assembler, linker, object files
* :mod:`repro.machine` -- architecture simulator + pipeline timing model
* :mod:`repro.cache` -- trace-driven cache simulation
* :mod:`repro.cc` -- minic, the optimizing C-subset compiler
* :mod:`repro.bench` -- the 15-program benchmark suite
* :mod:`repro.experiments` -- the paper's tables and figures
"""

__version__ = "1.0.0"

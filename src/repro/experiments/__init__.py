"""Experiment harness: one module per paper section (see DESIGN.md)."""

from .runner import (ExperimentError, Lab, MAIN_TARGETS, PAPER_TARGETS,
                     ProgramRun, RunError, TraceRun, default_programs,
                     geomean, grid_records, mean)
from .density import DensityResult, format_figure4, format_table6, run_density
from .pathlength import (PathLengthResult, format_figure5, format_table7,
                         run_pathlength)
from .summary import (SummaryResult, format_figures_11_12, format_table5,
                      run_summary)
from .features import (DataTrafficResult, ImmediateBreakdown,
                       format_figures_6_7, format_table3, format_table4,
                       format_table9, run_data_traffic, run_immediates)
from .traffic import (InterlockRow, TrafficResult, format_figure13,
                      format_table8, format_table10, run_interlocks,
                      run_traffic)
from .memperf import (MemPerfResult, format_figure14, format_figure15,
                      format_tables_11_12, run_memperf)
from .cacheperf import (CACHE_PROGRAMS, CacheStudy, format_figure16,
                        format_figure19, format_figures_17_18,
                        format_miss_rate_table, format_table13,
                        grid_configs, run_cache_study)

__all__ = [
    "CACHE_PROGRAMS", "CacheStudy", "DataTrafficResult", "DensityResult",
    "ExperimentError", "ImmediateBreakdown", "InterlockRow", "Lab",
    "MAIN_TARGETS", "MemPerfResult", "PAPER_TARGETS", "PathLengthResult",
    "ProgramRun", "RunError",
    "SummaryResult", "TraceRun", "TrafficResult", "default_programs",
    "format_figure4", "format_figure5", "format_figure13",
    "format_figure14", "format_figure15", "format_figure16",
    "format_figure19", "format_figures_11_12", "format_figures_17_18",
    "format_figures_6_7", "format_miss_rate_table", "format_table3",
    "format_table4", "format_table5", "format_table6", "format_table7",
    "format_table8", "format_table9", "format_table10", "format_table13",
    "format_tables_11_12", "geomean", "grid_configs", "grid_records",
    "mean",
    "run_cache_study",
    "run_data_traffic", "run_density", "run_immediates", "run_interlocks",
    "run_memperf", "run_pathlength", "run_summary", "run_traffic",
]

"""Plain-text table rendering for experiment results."""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list], *,
                 title: str = "", precision: int = 3) -> str:
    """Render a simple aligned ASCII table."""
    def cell(value) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def line(cells):
        return "  ".join(c.rjust(w) if i else c.ljust(w)
                         for i, (c, w) in enumerate(zip(cells, widths)))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        out.append(line(row))
    return "\n".join(out)


def format_series(title: str, x_label: str, xs: list,
                  series: dict[str, list[float]], *,
                  precision: int = 3) -> str:
    """Render figure data as one row per x value, one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(xs):
        rows.append([x] + [series[name][index] for name in series])
    return format_table(headers, rows, title=title, precision=precision)

"""Combined feature effects (paper Section 3.4: Figures 11-12, Table 5).

Table 5 cross-tabulates average code-size and path-length ratios over
the four DLXe ablation corners: {16, 32} registers x {two, three}
addresses, all relative to D16 = 1.00.
"""

from __future__ import annotations

from dataclasses import dataclass

from .density import DensityResult, run_density
from .pathlength import PathLengthResult, run_pathlength
from .report import format_table
from .runner import Lab, PAPER_TARGETS

#: (registers, addresses) -> target name
CORNERS = {
    (16, 2): "dlxe/16/2",
    (16, 3): "dlxe/16/3",
    (32, 2): "dlxe/32/2",
    (32, 3): "dlxe",
}


@dataclass
class SummaryResult:
    density: DensityResult
    pathlength: PathLengthResult

    def code_size_ratio(self, regs: int, addrs: int) -> float:
        return self.density.average_ratio(CORNERS[(regs, addrs)])

    def path_ratio(self, regs: int, addrs: int) -> float:
        return self.pathlength.average_ratio(CORNERS[(regs, addrs)])


def run_summary(lab: Lab, programs=None) -> SummaryResult:
    density = run_density(lab, programs, PAPER_TARGETS)
    pathlength = run_pathlength(lab, programs, PAPER_TARGETS)
    return SummaryResult(density=density, pathlength=pathlength)


def format_table5(result: SummaryResult) -> str:
    """Paper Table 5: density and path-length effects (D16 = 1.00)."""
    headers = ["Registers", "Size 2-addr", "Size 3-addr",
               "Path 2-addr", "Path 3-addr"]
    rows = []
    for regs in (16, 32):
        rows.append([
            regs,
            result.code_size_ratio(regs, 2),
            result.code_size_ratio(regs, 3),
            result.path_ratio(regs, 2),
            result.path_ratio(regs, 3),
        ])
    return format_table(headers, rows,
                        title="Table 5: density and path length "
                              "(D16 = 1.00)", precision=2)


def format_figures_11_12(result: SummaryResult) -> str:
    """Figures 11/12: per-program ratios for each ablation corner."""
    targets = ["dlxe/16/2", "dlxe/16/3", "dlxe/32/2", "dlxe"]
    headers = ["Program"] + [f"size {t}" for t in targets] \
        + [f"path {t}" for t in targets]
    path_by_name = {row.program: row for row in result.pathlength.rows}
    rows = []
    for drow in result.density.rows:
        prow = path_by_name[drow.program]
        rows.append([drow.program]
                    + [drow.ratio(t) for t in targets]
                    + [prow.ratio(t) for t in targets])
    return format_table(headers, rows,
                        title="Figures 11-12: code density and path "
                              "length summary (ratios vs D16)",
                        precision=2)
